//! Top-level pipeline coverage for `multitask`: two concurrent tasks
//! driven through scratchpad partitioning and full per-task MHLA runs,
//! with the cycle/energy accounting checked for additive consistency —
//! every total must equal the sum of standalone runs at the chosen
//! partition sizes.

use mhla::core::multitask::partition_scratchpad;
use mhla::core::{Mhla, MhlaConfig};
use mhla::hierarchy::{LayerId, Platform};

#[test]
fn two_task_pipeline_accounting_is_additive_consistent() {
    let tasks = [mhla_apps::fir_bank::app(), mhla_apps::sobel_edge::app()];
    let programs = [&tasks[0].program, &tasks[1].program];
    let platform = Platform::embedded_default(8 * 1024);
    let config = MhlaConfig::default();
    let granularity = 1024u64;

    let r = partition_scratchpad(&programs, &platform, &config, granularity);

    // Shape: one partition and one result per task, within budget and on
    // the allocation grid.
    assert_eq!(r.partitions.len(), 2);
    assert_eq!(r.results.len(), 2);
    assert!(r.partitions.iter().sum::<u64>() <= 8 * 1024);
    for &p in &r.partitions {
        assert_eq!(p % granularity, 0, "partition off the allocation grid");
    }

    // Additive consistency: re-running each task standalone at its chosen
    // partition size must reproduce the per-task results bit-for-bit, and
    // the totals must be exactly the sums.
    let mut cycles_sum = 0u64;
    let mut baseline_sum = 0u64;
    let mut energy_sum = 0.0f64;
    for (i, program) in programs.iter().enumerate() {
        // A zero partition is modelled as a 1-byte scratchpad, exactly as
        // the partitioner prices it.
        let bytes = r.partitions[i].max(1);
        let pf = platform.with_layer_capacity(LayerId(1), bytes);
        let standalone = Mhla::new(program, &pf, config.clone()).run();
        assert_eq!(
            standalone, r.results[i],
            "task {i} diverges from a standalone run at {bytes} B"
        );
        cycles_sum += standalone.mhla_te_cycles();
        baseline_sum += standalone.baseline_cycles();
        energy_sum += standalone.mhla_energy_pj();
    }
    assert_eq!(
        r.total_cycles(),
        cycles_sum,
        "cycle accounting not additive"
    );
    assert_eq!(
        r.baseline_cycles(),
        baseline_sum,
        "baseline accounting not additive"
    );
    assert!(
        (r.total_energy_pj() - energy_sum).abs() < 1e-9,
        "energy accounting not additive: {} vs {}",
        r.total_energy_pj(),
        energy_sum
    );

    // The partitioned pipeline still beats running both out of the box.
    assert!(r.total_cycles() < r.baseline_cycles());
}

#[test]
fn partitioning_respects_task_pressure() {
    // A heavy and a light task competing for one scratchpad: the DP must
    // never allocate bytes that buy nothing. Whatever split it picks, the
    // summed objective must be no worse than an even split.
    let tasks = [mhla_apps::fir_bank::app(), mhla_apps::wavelet::app()];
    let programs = [&tasks[0].program, &tasks[1].program];
    let platform = Platform::embedded_default(4 * 1024);
    let config = MhlaConfig::default();
    let optimal = partition_scratchpad(&programs, &platform, &config, 1024);

    let half = platform.with_layer_capacity(LayerId(1), 2 * 1024);
    let even: u64 = programs
        .iter()
        .map(|p| Mhla::new(p, &half, config.clone()).run().mhla_te_cycles())
        .sum();
    assert!(
        optimal.total_cycles() <= even,
        "DP split {} worse than even split {even}",
        optimal.total_cycles()
    );
}
