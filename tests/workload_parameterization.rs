//! The nine workloads are parameterizable (tests and studies shrink or
//! grow them). These tests pin that the full flow stays correct across
//! sizes: programs validate, reuse scales with the geometry, and the
//! Figure-2 ordering survives at non-default sizes.

use mhla::core::{Mhla, MhlaConfig};
use mhla::hierarchy::Platform;
use mhla::sim::Simulator;
use mhla_apps::{cavity_detect, fir_bank, full_search_me, jpeg_enc, wavelet};

fn flow_orders_bars(program: &mhla::ir::Program, spm: u64) {
    let platform = Platform::embedded_default(spm);
    let mhla = Mhla::new(program, &platform, MhlaConfig::default());
    let model = mhla.cost_model();
    let r = mhla.run();
    let sim = Simulator::new(&model, &r.assignment, &r.te).run();
    assert!(
        r.baseline_cycles() >= r.mhla_cycles(),
        "{}: baseline < mhla",
        program.name()
    );
    assert!(
        sim.total_cycles() <= r.mhla_cycles(),
        "{}: sim above serial bound",
        program.name()
    );
    assert!(
        sim.total_cycles() >= r.ideal_cycles(),
        "{}: sim beat the ideal bound",
        program.name()
    );
}

#[test]
fn motion_estimation_scales_with_frame_and_search() {
    for (w, h, search) in [(32u64, 32u64, 2u64), (64, 48, 4), (176, 144, 8)] {
        let p = full_search_me::program(full_search_me::Params {
            width: w,
            height: h,
            block: 16,
            search,
        });
        p.validate().expect("valid at all sizes");
        let info = p.info();
        let window = 2 * search + 1;
        let expected = (w / 16) * (h / 16) * window * window * 256;
        let cur = p.array_by_name("cur").unwrap();
        assert_eq!(info.access_count(cur, mhla::ir::AccessKind::Read), expected);
        flow_orders_bars(&p, 4 * 1024);
    }
}

#[test]
fn fir_bank_scales_with_taps_and_bands() {
    for (bands, samples, taps) in [(2u64, 256u64, 8u64), (4, 1024, 32), (8, 4096, 64)] {
        let p = fir_bank::program(fir_bank::Params {
            bands,
            samples,
            taps,
        });
        p.validate().expect("valid");
        let info = p.info();
        let coef = p.array_by_name("coef").unwrap();
        assert_eq!(
            info.access_count(coef, mhla::ir::AccessKind::Read),
            bands * samples * taps
        );
        flow_orders_bars(&p, 1024);
    }
}

#[test]
fn image_kernels_scale_with_resolution() {
    let small = cavity_detect::program(cavity_detect::Params {
        width: 64,
        height: 48,
    });
    flow_orders_bars(&small, 2 * 1024);

    let tiny_jpeg = jpeg_enc::program(jpeg_enc::Params {
        width: 64,
        height: 64,
    });
    flow_orders_bars(&tiny_jpeg, 2 * 1024);

    let small_wavelet = wavelet::program(wavelet::Params {
        width: 64,
        height: 64,
        taps: 3,
    });
    flow_orders_bars(&small_wavelet, 2 * 1024);
}

#[test]
fn degenerate_sizes_are_rejected() {
    assert!(std::panic::catch_unwind(|| {
        full_search_me::program(full_search_me::Params {
            width: 30, // not a whole number of blocks
            height: 32,
            block: 16,
            search: 2,
        })
    })
    .is_err());
    assert!(std::panic::catch_unwind(|| {
        wavelet::program(wavelet::Params {
            width: 64,
            height: 64,
            taps: 4, // even filter
        })
    })
    .is_err());
    assert!(std::panic::catch_unwind(|| {
        fir_bank::program(fir_bank::Params {
            bands: 0,
            samples: 16,
            taps: 4,
        })
    })
    .is_err());
}

#[test]
fn larger_workloads_cost_proportionally_more() {
    // Doubling the FIR frame roughly doubles the simulated cycles: the
    // simulator's aggregation must not lose work.
    let base = fir_bank::program(fir_bank::Params {
        bands: 4,
        samples: 1024,
        taps: 32,
    });
    let doubled = fir_bank::program(fir_bank::Params {
        bands: 4,
        samples: 2048,
        taps: 32,
    });
    let platform = Platform::embedded_default(1024);
    let run = |p: &mhla::ir::Program| {
        let mhla = Mhla::new(p, &platform, MhlaConfig::default());
        let model = mhla.cost_model();
        let r = mhla.run();
        Simulator::new(&model, &r.assignment, &r.te)
            .run()
            .total_cycles()
    };
    let (a, b) = (run(&base), run(&doubled));
    let ratio = b as f64 / a as f64;
    assert!(
        (1.8..=2.2).contains(&ratio),
        "doubling samples changed cycles by {ratio:.2}x"
    );
}
