//! Machine checks of the improving sweep mode's dominance guarantee
//! (`SearchMode::Improving`): frontiers are allowed to *dominate* the
//! cold frontier, never to trail it.
//!
//! The guarantee is stated on the surface the search actually optimizes —
//! the step-1 objective score (`GridPoint::objective_score`) — because
//! the seeded portfolio picks the best-scoring leg with the cold leg
//! always included:
//!
//! * per point, the improving score is ≤ the cold score (exact f64
//!   comparison — both modes evaluate through the same arithmetic);
//! * the improving objective Pareto frontier dominates-or-equals the
//!   cold one (`pareto::front_dominates`), on all nine applications;
//! * points whose cold leg won are bit-identical to the cold sweep;
//! * the PR 3 finding is pinned and resolved: on the default 4-level
//!   grid the warm portfolio *strictly* beats the cold greedy search
//!   (hierarchical_me / video_encoder / wavelet), while the original
//!   `full_search_me` observation turns out to have required
//!   capacity-infeasible seeds, which the mode now rejects.

use mhla::core::explore::{
    sweep_grid_pruned_with, sweep_grid_run, sweep_grid_with, GridSweep, PruneOptions, SearchMode,
    SweepOptions,
};
use mhla::core::report::objective_coords;
use mhla::core::{pareto, MhlaConfig, Objective};
use mhla::hierarchy::Platform;
use mhla_bench::{default_grid4_axes, default_grid_axes};

/// The three objectives the dominance guarantee is checked under.
const OBJECTIVES: [Objective; 3] = [
    Objective::Cycles,
    Objective::Energy,
    Objective::Weighted {
        energy_weight: 0.5,
        cycle_weight: 0.5,
    },
];

fn cold_opts() -> SweepOptions {
    SweepOptions {
        warm_start: false,
        ..SweepOptions::default()
    }
}

fn improving_opts() -> SweepOptions {
    SweepOptions {
        mode: SearchMode::Improving,
        ..SweepOptions::default()
    }
}

/// Asserts the full dominance contract of one improving sweep against its
/// cold reference; returns how many points strictly improved.
fn assert_dominates(
    name: &str,
    objective: &Objective,
    cold: &GridSweep,
    improving: &GridSweep,
) -> usize {
    assert_eq!(improving.points.len(), cold.points.len(), "{name}");
    let mut improved = 0usize;
    for (imp, base) in improving.points.iter().zip(&cold.points) {
        assert_eq!(imp.capacities, base.capacities, "{name}: point order");
        let (si, sc) = (
            imp.objective_score(objective),
            base.objective_score(objective),
        );
        assert!(
            si <= sc,
            "{name} at {:?}: improving score {si} > cold {sc}",
            imp.capacities
        );
        improved += usize::from(si < sc);
    }
    let imp_front = objective_coords(improving, &improving.pareto_objective(objective), objective);
    let cold_front = objective_coords(cold, &cold.pareto_objective(objective), objective);
    assert!(
        pareto::front_dominates(&imp_front, &cold_front),
        "{name}: improving frontier trails the cold one"
    );
    improved
}

#[test]
fn improving_dominates_cold_on_all_nine_apps_four_level() {
    let axes = default_grid4_axes();
    let platform = Platform::four_level_default();
    let config = MhlaConfig::default();
    for app in mhla_apps::all_apps() {
        let cold = sweep_grid_with(&app.program, &platform, &axes, &config, cold_opts());
        let run = sweep_grid_run(&app.program, &platform, &axes, &config, improving_opts());
        let improved = assert_dominates(app.name(), &config.objective, &cold, &run.sweep);
        // A seed win is by construction a strict improvement, and every
        // cold-kept point must be bit-identical to the cold sweep.
        assert_eq!(improved, run.seed_wins, "{}", app.name());
        for (i, (imp, base)) in run.sweep.points.iter().zip(&cold.points).enumerate() {
            if run.winners[i].is_none() {
                assert_eq!(imp.result, base.result, "{} point {i}", app.name());
            }
        }
    }
}

#[test]
fn improving_dominates_cold_under_all_objectives_three_level() {
    let axes = default_grid_axes();
    let platform = Platform::three_level_default();
    for objective in OBJECTIVES {
        let config = MhlaConfig {
            objective,
            ..MhlaConfig::default()
        };
        for app in mhla_apps::all_apps() {
            let cold = sweep_grid_with(&app.program, &platform, &axes, &config, cold_opts());
            let run = sweep_grid_run(&app.program, &platform, &axes, &config, improving_opts());
            assert_dominates(app.name(), &objective, &cold, &run.sweep);
        }
    }
}

/// The pinned PR 3 regression, resolved: on 4-level stacks the warm
/// portfolio can strictly beat the cold greedy search. Investigating the
/// original `full_search_me` observation with the engine's feasibility
/// gate showed that *those* specific wins came from capacity-infeasible
/// warm seeds (a lex-predecessor carried across an innermost-axis reset
/// without a capacity check — its "improvements" overflowed the
/// scratchpad), which the improving mode now rejects; see
/// `infeasible_seeds_are_rejected_on_full_search_me`. The genuine
/// strict-improvement effect is real and is pinned here where it
/// survives the gate: `hierarchical_me` (the strongest case),
/// `video_encoder` and `wavelet` all strictly improve on the default
/// 4-level grid under the cycles objective.
#[test]
fn warm_portfolio_strictly_improves_on_the_four_level_grid() {
    let axes = default_grid4_axes();
    let platform = Platform::four_level_default();
    let config = MhlaConfig::default();
    for app in [
        mhla_apps::hierarchical_me::app(),
        mhla_apps::video_encoder::app(),
        mhla_apps::wavelet::app(),
    ] {
        let cold = sweep_grid_with(&app.program, &platform, &axes, &config, cold_opts());
        let run = sweep_grid_run(&app.program, &platform, &axes, &config, improving_opts());
        let improved = assert_dominates(app.name(), &config.objective, &cold, &run.sweep);
        assert!(
            improved > 0,
            "{}: the 4-level warm-start strict improvement no longer reproduces",
            app.name()
        );
        assert_eq!(improved, run.seed_wins, "{}", app.name());
        assert!(
            run.evals > cold.points.len(),
            "{}: improving mode must have run extra portfolio legs",
            app.name()
        );
    }
}

/// The other half of the PR 3 resolution: `full_search_me`'s prototype
/// "improvements" were only reachable from capacity-infeasible seeds.
/// The improving mode must (a) reject such seeds — every committed
/// assignment fits its point's layer capacities — and (b) therefore
/// commit only genuine results (here: none of the feasible seeds beats
/// cold on this app, so the sweep degenerates to the cold one).
#[test]
fn infeasible_seeds_are_rejected_on_full_search_me() {
    use mhla::core::ExplorationContext;
    use std::collections::HashMap;

    let app = mhla_apps::full_search_me::app();
    let axes = default_grid4_axes();
    let platform = Platform::four_level_default();
    let config = MhlaConfig::default();
    let cold = sweep_grid_with(&app.program, &platform, &axes, &config, cold_opts());
    let run = sweep_grid_run(&app.program, &platform, &axes, &config, improving_opts());
    assert_dominates("full_search_me", &config.objective, &cold, &run.sweep);

    let ctx = ExplorationContext::new(&app.program, &platform, config.clone());
    let no_buffers = HashMap::new();
    for point in &run.sweep.points {
        let sizes: Vec<(mhla::hierarchy::LayerId, u64)> = run
            .sweep
            .layers
            .iter()
            .copied()
            .zip(point.capacities.iter().copied())
            .collect();
        let pf = platform.with_layer_capacities(&sizes);
        assert!(
            ctx.cost_model(&pf)
                .check_capacity(&point.result.assignment, &no_buffers)
                .is_ok(),
            "committed assignment at {:?} overflows a layer",
            point.capacities
        );
    }
}

#[test]
fn improving_pruned_frontier_dominates_the_cold_exhaustive_one() {
    let axes = default_grid4_axes();
    let platform = Platform::four_level_default();
    let config = MhlaConfig::default();
    for app in [
        mhla_apps::full_search_me::app(),
        mhla_apps::sobel_edge::app(),
    ] {
        let cold = sweep_grid_with(&app.program, &platform, &axes, &config, cold_opts());
        let pruned = sweep_grid_pruned_with(
            &app.program,
            &platform,
            &axes,
            &config,
            PruneOptions {
                mode: SearchMode::Improving,
                ..PruneOptions::default()
            },
        );
        // Every evaluated point scores no worse than its cold counterpart.
        for pp in &pruned.sweep.points {
            let cp = cold
                .points
                .iter()
                .find(|cp| cp.capacities == pp.capacities)
                .expect("pruned point is a grid point");
            assert!(
                pp.objective_score(&config.objective) <= cp.objective_score(&config.objective),
                "{} at {:?}",
                app.name(),
                pp.capacities
            );
        }
        // The evaluated subset's objective frontier still dominates the
        // full cold grid's.
        let imp_front = objective_coords(
            &pruned.sweep,
            &pruned.sweep.pareto_objective(&config.objective),
            &config.objective,
        );
        let cold_front = objective_coords(
            &cold,
            &cold.pareto_objective(&config.objective),
            &config.objective,
        );
        assert!(
            pareto::front_dominates(&imp_front, &cold_front),
            "{}: improving pruned frontier trails",
            app.name()
        );
        // Improving pruned sweeps are sequential by construction.
        assert_eq!(pruned.speculative_evals, 0, "{}", app.name());
        assert_eq!(pruned.waves, pruned.stats.evaluated, "{}", app.name());
    }
}
