//! Acceptance harness of the adaptive frontier-driven grid refinement —
//! the PR bar, in two halves:
//!
//! * **Scale**: on all nine applications over the default four-level
//!   grid, the refined sweep certifies a virtual fine lattice of 10⁵+
//!   capacity points per app while evaluating at most 5 % of it, and
//!   completes unbudgeted.
//! * **Exactness**: on a small instance whose fine lattice is still
//!   exhaustible, the refined Pareto frontiers (cycles and energy) are
//!   *bit-identical* — same capacity vectors, same full `MhlaResult`s —
//!   to the exhaustive sweep of the materialized fine lattice, under all
//!   three objectives; a budget-interrupted refinement resumed to
//!   completion equals the uninterrupted run bit for bit.
//!
//! `MHLA_SWEEP_PARALLEL=0` runs the suite in sequential mode (the CI
//! leg); malformed values are rejected loudly.

use mhla::core::explore::{
    refine_axis, sweep_grid_refined_with, sweep_grid_with, try_sweep_grid_refined_resume,
    ExploreBudget, GridAxis, GridSweep, RefineOptions, RefinedGridSweep, SweepOptions,
};
use mhla::core::{MhlaConfig, Objective};
use mhla::hierarchy::{LayerId, Platform};
use mhla_bench::{default_grid4_axes, grid_frontier_points};

/// The execution mode under test: parallel batches by default,
/// sequential when `MHLA_SWEEP_PARALLEL=0`.
fn refine_opts_from_env() -> RefineOptions {
    match mhla_bench::sweep_parallel_from_env() {
        Ok(parallel) => RefineOptions::with_parallel(parallel),
        Err(e) => panic!("{e}"),
    }
}

/// The three objectives the exactness half runs under.
fn objectives() -> [Objective; 3] {
    [
        Objective::Cycles,
        Objective::Energy,
        Objective::Weighted {
            energy_weight: 0.5,
            cycle_weight: 0.5,
        },
    ]
}

/// The small instance: a three-level platform and a two-axis grid whose
/// depth-2 fine lattice (9×9 points) is cheap to exhaust.
fn small_axes() -> Vec<GridAxis> {
    vec![
        GridAxis::new(LayerId(1), vec![1024u64, 4096]),
        GridAxis::new(LayerId(2), vec![128u64, 512]),
    ]
}

/// The exhaustive reference over the *materialized* fine lattice: every
/// virtual point evaluated cold.
fn exhaustive_fine(
    program: &mhla::ir::Program,
    platform: &Platform,
    axes: &[GridAxis],
    depth: usize,
    config: &MhlaConfig,
) -> GridSweep {
    let fine_axes: Vec<GridAxis> = axes
        .iter()
        .map(|a| GridAxis::new(a.layer, refine_axis(&a.capacities, depth)))
        .collect();
    sweep_grid_with(
        program,
        platform,
        &fine_axes,
        config,
        SweepOptions {
            warm_start: false,
            ..SweepOptions::default()
        },
    )
}

/// Asserts the exactness contract of one refined run against the
/// exhaustive fine lattice: bookkeeping adds up, every committed point
/// is bit-identical to the exhaustive point at the same capacity vector,
/// and both Pareto frontiers are point-for-point identical.
fn assert_exact(name: &str, full: &GridSweep, refined: &RefinedGridSweep) {
    assert!(refined.status.is_complete(), "{name}");
    assert_eq!(
        refined.stats.virtual_points,
        full.points.len() as u64,
        "{name}: virtual lattice size"
    );
    assert_eq!(
        refined.stats.evaluated,
        refined.sweep.points.len(),
        "{name}: bookkeeping"
    );
    for rp in &refined.sweep.points {
        let ep = full
            .points
            .iter()
            .find(|ep| ep.capacities == rp.capacities)
            .unwrap_or_else(|| panic!("{name}: refined point {:?} off the lattice", rp.capacities));
        assert_eq!(
            ep.result, rp.result,
            "{name} at {:?}: refined point diverges from exhaustive",
            rp.capacities
        );
    }
    assert_eq!(
        grid_frontier_points(full, &full.pareto_cycles()),
        grid_frontier_points(&refined.sweep, &refined.sweep.pareto_cycles()),
        "{name}: cycles frontier diverges"
    );
    assert_eq!(
        grid_frontier_points(full, &full.pareto_energy()),
        grid_frontier_points(&refined.sweep, &refined.sweep.pareto_energy()),
        "{name}: energy frontier diverges"
    );
}

#[test]
fn refined_lattice_exceeds_1e5_points_with_under_5_percent_evals_on_all_nine_apps() {
    let axes = default_grid4_axes();
    let opts = refine_opts_from_env();
    for app in mhla_apps::all_apps() {
        let refined = sweep_grid_refined_with(
            &app.program,
            &Platform::four_level_default(),
            &axes,
            &MhlaConfig::default(),
            opts.clone(),
        );
        assert!(refined.status.is_complete(), "{}", app.name());
        assert!(
            refined.stats.virtual_points >= 100_000,
            "{}: virtual lattice has only {} points",
            app.name(),
            refined.stats.virtual_points
        );
        let ratio = refined.stats.eval_ratio();
        assert!(
            ratio <= 0.05,
            "{}: evaluated {} of {} virtual points ({:.2}% > 5%)",
            app.name(),
            refined.stats.evaluated,
            refined.stats.virtual_points,
            100.0 * ratio
        );
        // The committed points carry a coherent certificate ledger.
        assert_eq!(
            refined.stats.evaluated,
            refined.sweep.points.len(),
            "{}",
            app.name()
        );
        assert!(
            refined.stats.cells_closed_floor + refined.stats.cells_closed_mask > 0,
            "{}: no cell was ever certified closed",
            app.name()
        );
    }
}

#[test]
fn refined_small_instance_is_bit_identical_to_the_exhaustive_fine_lattice() {
    let pf = Platform::three_level(4096, 512);
    let axes = small_axes();
    let depth = 2;
    for app in [mhla_apps::fir_bank::app(), mhla_apps::sobel_edge::app()] {
        for objective in objectives() {
            let config = MhlaConfig {
                objective,
                ..MhlaConfig::default()
            };
            let refined = sweep_grid_refined_with(
                &app.program,
                &pf,
                &axes,
                &config,
                refine_opts_from_env().depth(depth),
            );
            let full = exhaustive_fine(&app.program, &pf, &axes, depth, &config);
            assert_exact(app.name(), &full, &refined);
        }
    }
}

#[test]
fn refined_budget_interrupt_and_resume_is_bit_identical() {
    let pf = Platform::three_level(4096, 512);
    let axes = small_axes();
    let app = mhla_apps::fir_bank::app();
    let config = MhlaConfig::default();
    let base = refine_opts_from_env().depth(2);
    let uninterrupted = sweep_grid_refined_with(&app.program, &pf, &axes, &config, base.clone());
    assert!(uninterrupted.status.is_complete());
    for max in [1usize, 4, 9, 20] {
        let stopped = sweep_grid_refined_with(
            &app.program,
            &pf,
            &axes,
            &config,
            base.clone().budget(ExploreBudget::max_evals(max)),
        );
        let resumed =
            try_sweep_grid_refined_resume(&app.program, &pf, &axes, &config, &base, &stopped)
                .expect("resume");
        assert_eq!(resumed, uninterrupted, "max_evals={max}");
    }
}
