//! Pins `RunStats` — the constrained-layer masks and the per-layer
//! gain-bound margin rates — against *brute-force binding-layer
//! detection* on the nine applications: whenever the stats admit growing
//! one layer (mask bit clear, latency class preserved, energy deltas
//! within the recorded gain bounds), actually growing that layer and
//! re-running from scratch must reproduce the identical assignment with
//! equal MHLA+TE cycles and no lower energy. Contrapositively, any layer
//! whose growth changes the result must have been reported as
//! non-growable — exactly the soundness the pruned grid sweep's
//! saturation rule rests on.

use mhla::core::{ExplorationContext, Mhla, MhlaConfig, Objective, RunStats};
use mhla::hierarchy::{
    energy::{sram_access_cycles, sram_write_pj},
    LayerId, Platform,
};

/// Doubles a scratchpad capacity without leaving its latency class
/// (`None` when the class boundary already binds). The boundary is found
/// by binary search against `sram_access_cycles` itself, so the test
/// never restates the break-point constants.
fn class_respecting_growth(cap: u64) -> Option<u64> {
    let (mut lo, mut hi) = (cap, cap * 2);
    while lo < hi {
        let mid = lo + (hi - lo).div_ceil(2);
        if sram_access_cycles(mid) == sram_access_cycles(cap) {
            lo = mid;
        } else {
            hi = mid - 1;
        }
    }
    (lo > cap).then_some(lo)
}

fn energy_weight(objective: Objective) -> f64 {
    match objective {
        Objective::Cycles => 0.0,
        Objective::Energy => 1.0,
        Objective::Weighted { energy_weight, .. } => energy_weight,
    }
}

/// Whether the stats admit growing `layer` from `cap` to `grown` under
/// the objective — the exact admission rule of the pruned sweep's
/// saturation leg (single-axis case).
fn admits_growth(
    run: &RunStats,
    layer: LayerId,
    cap: u64,
    grown: u64,
    objective: Objective,
) -> bool {
    let delta = (sram_write_pj(grown) - sram_write_pj(cap)).max(0.0);
    run.allows_growth_of(layer)
        && run.allows_energy_growth([(layer, delta)], energy_weight(objective))
}

#[test]
fn admitted_growth_replays_identically_on_all_nine_apps() {
    let base = Platform::four_level_default();
    let points: [[u64; 3]; 2] = [[16 * 1024, 2 * 1024, 256], [64 * 1024, 8 * 1024, 512]];
    let layers = [LayerId(1), LayerId(2), LayerId(3)];
    let mut admitted = 0usize;
    let mut blocked_changes = 0usize;

    for app in mhla::apps::all_apps() {
        for objective in [Objective::Cycles, Objective::Energy] {
            let config = MhlaConfig {
                objective,
                ..MhlaConfig::default()
            };
            let ctx = ExplorationContext::new(&app.program, &base, config.clone());
            for caps in points {
                let sizes: Vec<(LayerId, u64)> =
                    layers.iter().copied().zip(caps.iter().copied()).collect();
                let pf = base.with_layer_capacities(&sizes);
                let (result, run) =
                    Mhla::with_context(&ctx, &pf).run_with_stats(None, Some(ctx.moves()));
                assert!(run.tracked && run.cold_result_kept, "{}", app.name());

                for (axis, &layer) in layers.iter().enumerate() {
                    let Some(grown_cap) = class_respecting_growth(caps[axis]) else {
                        continue;
                    };
                    let mut grown_sizes = sizes.clone();
                    grown_sizes[axis] = (layer, grown_cap);
                    let grown_pf = base.with_layer_capacities(&grown_sizes);
                    let grown = Mhla::new(&app.program, &grown_pf, config.clone()).run();
                    let identical = grown.assignment == result.assignment
                        && grown.mhla_te_cycles() == result.mhla_te_cycles();
                    if admits_growth(&run, layer, caps[axis], grown_cap, objective) {
                        admitted += 1;
                        // The saturation claim, brute-forced: the grown
                        // run replays — same assignment, equal cycles,
                        // monotonically no-lower energy.
                        assert!(
                            identical,
                            "{} {:?} at {caps:?}: stats admitted growing {layer} to \
                             {grown_cap} but the result changed",
                            app.name(),
                            objective
                        );
                        assert!(
                            grown.mhla_energy_pj() >= result.mhla_energy_pj() * (1.0 - 1e-12),
                            "{} {:?} at {caps:?}: energy dropped under admitted growth",
                            app.name(),
                            objective
                        );
                    } else if !identical {
                        // Brute force found a binding layer; the stats
                        // must have blocked it (this branch existing at
                        // all proves the masks are not vacuously full).
                        blocked_changes += 1;
                    }
                }
            }
        }
    }
    assert!(
        admitted > 0,
        "the admission rule never fired — the pinning is vacuous"
    );
    assert!(
        blocked_changes > 0,
        "brute force never found a binding layer — the pinning is vacuous"
    );
}

#[test]
fn fir_bank_mask_spot_pin() {
    // A concrete mask pin: at (16 KiB, 2 KiB, 256 B) the fir_bank run is
    // bound by L2 and L1 but not by the big L3 scratchpad — the geometry
    // behind its suite-leading skip counts.
    let base = Platform::four_level_default();
    let config = MhlaConfig::default();
    let app = mhla_apps::fir_bank::app();
    let ctx = ExplorationContext::new(&app.program, &base, config.clone());
    let pf = base.with_layer_capacities(&[
        (LayerId(1), 16 * 1024),
        (LayerId(2), 2 * 1024),
        (LayerId(3), 256),
    ]);
    let (_, run) = Mhla::with_context(&ctx, &pf).run_with_stats(None, Some(ctx.moves()));
    assert!(
        run.allows_growth_of(LayerId(1)),
        "L3 scratchpad never bound"
    );
    assert!(!run.allows_growth_of(LayerId(2)), "L2 bound the run");
    assert!(!run.allows_growth_of(LayerId(3)), "L1 bound the run");
}

#[test]
fn gain_bound_rates_cohere_with_growth_ceilings() {
    // The per-layer growth ceiling is the single-axis inversion of the
    // margin rates: growing to any class-respecting capacity at or below
    // the ceiling must be admitted, growing strictly past it must not.
    let base = Platform::four_level_default();
    let config = MhlaConfig {
        objective: Objective::Energy,
        ..MhlaConfig::default()
    };
    let mut checked = 0usize;
    for app in mhla::apps::all_apps() {
        let ctx = ExplorationContext::new(&app.program, &base, config.clone());
        let caps = [16 * 1024u64, 2 * 1024, 256];
        let layers = [LayerId(1), LayerId(2), LayerId(3)];
        let sizes: Vec<(LayerId, u64)> = layers.iter().copied().zip(caps).collect();
        let pf = base.with_layer_capacities(&sizes);
        let (_, run) = Mhla::with_context(&ctx, &pf).run_with_stats(None, Some(ctx.moves()));
        for (axis, &layer) in layers.iter().enumerate() {
            let ceiling = run.energy_growth_ceiling(layer, caps[axis], 1.0);
            assert!(ceiling >= caps[axis]);
            if ceiling > caps[axis] && ceiling < u64::MAX {
                let delta_at = |c: u64| (sram_write_pj(c) - sram_write_pj(caps[axis])).max(0.0);
                assert!(
                    run.allows_energy_growth([(layer, delta_at(ceiling))], 1.0),
                    "{}: growth to the ceiling itself must be admitted",
                    app.name()
                );
                assert!(
                    !run.allows_energy_growth([(layer, delta_at(ceiling.saturating_mul(2)))], 1.0),
                    "{}: growth far past the ceiling must be blocked",
                    app.name()
                );
                checked += 1;
            }
        }
    }
    assert!(
        checked > 0,
        "no finite, non-trivial ceiling found — vacuous"
    );
}
