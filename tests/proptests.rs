//! Equivalence properties on *randomized* programs — the exploration
//! layer's guarantees are stated for arbitrary programs, not just the
//! nine hand-written apps, so they are checked here against the bounded
//! generator of `mhla_ir::arbitrary` (small loop nests, arrays and affine
//! access patterns built through the public `ProgramBuilder`):
//!
//! * the pruned grid sweep's evaluated points and both Pareto frontiers
//!   are bit-identical to the exhaustive Cartesian product, under all
//!   three objectives, in both sequential and parallel wave modes (with
//!   identical `PruneStats` across modes);
//! * the adaptive refinement's committed points and both Pareto
//!   frontiers are bit-identical to the exhaustive sweep of the
//!   materialized fine lattice, under all three objectives, and a
//!   budget-interrupted refinement resumed to completion equals the
//!   uninterrupted run bit for bit;
//! * a context-backed run (`Mhla::with_context`) is bit-identical to a
//!   fresh standalone run at every platform point, under all three
//!   objectives.
//!
//! CI runs this suite with a fixed `PROPTEST_SEED` as the generator smoke
//! step; locally the (deterministic, per-test-name) default seed applies.

use mhla::core::explore::{
    refine_axis, sweep_grid_pruned_with, sweep_grid_refined_with, sweep_grid_run, sweep_grid_with,
    try_sweep_grid_refined_resume, ExploreBudget, GridAxis, PruneOptions, RefineOptions,
    SearchMode, SweepOptions,
};
use mhla::core::{
    pareto, report, Assignment, EvalWorkspace, ExplorationContext, Mhla, MhlaConfig, Objective,
};
use mhla::hierarchy::{LayerId, Platform};
use mhla::ir::arbitrary::{program_specs, ProgramSpec};
use mhla_bench::grid_frontier_points;
use proptest::prelude::*;

/// The three objectives every property is checked under.
const OBJECTIVES: [Objective; 3] = [
    Objective::Cycles,
    Objective::Energy,
    Objective::Weighted {
        energy_weight: 0.5,
        cycle_weight: 0.5,
    },
];

/// A small three-level grid whose capacities straddle the generated
/// programs' array footprints (tens to a few hundred bytes), so probes
/// genuinely fail at some points and succeed at others.
fn small_axes() -> Vec<GridAxis> {
    vec![
        GridAxis::new(LayerId(1), vec![128u64, 256, 1024]),
        GridAxis::new(LayerId(2), vec![64u64, 128]),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Pruned ≡ exhaustive on random programs: evaluated points
    /// bit-identical, frontiers bit-identical, PruneStats identical
    /// between the sequential and parallel wave modes.
    #[test]
    fn pruned_equals_exhaustive_on_random_programs(spec in program_specs()) {
        let program = spec.build();
        let platform = Platform::three_level(1024, 256);
        let axes = small_axes();
        for objective in OBJECTIVES {
            let config = MhlaConfig { objective, ..MhlaConfig::default() };
            let full = sweep_grid_with(
                &program,
                &platform,
                &axes,
                &config,
                SweepOptions { warm_start: false, ..SweepOptions::default() },
            );
            let sequential = sweep_grid_pruned_with(
                &program,
                &platform,
                &axes,
                &config,
                PruneOptions { parallel: false, wave: 1, ..PruneOptions::default() },
            );
            let parallel = sweep_grid_pruned_with(
                &program,
                &platform,
                &axes,
                &config,
                PruneOptions::default(),
            );
            prop_assert_eq!(
                &sequential.stats, &parallel.stats,
                "PruneStats diverge between modes under {:?}", objective
            );
            prop_assert_eq!(
                &sequential.sweep, &parallel.sweep,
                "evaluated points diverge between modes under {:?}", objective
            );
            // Every evaluated pruned point is a point of the exhaustive
            // grid, bit-identical.
            for pp in &parallel.sweep.points {
                let ep = full
                    .points
                    .iter()
                    .find(|ep| ep.capacities == pp.capacities);
                prop_assert!(ep.is_some_and(|ep| ep.result == pp.result),
                    "pruned point {:?} diverges under {:?}", pp.capacities, objective);
            }
            prop_assert_eq!(
                grid_frontier_points(&full, &full.pareto_cycles()),
                grid_frontier_points(&parallel.sweep, &parallel.sweep.pareto_cycles()),
                "cycles frontier diverges under {:?}", objective
            );
            prop_assert_eq!(
                grid_frontier_points(&full, &full.pareto_energy()),
                grid_frontier_points(&parallel.sweep, &parallel.sweep.pareto_energy()),
                "energy frontier diverges under {:?}", objective
            );
        }
    }

    /// The improving mode's dominance guarantee on random programs: at
    /// every grid point the improving objective score is ≤ the cold one,
    /// and the improving objective Pareto frontier dominates-or-equals
    /// the cold frontier (`pareto::front_dominates`) — under all three
    /// objectives.
    #[test]
    fn improving_dominates_cold_on_random_programs(spec in program_specs()) {
        let program = spec.build();
        let platform = Platform::three_level(1024, 256);
        let axes = small_axes();
        for objective in OBJECTIVES {
            let config = MhlaConfig { objective, ..MhlaConfig::default() };
            let cold = sweep_grid_with(
                &program,
                &platform,
                &axes,
                &config,
                SweepOptions { warm_start: false, ..SweepOptions::default() },
            );
            let run = sweep_grid_run(
                &program,
                &platform,
                &axes,
                &config,
                SweepOptions { mode: SearchMode::Improving, ..SweepOptions::default() },
            );
            prop_assert_eq!(run.sweep.points.len(), cold.points.len());
            let mut improved = 0usize;
            for (imp, base) in run.sweep.points.iter().zip(&cold.points) {
                prop_assert_eq!(&imp.capacities, &base.capacities);
                let (si, sc) = (
                    imp.objective_score(&objective),
                    base.objective_score(&objective),
                );
                prop_assert!(
                    si <= sc,
                    "improving score {} > cold {} at {:?} under {:?}",
                    si, sc, imp.capacities, objective
                );
                improved += usize::from(si < sc);
            }
            prop_assert_eq!(
                improved, run.seed_wins,
                "seed wins must be exactly the strict improvements under {:?}", objective
            );
            prop_assert!(
                pareto::front_dominates(
                    &report::objective_coords(
                        &run.sweep,
                        &run.sweep.pareto_objective(&objective),
                        &objective,
                    ),
                    &report::objective_coords(
                        &cold,
                        &cold.pareto_objective(&objective),
                        &objective,
                    ),
                ),
                "improving frontier trails the cold one under {:?}", objective
            );
        }
    }

    /// Refined ≡ exhaustive fine lattice on random programs: every
    /// committed point of the adaptive refinement is bit-identical to
    /// the exhaustive sweep of the materialized fine lattice, and both
    /// Pareto frontiers match point for point — under all three
    /// objectives (the refinement certificates must stay lossless for
    /// arbitrary programs, not just the nine apps).
    #[test]
    fn refined_equals_exhaustive_fine_lattice_on_random_programs(spec in program_specs()) {
        let program = spec.build();
        let platform = Platform::three_level(1024, 256);
        let axes = small_axes();
        let depth = 2;
        let fine_axes: Vec<GridAxis> = axes
            .iter()
            .map(|a| GridAxis::new(a.layer, refine_axis(&a.capacities, depth)))
            .collect();
        for objective in OBJECTIVES {
            let config = MhlaConfig { objective, ..MhlaConfig::default() };
            let full = sweep_grid_with(
                &program,
                &platform,
                &fine_axes,
                &config,
                SweepOptions { warm_start: false, ..SweepOptions::default() },
            );
            let refined = sweep_grid_refined_with(
                &program,
                &platform,
                &axes,
                &config,
                RefineOptions::default().depth(depth),
            );
            prop_assert!(refined.status.is_complete());
            prop_assert_eq!(refined.stats.virtual_points, full.points.len() as u64);
            for rp in &refined.sweep.points {
                let ep = full
                    .points
                    .iter()
                    .find(|ep| ep.capacities == rp.capacities);
                prop_assert!(ep.is_some_and(|ep| ep.result == rp.result),
                    "refined point {:?} diverges under {:?}", rp.capacities, objective);
            }
            prop_assert_eq!(
                grid_frontier_points(&full, &full.pareto_cycles()),
                grid_frontier_points(&refined.sweep, &refined.sweep.pareto_cycles()),
                "cycles frontier diverges under {:?}", objective
            );
            prop_assert_eq!(
                grid_frontier_points(&full, &full.pareto_energy()),
                grid_frontier_points(&refined.sweep, &refined.sweep.pareto_energy()),
                "energy frontier diverges under {:?}", objective
            );
        }
    }

    /// Budget-interrupted refinement resumed to completion ≡ the
    /// uninterrupted run, bit for bit, on random programs.
    #[test]
    fn refined_resume_is_bit_identical_on_random_programs(spec in program_specs()) {
        let program = spec.build();
        let platform = Platform::three_level(1024, 256);
        let axes = small_axes();
        let config = MhlaConfig::default();
        let base = RefineOptions::default().depth(2);
        let uninterrupted =
            sweep_grid_refined_with(&program, &platform, &axes, &config, base.clone());
        prop_assert!(uninterrupted.status.is_complete());
        for max in [1usize, 5] {
            let stopped = sweep_grid_refined_with(
                &program,
                &platform,
                &axes,
                &config,
                base.clone().budget(ExploreBudget::max_evals(max)),
            );
            let resumed = try_sweep_grid_refined_resume(
                &program, &platform, &axes, &config, &base, &stopped,
            );
            prop_assert!(resumed.is_ok());
            prop_assert_eq!(
                resumed.unwrap(), uninterrupted.clone(),
                "resume from max_evals={} diverges", max
            );
        }
    }

    /// One `EvalWorkspace` reused across every point, objective and mode
    /// — the sweep engines' steady-state discipline — ≡ a fresh workspace
    /// per evaluation, bit for bit, results *and* stats, on random
    /// programs. Covers the Cold path (`run_with_stats` vs
    /// `run_with_stats_in`, warm-chained like the sweep's warm-start) and
    /// the Improving-style seeded portfolio (`run_with_seeds` vs
    /// `run_with_seeds_in` over all previously found assignments).
    #[test]
    fn workspace_reuse_equals_fresh_on_random_programs(spec in program_specs()) {
        let program = spec.build();
        let base = Platform::embedded_default(1024);
        let mut ws = EvalWorkspace::new();
        for objective in OBJECTIVES {
            let config = MhlaConfig { objective, ..MhlaConfig::default() };
            let ctx = ExplorationContext::new(&program, &base, config.clone());
            let mut warm: Option<Assignment> = None;
            let mut seeds: Vec<Assignment> = Vec::new();
            for capacity in [64u64, 192, 512, 1024] {
                let pf = base.with_layer_capacity(LayerId(1), capacity);
                let fresh =
                    Mhla::with_context(&ctx, &pf).run_with_stats(warm.as_ref(), Some(ctx.moves()));
                let reused = Mhla::with_context(&ctx, &pf).run_with_stats_in(
                    warm.as_ref(),
                    Some(ctx.moves()),
                    &mut ws,
                );
                prop_assert_eq!(
                    &fresh, &reused,
                    "cold run diverges at {} B under {:?}", capacity, objective
                );
                let refs: Vec<&Assignment> = seeds.iter().collect();
                let fresh_seeded =
                    Mhla::with_context(&ctx, &pf).run_with_seeds(&refs, Some(ctx.moves()));
                let reused_seeded = Mhla::with_context(&ctx, &pf).run_with_seeds_in(
                    &refs,
                    Some(ctx.moves()),
                    &mut ws,
                );
                prop_assert_eq!(
                    &fresh_seeded, &reused_seeded,
                    "seeded run diverges at {} B under {:?}", capacity, objective
                );
                warm = Some(fresh.0.assignment.clone());
                seeds.push(fresh_seeded.0.assignment.clone());
            }
        }
    }

    /// Context-backed runs ≡ fresh standalone runs on random programs.
    #[test]
    fn context_equals_fresh_on_random_programs(spec in program_specs()) {
        let program = spec.build();
        let base = Platform::embedded_default(1024);
        for objective in OBJECTIVES {
            let config = MhlaConfig { objective, ..MhlaConfig::default() };
            let ctx = ExplorationContext::new(&program, &base, config.clone());
            for capacity in [64u64, 192, 1024] {
                let pf = base.with_layer_capacity(LayerId(1), capacity);
                let fresh = Mhla::new(&program, &pf, config.clone()).run();
                let shared = Mhla::with_context(&ctx, &pf).run_with(None, Some(ctx.moves()));
                prop_assert_eq!(
                    &fresh, &shared,
                    "context-backed run diverges at {capacity} B under {:?}", objective
                );
            }
        }
    }
}

/// The generator itself is exercised once outside the proptest macro so a
/// plain `cargo test proptests` failure names it directly.
#[test]
fn generator_smoke() {
    // A fixed spec builds a deterministic, valid program.
    let spec = ProgramSpec {
        arrays: 2,
        trips: vec![4, 3],
        stmts: vec![],
    };
    let p = spec.build();
    assert!(p.validate().is_ok());
    assert_eq!(p.loop_count(), 2);
    assert_eq!(p.array_count(), 2);
}
