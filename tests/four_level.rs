//! Differential tests for the four-level platform preset: with the L3
//! scratchpad pinned to 0 bytes the preset collapses to the three-level
//! stack, and the grid exploration over the remaining two axes must
//! reproduce the existing three-level grid results point-for-point on all
//! nine applications.

use mhla::core::explore::{sweep_grid, GridAxis};
use mhla::core::{Mhla, MhlaConfig};
use mhla::hierarchy::{LayerId, Platform};

#[test]
fn zero_l3_four_level_grid_reproduces_the_three_level_grid_on_all_apps() {
    // With L3 pinned to 0 bytes the four-level preset *is* the
    // three-level platform, so L2/L1 sit at LayerId(1)/LayerId(2) in both
    // and the same axes apply verbatim.
    let l2_axis = vec![2048u64, 8192, 32768];
    let l1_axis = vec![256u64, 1024];
    let config = MhlaConfig::default();
    for app in mhla_apps::all_apps() {
        let four = sweep_grid(
            &app.program,
            &Platform::four_level(0, 8 * 1024, 1024),
            &[
                GridAxis::new(LayerId(1), l2_axis.clone()),
                GridAxis::new(LayerId(2), l1_axis.clone()),
            ],
            &config,
        );
        let three = sweep_grid(
            &app.program,
            &Platform::three_level(8 * 1024, 1024),
            &[
                GridAxis::new(LayerId(1), l2_axis.clone()),
                GridAxis::new(LayerId(2), l1_axis.clone()),
            ],
            &config,
        );
        assert_eq!(four.points.len(), three.points.len(), "{}", app.name());
        for (f, t) in four.points.iter().zip(&three.points) {
            assert_eq!(f.capacities, t.capacities, "{}", app.name());
            assert_eq!(
                f.result,
                t.result,
                "{} at {:?}: zero-L3 four-level diverges from three-level",
                app.name(),
                f.capacities
            );
        }
        assert_eq!(
            four.pareto_cycles(),
            three.pareto_cycles(),
            "{}",
            app.name()
        );
        assert_eq!(
            four.pareto_energy(),
            three.pareto_energy(),
            "{}",
            app.name()
        );
    }
}

#[test]
fn four_level_grid_points_match_standalone_runs() {
    // The true four-level stack: every L1×L2×L3 grid point is
    // bit-identical to a cold standalone run on the same platform.
    let platform = Platform::four_level_default();
    let axes = [
        GridAxis::new(LayerId(1), vec![16 * 1024u64, 64 * 1024]),
        GridAxis::new(LayerId(2), vec![4 * 1024u64, 16 * 1024]),
        GridAxis::new(LayerId(3), vec![512u64, 1024]),
    ];
    let config = MhlaConfig::default();
    let app = mhla_apps::video_encoder::app();
    let grid = sweep_grid(&app.program, &platform, &axes, &config);
    assert_eq!(grid.points.len(), 8);
    for point in &grid.points {
        let pf = platform.with_layer_capacities(&[
            (LayerId(1), point.capacities[0]),
            (LayerId(2), point.capacities[1]),
            (LayerId(3), point.capacities[2]),
        ]);
        let standalone = Mhla::new(&app.program, &pf, config.clone()).run();
        assert_eq!(point.result, standalone, "at {:?}", point.capacities);
    }
}

#[test]
fn deeper_hierarchies_never_lose_to_shallower_ones_at_equal_budget() {
    // Sanity for the paper's layer-assignment premise: giving the same
    // total on-chip budget one extra (smaller, cheaper) layer close to
    // the CPU must not increase energy on these kernels — the assignment
    // step can always ignore the extra layer.
    let app = mhla_apps::fir_bank::app();
    let config = MhlaConfig::default();
    let three = Mhla::new(
        &app.program,
        &Platform::three_level(8 * 1024, 1024),
        config.clone(),
    )
    .run();
    let four = Mhla::new(
        &app.program,
        &Platform::four_level(8 * 1024, 1024, 256),
        config.clone(),
    )
    .run();
    assert!(
        four.mhla_energy_pj() <= three.mhla_energy_pj() * 1.001,
        "four-level {} pJ vs three-level {} pJ",
        four.mhla_energy_pj(),
        three.mhla_energy_pj()
    );
}
