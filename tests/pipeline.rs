//! End-to-end pipeline tests across all crates: for every one of the nine
//! applications, the full MHLA flow must produce Figure-2's bar ordering,
//! Figure-3's energy win, and a simulation that respects the static
//! bounds.

use mhla::core::{assign, te, Mhla, MhlaConfig};
use mhla::hierarchy::Platform;
use mhla::sim::Simulator;
use std::collections::HashMap;

/// baseline ≥ mhla ≥ mhla+te ≥ ideal, on the simulator, for all nine apps.
#[test]
fn figure2_bar_ordering_holds_for_all_nine_apps() {
    for app in mhla_apps::all_apps() {
        let f = mhla_bench::evaluate_app(&app);
        assert!(
            f.baseline_cycles > f.mhla_cycles,
            "{}: baseline {} !> mhla {}",
            app.name(),
            f.baseline_cycles,
            f.mhla_cycles
        );
        assert!(
            f.mhla_cycles >= f.mhla_te_cycles,
            "{}: TE made things worse",
            app.name()
        );
        assert!(
            f.mhla_te_cycles >= f.ideal_cycles,
            "{}: beat the zero-wait bound",
            app.name()
        );
    }
}

/// Energy: MHLA wins on every app, and TE changes nothing (paper §3).
#[test]
fn figure3_energy_wins_and_te_neutrality() {
    for app in mhla_apps::all_apps() {
        let f = mhla_bench::evaluate_app(&app);
        assert!(
            f.baseline_energy_pj > f.mhla_energy_pj,
            "{}: no energy win",
            app.name()
        );

        // TE neutrality, measured: simulate with and without TE.
        let platform = Platform::embedded_default(app.default_scratchpad);
        let with = Mhla::new(&app.program, &platform, MhlaConfig::default());
        let model = with.cost_model();
        let r = with.run();
        let sim_te = Simulator::new(&model, &r.assignment, &r.te).run();
        let no_te = te::TeSchedule {
            applicable: true,
            transfers: Vec::new(),
        };
        let sim_plain = Simulator::new(&model, &r.assignment, &no_te).run();
        let delta = (sim_te.total_energy_pj() - sim_plain.total_energy_pj()).abs();
        assert!(
            delta < 1e-6 * sim_plain.total_energy_pj().max(1.0),
            "{}: TE changed energy by {delta} pJ",
            app.name()
        );
    }
}

/// The simulator must agree with the static model exactly when nothing
/// overlaps: on the no-copy baseline there are no transfers at all.
#[test]
fn simulator_matches_static_model_on_all_off_chip_baseline() {
    for app in mhla_apps::all_apps().into_iter().take(5) {
        let platform = Platform::embedded_default(app.default_scratchpad);
        let mhla = Mhla::new(&app.program, &platform, MhlaConfig::default());
        let model = mhla.cost_model();
        let raw = mhla::core::Assignment::baseline(app.program.array_count(), Default::default());
        let schedule = te::plan(&model, &raw);
        let sim = Simulator::new(&model, &raw, &schedule).run();
        let est = model.evaluate(&raw);
        assert_eq!(
            sim.total_cycles(),
            est.total_cycles(),
            "{}: cycle mismatch",
            app.name()
        );
        assert_eq!(sim.stall_cycles, 0, "{}", app.name());
        let rel =
            (sim.total_energy_pj() - est.total_energy_pj()).abs() / est.total_energy_pj().max(1.0);
        assert!(rel < 1e-9, "{}: energy mismatch {rel}", app.name());
    }
}

/// Simulated MHLA+TE cycles always land between the ideal bound and the
/// serial (static step-1) estimate.
#[test]
fn simulation_is_sandwiched_between_bounds() {
    for app in mhla_apps::all_apps() {
        let platform = Platform::embedded_default(app.default_scratchpad);
        let mhla = Mhla::new(&app.program, &platform, MhlaConfig::default());
        let model = mhla.cost_model();
        let r = mhla.run();
        let sim = Simulator::new(&model, &r.assignment, &r.te).run();
        assert!(
            sim.total_cycles() >= r.ideal_cycles(),
            "{}: sim {} below ideal {}",
            app.name(),
            sim.total_cycles(),
            r.ideal_cycles()
        );
        assert!(
            sim.total_cycles() <= r.mhla_cycles(),
            "{}: sim {} above serial estimate {}",
            app.name(),
            sim.total_cycles(),
            r.mhla_cycles()
        );
    }
}

/// Every chosen assignment respects the structural invariants and the
/// capacity constraints (with the TE buffer multipliers applied).
#[test]
fn assignments_are_valid_and_fit_with_te_buffers() {
    for app in mhla_apps::all_apps() {
        let platform = Platform::embedded_default(app.default_scratchpad);
        let mhla = Mhla::new(&app.program, &platform, MhlaConfig::default());
        let model = mhla.cost_model();
        let r = mhla.run();
        r.assignment
            .validate(mhla.reuse(), platform.layer_count())
            .unwrap_or_else(|e| panic!("{}: invalid assignment: {e}", app.name()));
        model
            .check_capacity(&r.assignment, &r.te.buffer_map())
            .unwrap_or_else(|e| panic!("{}: capacity violated: {e}", app.name()));
    }
}

/// Determinism: two independent runs of the whole flow agree bit-for-bit.
#[test]
fn the_flow_is_deterministic() {
    let app = mhla_apps::video_encoder::app();
    let platform = Platform::embedded_default(app.default_scratchpad);
    let r1 = Mhla::new(&app.program, &platform, MhlaConfig::default()).run();
    let r2 = Mhla::new(&app.program, &platform, MhlaConfig::default()).run();
    assert_eq!(r1, r2);
    let m1 = Mhla::new(&app.program, &platform, MhlaConfig::default());
    let model = m1.cost_model();
    let s1 = Simulator::new(&model, &r1.assignment, &r1.te).run();
    let s2 = Simulator::new(&model, &r2.assignment, &r2.te).run();
    assert_eq!(s1, s2);
}

/// Greedy never loses to the direct-placement baseline on either objective
/// (it explores a strictly larger move space).
#[test]
fn greedy_dominates_direct_placement() {
    for app in mhla_apps::all_apps() {
        let platform = Platform::embedded_default(app.default_scratchpad);
        let mhla = Mhla::new(&app.program, &platform, MhlaConfig::default());
        let model = mhla.cost_model();
        let direct = assign::direct_placement(&model, Default::default());
        let r = mhla.run();
        assert!(
            r.mhla_cycles() <= direct.cost.total_cycles(),
            "{}: greedy {} worse than direct placement {}",
            app.name(),
            r.mhla_cycles(),
            direct.cost.total_cycles()
        );
    }
}

/// Bigger scratchpads never hurt much: simulated MHLA+TE cycles are
/// near-monotone along a doubling capacity ladder. The greedy optimizes
/// the *static* estimate, so small inversions against the simulator are
/// expected (it may stage a statically-better copy whose transfers happen
/// to stall more); we bound the wobble at 10% and require the ladder's
/// endpoints to improve substantially.
#[test]
fn capacity_ladder_is_nearly_monotone() {
    let app = mhla_apps::sobel_edge::app();
    let mut last = u64::MAX;
    let mut first = 0u64;
    let mut final_cycles = 0u64;
    for spm in [512u64, 1024, 2048, 4096, 8192, 16384] {
        let f = mhla_bench::evaluate_app_at(&app, spm);
        let allowed = last.saturating_add(last / 10);
        assert!(
            f.mhla_te_cycles <= allowed,
            "regression at {spm}: {} > {last}",
            f.mhla_te_cycles
        );
        if first == 0 {
            first = f.mhla_te_cycles;
        }
        final_cycles = f.mhla_te_cycles;
        last = f.mhla_te_cycles;
    }
    assert!(final_cycles < first, "the ladder never paid off");
}

/// The no-DMA platform still benefits from MHLA (CPU copies) but gets no
/// time extensions — the paper's explicit caveat.
#[test]
fn no_dma_platforms_get_step1_only() {
    let app = mhla_apps::fir_bank::app();
    let platform = Platform::without_dma(app.default_scratchpad);
    let mhla = Mhla::new(&app.program, &platform, MhlaConfig::default());
    let model = mhla.cost_model();
    let r = mhla.run();
    assert!(!r.te.applicable);
    assert_eq!(r.te.extended_count(), 0);
    let sim = Simulator::new(&model, &r.assignment, &r.te).run();
    assert_eq!(sim.dma_busy_cycles, 0);
    assert!(sim.total_cycles() < r.baseline_cycles());
}

/// A three-level hierarchy (SDRAM + L2 + L1) accepts chained copies and
/// still orders the bars correctly.
#[test]
fn three_level_hierarchy_works_end_to_end() {
    let app = mhla_apps::full_search_me::app();
    // L2 large enough to be a 2-cycle macro: the 1-cycle L1 then has a
    // genuine latency advantage for the hot block data.
    let platform = Platform::three_level(64 * 1024, 2 * 1024);
    let mhla = Mhla::new(&app.program, &platform, MhlaConfig::default());
    let model = mhla.cost_model();
    let r = mhla.run();
    r.assignment
        .validate(mhla.reuse(), platform.layer_count())
        .expect("valid 3-level assignment");
    assert!(r.mhla_cycles() < r.baseline_cycles());
    let sim = Simulator::new(&model, &r.assignment, &r.te).run();
    assert!(sim.total_cycles() <= r.mhla_cycles());
    // Check the L1 actually gets used.
    let l1_accesses = sim.accesses_per_layer[2];
    assert!(l1_accesses > 0, "closest layer unused: {sim:?}");
}

/// Buffer multipliers reported by TE must match what the capacity check
/// was done against — no transfer may claim more buffers than fit.
#[test]
fn te_buffer_claims_always_fit() {
    for app in mhla_apps::all_apps() {
        for spm in [app.default_scratchpad / 2, app.default_scratchpad] {
            let platform = Platform::embedded_default(spm.max(128));
            let mhla = Mhla::new(&app.program, &platform, MhlaConfig::default());
            let model = mhla.cost_model();
            let r = mhla.run();
            let buffers: HashMap<_, _> = r.te.buffer_map();
            assert!(
                model.check_capacity(&r.assignment, &buffers).is_ok(),
                "{} at {spm}: TE buffers do not fit",
                app.name()
            );
        }
    }
}
