//! The pruned four-level grid exploration must be *provably lossless* —
//! the PR acceptance bar, enforced here on all nine applications over the
//! default L1×L2×L3 grid of `Platform::four_level_default`:
//!
//! * every point the pruned sweep evaluates is bit-identical to the same
//!   point of the exhaustive grid (and to a cold standalone `Mhla::run`);
//! * the pruned cycles and energy Pareto frontiers are *bit-identical* to
//!   the exhaustive frontiers — same capacity vectors, same full
//!   `MhlaResult`s — even though the pruned sweep never evaluated the
//!   skipped points;
//! * the pruning is real: ≥ 30 % of the candidate points are skipped
//!   across the suite, with per-point bookkeeping that adds up;
//! * disarming conditions degrade to exhaustive, never to a wrong
//!   frontier.

use mhla::core::explore::{sweep_grid_pruned, sweep_grid_with, GridAxis, GridSweep, SweepOptions};
use mhla::core::{Mhla, MhlaConfig, Objective};
use mhla::hierarchy::{LayerId, Platform};
use mhla_bench::{default_grid4_axes, grid_frontier_points};

/// The exhaustive reference: every point of the Cartesian product, cold —
/// the canonical semantics in which every grid point equals a standalone
/// run.
fn exhaustive(app: &mhla_apps::Application, axes: &[GridAxis], config: &MhlaConfig) -> GridSweep {
    sweep_grid_with(
        &app.program,
        &Platform::four_level_default(),
        axes,
        config,
        SweepOptions {
            warm_start: false,
            ..SweepOptions::default()
        },
    )
}

#[test]
fn pruned_four_level_frontier_is_bit_identical_on_all_nine_apps() {
    let axes = default_grid4_axes();
    let config = MhlaConfig::default();
    let mut suite_candidates = 0usize;
    let mut suite_skipped = 0usize;

    for app in mhla_apps::all_apps() {
        let full = exhaustive(&app, &axes, &config);
        let pruned = sweep_grid_pruned(
            &app.program,
            &Platform::four_level_default(),
            &axes,
            &config,
        );

        // Bookkeeping adds up and matches the grid shapes.
        let stats = pruned.stats;
        assert_eq!(stats.candidates, full.points.len(), "{}", app.name());
        assert_eq!(stats.evaluated, pruned.sweep.points.len(), "{}", app.name());
        assert_eq!(
            stats.evaluated + stats.skipped_saturated + stats.skipped_floor,
            stats.candidates,
            "{}",
            app.name()
        );
        suite_candidates += stats.candidates;
        suite_skipped += stats.skipped();

        // Every evaluated point is bit-identical to the exhaustive point
        // at the same capacity vector.
        for pp in &pruned.sweep.points {
            let ep = full
                .points
                .iter()
                .find(|ep| ep.capacities == pp.capacities)
                .unwrap_or_else(|| {
                    panic!(
                        "{}: pruned point {:?} not in the grid",
                        app.name(),
                        pp.capacities
                    )
                });
            assert_eq!(
                ep.result,
                pp.result,
                "{} at {:?}: pruned point diverges from exhaustive",
                app.name(),
                pp.capacities
            );
        }

        // The frontiers are bit-identical: same capacity vectors carrying
        // the same full results, in the same (lexicographic) order.
        assert_eq!(
            grid_frontier_points(&full, &full.pareto_cycles()),
            grid_frontier_points(&pruned.sweep, &pruned.sweep.pareto_cycles()),
            "{}: cycles frontier diverges",
            app.name()
        );
        assert_eq!(
            grid_frontier_points(&full, &full.pareto_energy()),
            grid_frontier_points(&pruned.sweep, &pruned.sweep.pareto_energy()),
            "{}: energy frontier diverges",
            app.name()
        );
    }

    // The pruning is real: at least 30 % of the default grid is skipped
    // across the suite (deterministic — skip decisions depend only on the
    // searches, not on timing).
    let ratio = suite_skipped as f64 / suite_candidates as f64;
    assert!(
        ratio >= 0.30,
        "only {suite_skipped}/{suite_candidates} = {:.1}% of candidate points skipped",
        100.0 * ratio
    );
}

#[test]
fn pruned_points_match_cold_standalone_runs() {
    // Spot-check the canonical semantics on one mid-size app: every
    // evaluated pruned point equals a from-scratch standalone run.
    let app = mhla_apps::sobel_edge::app();
    let platform = Platform::four_level_default();
    let config = MhlaConfig::default();
    let pruned = sweep_grid_pruned(&app.program, &platform, &default_grid4_axes(), &config);
    assert!(
        pruned.stats.skipped() > 0,
        "default grid must actually prune"
    );
    for point in &pruned.sweep.points {
        let pf = platform.with_layer_capacities(&[
            (LayerId(1), point.capacities[0]),
            (LayerId(2), point.capacities[1]),
            (LayerId(3), point.capacities[2]),
        ]);
        let standalone = Mhla::new(&app.program, &pf, config.clone()).run();
        assert_eq!(point.result, standalone, "at {:?}", point.capacities);
    }
}

#[test]
fn non_cycles_objectives_disarm_saturation_but_stay_lossless() {
    // Under the energy objective the saturation rule must disarm (the
    // move gains are capacity-dependent); the sweep may still floor-prune
    // but must reproduce the exhaustive frontier regardless.
    let app = mhla_apps::fir_bank::app();
    let config = MhlaConfig {
        objective: Objective::Energy,
        ..MhlaConfig::default()
    };
    let axes = default_grid4_axes();
    let full = exhaustive(&app, &axes, &config);
    let pruned = sweep_grid_pruned(
        &app.program,
        &Platform::four_level_default(),
        &axes,
        &config,
    );
    assert_eq!(pruned.stats.skipped_saturated, 0, "saturation must disarm");
    assert_eq!(
        grid_frontier_points(&full, &full.pareto_cycles()),
        grid_frontier_points(&pruned.sweep, &pruned.sweep.pareto_cycles()),
    );
    assert_eq!(
        grid_frontier_points(&full, &full.pareto_energy()),
        grid_frontier_points(&pruned.sweep, &pruned.sweep.pareto_energy()),
    );
}

#[test]
fn cost_floor_rule_fires_on_transfer_free_programs() {
    // A program whose optimum is transfer-free — one internal temporary,
    // written once and then re-read — achieves the cost floor exactly:
    // every access served at 1 cycle from the cheapest layer, zero
    // transfer energy. Under the energy objective the saturation rule is
    // disarmed, so any skipping below must come from the cost-floor rule:
    // the small point's achieved (cycles, energy) is at or below every
    // larger point's floor (per-access energies are clamped equal below
    // 1 KiB), which dominates those points sight unseen.
    use mhla::ir::{ElemType, ProgramBuilder};
    let mut b = ProgramBuilder::new("tmp_scan");
    let tmp = b.array("tmp", &[64], ElemType::U8);
    b.loop_scope("w", 0, 64, 1, |b, lw| {
        let i = b.var(lw);
        b.stmt("write")
            .write(tmp, vec![i])
            .compute_cycles(1)
            .finish();
    });
    b.loop_scope("rep", 0, 200, 1, |b, _| {
        b.loop_scope("r", 0, 64, 1, |b, lr| {
            let j = b.var(lr);
            b.stmt("read").read(tmp, vec![j]).compute_cycles(1).finish();
        });
    });
    let program = b.finish();

    let platform = Platform::three_level(1024, 256);
    let axes = [
        GridAxis::new(LayerId(1), vec![512u64, 1024]),
        GridAxis::new(LayerId(2), vec![128u64, 256, 512]),
    ];
    let config = MhlaConfig {
        objective: Objective::Energy,
        ..MhlaConfig::default()
    };
    let pruned = sweep_grid_pruned(&program, &platform, &axes, &config);
    assert_eq!(pruned.stats.skipped_saturated, 0, "saturation is disarmed");
    assert!(
        pruned.stats.skipped_floor > 0,
        "cost-floor rule must fire on a floor-achieving program: {:?}",
        pruned.stats
    );

    // Lossless regardless: the frontier matches the exhaustive grid.
    let full = sweep_grid_with(
        &program,
        &platform,
        &axes,
        &config,
        SweepOptions {
            warm_start: false,
            ..SweepOptions::default()
        },
    );
    assert_eq!(
        grid_frontier_points(&full, &full.pareto_cycles()),
        grid_frontier_points(&pruned.sweep, &pruned.sweep.pareto_cycles()),
    );
    assert_eq!(
        grid_frontier_points(&full, &full.pareto_energy()),
        grid_frontier_points(&pruned.sweep, &pruned.sweep.pareto_energy()),
    );
}

#[test]
fn degenerate_axes_yield_empty_pruned_sweeps() {
    let app = mhla_apps::fir_bank::app();
    let platform = Platform::four_level_default();
    let config = MhlaConfig::default();
    let empty = sweep_grid_pruned(&app.program, &platform, &[], &config);
    assert!(empty.sweep.points.is_empty());
    assert_eq!(empty.stats.candidates, 0);
    let empty_axis = sweep_grid_pruned(
        &app.program,
        &platform,
        &[
            GridAxis::new(LayerId(1), vec![32 * 1024u64]),
            GridAxis::new(LayerId(2), Vec::new()),
        ],
        &config,
    );
    assert!(empty_axis.sweep.points.is_empty());
}
