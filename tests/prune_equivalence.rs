//! The pruned four-level grid exploration must be *provably lossless* —
//! the PR acceptance bar, enforced here on all nine applications over the
//! default L1×L2×L3 grid of `Platform::four_level_default`, under all
//! three objectives and in both execution modes (sequential point-by-point
//! and frontier-wave parallel):
//!
//! * every point the pruned sweep evaluates is bit-identical to the same
//!   point of the exhaustive grid (and to a cold standalone `Mhla::run`);
//! * the pruned cycles and energy Pareto frontiers are *bit-identical* to
//!   the exhaustive frontiers — same capacity vectors, same full
//!   `MhlaResult`s — even though the pruned sweep never evaluated the
//!   skipped points;
//! * the pruning is real: ≥ 30 % of the candidate points are skipped
//!   across the suite under the cycles objective and ≥ 20 % under the
//!   energy objective (the gain-bound saturation rule plus the cost
//!   floor), with per-point bookkeeping that adds up;
//! * the parallel wave mode commits exactly the sequential decisions:
//!   identical `PruneStats`, identical evaluated points, identical
//!   frontiers for every wave size;
//! * disarming conditions degrade to exhaustive, never to a wrong
//!   frontier.
//!
//! `MHLA_SWEEP_PARALLEL=0` runs the whole suite in sequential mode (the
//! CI leg); malformed values are rejected loudly.

use mhla::core::explore::{
    sweep_grid_pruned_with, sweep_grid_with, GridAxis, GridSweep, PruneOptions, PrunedGridSweep,
    SweepOptions,
};
use mhla::core::{Mhla, MhlaConfig, Objective, SearchStrategy};
use mhla::hierarchy::{LayerId, Platform};
use mhla_bench::{default_grid4_axes, grid_frontier_points};

/// The execution mode under test: parallel waves by default, sequential
/// when `MHLA_SWEEP_PARALLEL=0`. Parsing/validation is the bench
/// harness's (one definition of the `0 | 1 | reject` contract); anything
/// malformed fails the suite instead of silently testing the wrong mode.
fn prune_opts_from_env() -> PruneOptions {
    match mhla_bench::sweep_parallel_from_env() {
        Ok(true) => PruneOptions::default(),
        Ok(false) => PruneOptions {
            parallel: false,
            wave: 1,
            ..PruneOptions::default()
        },
        Err(e) => panic!("{e}"),
    }
}

/// The exhaustive reference: every point of the Cartesian product, cold —
/// the canonical semantics in which every grid point equals a standalone
/// run.
fn exhaustive(app: &mhla_apps::Application, axes: &[GridAxis], config: &MhlaConfig) -> GridSweep {
    sweep_grid_with(
        &app.program,
        &Platform::four_level_default(),
        axes,
        config,
        SweepOptions {
            warm_start: false,
            ..SweepOptions::default()
        },
    )
}

/// Asserts the full losslessness contract of one pruned run against its
/// exhaustive reference: bookkeeping adds up, every evaluated point is
/// bit-identical to the exhaustive point at the same capacity vector, and
/// both Pareto frontiers are point-for-point identical.
fn assert_lossless(name: &str, full: &GridSweep, pruned: &PrunedGridSweep) {
    let stats = pruned.stats;
    assert_eq!(stats.candidates, full.points.len(), "{name}");
    assert_eq!(stats.evaluated, pruned.sweep.points.len(), "{name}");
    assert_eq!(
        stats.evaluated + stats.skipped_saturated + stats.skipped_floor,
        stats.candidates,
        "{name}"
    );
    for pp in &pruned.sweep.points {
        let ep = full
            .points
            .iter()
            .find(|ep| ep.capacities == pp.capacities)
            .unwrap_or_else(|| panic!("{name}: pruned point {:?} not in the grid", pp.capacities));
        assert_eq!(
            ep.result, pp.result,
            "{name} at {:?}: pruned point diverges from exhaustive",
            pp.capacities
        );
    }
    assert_eq!(
        grid_frontier_points(full, &full.pareto_cycles()),
        grid_frontier_points(&pruned.sweep, &pruned.sweep.pareto_cycles()),
        "{name}: cycles frontier diverges"
    );
    assert_eq!(
        grid_frontier_points(full, &full.pareto_energy()),
        grid_frontier_points(&pruned.sweep, &pruned.sweep.pareto_energy()),
        "{name}: energy frontier diverges"
    );
}

/// Runs the nine-app suite under one objective, asserting losslessness per
/// app and returning the suite-wide (candidates, skipped) totals.
fn suite_under(config: &MhlaConfig, opts: PruneOptions) -> (usize, usize) {
    let axes = default_grid4_axes();
    let mut suite_candidates = 0usize;
    let mut suite_skipped = 0usize;
    for app in mhla_apps::all_apps() {
        let full = exhaustive(&app, &axes, config);
        let pruned = sweep_grid_pruned_with(
            &app.program,
            &Platform::four_level_default(),
            &axes,
            config,
            opts.clone(),
        );
        assert_lossless(app.name(), &full, &pruned);
        suite_candidates += pruned.stats.candidates;
        suite_skipped += pruned.stats.skipped();
    }
    (suite_candidates, suite_skipped)
}

#[test]
fn pruned_four_level_frontier_is_bit_identical_on_all_nine_apps() {
    let (candidates, skipped) = suite_under(&MhlaConfig::default(), prune_opts_from_env());
    // The pruning is real: at least 30 % of the default grid is skipped
    // across the suite (deterministic — skip decisions depend only on the
    // searches, not on timing or the wave structure).
    let ratio = skipped as f64 / candidates as f64;
    assert!(
        ratio >= 0.30,
        "only {skipped}/{candidates} = {:.1}% of candidate points skipped",
        100.0 * ratio
    );
}

#[test]
fn pruned_energy_objective_is_bit_identical_and_still_prunes() {
    // The energy-side saturation rule (instrumented gain bounds) plus the
    // cost floor must keep pruning meaningful under `Objective::Energy`:
    // ≥ 20 % of the suite's candidate points skipped, frontiers
    // bit-identical throughout.
    let config = MhlaConfig {
        objective: Objective::Energy,
        ..MhlaConfig::default()
    };
    let (candidates, skipped) = suite_under(&config, prune_opts_from_env());
    let ratio = skipped as f64 / candidates as f64;
    assert!(
        ratio >= 0.20,
        "only {skipped}/{candidates} = {:.1}% skipped under Objective::Energy",
        100.0 * ratio
    );
}

#[test]
fn pruned_weighted_objective_is_bit_identical() {
    // The weighted objective scales the gain-bound test by its energy
    // weight; losslessness must hold regardless of how much pruning
    // survives the margins.
    let config = MhlaConfig {
        objective: Objective::Weighted {
            energy_weight: 0.5,
            cycle_weight: 0.5,
        },
        ..MhlaConfig::default()
    };
    let (candidates, skipped) = suite_under(&config, prune_opts_from_env());
    assert!(skipped <= candidates);
}

#[test]
fn parallel_and_sequential_wave_modes_are_identical() {
    // The frontier-wave restructure must not change a single decision:
    // sequential (wave = 1), small waves and the default parallel mode
    // yield identical PruneStats, identical evaluated points and
    // identical frontiers under every objective.
    let axes = default_grid4_axes();
    let apps = [
        mhla_apps::fir_bank::app(),
        mhla_apps::sobel_edge::app(),
        mhla_apps::full_search_me::app(),
    ];
    for objective in [
        Objective::Cycles,
        Objective::Energy,
        Objective::Weighted {
            energy_weight: 0.5,
            cycle_weight: 0.5,
        },
    ] {
        let config = MhlaConfig {
            objective,
            ..MhlaConfig::default()
        };
        for app in &apps {
            let sequential = sweep_grid_pruned_with(
                &app.program,
                &Platform::four_level_default(),
                &axes,
                &config,
                PruneOptions {
                    parallel: false,
                    wave: 1,
                    ..PruneOptions::default()
                },
            );
            assert_eq!(
                sequential.speculative_evals,
                0,
                "{}: wave=1 cannot speculate",
                app.name()
            );
            for opts in [
                PruneOptions::default(),
                PruneOptions {
                    parallel: true,
                    wave: 4,
                    ..PruneOptions::default()
                },
                PruneOptions {
                    parallel: false,
                    wave: 16,
                    ..PruneOptions::default()
                },
            ] {
                let other = sweep_grid_pruned_with(
                    &app.program,
                    &Platform::four_level_default(),
                    &axes,
                    &config,
                    opts.clone(),
                );
                assert_eq!(
                    sequential.stats,
                    other.stats,
                    "{} ({objective:?}, {opts:?}): PruneStats diverge",
                    app.name()
                );
                assert_eq!(
                    sequential.sweep,
                    other.sweep,
                    "{} ({objective:?}, {opts:?}): evaluated points diverge",
                    app.name()
                );
            }
        }
    }
}

#[test]
fn pruned_points_match_cold_standalone_runs() {
    // Spot-check the canonical semantics on one mid-size app: every
    // evaluated pruned point equals a from-scratch standalone run.
    let app = mhla_apps::sobel_edge::app();
    let platform = Platform::four_level_default();
    let config = MhlaConfig::default();
    let pruned = sweep_grid_pruned_with(
        &app.program,
        &platform,
        &default_grid4_axes(),
        &config,
        prune_opts_from_env(),
    );
    assert!(
        pruned.stats.skipped() > 0,
        "default grid must actually prune"
    );
    for point in &pruned.sweep.points {
        let pf = platform.with_layer_capacities(&[
            (LayerId(1), point.capacities[0]),
            (LayerId(2), point.capacities[1]),
            (LayerId(3), point.capacities[2]),
        ]);
        let standalone = Mhla::new(&app.program, &pf, config.clone()).run();
        assert_eq!(point.result, standalone, "at {:?}", point.capacities);
    }
}

#[test]
fn energy_saturation_arms_inside_the_clamp_region() {
    // Growth confined to the sub-reference energy-clamp region (≤ 1 KiB)
    // leaves the whole cost model bit-identical, so the saturation rule
    // must fire under Objective::Energy whenever such a point's run was
    // not bound on the grown axis. The default grid's L1 axis (256 B –
    // 1 KiB) lives entirely inside the clamp region; across the suite at
    // least one app must exhibit such a skip.
    let axes = default_grid4_axes();
    let config = MhlaConfig {
        objective: Objective::Energy,
        ..MhlaConfig::default()
    };
    let saturated: usize = mhla_apps::all_apps()
        .iter()
        .map(|app| {
            sweep_grid_pruned_with(
                &app.program,
                &Platform::four_level_default(),
                &axes,
                &config,
                prune_opts_from_env(),
            )
            .stats
            .skipped_saturated
        })
        .sum();
    assert!(
        saturated > 0,
        "the energy-side saturation rule never fired on the suite"
    );
}

#[test]
fn non_instrumented_strategies_disarm_saturation_but_stay_lossless() {
    // The exhaustive strategy records no constraint masks or margins, so
    // the saturation rule must disarm; the sweep may still floor-prune
    // but must reproduce the exhaustive frontier regardless.
    let app = mhla_apps::fir_bank::app();
    let config = MhlaConfig {
        strategy: SearchStrategy::Exhaustive { node_limit: 20_000 },
        ..MhlaConfig::default()
    };
    // A small sub-grid keeps the per-point branch-and-bound affordable.
    let axes = [
        GridAxis::new(LayerId(1), vec![32 * 1024u64, 64 * 1024]),
        GridAxis::new(LayerId(2), vec![8 * 1024u64, 16 * 1024]),
        GridAxis::new(LayerId(3), vec![512u64, 1024]),
    ];
    let full = exhaustive(&app, &axes, &config);
    let pruned = sweep_grid_pruned_with(
        &app.program,
        &Platform::four_level_default(),
        &axes,
        &config,
        prune_opts_from_env(),
    );
    assert_eq!(pruned.stats.skipped_saturated, 0, "saturation must disarm");
    assert_lossless(app.name(), &full, &pruned);
}

#[test]
fn cost_floor_rule_fires_on_transfer_free_programs() {
    // A program whose optimum is transfer-free — one internal temporary,
    // written once and then re-read — achieves the cost floor exactly:
    // every access served at 1 cycle from the cheapest layer, zero
    // transfer energy. Under the (non-instrumented) exhaustive strategy
    // the saturation rule is disarmed, so any skipping below must come
    // from the cost-floor rule: the small point's achieved
    // (cycles, energy) is at or below every larger point's floor
    // (per-access energies are clamped equal below 1 KiB), which
    // dominates those points sight unseen.
    use mhla::ir::{ElemType, ProgramBuilder};
    let mut b = ProgramBuilder::new("tmp_scan");
    let tmp = b.array("tmp", &[64], ElemType::U8);
    b.loop_scope("w", 0, 64, 1, |b, lw| {
        let i = b.var(lw);
        b.stmt("write")
            .write(tmp, vec![i])
            .compute_cycles(1)
            .finish();
    });
    b.loop_scope("rep", 0, 200, 1, |b, _| {
        b.loop_scope("r", 0, 64, 1, |b, lr| {
            let j = b.var(lr);
            b.stmt("read").read(tmp, vec![j]).compute_cycles(1).finish();
        });
    });
    let program = b.finish();

    let platform = Platform::three_level(1024, 256);
    let axes = [
        GridAxis::new(LayerId(1), vec![512u64, 1024]),
        GridAxis::new(LayerId(2), vec![128u64, 256, 512]),
    ];
    let config = MhlaConfig {
        objective: Objective::Energy,
        strategy: SearchStrategy::Exhaustive { node_limit: 50_000 },
        ..MhlaConfig::default()
    };
    let pruned = sweep_grid_pruned_with(&program, &platform, &axes, &config, prune_opts_from_env());
    assert_eq!(pruned.stats.skipped_saturated, 0, "saturation is disarmed");
    assert!(
        pruned.stats.skipped_floor > 0,
        "cost-floor rule must fire on a floor-achieving program: {:?}",
        pruned.stats
    );

    // Lossless regardless: the frontier matches the exhaustive grid.
    let full = sweep_grid_with(
        &program,
        &platform,
        &axes,
        &config,
        SweepOptions {
            warm_start: false,
            ..SweepOptions::default()
        },
    );
    assert_lossless("tmp_scan", &full, &pruned);
}

#[test]
fn degenerate_axes_yield_empty_pruned_sweeps() {
    let app = mhla_apps::fir_bank::app();
    let platform = Platform::four_level_default();
    let config = MhlaConfig::default();
    let empty =
        sweep_grid_pruned_with(&app.program, &platform, &[], &config, prune_opts_from_env());
    assert!(empty.sweep.points.is_empty());
    assert_eq!(empty.stats.candidates, 0);
    assert_eq!(empty.waves, 0);
    let empty_axis = sweep_grid_pruned_with(
        &app.program,
        &platform,
        &[
            GridAxis::new(LayerId(1), vec![32 * 1024u64]),
            GridAxis::new(LayerId(2), Vec::new()),
        ],
        &config,
        prune_opts_from_env(),
    );
    assert!(empty_axis.sweep.points.is_empty());
}
