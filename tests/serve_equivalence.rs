//! The serving path is bit-identical to the in-process engine.
//!
//! Three layers of the promise, innermost out:
//!
//! 1. `try_sweep_grid_run_in` over a caller-built [`ExplorationContext`]
//!    (fresh or with a pre-computed reuse analysis, as the server's
//!    analysis cache supplies) returns the same `GridSweepRun` as the
//!    one-shot `try_sweep_grid_run` — pinned here because the function's
//!    rustdoc promises it;
//! 2. the same equivalence under a budget (the server attaches deadlines
//!    and cancel flags to every request);
//! 3. the served response body ([`Service::handle_line`], program and
//!    platform round-tripped through the wire encoding) is byte-identical
//!    to [`result_body`] over the in-process run.

use std::sync::atomic::AtomicBool;
use std::sync::Arc;

use mhla::core::explore::{
    try_sweep_grid_run, try_sweep_grid_run_in, ExploreBudget, GridAxis, SearchMode, SweepOptions,
};
use mhla::core::fingerprint::{platform_fingerprint, program_fingerprint};
use mhla::core::{ExplorationContext, MhlaConfig, Objective};
use mhla::hierarchy::{LayerId, Platform};
use mhla::ir::arbitrary::program_specs;
use mhla::ir::serdes::{program_value, Json};
use mhla::reuse::ReuseAnalysis;
use mhla_serve::protocol::result_body;
use mhla_serve::{Service, ServiceOptions};
use proptest::prelude::*;

const OBJECTIVES: [Objective; 3] = [
    Objective::Cycles,
    Objective::Energy,
    Objective::Weighted {
        energy_weight: 0.5,
        cycle_weight: 0.5,
    },
];

fn small_axes() -> Vec<GridAxis> {
    vec![
        GridAxis::new(LayerId(1), vec![128u64, 256, 1024]),
        GridAxis::new(LayerId(2), vec![64u64, 128]),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Layer 1: context-reuse entry ≡ one-shot entry, bit for bit, for
    /// every objective and both search modes — with the context built
    /// fresh *and* from a pre-computed (cloned) reuse analysis.
    #[test]
    fn run_in_is_bit_identical_to_run(spec in program_specs()) {
        let program = spec.build();
        let platform = Platform::three_level(1024, 256);
        let axes = small_axes();
        for objective in OBJECTIVES {
            let config = MhlaConfig { objective, ..MhlaConfig::default() };
            for mode in [SearchMode::Cold, SearchMode::Improving] {
                let opts = SweepOptions { mode, ..SweepOptions::default() };
                let oracle =
                    try_sweep_grid_run(&program, &platform, &axes, &config, &opts).unwrap();

                let ctx = ExplorationContext::new(&program, &platform, config.clone());
                let fresh = try_sweep_grid_run_in(&ctx, &platform, &axes, &opts).unwrap();
                prop_assert_eq!(&fresh, &oracle, "fresh context diverged");

                // The server's shape: reuse analysis computed once,
                // cloned into each request's context.
                let reuse = ReuseAnalysis::analyze(&program);
                let ctx = ExplorationContext::with_reuse(
                    &program, &platform, config.clone(), reuse.clone(),
                );
                let shared = try_sweep_grid_run_in(&ctx, &platform, &axes, &opts).unwrap();
                prop_assert_eq!(&shared, &oracle, "shared-reuse context diverged");
            }
        }
    }

    /// Layer 2: the equivalence holds under budgets — a `max_evals` stop
    /// lands on the same certified prefix through either entry, and an
    /// unraised cancel flag (the server's drain hook) changes nothing.
    #[test]
    fn run_in_budgets_match_run_budgets(spec in program_specs(), k in 1u8..=5) {
        let program = spec.build();
        let platform = Platform::three_level(1024, 256);
        let axes = small_axes();
        let config = MhlaConfig::default();
        let budget = ExploreBudget {
            max_evals: Some(k as usize),
            cancel: Some(Arc::new(AtomicBool::new(false))),
            ..ExploreBudget::default()
        };
        let opts = SweepOptions { budget, ..SweepOptions::default() };

        let oracle = try_sweep_grid_run(&program, &platform, &axes, &config, &opts).unwrap();
        let ctx = ExplorationContext::new(&program, &platform, config.clone());
        let run = try_sweep_grid_run_in(&ctx, &platform, &axes, &opts).unwrap();
        prop_assert_eq!(&run, &oracle);
    }

    /// Layer 3: the full served path — wire-encoded program in, rendered
    /// body out — reproduces `result_body` over the in-process run, byte
    /// for byte.
    #[test]
    fn served_body_matches_in_process_result_body(spec in program_specs()) {
        let program = spec.build();
        let platform = Platform::three_level(1024, 256);
        let axes = small_axes();

        let run = try_sweep_grid_run(
            &program,
            &platform,
            &axes,
            &MhlaConfig::default(),
            &SweepOptions::default(),
        )
        .unwrap();
        let expected = format!(
            "{{\"ok\":true,\"cached\":false,\"result\":{}}}",
            result_body(&run, program_fingerprint(&program), platform_fingerprint(&platform)),
        );

        let line = Json::Obj(vec![
            ("op".into(), Json::Str("explore".into())),
            ("program".into(), program_value(&program)),
            (
                "platform".into(),
                mhla::hierarchy::serdes::platform_value(&platform),
            ),
            (
                "axes".into(),
                Json::Arr(
                    axes.iter()
                        .map(|a| {
                            Json::Obj(vec![
                                ("layer".into(), Json::from_u64(a.layer.0 as u64)),
                                (
                                    "capacities".into(),
                                    Json::Arr(
                                        a.capacities.iter().map(|&c| Json::from_u64(c)).collect(),
                                    ),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
        .render_compact();
        let service = Service::new(ServiceOptions::default());
        prop_assert_eq!(service.handle_line(&line), expected);
    }
}
