//! The warm-started parallel sweep must match the cold sequential
//! reference sweep — identical Pareto fronts (the PR acceptance bar) and,
//! stronger, identical (cycles, energy) at every capacity point — on the
//! full application suite.

use mhla::core::explore::{default_capacities, sweep, sweep_cold, sweep_with, SweepOptions};
use mhla::core::{EvalWorkspace, ExplorationContext, Mhla, MhlaConfig};
use mhla::hierarchy::{LayerId, Platform};

#[test]
fn warm_parallel_sweep_matches_cold_sequential_on_all_apps() {
    let caps = default_capacities();
    let platform = Platform::embedded_default(1024);
    let config = MhlaConfig::default();
    for app in mhla_apps::all_apps() {
        let cold = sweep_cold(&app.program, &platform, LayerId(1), &caps, &config);
        let fast = sweep(&app.program, &platform, LayerId(1), &caps, &config);

        assert_eq!(
            cold.pareto_cycles(),
            fast.pareto_cycles(),
            "{}: cycle Pareto fronts diverge",
            app.name()
        );
        assert_eq!(
            cold.pareto_energy(),
            fast.pareto_energy(),
            "{}: energy Pareto fronts diverge",
            app.name()
        );
        assert_eq!(cold.points.len(), fast.points.len(), "{}", app.name());
        for (c, f) in cold.points.iter().zip(&fast.points) {
            assert_eq!(c.capacity, f.capacity, "{}", app.name());
            assert_eq!(
                c.cycles(),
                f.cycles(),
                "{} at {} B: cycles diverge",
                app.name(),
                c.capacity
            );
            assert_eq!(
                c.energy_pj(),
                f.energy_pj(),
                "{} at {} B: energy diverges",
                app.name(),
                c.capacity
            );
        }
    }
}

#[test]
fn sweep_options_do_not_change_results() {
    // Every combination of warm-start / parallel / chunking produces the
    // same points (determinism does not depend on the core count).
    let caps = default_capacities();
    let platform = Platform::embedded_default(1024);
    let config = MhlaConfig::default();
    let app = mhla_apps::video_encoder::app();
    let reference = sweep(&app.program, &platform, LayerId(1), &caps, &config);
    for warm_start in [false, true] {
        for parallel in [false, true] {
            for chunk in [1usize, 3, 64] {
                let opts = SweepOptions {
                    warm_start,
                    parallel,
                    chunk,
                    ..SweepOptions::default()
                };
                let s = sweep_with(
                    &app.program,
                    &platform,
                    LayerId(1),
                    &caps,
                    &config,
                    opts.clone(),
                );
                assert_eq!(s.points.len(), reference.points.len());
                for (a, b) in s.points.iter().zip(&reference.points) {
                    assert_eq!(a.cycles(), b.cycles(), "{opts:?}");
                    assert_eq!(a.energy_pj(), b.energy_pj(), "{opts:?}");
                }
            }
        }
    }
}

#[test]
fn one_workspace_across_the_whole_suite_matches_fresh_per_point() {
    // The steady-state discipline the sweep engines rely on, pinned on
    // the full application suite: ONE EvalWorkspace carried across every
    // app and every capacity point (buffers warmed by one program are
    // handed to the next) reproduces the fresh-workspace-per-point
    // results bit for bit — results AND run stats.
    let caps = default_capacities();
    let platform = Platform::embedded_default(1024);
    let config = MhlaConfig::default();
    let mut ws = EvalWorkspace::new();
    for app in mhla_apps::all_apps() {
        let ctx = ExplorationContext::new(&app.program, &platform, config.clone());
        let mut warm = None;
        for &cap in &caps {
            let pf = platform.with_layer_capacity(LayerId(1), cap);
            let fresh =
                Mhla::with_context(&ctx, &pf).run_with_stats(warm.as_ref(), Some(ctx.moves()));
            let reused = Mhla::with_context(&ctx, &pf).run_with_stats_in(
                warm.as_ref(),
                Some(ctx.moves()),
                &mut ws,
            );
            assert_eq!(
                fresh,
                reused,
                "{} at {} B: workspace reuse diverges from fresh",
                app.name(),
                cap
            );
            warm = Some(fresh.0.assignment);
        }
    }
}

#[test]
fn sweep_handles_degenerate_capacity_lists() {
    let platform = Platform::embedded_default(1024);
    let config = MhlaConfig::default();
    let app = mhla_apps::sobel_edge::app();
    let empty = sweep(&app.program, &platform, LayerId(1), &[], &config);
    assert!(empty.points.is_empty());
    let dup = sweep(
        &app.program,
        &platform,
        LayerId(1),
        &[256, 256, 512],
        &config,
    );
    assert_eq!(dup.points.len(), 2);
    assert!(dup.points[0].capacity < dup.points[1].capacity);
}
