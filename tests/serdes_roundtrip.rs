//! The on-disk format's two stability contracts:
//!
//! 1. **Round-trip.** `program_to_json` → `program_from_json` is the
//!    identity on every valid program — the nine built-in apps and
//!    arbitrary generated programs alike — and likewise for platforms
//!    (presets and the non-pyramidal stacks grid sweeps produce). The
//!    text itself is a fixed point: render → parse → render reproduces
//!    the exact bytes, so documents can be diffed and cached.
//!
//! 2. **Golden pins.** `tests/golden/` holds documents written by the
//!    version-1 schema. Serializing today's `fir_bank` app and
//!    `three_level_default` platform must reproduce those bytes exactly,
//!    and parsing them must reproduce the in-memory values. Any schema
//!    drift breaks this test — which is the point: bump
//!    `PROGRAM_VERSION`/`PLATFORM_VERSION` and re-pin deliberately, or
//!    don't drift.

use mhla::hierarchy::serdes::{platform_from_json, platform_to_json};
use mhla::hierarchy::{LayerId, Platform};
use mhla::ir::arbitrary::programs;
use mhla::ir::serdes::{program_from_json, program_to_json};
use proptest::prelude::*;

#[test]
fn every_builtin_app_round_trips() {
    for app in mhla::apps::all_apps() {
        let text = program_to_json(&app.program);
        let back = program_from_json(&text).expect("re-ingest");
        assert_eq!(back, app.program, "{} did not round-trip", app.name());
        // The rendering is a fixed point of parse → render.
        assert_eq!(program_to_json(&back), text);
    }
}

#[test]
fn platform_presets_round_trip() {
    let presets = [
        Platform::embedded_default(4 * 1024),
        Platform::three_level_default(),
        Platform::four_level_default(),
        Platform::without_dma(8 * 1024),
    ];
    for platform in &presets {
        let text = platform_to_json(platform);
        let back = platform_from_json(&text).expect("re-ingest");
        assert_eq!(&back, platform, "{} did not round-trip", platform.name());
        assert_eq!(platform_to_json(&back), text);
    }
}

/// Grid sweeps resize layers independently, producing stacks where an
/// inner layer is *larger* than an outer one. The format must carry
/// those verbatim — `from_parts` deliberately skips the monotonicity
/// check `Platform::new` applies.
#[test]
fn non_pyramidal_grid_stacks_round_trip() {
    let base = Platform::three_level_default();
    let resized = base.with_layer_capacities(&[(LayerId(1), 256), (LayerId(2), 4096)]);
    let back = platform_from_json(&platform_to_json(&resized)).expect("re-ingest");
    assert_eq!(back, resized);
}

#[test]
fn golden_program_is_pinned() {
    let golden = include_str!("golden/fir_bank.prog.json");
    let app = mhla::apps::fir_bank::app();
    assert_eq!(
        program_to_json(&app.program),
        golden,
        "fir_bank no longer serializes to the pinned version-1 bytes — \
         if the schema changed, bump PROGRAM_VERSION and re-pin"
    );
    let back = program_from_json(golden).expect("golden file must parse");
    assert_eq!(back, app.program);
}

#[test]
fn golden_platform_is_pinned() {
    let golden = include_str!("golden/three_level.platform.json");
    let platform = Platform::three_level_default();
    assert_eq!(
        platform_to_json(&platform),
        golden,
        "three_level_default no longer serializes to the pinned version-1 \
         bytes — if the schema changed, bump PLATFORM_VERSION and re-pin"
    );
    let back = platform_from_json(golden).expect("golden file must parse");
    assert_eq!(back, platform);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Round-trip identity on arbitrary generated programs — names,
    /// bounds, access matrices and node structure all survive.
    #[test]
    fn arbitrary_programs_round_trip(program in programs()) {
        let text = program_to_json(&program);
        let back = program_from_json(&text).expect("re-ingest");
        prop_assert_eq!(&back, &program);
        prop_assert_eq!(program_to_json(&back), text);
    }
}
