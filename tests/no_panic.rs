//! The fallible boundary's two contracts, checked on randomized inputs:
//!
//! 1. **No panic on corrupted programs.** Arbitrary valid programs from
//!    `mhla_ir::arbitrary` are structurally corrupted (dangling ids, rank
//!    mismatches, shared/orphaned nodes, rogue iterators, zero steps,
//!    duplicate array names — `Corruption::ALL`) and fed to every `try_`
//!    entry point. Each must return `Err(MhlaError::InvalidProgram(_))`;
//!    none may panic (`catch_unwind` guards every call).
//!
//! 2. **Certified partial frontiers under budgets.** An interrupted sweep
//!    (`ExploreBudget::max_evals`, a preset cancel flag, or an expired
//!    deadline) stops at a fully-committed lexicographic prefix: its
//!    points are bit-identical to the unbudgeted run's prefix, its Pareto
//!    accessors select exactly the frontier of that prefix, and resuming
//!    from the partial result reproduces the full, unbudgeted sweep.
//!
//! 3. **No panic on malformed serialized programs.** The `serdes` ingress
//!    (`program_from_json`) must reject malformed, truncated and
//!    wrong-version documents with a typed `SerdesError` that lifts onto
//!    `MhlaError` — syntax/schema/version failures as `InvalidOptions`,
//!    validation failures as `InvalidProgram` — and must never panic,
//!    whatever the bytes.
//!
//! 4. **No panic on server-shaped corruption.** The serve ingress
//!    (`mhla_serve::Service::handle_line`) is total: nesting at and past
//!    the parser's 128-level cap, `1e999`/`NaN`/`Infinity` number text,
//!    documents over the request-size cap, corrupted embedded programs
//!    and degenerate axes (zero-length, zero-capacity, off-chip,
//!    out-of-range) all produce one typed response line — the same error
//!    classes the CLI's ingress reports — never a panic.
//!
//! CI runs this suite in release mode (the `no_panic` leg); locally the
//! deterministic per-test-name seed applies.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::AtomicBool;
use std::sync::Arc;
use std::time::Instant;

use mhla::core::explore::{
    try_sweep_grid_pruned_resume, try_sweep_grid_pruned_with, try_sweep_grid_resume,
    try_sweep_grid_run, try_sweep_with, ExploreBudget, GridAxis, GridSweep, PruneOptions,
    SearchMode, StopCause, SweepOptions, SweepStatus,
};
use mhla::core::multitask::try_partition_scratchpad;
use mhla::core::{Mhla, MhlaConfig, MhlaError};
use mhla::hierarchy::{LayerId, Platform};
use mhla::ir::arbitrary::{corrupted_programs, program_specs};
use mhla::ir::serdes::{
    field, program_from_json, program_to_json, program_value, Json, SerdesError,
};
use mhla_serve::protocol::MAX_REQUEST_BYTES;
use mhla_serve::{Service, ServiceOptions};
use proptest::prelude::*;

/// A small two-axis grid (6 points) whose capacities straddle the
/// generated programs' footprints, so budgets genuinely cut sweeps short
/// at interesting places.
fn small_axes() -> Vec<GridAxis> {
    vec![
        GridAxis::new(LayerId(1), vec![128u64, 256, 1024]),
        GridAxis::new(LayerId(2), vec![64u64, 128]),
    ]
}

/// Runs one fallible entry point under `catch_unwind` and requires a
/// typed `InvalidProgram` rejection — any panic or acceptance fails the
/// case.
fn expect_invalid_program<T>(what: &str, f: impl FnOnce() -> Result<T, MhlaError>) {
    match catch_unwind(AssertUnwindSafe(f)) {
        Err(_) => panic!("{what} panicked on a corrupted program"),
        Ok(Ok(_)) => panic!("{what} accepted a corrupted program"),
        Ok(Err(MhlaError::InvalidProgram(_))) => {}
        Ok(Err(e)) => panic!("{what} rejected with the wrong class: {e}"),
    }
}

/// The capacity vectors of a Pareto surface, for comparing frontiers
/// across sweeps whose point indices differ.
fn front_caps(sweep: &GridSweep, front: &[usize]) -> Vec<Vec<u64>> {
    front
        .iter()
        .map(|&i| sweep.points[i].capacities.clone())
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Contract 1: every `try_` entry point rejects every corruption of
    /// every generated program with `InvalidProgram` — and never panics.
    #[test]
    fn corrupted_programs_are_rejected_not_panicked(
        (program, corruption) in corrupted_programs(),
    ) {
        let bad = corruption.apply(&program);
        let config = MhlaConfig::default();
        let flat = Platform::embedded_default(1024);
        let platform = Platform::three_level(1024, 256);
        let axes = small_axes();

        expect_invalid_program("Mhla::try_new", || {
            Mhla::try_new(&bad, &flat, config.clone())
        });
        expect_invalid_program("try_sweep_with", || {
            try_sweep_with(
                &bad,
                &flat,
                LayerId(1),
                &[256, 512],
                &config,
                &SweepOptions::default(),
            )
        });
        expect_invalid_program("try_sweep_grid_run (cold)", || {
            try_sweep_grid_run(&bad, &platform, &axes, &config, &SweepOptions::default())
        });
        expect_invalid_program("try_sweep_grid_run (improving)", || {
            try_sweep_grid_run(
                &bad,
                &platform,
                &axes,
                &config,
                &SweepOptions {
                    mode: SearchMode::Improving,
                    ..SweepOptions::default()
                },
            )
        });
        expect_invalid_program("try_sweep_grid_pruned_with", || {
            try_sweep_grid_pruned_with(&bad, &platform, &axes, &config, &PruneOptions::default())
        });
        expect_invalid_program("try_partition_scratchpad", || {
            try_partition_scratchpad(&[&bad], &flat, &config, 256)
        });
    }
}

/// Contract 3, pinned fixtures: malformed, truncated and wrong-version
/// documents are rejected with the right `MhlaError` class — never a
/// panic, never an acceptance.
#[test]
fn malformed_serialized_programs_are_rejected_not_panicked() {
    // Every fixture here fails before validation, so each lifts onto
    // `InvalidOptions`; the dangling-root case below is the one class
    // that reaches validation and becomes `InvalidProgram`.
    let fixtures: &[&str] = &[
        // Not JSON at all.
        "",
        "not json",
        "{\"format\": \"mhla.program\",",
        // JSON, wrong document shape.
        "[]",
        "{}",
        "{\"format\": \"mhla.platform\", \"version\": 1}",
        // Wrong version.
        "{\"format\": \"mhla.program\", \"version\": 2, \"name\": \"x\", \
         \"arrays\": [], \"loops\": [], \"stmts\": [], \"roots\": []}",
        // Id out of step with the arena position.
        "{\"format\": \"mhla.program\", \"version\": 1, \"name\": \"x\", \
         \"arrays\": [{\"id\": 3, \"name\": \"a\", \"dims\": [4], \"elem\": \"u8\"}], \
         \"loops\": [], \"stmts\": [], \"roots\": []}",
        // Unknown element type and bad node syntax.
        "{\"format\": \"mhla.program\", \"version\": 1, \"name\": \"x\", \
         \"arrays\": [{\"id\": 0, \"name\": \"a\", \"dims\": [4], \"elem\": \"u128\"}], \
         \"loops\": [], \"stmts\": [], \"roots\": []}",
        "{\"format\": \"mhla.program\", \"version\": 1, \"name\": \"x\", \
         \"arrays\": [], \"loops\": [], \"stmts\": [], \"roots\": [\"Q0\"]}",
    ];
    for input in fixtures {
        match catch_unwind(AssertUnwindSafe(|| program_from_json(input))) {
            Err(_) => panic!("program_from_json panicked on {input:?}"),
            Ok(Ok(_)) => panic!("program_from_json accepted {input:?}"),
            Ok(Err(e)) => {
                assert!(
                    matches!(MhlaError::from(e), MhlaError::InvalidOptions { .. }),
                    "fixture {input:?} must lift onto InvalidOptions"
                );
            }
        }
    }

    // A well-formed document whose *program* is malformed (dangling root)
    // keeps its ValidateError through the MhlaError lift.
    let dangling = "{\"format\": \"mhla.program\", \"version\": 1, \"name\": \"x\", \
         \"arrays\": [], \"loops\": [], \"stmts\": [], \"roots\": [\"S5\"]}";
    match program_from_json(dangling) {
        Err(e @ SerdesError::Invalid(_)) => {
            assert!(matches!(MhlaError::from(e), MhlaError::InvalidProgram(_)));
        }
        other => panic!("expected a validation rejection, got {other:?}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Contract 3, randomized: any truncation of any serialized program
    /// either parses back to the identical program (full length) or is
    /// rejected with a typed error — never a panic.
    #[test]
    fn truncated_serialized_programs_never_panic(
        spec in program_specs(),
        pct in 0u64..=100,
    ) {
        let program = spec.build();
        let text = program_to_json(&program);
        // Snap to a char boundary (the document is ASCII today, but the
        // contract must not depend on that).
        let mut cut = (text.len() * pct as usize) / 100;
        while !text.is_char_boundary(cut) {
            cut -= 1;
        }
        let truncated = &text[..cut];
        match catch_unwind(AssertUnwindSafe(|| program_from_json(truncated))) {
            Err(_) => prop_assert!(false, "panicked on a {cut}-byte truncation"),
            Ok(Ok(back)) => {
                prop_assert_eq!(cut, text.len(), "a strict prefix must not parse");
                prop_assert_eq!(back, program);
            }
            Ok(Err(_)) => {}
        }
    }

    /// Contract 3, corrupted programs: every structural corruption
    /// round-trips *textually* through the format and is then rejected at
    /// ingress by the embedded validation — as `Invalid`, lifting onto
    /// `InvalidProgram`.
    #[test]
    fn serialized_corrupted_programs_are_rejected_by_validation(
        (program, corruption) in corrupted_programs(),
    ) {
        let bad = corruption.apply(&program);
        let text = program_to_json(&bad);
        match catch_unwind(AssertUnwindSafe(|| program_from_json(&text))) {
            Err(_) => prop_assert!(false, "panicked deserializing a corrupted program"),
            Ok(Ok(_)) => prop_assert!(false, "accepted a corrupted program"),
            Ok(Err(e)) => {
                prop_assert!(
                    matches!(e, SerdesError::Invalid(_)),
                    "expected a validation rejection, got {}", e
                );
                prop_assert!(matches!(
                    MhlaError::from(e),
                    MhlaError::InvalidProgram(_)
                ));
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Contract 2, cold mode: a `max_evals` budget commits exactly the
    /// first `k` lex points, bit-identical to the unbudgeted run's
    /// prefix; the partial frontier is the frontier of that prefix; and
    /// resuming reproduces the full sweep.
    #[test]
    fn cold_budget_stops_on_certified_prefix_and_resumes(
        spec in program_specs(),
        k in 1u8..=5,
    ) {
        let program = spec.build();
        let platform = Platform::three_level(1024, 256);
        let axes = small_axes();
        let config = MhlaConfig::default();
        let opts = SweepOptions::default();
        let k = k as usize;

        let full = try_sweep_grid_run(&program, &platform, &axes, &config, &opts).unwrap();
        prop_assert!(full.status.is_complete());

        let budgeted = SweepOptions {
            budget: ExploreBudget::max_evals(k),
            ..opts.clone()
        };
        let partial =
            try_sweep_grid_run(&program, &platform, &axes, &config, &budgeted).unwrap();
        prop_assert_eq!(
            partial.status,
            SweepStatus::Stopped { cause: StopCause::MaxEvals, next_lex: k },
            "6-point grid, budget {} must stop exactly there", k
        );
        prop_assert_eq!(&partial.sweep.points[..], &full.sweep.points[..k]);
        // The certified partial frontier IS the frontier of the prefix.
        let prefix = GridSweep {
            layers: full.sweep.layers.clone(),
            points: full.sweep.points[..k].to_vec(),
        };
        prop_assert_eq!(partial.sweep.pareto_cycles(), prefix.pareto_cycles());
        prop_assert_eq!(partial.sweep.pareto_energy(), prefix.pareto_energy());

        let resumed =
            try_sweep_grid_resume(&program, &platform, &axes, &config, &opts, &partial).unwrap();
        prop_assert!(resumed.status.is_complete());
        prop_assert_eq!(&resumed.sweep, &full.sweep);
    }

    /// Contract 2, improving mode (strictly sequential): the budgeted
    /// prefix and the resume are bit-identical to the full run including
    /// the leg/winner bookkeeping.
    #[test]
    fn improving_budget_resume_is_bit_identical(
        spec in program_specs(),
        k in 1u8..=5,
    ) {
        let program = spec.build();
        let platform = Platform::three_level(1024, 256);
        let axes = small_axes();
        let config = MhlaConfig::default();
        let opts = SweepOptions {
            mode: SearchMode::Improving,
            ..SweepOptions::default()
        };
        let k = k as usize;

        let full = try_sweep_grid_run(&program, &platform, &axes, &config, &opts).unwrap();
        let budgeted = SweepOptions {
            budget: ExploreBudget::max_evals(k),
            ..opts.clone()
        };
        let partial =
            try_sweep_grid_run(&program, &platform, &axes, &config, &budgeted).unwrap();
        prop_assert_eq!(partial.status.next_lex(), Some(k));
        prop_assert_eq!(&partial.sweep.points[..], &full.sweep.points[..k]);

        let resumed =
            try_sweep_grid_resume(&program, &platform, &axes, &config, &opts, &partial).unwrap();
        prop_assert_eq!(&resumed, &full, "improving resume must be bit-identical");
    }

    /// Contract 2, pruned sweep: the budgeted run stops on a fully
    /// *decided* prefix — its evaluated points match the exhaustive
    /// sweep's results, its frontiers are exactly the exhaustive
    /// frontiers of that prefix (the skip rules lose nothing), and the
    /// resume reproduces the uninterrupted pruned run.
    #[test]
    fn pruned_budget_frontier_is_certified_and_resumes(
        spec in program_specs(),
        k in 1u8..=5,
    ) {
        let program = spec.build();
        let platform = Platform::three_level(1024, 256);
        let axes = small_axes();
        let config = MhlaConfig::default();
        let opts = PruneOptions::default();
        let k = k as usize;

        let full =
            try_sweep_grid_pruned_with(&program, &platform, &axes, &config, &opts).unwrap();
        let budgeted = PruneOptions {
            budget: ExploreBudget::max_evals(k),
            ..opts.clone()
        };
        let partial =
            try_sweep_grid_pruned_with(&program, &platform, &axes, &config, &budgeted).unwrap();
        prop_assert!(partial.stats.evaluated <= k);

        if let SweepStatus::Stopped { next_lex, .. } = partial.status {
            // The exhaustive (unpruned, cold) grid is the certificate
            // oracle: its lex prefix of the decided points must have the
            // same Pareto surfaces as the pruned partial result.
            let exhaustive =
                try_sweep_grid_run(&program, &platform, &axes, &config, &SweepOptions::default())
                    .unwrap();
            let prefix = GridSweep {
                layers: exhaustive.sweep.layers.clone(),
                points: exhaustive.sweep.points[..next_lex].to_vec(),
            };
            prop_assert_eq!(
                front_caps(&partial.sweep, &partial.sweep.pareto_cycles()),
                front_caps(&prefix, &prefix.pareto_cycles()),
                "partial cycle frontier must certify the decided prefix"
            );
            prop_assert_eq!(
                front_caps(&partial.sweep, &partial.sweep.pareto_energy()),
                front_caps(&prefix, &prefix.pareto_energy()),
                "partial energy frontier must certify the decided prefix"
            );
            // Every evaluated point is standalone-identical.
            for p in &partial.sweep.points {
                let oracle = prefix
                    .points
                    .iter()
                    .find(|o| o.capacities == p.capacities)
                    .expect("evaluated point inside the decided prefix");
                prop_assert_eq!(&p.result, &oracle.result);
            }
        } else {
            // A tiny budget can still complete the grid when the tail is
            // all skips; then the result must equal the full run.
            prop_assert_eq!(&partial.sweep, &full.sweep);
        }

        let resumed = try_sweep_grid_pruned_resume(
            &program, &platform, &axes, &config, &opts, &partial,
        )
        .unwrap();
        prop_assert!(resumed.status.is_complete());
        prop_assert_eq!(&resumed.sweep, &full.sweep);
        prop_assert_eq!(resumed.stats, full.stats);
    }

    /// A cancel flag raised before the run and an already-expired
    /// deadline both stop every scheduler at lex index 0 with zero
    /// points, reporting the right cause — and the stopped result
    /// resumes to the full sweep.
    #[test]
    fn preset_cancel_and_expired_deadline_stop_cleanly(spec in program_specs()) {
        let program = spec.build();
        let platform = Platform::three_level(1024, 256);
        let axes = small_axes();
        let config = MhlaConfig::default();

        let cancelled = ExploreBudget {
            cancel: Some(Arc::new(AtomicBool::new(true))),
            ..ExploreBudget::default()
        };
        let expired = ExploreBudget {
            deadline: Some(Instant::now()),
            ..ExploreBudget::default()
        };
        for (budget, cause) in [
            (cancelled, StopCause::Cancelled),
            (expired, StopCause::Deadline),
        ] {
            let run = try_sweep_grid_run(
                &program,
                &platform,
                &axes,
                &config,
                &SweepOptions { budget: budget.clone(), ..SweepOptions::default() },
            )
            .unwrap();
            prop_assert_eq!(run.status, SweepStatus::Stopped { cause, next_lex: 0 });
            prop_assert!(run.sweep.points.is_empty());

            let pruned = try_sweep_grid_pruned_with(
                &program,
                &platform,
                &axes,
                &config,
                &PruneOptions { budget: budget.clone(), ..PruneOptions::default() },
            )
            .unwrap();
            prop_assert_eq!(pruned.status, SweepStatus::Stopped { cause, next_lex: 0 });
            prop_assert!(pruned.sweep.points.is_empty());

            // require_complete surfaces the stop as a typed error.
            let err = run.require_complete().unwrap_err();
            match cause {
                StopCause::Cancelled => {
                    prop_assert!(matches!(err, MhlaError::Cancelled { .. }), "{err}")
                }
                _ => prop_assert!(
                    matches!(err, MhlaError::BudgetExhausted { .. }),
                    "{err}"
                ),
            }
        }

        // Resuming a run stopped before its first point replays the whole
        // grid.
        let opts = SweepOptions::default();
        let stopped = try_sweep_grid_run(
            &program,
            &platform,
            &axes,
            &config,
            &SweepOptions {
                budget: ExploreBudget {
                    cancel: Some(Arc::new(AtomicBool::new(true))),
                    ..ExploreBudget::default()
                },
                ..opts.clone()
            },
        )
        .unwrap();
        let resumed =
            try_sweep_grid_resume(&program, &platform, &axes, &config, &opts, &stopped).unwrap();
        let full = try_sweep_grid_run(&program, &platform, &axes, &config, &opts).unwrap();
        prop_assert_eq!(&resumed.sweep, &full.sweep);
    }
}

// ---------------------------------------------------------------------------
// Contract 4: the serve ingress
// ---------------------------------------------------------------------------

/// One line through a fresh service, under `catch_unwind`: the response
/// must exist (a panic fails the test) and parse as a response envelope.
fn serve_one(line: &str) -> String {
    let service = Service::new(ServiceOptions::default());
    match catch_unwind(AssertUnwindSafe(|| service.handle_line(line))) {
        Ok(response) => response,
        Err(_) => panic!(
            "Service::handle_line panicked on {:?}…",
            &line[..line.len().min(120)]
        ),
    }
}

/// The `error.class` of a response line, or `None` for an ok response.
fn served_error_class(response: &str) -> Option<String> {
    let doc = Json::parse(response).expect("every response line is valid JSON");
    let fields = doc.as_object("response").expect("response object");
    match field(fields, "ok", "response").expect("ok field") {
        Json::Bool(true) => None,
        _ => {
            let e = field(fields, "error", "response")
                .expect("error body")
                .as_object("error")
                .expect("error object");
            Some(
                field(e, "class", "error")
                    .expect("class")
                    .as_str("class")
                    .expect("class string")
                    .to_string(),
            )
        }
    }
}

/// An explore request line around an app program, with extra fields.
fn serve_request(extra: &[(&str, Json)]) -> String {
    let program = mhla::apps::fir_bank::app().program;
    let mut fields = vec![
        ("op".to_string(), Json::Str("explore".into())),
        ("program".to_string(), program_value(&program)),
        ("platform".to_string(), Json::Str("three-level".into())),
    ];
    for (k, v) in extra {
        fields.push(((*k).to_string(), v.clone()));
    }
    Json::Obj(fields).render_compact()
}

fn axes_json(layer: u64, capacities: &[u64]) -> Json {
    Json::Arr(vec![Json::Obj(vec![
        ("layer".into(), Json::from_u64(layer)),
        (
            "capacities".into(),
            Json::Arr(capacities.iter().map(|&c| Json::from_u64(c)).collect()),
        ),
    ])])
}

/// Nesting at the parser's 128-level cap: depths below it fail on shape,
/// depths at/past it on the recursion guard — all as one `bad_request`
/// line, stack intact.
#[test]
fn deep_nesting_at_the_parser_cap_is_rejected_not_panicked() {
    for depth in [1usize, 64, 127, 128, 129, 512, 4096] {
        // The whole document is the nest…
        let doc = format!("{}{}", "[".repeat(depth), "]".repeat(depth));
        assert_eq!(
            served_error_class(&serve_one(&doc)).as_deref(),
            Some("bad_request"),
            "bare nest, depth {depth}"
        );
        // …and the nest hides inside an otherwise-plausible request.
        let embedded = format!(
            "{{\"op\":\"explore\",\"program\":{}{}}}",
            "[".repeat(depth),
            "]".repeat(depth)
        );
        let class = served_error_class(&serve_one(&embedded));
        assert!(
            matches!(class.as_deref(), Some("bad_request" | "invalid_options")),
            "embedded nest, depth {depth}: got {class:?}"
        );
    }
}

/// Number text the engine must never trust: overflow exponents parse as
/// raw text and fail typed at the field conversion; `NaN`/`Infinity` are
/// not JSON at all.
#[test]
fn hostile_number_text_is_rejected_not_panicked() {
    for line in [
        "NaN".to_string(),
        "Infinity".to_string(),
        "{\"op\":\"explore\",\"program\":NaN}".to_string(),
        "{\"op\":\"explore\",\"program\":Infinity}".to_string(),
        "{\"op\":\"explore\",\"program\":1e999}".to_string(),
        "{\"op\":\"explore\",\"program\":-1e999}".to_string(),
        serve_request(&[("max_evals", Json::Num("1e999".into()))]),
        serve_request(&[("max_evals", Json::Num("-1".into()))]),
        serve_request(&[("timeout_ms", Json::Num("1e999".into()))]),
        serve_request(&[(
            "objective",
            Json::Obj(vec![
                ("energy_weight".into(), Json::Num("1e999".into())),
                ("cycle_weight".into(), Json::Num("1".into())),
            ]),
        )]),
    ] {
        let class = served_error_class(&serve_one(&line));
        assert!(
            matches!(class.as_deref(), Some("bad_request" | "invalid_options")),
            "{:?}… must fail typed, got {class:?}",
            &line[..line.len().min(80)]
        );
    }
}

/// A document over the request-size cap is answered (one `bad_request`
/// line) rather than parsed, panicked on, or silently dropped.
#[test]
fn oversized_documents_are_rejected_not_panicked() {
    let oversized = format!("{{\"op\":\"{}\"}}", "x".repeat(MAX_REQUEST_BYTES));
    assert_eq!(
        served_error_class(&serve_one(&oversized)).as_deref(),
        Some("bad_request")
    );
}

/// Degenerate axes: zero-length axis lists are a legal (empty) sweep;
/// zero capacities, the off-chip layer and out-of-range layers report
/// `infeasible_point` — the same class the library entry points raise.
#[test]
fn degenerate_axes_get_the_library_error_classes() {
    let empty = serve_one(&serve_request(&[("axes", Json::Arr(vec![]))]));
    assert_eq!(served_error_class(&empty), None, "got {empty}");
    assert!(
        empty.contains("\"points\":[]") && empty.contains("\"status\":\"complete\""),
        "zero axes must serve an empty complete frontier: {empty}"
    );

    for (what, axes) in [
        ("zero capacity", axes_json(1, &[0])),
        (
            "zero capacity among good ones",
            axes_json(1, &[256, 0, 1024]),
        ),
        ("off-chip layer", axes_json(0, &[1024])),
        ("out-of-range layer", axes_json(9, &[1024])),
    ] {
        let response = serve_one(&serve_request(&[("axes", axes)]));
        assert_eq!(
            served_error_class(&response).as_deref(),
            Some("infeasible_point"),
            "{what}: got {response}"
        );
    }
    // An axis with no capacities is a zero-candidate (empty) sweep.
    let no_caps = serve_one(&serve_request(&[("axes", axes_json(1, &[]))]));
    assert_eq!(served_error_class(&no_caps), None, "got {no_caps}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Contract 4, randomized: every structural corruption of every
    /// generated program, wire-encoded into an explore request, comes
    /// back as the `invalid_program` class — exactly what contract 1
    /// pins for the library entry points — and never panics.
    #[test]
    fn corrupted_programs_over_the_wire_are_rejected_not_panicked(
        (program, corruption) in corrupted_programs(),
    ) {
        let bad = corruption.apply(&program);
        let line = Json::Obj(vec![
            ("op".into(), Json::Str("explore".into())),
            ("program".into(), program_value(&bad)),
        ])
        .render_compact();
        prop_assert_eq!(
            served_error_class(&serve_one(&line)).as_deref(),
            Some("invalid_program")
        );
    }
}
