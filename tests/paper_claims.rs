//! Pins the paper's headline claims as regression tests: the numbers in
//! EXPERIMENTS.md must keep reproducing. Bands are deliberately wider than
//! the measured values (platform constants may be retuned) but narrow
//! enough that a broken analysis or scheduler fails loudly.

use mhla::core::explore::{default_capacities, sweep};
use mhla::core::MhlaConfig;
use mhla::hierarchy::{LayerId, Platform};
use mhla_bench::{evaluate_app, te_ablation_point_frac};

/// §3 / Figure 2: "the first step boost performance from 40% to 60%
/// compared to the out of the box code for specific memory sizes".
#[test]
fn step1_gains_sit_in_the_papers_neighbourhood() {
    let figures: Vec<_> = mhla_apps::all_apps().iter().map(evaluate_app).collect();
    for f in &figures {
        assert!(
            f.mhla_gain_pct() > 10.0,
            "{}: step-1 gain {:.1}% collapsed",
            f.name,
            f.mhla_gain_pct()
        );
        assert!(
            f.mhla_gain_pct() < 85.0,
            "{}: step-1 gain {:.1}% implausible",
            f.name,
            f.mhla_gain_pct()
        );
    }
    let in_band = figures
        .iter()
        .filter(|f| (40.0..=70.0).contains(&f.mhla_gain_pct()))
        .count();
    assert!(
        in_band >= 6,
        "only {in_band}/9 apps inside the paper's 40-70% band"
    );
    // The flagship: full-search ME around the paper's 60% headline.
    let me = figures.iter().find(|f| f.name == "full_search_me").unwrap();
    assert!(
        (45.0..=70.0).contains(&me.mhla_gain_pct()),
        "full-search ME at {:.1}%, paper headline is 60%",
        me.mhla_gain_pct()
    );
}

/// §3 / Figure 2: TE "can boost performance of up 33%, if there are a lot
/// of processing loops that can hide prefetching block transfers" and
/// "pushes performance towards the ideal case".
#[test]
fn te_boost_reaches_double_digits_and_pushes_toward_ideal() {
    let figures: Vec<_> = mhla_apps::all_apps().iter().map(evaluate_app).collect();
    let best_te = figures.iter().map(|f| f.te_gain_pct()).fold(0.0, f64::max);
    assert!(
        best_te >= 10.0,
        "best TE boost {best_te:.1}% — the prefetching stopped working"
    );
    // On apps where double buffers fit, TE must close most of the gap to
    // the ideal bound.
    let well_hidden = figures.iter().filter(|f| f.hiding_pct() > 85.0).count();
    assert!(
        well_hidden >= 6,
        "only {well_hidden}/9 apps get >85% of their stall hidden"
    );
    // The transfer-bound ablation approaches the paper's 33% figure.
    let wavelet = mhla_apps::wavelet::app();
    let lean = te_ablation_point_frac(&wavelet, 1, 4);
    assert!(
        lean.te_gain_pct() >= 18.0,
        "transfer-bound wavelet TE boost {:.1}% too small",
        lean.te_gain_pct()
    );
}

/// §3 / Figure 3: "an optimum memory allocation and assignment can also
/// reduce energy consumption significantly up to 70%".
#[test]
fn energy_savings_are_significant_on_every_app() {
    for f in mhla_apps::all_apps().iter().map(evaluate_app) {
        assert!(
            f.energy_gain_pct() >= 35.0,
            "{}: energy saving {:.1}% not significant",
            f.name,
            f.energy_gain_pct()
        );
    }
}

/// §1/§2: "performs a thorough trade-off exploration for different memory
/// layer sizes … able to find all the optimal trade-off points".
#[test]
fn exploration_finds_a_nontrivial_pareto_front() {
    let app = mhla_apps::cavity_detect::app();
    let platform = Platform::embedded_default(1024);
    let s = sweep(
        &app.program,
        &platform,
        LayerId(1),
        &default_capacities(),
        &MhlaConfig::default(),
    );
    let front = s.pareto_cycles();
    assert!(
        front.len() >= 3,
        "degenerate Pareto front: {} point(s)",
        front.len()
    );
    // The front actually trades capacity for cycles.
    let first = &s.points[front[0]];
    let last = &s.points[*front.last().unwrap()];
    assert!(last.capacity > first.capacity);
    assert!(
        (first.cycles() as f64) > 1.1 * last.cycles() as f64,
        "the extra capacity buys less than 10% cycles"
    );
}

/// §1: "In case that our architecture does not support a memory transfer
/// engine, TE are not applicable."
#[test]
fn te_is_not_applicable_without_an_engine() {
    use mhla::core::Mhla;
    for app in mhla_apps::all_apps().into_iter().take(3) {
        let platform = Platform::without_dma(app.default_scratchpad);
        let r = Mhla::new(&app.program, &platform, MhlaConfig::default()).run();
        assert!(!r.te.applicable, "{}", app.name());
        assert_eq!(r.te.extended_count(), 0, "{}", app.name());
    }
}
