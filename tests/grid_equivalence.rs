//! The multi-layer grid sweep must be *exactly* the composition of
//! standalone runs — the PR acceptance bar:
//!
//! * every grid point on `Platform::three_level` is bit-identical to a
//!   cold standalone `Mhla::run` on the same platform (same assignment,
//!   same cost breakdowns including the floating-point energy fields,
//!   same TE schedule);
//! * on two-layer platforms a 1-axis grid degenerates to exactly the
//!   existing `sweep` output — same points, same Pareto fronts — on all
//!   nine applications.

use mhla::core::explore::{
    default_capacities, sweep, sweep_grid, sweep_grid_with, GridAxis, SweepOptions,
};
use mhla::core::{Mhla, MhlaConfig};
use mhla::hierarchy::{LayerId, Platform};

#[test]
fn grid_points_are_bit_identical_to_standalone_runs_on_three_level() {
    let platform = Platform::three_level_default();
    let axes = [
        GridAxis::new(LayerId(1), vec![2048u64, 8192, 32768]),
        GridAxis::new(LayerId(2), vec![256u64, 1024]),
    ];
    let config = MhlaConfig::default();
    for app in mhla_apps::all_apps() {
        let grid = sweep_grid(&app.program, &platform, &axes, &config);
        assert_eq!(grid.points.len(), 6, "{}", app.name());
        for point in &grid.points {
            let pf = platform.with_layer_capacities(&[
                (LayerId(1), point.capacities[0]),
                (LayerId(2), point.capacities[1]),
            ]);
            let standalone = Mhla::new(&app.program, &pf, config.clone()).run();
            assert_eq!(
                point.result,
                standalone,
                "{} at {:?}: grid point diverges from a standalone run",
                app.name(),
                point.capacities
            );
        }
    }
}

#[test]
fn single_axis_grid_degenerates_to_the_sweep_on_all_apps() {
    let caps = default_capacities();
    let platform = Platform::embedded_default(1024);
    let config = MhlaConfig::default();
    for app in mhla_apps::all_apps() {
        let s = sweep(&app.program, &platform, LayerId(1), &caps, &config);
        let g = sweep_grid(
            &app.program,
            &platform,
            &[GridAxis::new(LayerId(1), caps.clone())],
            &config,
        );
        assert_eq!(g.points.len(), s.points.len(), "{}", app.name());
        for (gp, sp) in g.points.iter().zip(&s.points) {
            assert_eq!(gp.capacities, vec![sp.capacity], "{}", app.name());
            assert_eq!(
                gp.result,
                sp.result,
                "{} at {} B: grid diverges from sweep",
                app.name(),
                sp.capacity
            );
        }
        assert_eq!(g.pareto_cycles(), s.pareto_cycles(), "{}", app.name());
        assert_eq!(g.pareto_energy(), s.pareto_energy(), "{}", app.name());
    }
}

#[test]
fn grid_options_do_not_change_results() {
    // Chunking, warm starts and the thread fan-out are pure wall-time
    // knobs: the grid's points are identical under every combination, so
    // results never depend on the machine's core count.
    let platform = Platform::three_level_default();
    let axes = [
        GridAxis::new(LayerId(1), vec![2048u64, 8192, 32768]),
        GridAxis::new(LayerId(2), vec![128u64, 512, 2048]),
    ];
    let config = MhlaConfig::default();
    let app = mhla_apps::video_encoder::app();
    let reference = sweep_grid(&app.program, &platform, &axes, &config);
    for warm_start in [false, true] {
        for parallel in [false, true] {
            for chunk in [1usize, 2, 64] {
                let opts = SweepOptions {
                    warm_start,
                    parallel,
                    chunk,
                    ..SweepOptions::default()
                };
                let g = sweep_grid_with(&app.program, &platform, &axes, &config, opts.clone());
                assert_eq!(g.points.len(), reference.points.len());
                for (a, b) in g.points.iter().zip(&reference.points) {
                    assert_eq!(a.result, b.result, "{opts:?}");
                }
            }
        }
    }
}
