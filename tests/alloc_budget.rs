//! Steady-state allocation budget for the sweep evaluation hot path.
//!
//! Compiled only under `--features alloc-counter` (the file is empty
//! otherwise), and meaningful only in `--release` — run it as
//!
//! ```text
//! cargo test --release --features alloc-counter --test alloc_budget
//! ```
//!
//! The counting allocator is registered process-wide and the suite sweep
//! is run twice: the first pass warms the per-thread evaluation scratch
//! (the in-place-resized platform and every workspace buffer grow to
//! their high-water marks), the second pass is measured. The budget is a
//! *whole-sweep* average per evaluated point, so it includes the
//! per-sweep analysis (reuse chains, program facts, move space) and the
//! per-point result assembly (assignments, breakdowns, TE schedules,
//! run stats) — the hot search loop itself is allocation-free, which is
//! what pins the average this low. A regression that reintroduces
//! per-candidate or per-point scratch allocation blows the bound by an
//! order of magnitude.

#![cfg(feature = "alloc-counter")]

use mhla::core::explore::{default_capacities, sweep_with, SweepOptions};
use mhla::core::MhlaConfig;
use mhla::hierarchy::{LayerId, Platform};

#[global_allocator]
static COUNTING_ALLOC: mhla_alloc_counter::CountingAlloc = mhla_alloc_counter::CountingAlloc::new();

/// Pinned whole-sweep allocation events per evaluated point (suite
/// average, sequential mode, second pass). Measured ~109 on this
/// codebase; the headroom absorbs allocator/platform noise, not
/// regressions — a per-candidate allocation in the greedy loop costs
/// thousands per point.
const BUDGET_ALLOCS_PER_EVAL: f64 = 250.0;

#[test]
fn steady_state_sweep_allocations_stay_under_budget() {
    let caps = default_capacities();
    let platform = Platform::embedded_default(1024);
    let config = MhlaConfig::default();
    // Sequential: every point runs on this thread, so the second pass
    // reuses one warmed EngineScratch for the whole suite.
    let opts = SweepOptions {
        parallel: false,
        ..SweepOptions::default()
    };
    let apps = mhla_apps::all_apps();
    for app in &apps {
        sweep_with(
            &app.program,
            &platform,
            LayerId(1),
            &caps,
            &config,
            opts.clone(),
        );
    }
    let mut total_allocs = 0u64;
    let mut total_points = 0usize;
    for app in &apps {
        let (s, allocs, _) = mhla_alloc_counter::allocations_during(|| {
            sweep_with(
                &app.program,
                &platform,
                LayerId(1),
                &caps,
                &config,
                opts.clone(),
            )
        });
        total_allocs += allocs;
        total_points += s.points.len();
    }
    assert!(
        mhla_alloc_counter::is_counting(),
        "counting allocator not registered (zero events counted)"
    );
    let per_eval = total_allocs as f64 / total_points.max(1) as f64;
    assert!(
        per_eval <= BUDGET_ALLOCS_PER_EVAL,
        "steady-state sweep allocates {per_eval:.1} events/eval \
         ({total_allocs} over {total_points} points), budget {BUDGET_ALLOCS_PER_EVAL}"
    );
}
