//! Motion estimation walkthrough: the paper's flagship workload.
//!
//! Shows the copy-candidate analysis (search window vs. current block),
//! how the greedy assignment spends the scratchpad, what the Figure-1 TE
//! algorithm decides per block transfer, and the simulated outcome at
//! three scratchpad sizes.
//!
//! Run with `cargo run --release --example motion_estimation`.

use mhla::core::{Mhla, MhlaConfig};
use mhla::hierarchy::Platform;
use mhla::reuse::ReuseAnalysis;
use mhla::sim::Simulator;
use mhla_apps::full_search_me::{self, Params};

fn main() {
    let app = full_search_me::app();
    println!(
        "full-search motion estimation: {}x{} luma, 16x16 blocks, +/-{} search\n",
        Params::default().width,
        Params::default().height,
        Params::default().search
    );

    // --- Copy candidates: what the reuse analysis finds. ---------------
    let reuse = ReuseAnalysis::analyze(&app.program);
    println!("copy candidates (per array, selected levels):");
    for ar in reuse.arrays() {
        let name = &app.program.array(ar.array).name;
        for cc in ar.candidates().iter().take(4) {
            println!("  {name:<6} {cc}");
        }
    }

    // --- The flow at three scratchpad sizes. ----------------------------
    println!(
        "\n{:<10} {:>12} {:>12} {:>12} {:>9} {:>7}",
        "spm", "baseline", "mhla", "mhla+te", "stall", "te-ext"
    );
    for spm in [2 * 1024u64, 8 * 1024, 16 * 1024] {
        let platform = Platform::embedded_default(spm);
        let mhla = Mhla::new(&app.program, &platform, MhlaConfig::default());
        let result = mhla.run();
        let model = mhla.cost_model();
        let sim = Simulator::new(&model, &result.assignment, &result.te).run();
        println!(
            "{:<10} {:>12} {:>12} {:>12} {:>9} {:>4}/{:<2}",
            format!("{}K", spm / 1024),
            result.baseline_cycles(),
            result.mhla_cycles(),
            sim.total_cycles(),
            sim.stall_cycles,
            result.te.extended_count(),
            result.te.transfers.len(),
        );
    }

    println!(
        "\nreading the table: the search window only fits from 8K up; the\n\
         16K point additionally double-buffers the current block so its\n\
         refreshes ride behind the SAD loops (Figure 1's time extension)."
    );
}
