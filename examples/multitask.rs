//! Multi-task extension demo (the paper's stated future work): two
//! applications share one platform; the scratchpad is statically
//! partitioned between them by exact dynamic programming over a per-task
//! capacity sweep.
//!
//! Run with `cargo run --release --example multitask`.

use mhla::core::multitask::partition_scratchpad;
use mhla::core::MhlaConfig;
use mhla::hierarchy::Platform;

fn main() {
    let me = mhla_apps::full_search_me::app();
    let fir = mhla_apps::fir_bank::app();
    let platform = Platform::embedded_default(16 * 1024);

    println!(
        "two tasks on one platform ({} B scratchpad):\n  A: {}\n  B: {}\n",
        16 * 1024,
        me.description,
        fir.description
    );

    let r = partition_scratchpad(
        &[&me.program, &fir.program],
        &platform,
        &MhlaConfig::default(),
        1024,
    );

    println!("optimal static partition (1 KiB granularity):");
    for (i, (app, bytes)) in [&me, &fir].iter().zip(&r.partitions).enumerate() {
        let res = &r.results[i];
        println!(
            "  {:<18} {:>6} B -> {:>12} cycles (baseline {:>12}, {:.1}% saved)",
            app.name(),
            bytes,
            res.mhla_te_cycles(),
            res.baseline_cycles(),
            100.0 * (1.0 - res.mhla_te_cycles() as f64 / res.baseline_cycles() as f64)
        );
    }
    println!(
        "\ncombined: {} cycles vs {} out of the box ({:.1}% saved), {:.2} uJ",
        r.total_cycles(),
        r.baseline_cycles(),
        100.0 * (1.0 - r.total_cycles() as f64 / r.baseline_cycles() as f64),
        r.total_energy_pj() / 1e6
    );
}
