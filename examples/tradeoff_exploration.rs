//! Trade-off exploration: sweep the scratchpad size for one application and
//! print the (capacity, cycles, energy) curve with its Pareto points —
//! the exploration the paper's prototype tool performs ("able to find all
//! the optimal trade-off points").
//!
//! Run with `cargo run --release --example tradeoff_exploration`.

use mhla::core::explore::{default_capacities, sweep};
use mhla::core::{report, MhlaConfig};
use mhla::hierarchy::{LayerId, Platform};

fn main() {
    let app = mhla_apps::cavity_detect::app();
    let platform = Platform::embedded_default(1024);
    let caps = default_capacities();

    println!("capacity sweep for `{}`:\n", app.name());
    let s = sweep(
        &app.program,
        &platform,
        LayerId(1),
        &caps,
        &MhlaConfig::default(),
    );

    let front_c = s.pareto_cycles();
    let front_e = s.pareto_energy();
    println!(
        "{:>10} {:>14} {:>14} {:>12} {:>8}",
        "capacity", "cycles(te)", "energy [uJ]", "pareto-cyc", "pareto-E"
    );
    for (i, p) in s.points.iter().enumerate() {
        println!(
            "{:>10} {:>14} {:>14.2} {:>12} {:>8}",
            p.capacity,
            p.cycles(),
            p.energy_pj() / 1e6,
            if front_c.contains(&i) { "*" } else { "" },
            if front_e.contains(&i) { "*" } else { "" },
        );
    }

    let best = s.best_cycles().expect("non-empty sweep");
    println!(
        "\nbest performance point: {} B scratchpad ({} cycles)",
        best.capacity,
        best.cycles()
    );
    println!("\nCSV (paste into a plotting tool):");
    print!("{}", report::sweep_csv(&s));
}
