//! Quickstart: build a kernel, run both MHLA steps, simulate, print the
//! paper's four performance bars for it.
//!
//! Run with `cargo run --release --example quickstart`.

use mhla::core::{report, Mhla, MhlaConfig};
use mhla::hierarchy::Platform;
use mhla::ir::{ElemType, ProgramBuilder};
use mhla::sim::Simulator;

fn main() {
    // 1. Describe the kernel: a table-driven filter over a sample stream.
    //    `for rep { for i { out[i] = f(signal[i..i+8], taps[0..8]) } }`
    let mut b = ProgramBuilder::new("quickstart_filter");
    let signal = b.array("signal", &[4104], ElemType::I16);
    let taps = b.array("taps", &[8], ElemType::I16);
    let out = b.array("out", &[4096], ElemType::I16);

    let ln = b.begin_loop("n", 0, 4096, 1);
    let lk = b.begin_loop("k", 0, 8, 1);
    let (n, k) = (b.var(ln), b.var(lk));
    b.stmt("mac")
        .read(signal, vec![n.clone() + k.clone()])
        .read(taps, vec![k])
        .compute_cycles(4)
        .finish();
    b.end_loop();
    b.stmt("store")
        .write(out, vec![n])
        .compute_cycles(2)
        .finish();
    b.end_loop();
    let program = b.finish();

    // 2. Describe the platform: off-chip SDRAM + 1 KiB scratchpad + DMA.
    let platform = Platform::embedded_default(1024);
    println!("{platform}\n");
    println!("{program}");

    // 3. Run MHLA: step 1 (assignment) + step 2 (time extensions).
    let mhla = Mhla::new(&program, &platform, MhlaConfig::default());
    let result = mhla.run();
    println!("{}", report::describe(&program, mhla.reuse(), &result));

    // 4. Simulate and print the Figure-2 bars.
    let model = mhla.cost_model();
    let sim = Simulator::new(&model, &result.assignment, &result.te).run();
    println!("simulated MHLA+TE execution: {sim}");
    println!();
    println!("{}", report::performance_header());
    println!("{}", report::performance_row("quickstart", &result));
    println!();
    println!("{}", report::energy_header());
    println!("{}", report::energy_row("quickstart", &result));

    let gain = 100.0 * (1.0 - result.mhla_cycles() as f64 / result.baseline_cycles() as f64);
    let te = 100.0 * (1.0 - result.mhla_te_cycles() as f64 / result.mhla_cycles() as f64);
    println!("\nstep 1 cuts {gain:.1}% of the cycles; time extensions add {te:.1}% more");
}
