//! Time Extensions under the microscope: one transfer-bound kernel, four
//! platform variants, showing when prefetching works, when the size
//! constraint forbids it, and that a platform without a memory transfer
//! engine gets no TE at all (the paper's explicit caveat).
//!
//! Run with `cargo run --release --example prefetch_te`.

use mhla::core::{Mhla, MhlaConfig};
use mhla::hierarchy::Platform;
use mhla::ir::{ElemType, Program, ProgramBuilder};
use mhla::sim::Simulator;

/// Blocked processing: 64 tiles of 256 B, each scanned four times.
fn kernel() -> Program {
    let mut b = ProgramBuilder::new("blocked_scan");
    let data = b.array("data", &[16384], ElemType::U8);
    let lt = b.begin_loop("tile", 0, 64, 1);
    let lr = b.begin_loop("rep", 0, 4, 1);
    let li = b.begin_loop("i", 0, 256, 1);
    let (t, i) = (b.var(lt), b.var(li));
    b.stmt("use")
        .read(data, vec![t * 256 + i])
        .compute_cycles(2)
        .finish();
    b.end_loop();
    b.end_loop();
    b.end_loop();
    let _ = lr;
    b.finish()
}

fn run(name: &str, platform: &Platform, program: &Program) {
    let mhla = Mhla::new(program, platform, MhlaConfig::default());
    let result = mhla.run();
    let model = mhla.cost_model();
    let sim = Simulator::new(&model, &result.assignment, &result.te).run();
    let te_state = if !result.te.applicable {
        "not applicable (no DMA engine)".to_string()
    } else if result.te.extended_count() == 0 {
        "blocked by the size constraint".to_string()
    } else {
        let bt = &result.te.transfers[result.te.transfers.len() - 1];
        format!(
            "extended {} transfer(s); deepest uses {} buffers",
            result.te.extended_count(),
            bt.buffers
        )
    };
    println!(
        "{name:<28} {:>9} cycles, {:>7} stalled ({:>5.1}%)  TE: {te_state}",
        sim.total_cycles(),
        sim.stall_cycles,
        100.0 * sim.stall_fraction(),
    );
}

fn main() {
    let program = kernel();
    println!("kernel: 64 tiles x 4 scans x 256 B, 2 compute cycles per byte\n");

    // Room for double buffering: TE hides the tile fetches.
    run("1K spm + DMA", &Platform::embedded_default(1024), &program);
    // Exactly one buffer fits: Figure 1's fits_size check fires.
    run("256B spm + DMA", &Platform::embedded_default(256), &program);
    // No memory transfer engine: copies run on the CPU, TE not applicable.
    run("1K spm, no DMA", &Platform::without_dma(1024), &program);
    // Two DMA channels: fills and refreshes overlap each other too.
    let mut multi = Platform::embedded_default(1024);
    multi = Platform::new(
        "embedded-2ch",
        multi.layers().map(|(_, l)| l.clone()).collect(),
        Some(mhla::hierarchy::DmaModel::multi_channel(2)),
        *multi.cpu(),
    )
    .expect("valid platform");
    run("1K spm + 2-channel DMA", &multi, &program);

    println!(
        "\nthe 256B row shows the paper's size constraint: the copy fits, but\n\
         its time-extended (double-buffered) version does not, so the DMA\n\
         initiation cannot move earlier and every fetch stalls the CPU."
    );
}
