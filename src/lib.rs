//! # mhla — Memory Hierarchical Layer Assignment with Time Extensions
//!
//! Facade crate re-exporting the full MHLA reproduction workspace. See the
//! individual crates for details:
//!
//! * [`ir`] — loop-nest / affine-access intermediate representation,
//! * [`hierarchy`] — memory-layer, energy and DMA models,
//! * [`reuse`] — data-reuse copy-candidate analysis,
//! * [`lifetime`] — lifetimes and in-place storage optimization,
//! * [`core`] — the MHLA assignment and Time-Extension steps (the paper),
//! * [`sim`] — the cycle-approximate CPU + DMA platform simulator,
//! * [`apps`] — the nine evaluation workloads.

#![forbid(unsafe_code)]

pub use mhla_apps as apps;
pub use mhla_core as core;
pub use mhla_hierarchy as hierarchy;
pub use mhla_ir as ir;
pub use mhla_lifetime as lifetime;
pub use mhla_reuse as reuse;
pub use mhla_sim as sim;
