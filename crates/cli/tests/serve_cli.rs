//! End-to-end tests of `mhla serve` / `submit` / `status` / `shutdown`
//! as spawned processes: a real server on an ephemeral port, real client
//! invocations, and byte-comparison of the served CSV against `mhla
//! grid` over the same inputs.

use std::fs;
use std::io::{BufRead, BufReader};
use std::path::PathBuf;
use std::process::{Child, Command, Output, Stdio};
use std::time::{Duration, Instant};

fn mhla(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_mhla"))
        .args(args)
        .output()
        .expect("spawn mhla")
}

fn stderr(out: &Output) -> String {
    String::from_utf8(out.stderr.clone()).expect("utf-8 stderr")
}

fn stdout(out: &Output) -> String {
    String::from_utf8(out.stdout.clone()).expect("utf-8 stdout")
}

fn scratch(test: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mhla-serve-cli-{}-{test}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// A spawned `mhla serve`, killed on drop if a test fails before the
/// graceful shutdown.
struct ServeGuard(Child);

impl Drop for ServeGuard {
    fn drop(&mut self) {
        if matches!(self.0.try_wait(), Ok(None)) {
            let _ = self.0.kill();
            let _ = self.0.wait();
        }
    }
}

/// Starts `mhla serve` on an ephemeral port and returns the guard plus
/// the bound address parsed from its "listening on …" line.
fn start_server() -> (ServeGuard, String) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_mhla"))
        .args([
            "serve",
            "--addr",
            "127.0.0.1:0",
            "--workers",
            "2",
            "--queue",
            "8",
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn mhla serve");
    let pipe = child.stdout.take().expect("serve stdout");
    let mut line = String::new();
    BufReader::new(pipe)
        .read_line(&mut line)
        .expect("read the ready line");
    let addr = line
        .trim()
        .strip_prefix("listening on ")
        .unwrap_or_else(|| panic!("unexpected ready line {line:?}"))
        .to_string();
    (ServeGuard(child), addr)
}

/// Waits for a child to exit on its own (the graceful-shutdown drain).
fn wait_exit(child: &mut Child, timeout: Duration) -> std::process::ExitStatus {
    let start = Instant::now();
    while start.elapsed() < timeout {
        if let Some(status) = child.try_wait().expect("poll serve") {
            return status;
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    panic!("`mhla serve` did not drain within {timeout:?}");
}

const AXES: &str = "1:1024,4096;2:128,256";

#[test]
fn submit_matches_grid_resubmit_hits_cache_and_shutdown_drains() {
    let dir = scratch("roundtrip");
    let (mut server, addr) = start_server();

    // The in-process-equivalent oracle: the grid subcommand on the same
    // program, platform and axes.
    let grid_csv = dir.join("grid.csv");
    let out = mhla(&[
        "grid",
        "--app",
        "fir_bank",
        "--platform",
        "three-level",
        "--axes",
        AXES,
        "--out",
        grid_csv.to_str().expect("utf-8 path"),
    ]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));

    let cold_csv = dir.join("cold.csv");
    let out = mhla(&[
        "submit",
        "--app",
        "fir_bank",
        "--platform",
        "three-level",
        "--axes",
        AXES,
        "--addr",
        &addr,
        "--out",
        cold_csv.to_str().expect("utf-8 path"),
    ]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    assert!(
        stderr(&out).contains("cache miss"),
        "first submit must miss: {}",
        stderr(&out)
    );
    assert_eq!(
        fs::read_to_string(&cold_csv).expect("served csv"),
        fs::read_to_string(&grid_csv).expect("grid csv"),
        "served CSV must be bit-identical to `mhla grid`"
    );

    let warm_csv = dir.join("warm.csv");
    let out = mhla(&[
        "submit",
        "--app",
        "fir_bank",
        "--platform",
        "three-level",
        "--axes",
        AXES,
        "--addr",
        &addr,
        "--out",
        warm_csv.to_str().expect("utf-8 path"),
    ]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    assert!(
        stderr(&out).contains("cache hit"),
        "resubmit must hit: {}",
        stderr(&out)
    );
    assert_eq!(
        fs::read_to_string(&warm_csv).expect("served csv"),
        fs::read_to_string(&grid_csv).expect("grid csv")
    );

    // The counters agree: one engine run, one hit, one miss.
    let out = mhla(&["status", "--addr", &addr]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    let status = stdout(&out);
    for needle in ["\"hits\": 1", "\"misses\": 1", "\"runs\": 1"] {
        assert!(status.contains(needle), "missing {needle} in {status}");
    }

    let out = mhla(&["shutdown", "--addr", &addr]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    assert!(stdout(&out).contains("draining"));
    let status = wait_exit(&mut server.0, Duration::from_secs(30));
    assert!(status.success(), "serve must drain to exit 0, got {status}");
}

#[test]
fn budgeted_submit_reports_the_certified_partial_frontier() {
    let (mut server, addr) = start_server();

    let out = mhla(&[
        "submit",
        "--app",
        "fir_bank",
        "--platform",
        "three-level",
        "--axes",
        AXES,
        "--max-evals",
        "2",
        "--addr",
        &addr,
    ]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    let err = stderr(&out);
    assert!(
        err.contains("stopped (max_evals)") && err.contains("--max-evals"),
        "budget note missing: {err}"
    );
    assert!(
        err.contains("2/4 points"),
        "partial point count missing: {err}"
    );
    // The stdout CSV carries exactly the two certified points (plus header).
    assert_eq!(stdout(&out).lines().count(), 3, "got {}", stdout(&out));

    let out = mhla(&["shutdown", "--addr", &addr]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    wait_exit(&mut server.0, Duration::from_secs(30));
}

#[test]
fn corrupted_submission_gets_a_typed_server_error_and_the_server_survives() {
    let dir = scratch("corrupt");
    let (mut server, addr) = start_server();

    // A well-formed file holding a corrupt program (dangling root).
    let bad = dir.join("bad.prog.json");
    fs::write(
        &bad,
        "{\"format\":\"mhla.program\",\"version\":1,\"name\":\"x\",\
         \"arrays\":[],\"loops\":[],\"stmts\":[],\"roots\":[\"S5\"]}",
    )
    .expect("write corrupt program");
    let out = mhla(&[
        "submit",
        "--input",
        bad.to_str().expect("utf-8 path"),
        "--addr",
        &addr,
    ]);
    assert_eq!(out.status.code(), Some(2), "stderr: {}", stderr(&out));
    assert!(
        stderr(&out).starts_with("error:"),
        "typed error expected: {}",
        stderr(&out)
    );

    // The server survives corrupted ingress and still serves.
    let out = mhla(&["status", "--addr", &addr]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));

    let out = mhla(&["shutdown", "--addr", &addr]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    wait_exit(&mut server.0, Duration::from_secs(30));
}

#[test]
fn bad_serving_flags_exit_2_without_touching_the_network() {
    for args in [
        &["serve", "--workers", "0"][..],
        &["serve", "--queue", "0"],
        &["submit", "--app", "fir_bank", "--objective", "speed"],
        &["submit", "--app", "fir_bank", "--max-evals", "0"],
        &["submit"],
    ] {
        let out = mhla(args);
        assert_eq!(out.status.code(), Some(2), "{args:?}: {}", stderr(&out));
        assert!(
            stderr(&out).starts_with("error:"),
            "{args:?}: {}",
            stderr(&out)
        );
    }
}

#[test]
fn submit_against_a_dead_server_exits_2_with_a_net_error() {
    // Bind an ephemeral port, then drop it: nothing listens there.
    let addr = {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("probe port");
        listener.local_addr().expect("probe addr").to_string()
    };
    let out = mhla(&["submit", "--app", "fir_bank", "--addr", &addr]);
    assert_eq!(out.status.code(), Some(2), "stderr: {}", stderr(&out));
    assert!(
        stderr(&out).starts_with(&format!("error: {addr}:")),
        "net error must name the address: {}",
        stderr(&out)
    );
}
