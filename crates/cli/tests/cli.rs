//! End-to-end tests of the `mhla` binary: the serialized path through the
//! CLI must be *bit-identical* to the in-process engine, budgeted runs must
//! stop and resume, and corrupted inputs must exit 2 with a typed error on
//! stderr — never a panic.

use std::fs;
use std::path::PathBuf;
use std::process::{Command, Output};

use mhla_core::explore::{sweep, sweep_grid, GridAxis};
use mhla_core::{report, MhlaConfig};
use mhla_hierarchy::{LayerId, Platform};
use mhla_ir::serdes::program_from_json;

fn mhla(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_mhla"))
        .args(args)
        .output()
        .expect("spawn mhla")
}

fn stdout(out: &Output) -> String {
    String::from_utf8(out.stdout.clone()).expect("utf-8 stdout")
}

fn stderr(out: &Output) -> String {
    String::from_utf8(out.stderr.clone()).expect("utf-8 stderr")
}

/// A per-test scratch directory under the target-adjacent temp dir.
fn scratch(test: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mhla-cli-{}-{test}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

#[test]
fn export_round_trips_every_builtin_app() {
    let dir = scratch("export");
    let out = mhla(&["export", "--dir", dir.to_str().expect("utf-8 path")]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    for app in mhla_apps::all_apps() {
        let path = dir.join(format!("{}.prog.json", app.name()));
        let text = fs::read_to_string(&path).expect("exported program");
        let back = program_from_json(&text).expect("re-ingest");
        assert_eq!(back, app.program, "{} did not round-trip", app.name());
    }
    // The platform presets re-ingest through the CLI too.
    let out = mhla(&[
        "report",
        "--app",
        "fir_bank",
        "--platform",
        dir.join("fir_bank.platform.json")
            .to_str()
            .expect("utf-8 path"),
    ]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));
}

#[test]
fn grid_over_serialized_app_is_bit_identical_to_in_process_sweep() {
    let dir = scratch("grid");
    assert!(
        mhla(&["export", "--dir", dir.to_str().expect("utf-8 path")])
            .status
            .success()
    );
    let prog = dir.join("sobel_edge.prog.json");
    let csv_path = dir.join("grid.csv");
    let axes_spec = "1:1024,4096;2:128,256";
    let out = mhla(&[
        "grid",
        "--input",
        prog.to_str().expect("utf-8 path"),
        "--platform",
        "three-level",
        "--axes",
        axes_spec,
        "--out",
        csv_path.to_str().expect("utf-8 path"),
    ]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));

    // The same axes through the in-process engine.
    let app = mhla_apps::sobel_edge::app();
    let axes = vec![
        GridAxis::new(LayerId(1), vec![1024, 4096]),
        GridAxis::new(LayerId(2), vec![128, 256]),
    ];
    let expected = sweep_grid(
        &app.program,
        &Platform::three_level_default(),
        &axes,
        &MhlaConfig::default(),
    );

    let cli_csv = fs::read_to_string(&csv_path).expect("grid csv");
    assert_eq!(
        cli_csv,
        report::grid_csv(&expected),
        "CSV must be bit-identical"
    );
    assert!(
        stdout(&out).starts_with(&report::grid_frontier(&expected)),
        "frontier table must match the in-process report"
    );
}

#[test]
fn sweep_over_serialized_app_is_bit_identical_to_in_process_sweep() {
    let dir = scratch("sweep");
    assert!(
        mhla(&["export", "--dir", dir.to_str().expect("utf-8 path")])
            .status
            .success()
    );
    let prog = dir.join("fir_bank.prog.json");
    let out = mhla(&[
        "sweep",
        "--input",
        prog.to_str().expect("utf-8 path"),
        "--platform",
        "embedded:16384",
        "--capacities",
        "512,1024,2048",
    ]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));

    let app = mhla_apps::fir_bank::app();
    let platform = Platform::embedded_default(16 * 1024);
    let expected = sweep(
        &app.program,
        &platform,
        platform.closest(),
        &[512, 1024, 2048],
        &MhlaConfig::default(),
    );
    assert_eq!(stdout(&out), report::sweep_csv(&expected));
}

#[test]
fn budgeted_grid_stops_and_resume_completes() {
    let dir = scratch("budget");
    assert!(
        mhla(&["export", "--dir", dir.to_str().expect("utf-8 path")])
            .status
            .success()
    );
    let prog = dir.join("fir_bank.prog.json");
    let prog = prog.to_str().expect("utf-8 path");
    let axes = "1:512,1024,2048,4096";

    // Budgeted: certified partial prefix + a resume hint on stderr.
    let stopped = mhla(&[
        "grid",
        "--input",
        prog,
        "--platform",
        "embedded",
        "--axes",
        axes,
        "--max-evals",
        "2",
    ]);
    assert!(stopped.status.success(), "stderr: {}", stderr(&stopped));
    assert!(stderr(&stopped).contains("budget exhausted"));
    let stopped_lines = stdout(&stopped).lines().count();

    // Budgeted + --resume: same invocation finishes the sweep and matches
    // the unbudgeted run byte for byte.
    let resumed = mhla(&[
        "grid",
        "--input",
        prog,
        "--platform",
        "embedded",
        "--axes",
        axes,
        "--max-evals",
        "2",
        "--resume",
    ]);
    assert!(resumed.status.success(), "stderr: {}", stderr(&resumed));
    let full = mhla(&[
        "grid",
        "--input",
        prog,
        "--platform",
        "embedded",
        "--axes",
        axes,
    ]);
    assert!(full.status.success(), "stderr: {}", stderr(&full));
    assert_eq!(stdout(&resumed), stdout(&full));
    assert!(stdout(&full).lines().count() > stopped_lines);
}

#[test]
fn corrupted_input_exits_2_with_typed_error() {
    let dir = scratch("corrupt");
    assert!(
        mhla(&["export", "--dir", dir.to_str().expect("utf-8 path")])
            .status
            .success()
    );
    let good = fs::read_to_string(dir.join("wavelet.prog.json")).expect("exported program");

    // Truncated file: syntax error.
    let truncated = dir.join("truncated.prog.json");
    fs::write(&truncated, &good[..good.len() / 2]).expect("write");
    let out = mhla(&[
        "analyze",
        "--input",
        truncated.to_str().expect("utf-8 path"),
    ]);
    assert_eq!(out.status.code(), Some(2));
    assert!(
        stderr(&out).starts_with("error:"),
        "stderr: {}",
        stderr(&out)
    );

    // Wrong schema version: typed version error.
    let versioned = dir.join("versioned.prog.json");
    fs::write(
        &versioned,
        good.replace("\"version\": 1", "\"version\": 42"),
    )
    .expect("write");
    let out = mhla(&["report", "--input", versioned.to_str().expect("utf-8 path")]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("unsupported schema version 42"));

    // Missing file: IO error, not a panic.
    let out = mhla(&["grid", "--input", "/nonexistent/nope.json"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).starts_with("error:"));
}

#[test]
fn usage_errors_exit_2() {
    for args in [
        &["frobnicate"][..],
        &["grid"][..],
        &["sweep", "--input", "a.json", "--app", "fir_bank"][..],
        &["grid", "--app", "fir_bank", "--axes", "nonsense"][..],
        &["grid", "--app", "fir_bank", "--max-evals"][..],
    ] {
        let out = mhla(args);
        assert_eq!(out.status.code(), Some(2), "args: {args:?}");
        assert!(stderr(&out).starts_with("error:"), "args: {args:?}");
    }
    let help = mhla(&["help"]);
    assert!(help.status.success());
    assert!(stdout(&help).contains("USAGE"));
}
