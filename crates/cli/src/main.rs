//! `mhla` — the exploration-as-a-service command line.
//!
//! Everything the workspace can do in process, driven from serialized
//! programs and platforms on disk (`mhla_ir::serdes` /
//! `mhla_hierarchy::serdes`):
//!
//! * `mhla export` — dump the nine built-in applications (and platform
//!   presets) to the versioned JSON format,
//! * `mhla analyze` — run MHLA once and print the full assignment report,
//! * `mhla report` — the one-line performance + energy figures,
//! * `mhla sweep` — a one-layer capacity sweep, CSV out,
//! * `mhla grid` — a multi-layer grid sweep with Pareto frontier, CSV out,
//!   honoring `--max-evals` budgets and the engine's resume machinery.
//!
//! Following the subcommand/report split (run once, emit the existing
//! report formats), the binary is a thin shell: every input crosses the
//! typed `MhlaError` ingress, so corrupted or malformed files exit with
//! code 2 and `error: …` on stderr — never a panic.

use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

use mhla_core::explore::{
    default_capacities, try_sweep_grid_resume, try_sweep_grid_run, try_sweep_with, ExploreBudget,
    GridAxis, GridSweepRun, SearchMode, StopCause, SweepOptions, SweepStatus,
};
use mhla_core::{report, Mhla, MhlaConfig, MhlaError};
use mhla_hierarchy::serdes::{platform_from_json, platform_to_json, platform_value};
use mhla_hierarchy::{LayerId, Platform};
use mhla_ir::serdes::{program_from_json, program_to_json, program_value, Json};
use mhla_ir::Program;
use mhla_serve::{Client, Response, ServedStatus, ServerOptions};

const USAGE: &str = "\
mhla — MHLA (DATE 2005) exploration over serialized programs

USAGE:
    mhla export  [--dir DIR]
    mhla analyze (--input PROG.json | --app NAME) [--platform P]
    mhla report  (--input PROG.json | --app NAME) [--platform P]
    mhla sweep   (--input PROG.json | --app NAME) [--platform P]
                 [--layer N] [--capacities C1,C2,..] [--max-evals N] [--out FILE]
    mhla grid    (--input PROG.json | --app NAME) [--platform P]
                 [--axes SPEC] [--mode cold|improving] [--max-evals N]
                 [--resume] [--out FILE]
    mhla serve   [--addr A] [--workers N] [--queue N] [--cache-bytes N]
    mhla submit  (--input PROG.json | --app NAME) [--platform P]
                 [--axes SPEC] [--mode cold|improving] [--objective O]
                 [--max-evals N] [--timeout-ms N] [--addr A] [--out FILE]
    mhla status  [--addr A]
    mhla shutdown [--addr A]
    mhla help

PLATFORM (--platform):
    three-level (default) | four-level | embedded[:BYTES] | no-dma[:BYTES],
    or a path to a platform JSON file (see `mhla export`).

AXES (--axes), grid and submit:
    LAYER:CAP,CAP,..[;LAYER:CAP,..]  e.g.  1:16384,32768;2:1024,2048
    Defaults to the standard grid of the platform's layer count.

Budgeted runs (--max-evals) stop early with a certified partial frontier;
`grid --resume` continues a stopped sweep to completion in one invocation.

`mhla serve` runs the batch exploration server (default address
127.0.0.1:7744) with a content-addressed result cache; `mhla submit`
sends one exploration to it and reconstructs the exact `mhla grid` CSV
from the response. `mhla status` prints the server's cache and engine
counters; `mhla shutdown` drains it gracefully.
Exit codes: 0 success, 2 on any error (typed message on stderr).
";

/// The default server address of `serve`/`submit`/`status`/`shutdown`.
const DEFAULT_ADDR: &str = "127.0.0.1:7744";

/// One failure class per exit path; everything renders after `error: `.
enum CliError {
    /// Bad invocation (unknown flag/subcommand, missing value, …).
    Usage(String),
    /// The OS said no.
    Io {
        path: PathBuf,
        source: std::io::Error,
    },
    /// The engine boundary said no (includes serialization failures via
    /// `From<SerdesError> for MhlaError`).
    Engine(MhlaError),
    /// The transport to an `mhla serve` instance failed.
    Net {
        addr: String,
        source: std::io::Error,
    },
    /// The server answered with a typed error response.
    Server(mhla_serve::ErrorBody),
    /// Writing to stdout failed (closed pipe downstream, disk full, …).
    Stdout(std::io::Error),
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Usage(what) => write!(f, "{what} (run `mhla help` for usage)"),
            CliError::Io { path, source } => write!(f, "{}: {source}", path.display()),
            CliError::Engine(e) => write!(f, "{e}"),
            CliError::Net { addr, source } => write!(f, "{addr}: {source}"),
            CliError::Server(e) => write!(f, "server: {e}"),
            CliError::Stdout(source) => write!(f, "stdout: {source}"),
        }
    }
}

/// Fallible stdout, replacing `println!` throughout: a downstream reader
/// may close the pipe mid-output (`mhla status | grep -q …`), which the
/// macros turn into a panic. Here it surfaces as [`CliError::Stdout`],
/// and `main` maps a broken pipe to a clean exit — the POSIX filter
/// convention — while every other stdout failure stays a real error.
fn out(text: &str) -> Result<(), CliError> {
    use std::io::Write as _;
    std::io::stdout()
        .lock()
        .write_all(text.as_bytes())
        .map_err(CliError::Stdout)
}

fn outln(text: &str) -> Result<(), CliError> {
    out(text)?;
    out("\n")
}

impl From<MhlaError> for CliError {
    fn from(e: MhlaError) -> Self {
        CliError::Engine(e)
    }
}

impl From<mhla_ir::SerdesError> for CliError {
    fn from(e: mhla_ir::SerdesError) -> Self {
        CliError::Engine(e.into())
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        // A reader that closes the pipe early (`mhla status | grep -q`)
        // got everything it wanted; that is success, not a diagnostic.
        Err(CliError::Stdout(e)) if e.kind() == std::io::ErrorKind::BrokenPipe => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(2)
        }
    }
}

fn run(args: &[String]) -> Result<(), CliError> {
    let (cmd, rest) = match args.split_first() {
        Some((cmd, rest)) => (cmd.as_str(), rest),
        None => return Err(CliError::Usage("missing subcommand".into())),
    };
    match cmd {
        "help" | "--help" | "-h" => out(USAGE),
        "export" => cmd_export(&Flags::parse(rest)?),
        "analyze" => cmd_analyze(&Flags::parse(rest)?),
        "report" => cmd_report(&Flags::parse(rest)?),
        "sweep" => cmd_sweep(&Flags::parse(rest)?),
        "grid" => cmd_grid(&Flags::parse(rest)?),
        "serve" => cmd_serve(&Flags::parse(rest)?),
        "submit" => cmd_submit(&Flags::parse(rest)?),
        "status" => cmd_status(&Flags::parse(rest)?),
        "shutdown" => cmd_shutdown(&Flags::parse(rest)?),
        other => Err(CliError::Usage(format!("unknown subcommand `{other}`"))),
    }
}

// ---------------------------------------------------------------------------
// Flag parsing
// ---------------------------------------------------------------------------

#[derive(Default)]
struct Flags {
    input: Option<PathBuf>,
    app: Option<String>,
    platform: Option<String>,
    layer: Option<usize>,
    capacities: Option<Vec<u64>>,
    axes: Option<String>,
    max_evals: Option<usize>,
    mode: Option<String>,
    out: Option<PathBuf>,
    dir: Option<PathBuf>,
    resume: bool,
    addr: Option<String>,
    workers: Option<usize>,
    queue: Option<usize>,
    cache_bytes: Option<usize>,
    timeout_ms: Option<u64>,
    objective: Option<String>,
}

impl Flags {
    fn parse(args: &[String]) -> Result<Flags, CliError> {
        let mut f = Flags::default();
        let mut i = 0;
        while i < args.len() {
            let flag = args[i].as_str();
            match flag {
                "--input" => f.input = Some(PathBuf::from(value(args, &mut i)?)),
                "--app" => f.app = Some(value(args, &mut i)?.to_string()),
                "--platform" => f.platform = Some(value(args, &mut i)?.to_string()),
                "--layer" => f.layer = Some(parse_number(value(args, &mut i)?, flag)?),
                "--capacities" => f.capacities = Some(parse_u64_list(value(args, &mut i)?, flag)?),
                "--axes" => f.axes = Some(value(args, &mut i)?.to_string()),
                "--max-evals" => f.max_evals = Some(parse_number(value(args, &mut i)?, flag)?),
                "--mode" => f.mode = Some(value(args, &mut i)?.to_string()),
                "--out" => f.out = Some(PathBuf::from(value(args, &mut i)?)),
                "--dir" => f.dir = Some(PathBuf::from(value(args, &mut i)?)),
                "--resume" => f.resume = true,
                "--addr" => f.addr = Some(value(args, &mut i)?.to_string()),
                "--workers" => f.workers = Some(parse_number(value(args, &mut i)?, flag)?),
                "--queue" => f.queue = Some(parse_number(value(args, &mut i)?, flag)?),
                "--cache-bytes" => f.cache_bytes = Some(parse_number(value(args, &mut i)?, flag)?),
                "--timeout-ms" => f.timeout_ms = Some(parse_number(value(args, &mut i)?, flag)?),
                "--objective" => f.objective = Some(value(args, &mut i)?.to_string()),
                other => return Err(CliError::Usage(format!("unknown flag `{other}`"))),
            }
            i += 1;
        }
        Ok(f)
    }
}

fn value<'a>(args: &'a [String], i: &mut usize) -> Result<&'a str, CliError> {
    let flag = args[*i].clone();
    *i += 1;
    args.get(*i)
        .map(String::as_str)
        .ok_or(CliError::Usage(format!("`{flag}` expects a value")))
}

fn parse_number<T: std::str::FromStr>(text: &str, flag: &str) -> Result<T, CliError> {
    text.parse()
        .map_err(|_| CliError::Usage(format!("`{flag}`: invalid number \"{text}\"")))
}

fn parse_u64_list(text: &str, flag: &str) -> Result<Vec<u64>, CliError> {
    text.split(',')
        .map(|part| parse_number(part.trim(), flag))
        .collect()
}

// ---------------------------------------------------------------------------
// Input loading
// ---------------------------------------------------------------------------

fn read_file(path: &Path) -> Result<String, CliError> {
    fs::read_to_string(path).map_err(|source| CliError::Io {
        path: path.to_path_buf(),
        source,
    })
}

fn write_file(path: &Path, text: &str) -> Result<(), CliError> {
    fs::write(path, text).map_err(|source| CliError::Io {
        path: path.to_path_buf(),
        source,
    })
}

/// Loads the program named by `--input` (serialized JSON) or `--app`
/// (built-in). Serialized programs cross the typed validate ingress.
fn load_program(f: &Flags) -> Result<Program, CliError> {
    match (&f.input, &f.app) {
        (Some(path), None) => Ok(program_from_json(&read_file(path)?)?),
        (None, Some(name)) => mhla_apps::all_apps()
            .into_iter()
            .find(|a| a.name() == name)
            .map(|a| a.program)
            .ok_or_else(|| {
                let known: Vec<String> = mhla_apps::all_apps()
                    .iter()
                    .map(|a| a.name().to_string())
                    .collect();
                CliError::Usage(format!(
                    "unknown app `{name}` (built-ins: {})",
                    known.join(", ")
                ))
            }),
        _ => Err(CliError::Usage(
            "exactly one of `--input` or `--app` is required".into(),
        )),
    }
}

/// Resolves `--platform`: a preset name or a serialized platform file.
fn load_platform(f: &Flags) -> Result<Platform, CliError> {
    let spec = f.platform.as_deref().unwrap_or("three-level");
    match spec {
        "three-level" => Ok(Platform::three_level_default()),
        "four-level" => Ok(Platform::four_level_default()),
        "embedded" => Ok(Platform::embedded_default(16 * 1024)),
        "no-dma" => Ok(Platform::without_dma(16 * 1024)),
        _ => {
            if let Some(bytes) = spec.strip_prefix("embedded:") {
                return Ok(Platform::embedded_default(parse_capacity(bytes)?));
            }
            if let Some(bytes) = spec.strip_prefix("no-dma:") {
                return Ok(Platform::without_dma(parse_capacity(bytes)?));
            }
            Ok(platform_from_json(&read_file(Path::new(spec))?)?)
        }
    }
}

fn parse_capacity(text: &str) -> Result<u64, CliError> {
    let bytes: u64 = parse_number(text, "--platform")?;
    if bytes == 0 {
        return Err(CliError::Usage(
            "`--platform`: scratchpad capacity must be positive".into(),
        ));
    }
    Ok(bytes)
}

/// Builds the sweep options shared by `sweep` and `grid` from the flags.
fn sweep_options(f: &Flags) -> Result<SweepOptions, CliError> {
    let mut opts = SweepOptions::default();
    if let Some(n) = f.max_evals {
        if n == 0 {
            return Err(CliError::Usage("`--max-evals` must be positive".into()));
        }
        opts.budget = ExploreBudget::max_evals(n);
    }
    match f.mode.as_deref() {
        None | Some("cold") => {}
        Some("improving") => opts.mode = SearchMode::Improving,
        Some(other) => {
            return Err(CliError::Usage(format!(
                "unknown mode `{other}` (expected `cold` or `improving`)"
            )))
        }
    }
    Ok(opts)
}

/// The grid axes: an explicit `--axes` spec, or the standard grid for the
/// platform's depth (matching the in-process sweep suites).
fn grid_axes(f: &Flags, platform: &Platform) -> Result<Vec<GridAxis>, CliError> {
    if let Some(spec) = &f.axes {
        return parse_axes(spec);
    }
    match platform.layer_count() {
        3 => Ok(mhla_bench::default_grid_axes()),
        4 => Ok(mhla_bench::default_grid4_axes()),
        _ => Ok(vec![GridAxis::new(
            platform.closest(),
            default_capacities(),
        )]),
    }
}

fn parse_axes(spec: &str) -> Result<Vec<GridAxis>, CliError> {
    spec.split(';')
        .map(|part| {
            let (layer, caps) = part.split_once(':').ok_or_else(|| {
                CliError::Usage(format!("`--axes`: expected LAYER:CAP,CAP,.. in \"{part}\""))
            })?;
            Ok(GridAxis::new(
                LayerId(parse_number(layer.trim(), "--axes")?),
                parse_u64_list(caps, "--axes")?,
            ))
        })
        .collect()
}

/// Writes `text` to `--out` when given, to stdout otherwise.
fn emit(text: &str, dest: Option<&PathBuf>) -> Result<(), CliError> {
    match dest {
        Some(path) => {
            write_file(path, text)?;
            outln(&format!("wrote {}", path.display()))
        }
        None => out(text),
    }
}

fn status_note(status: &SweepStatus) -> Option<String> {
    match status {
        SweepStatus::Complete => None,
        SweepStatus::Stopped { cause, next_lex } => {
            let cause = match cause {
                StopCause::MaxEvals => "evaluation budget exhausted",
                StopCause::Deadline => "deadline reached",
                StopCause::Cancelled => "cancelled",
            };
            Some(format!(
                "note: {cause} — certified partial frontier up to lexicographic \
                 index {next_lex} (re-run with `--resume` or a larger `--max-evals` \
                 to continue)"
            ))
        }
    }
}

// ---------------------------------------------------------------------------
// Subcommands
// ---------------------------------------------------------------------------

/// `mhla export`: the nine built-in applications plus platform presets, in
/// the versioned JSON format — the seed corpus for everything that accepts
/// `--input`.
fn cmd_export(f: &Flags) -> Result<(), CliError> {
    let dir = f
        .dir
        .clone()
        .unwrap_or_else(|| PathBuf::from("mhla-export"));
    fs::create_dir_all(&dir).map_err(|source| CliError::Io {
        path: dir.clone(),
        source,
    })?;
    for app in mhla_apps::all_apps() {
        let prog = dir.join(format!("{}.prog.json", app.name()));
        write_file(&prog, &program_to_json(&app.program))?;
        outln(&format!("wrote {}", prog.display()))?;
        let plat = dir.join(format!("{}.platform.json", app.name()));
        write_file(
            &plat,
            &platform_to_json(&Platform::embedded_default(app.default_scratchpad)),
        )?;
        outln(&format!("wrote {}", plat.display()))?;
    }
    for (name, platform) in [
        ("three-level", Platform::three_level_default()),
        ("four-level", Platform::four_level_default()),
    ] {
        let path = dir.join(format!("{name}.platform.json"));
        write_file(&path, &platform_to_json(&platform))?;
        outln(&format!("wrote {}", path.display()))?;
    }
    Ok(())
}

/// `mhla analyze`: one full MHLA run, human-readable — the platform, the
/// per-array assignment, and the performance/energy rows.
fn cmd_analyze(f: &Flags) -> Result<(), CliError> {
    let program = load_program(f)?;
    let platform = load_platform(f)?;
    let mhla = Mhla::try_new(&program, &platform, MhlaConfig::default())?;
    let result = mhla.try_run()?;
    outln(&platform.to_string())?;
    outln("")?;
    out(&report::describe(&program, mhla.reuse(), &result))?;
    outln("")?;
    outln(&report::performance_header())?;
    outln(&report::performance_row(program.name(), &result))?;
    outln("")?;
    outln(&report::energy_header())?;
    outln(&report::energy_row(program.name(), &result))
}

/// `mhla report`: just the figures (performance + energy rows), for
/// scripting over many programs.
fn cmd_report(f: &Flags) -> Result<(), CliError> {
    let program = load_program(f)?;
    let platform = load_platform(f)?;
    let mhla = Mhla::try_new(&program, &platform, MhlaConfig::default())?;
    let result = mhla.try_run()?;
    outln(&report::performance_header())?;
    outln(&report::performance_row(program.name(), &result))?;
    outln(&report::energy_header())?;
    outln(&report::energy_row(program.name(), &result))
}

/// `mhla sweep`: a one-layer capacity sweep; CSV to `--out` or stdout.
fn cmd_sweep(f: &Flags) -> Result<(), CliError> {
    let program = load_program(f)?;
    let platform = load_platform(f)?;
    let layer = f.layer.map_or_else(|| platform.closest(), LayerId);
    let capacities = f.capacities.clone().unwrap_or_else(default_capacities);
    let opts = sweep_options(f)?;
    let run = try_sweep_with(
        &program,
        &platform,
        layer,
        &capacities,
        &MhlaConfig::default(),
        &opts,
    )?;
    emit(&report::sweep_csv(&run.sweep), f.out.as_ref())?;
    if let Some(note) = status_note(&run.status) {
        eprintln!("{note}");
    }
    Ok(())
}

/// `mhla grid`: a multi-layer grid sweep. CSV goes to `--out` (with the
/// Pareto frontier table on stdout) or to stdout alone; `--max-evals`
/// bounds the run and `--resume` drives the engine's resume machinery to
/// finish a stopped sweep in the same invocation.
fn cmd_grid(f: &Flags) -> Result<(), CliError> {
    let program = load_program(f)?;
    let platform = load_platform(f)?;
    let axes = grid_axes(f, &platform)?;
    let opts = sweep_options(f)?;
    let config = MhlaConfig::default();
    let mut run: GridSweepRun = try_sweep_grid_run(&program, &platform, &axes, &config, &opts)?;
    if !run.status.is_complete() && f.resume {
        let unlimited = SweepOptions {
            budget: ExploreBudget::unlimited(),
            ..opts
        };
        run = try_sweep_grid_resume(&program, &platform, &axes, &config, &unlimited, &run)?;
    }
    if f.out.is_some() {
        out(&report::grid_frontier(&run.sweep))?;
        outln(&format!(
            "grid: {}/{} points evaluated",
            run.sweep.points.len(),
            run.candidates
        ))?;
    }
    emit(&report::grid_csv(&run.sweep), f.out.as_ref())?;
    if let Some(note) = status_note(&run.status) {
        eprintln!("{note}");
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Serving (`serve` / `submit` / `status` / `shutdown`)
// ---------------------------------------------------------------------------

fn server_addr(f: &Flags) -> String {
    f.addr.clone().unwrap_or_else(|| DEFAULT_ADDR.to_string())
}

fn net_err(addr: &str) -> impl FnOnce(std::io::Error) -> CliError + '_ {
    move |source| CliError::Net {
        addr: addr.to_string(),
        source,
    }
}

/// `mhla serve`: the batch exploration server, in the foreground until a
/// `shutdown` request drains it.
fn cmd_serve(f: &Flags) -> Result<(), CliError> {
    let addr = server_addr(f);
    let mut opts = ServerOptions::default();
    if let Some(w) = f.workers {
        if w == 0 {
            return Err(CliError::Usage("`--workers` must be positive".into()));
        }
        opts.workers = w;
    }
    if let Some(q) = f.queue {
        if q == 0 {
            return Err(CliError::Usage("`--queue` must be positive".into()));
        }
        opts.queue = q;
    }
    if let Some(b) = f.cache_bytes {
        opts.cache_bytes = b;
    }
    mhla_serve::serve(addr.as_str(), opts, |bound| {
        let _ = outln(&format!("listening on {bound}"));
        let _ = std::io::Write::flush(&mut std::io::stdout());
    })
    .map_err(net_err(&addr))
}

/// Builds the `explore` request line `submit` sends.
fn submit_request(f: &Flags, program: &Program, platform: &Platform) -> Result<String, CliError> {
    let mut fields = vec![
        ("op".to_string(), Json::Str("explore".into())),
        ("program".to_string(), program_value(program)),
        ("platform".to_string(), platform_value(platform)),
    ];
    if let Some(spec) = &f.axes {
        let axes = parse_axes(spec)?;
        fields.push((
            "axes".to_string(),
            Json::Arr(
                axes.iter()
                    .map(|a| {
                        Json::Obj(vec![
                            ("layer".into(), Json::from_u64(a.layer.0 as u64)),
                            (
                                "capacities".into(),
                                Json::Arr(
                                    a.capacities.iter().map(|&c| Json::from_u64(c)).collect(),
                                ),
                            ),
                        ])
                    })
                    .collect(),
            ),
        ));
    }
    match f.objective.as_deref() {
        None => {}
        Some(o @ ("cycles" | "energy")) => {
            fields.push(("objective".to_string(), Json::Str(o.into())));
        }
        Some(other) => {
            return Err(CliError::Usage(format!(
                "unknown objective `{other}` (expected `cycles` or `energy`)"
            )))
        }
    }
    match f.mode.as_deref() {
        None => {}
        Some(m @ ("cold" | "improving")) => {
            fields.push(("mode".to_string(), Json::Str(m.into())));
        }
        Some(other) => {
            return Err(CliError::Usage(format!(
                "unknown mode `{other}` (expected `cold` or `improving`)"
            )))
        }
    }
    if let Some(n) = f.max_evals {
        if n == 0 {
            return Err(CliError::Usage("`--max-evals` must be positive".into()));
        }
        fields.push(("max_evals".to_string(), Json::from_u64(n as u64)));
    }
    if let Some(ms) = f.timeout_ms {
        fields.push(("timeout_ms".to_string(), Json::from_u64(ms)));
    }
    Ok(Json::Obj(fields).render_compact())
}

/// `mhla submit`: one exploration against a running server; the response
/// is rendered back into the exact `mhla grid` CSV.
fn cmd_submit(f: &Flags) -> Result<(), CliError> {
    let program = load_program(f)?;
    let platform = load_platform(f)?;
    let addr = server_addr(f);
    let line = submit_request(f, &program, &platform)?;
    let mut client = Client::connect(addr.as_str()).map_err(net_err(&addr))?;
    let response = client.roundtrip(&line).map_err(net_err(&addr))?;
    match Response::parse(&response).map_err(MhlaError::from)? {
        Response::Frontier { cached, frontier } => {
            eprintln!(
                "cache {}: {}/{} points from {addr}",
                if cached { "hit" } else { "miss" },
                frontier.points.len(),
                frontier.candidates
            );
            emit(&frontier.grid_csv(), f.out.as_ref())?;
            if let ServedStatus::Stopped { cause, next_lex } = &frontier.status {
                eprintln!(
                    "note: served sweep stopped ({cause}) — certified partial frontier \
                     up to lexicographic index {next_lex} (resubmit with a larger \
                     `--max-evals` to continue)"
                );
            }
            Ok(())
        }
        Response::Error(e) => Err(CliError::Server(e)),
        Response::Other(_) => Err(CliError::Usage(
            "unexpected response shape from the server".into(),
        )),
    }
}

/// `mhla status`: the server's cache and engine counters, pretty-printed.
fn cmd_status(f: &Flags) -> Result<(), CliError> {
    let addr = server_addr(f);
    let response =
        mhla_serve::request_once(addr.as_str(), "{\"op\":\"status\"}").map_err(net_err(&addr))?;
    match Response::parse(&response).map_err(MhlaError::from)? {
        Response::Other(body) => outln(&body.render()),
        Response::Error(e) => Err(CliError::Server(e)),
        Response::Frontier { .. } => Err(CliError::Usage(
            "unexpected response shape from the server".into(),
        )),
    }
}

/// `mhla shutdown`: graceful drain of a running server.
fn cmd_shutdown(f: &Flags) -> Result<(), CliError> {
    let addr = server_addr(f);
    let response =
        mhla_serve::request_once(addr.as_str(), "{\"op\":\"shutdown\"}").map_err(net_err(&addr))?;
    match Response::parse(&response).map_err(MhlaError::from)? {
        Response::Other(_) => outln(&format!("server at {addr} is draining")),
        Response::Error(e) => Err(CliError::Server(e)),
        Response::Frontier { .. } => Err(CliError::Usage(
            "unexpected response shape from the server".into(),
        )),
    }
}
