//! Criterion bench for the Figure-2 pipeline: per application, the full
//! flow (reuse analysis → assignment → TE → simulation) that produces the
//! performance bars. Regenerates and prints the figure rows once, then
//! benchmarks the pipeline runtime (the paper claims "fast, accurate and
//! automatic exploration" — this measures the "fast").

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_fig2(c: &mut Criterion) {
    // Print the regenerated figure once so `cargo bench` leaves the same
    // evidence as the dedicated binary.
    println!("\nFigure 2 rows (baseline / mhla / mhla+te / ideal cycles):");
    for f in mhla_bench::fig2_fig3_suite() {
        println!(
            "  {:<18} {} / {} / {} / {}  (step1 {:.1}%, te {:.1}%)",
            f.name,
            f.baseline_cycles,
            f.mhla_cycles,
            f.mhla_te_cycles,
            f.ideal_cycles,
            f.mhla_gain_pct(),
            f.te_gain_pct()
        );
    }

    let mut group = c.benchmark_group("fig2_pipeline");
    group.sample_size(10);
    for app in mhla_apps::all_apps() {
        group.bench_function(app.name().to_string(), |b| {
            b.iter(|| black_box(mhla_bench::evaluate_app(black_box(&app))));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig2);
criterion_main!(benches);
