//! Criterion bench for the Figure-3 (energy) pipeline. Prints the energy
//! rows once — asserting the paper's invariant that TE leaves energy
//! unchanged — then benchmarks the energy-objective assignment search.

use criterion::{criterion_group, criterion_main, Criterion};
use mhla_core::{Mhla, MhlaConfig, Objective};
use mhla_hierarchy::Platform;
use std::hint::black_box;

fn bench_fig3(c: &mut Criterion) {
    println!("\nFigure 3 rows (baseline uJ / mhla uJ / saving):");
    for f in mhla_bench::fig2_fig3_suite() {
        println!(
            "  {:<18} {:.2} / {:.2} / {:.1}%",
            f.name,
            f.baseline_energy_pj / 1e6,
            f.mhla_energy_pj / 1e6,
            f.energy_gain_pct()
        );
    }

    let mut group = c.benchmark_group("fig3_energy_search");
    group.sample_size(10);
    for app in mhla_apps::all_apps() {
        let platform = Platform::embedded_default(app.default_scratchpad);
        let config = MhlaConfig {
            objective: Objective::Energy,
            ..MhlaConfig::default()
        };
        group.bench_function(app.name().to_string(), |b| {
            b.iter(|| {
                let mhla = Mhla::new(
                    black_box(&app.program),
                    black_box(&platform),
                    config.clone(),
                );
                black_box(mhla.run())
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig3);
criterion_main!(benches);
