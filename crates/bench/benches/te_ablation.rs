//! Criterion bench for the TE ablation (paper §3: TE boosts performance
//! "up to 33%, if there are a lot of processing loops"). Prints the
//! ablation table once, then benchmarks the TE planning step itself.

use criterion::{criterion_group, criterion_main, Criterion};
use mhla_core::{te, Mhla, MhlaConfig};
use mhla_hierarchy::Platform;
use std::hint::black_box;

fn bench_te(c: &mut Criterion) {
    println!("\nTE ablation (compute scale → te gain / hiding):");
    for app in [mhla_apps::full_search_me::app(), mhla_apps::fir_bank::app()] {
        for scale in [1u64, 4, 16] {
            let f = mhla_bench::te_ablation_point(&app, scale);
            println!(
                "  {:<18} {:>2}x  te {:>5.1}%  hide {:>5.1}%",
                f.name,
                scale,
                f.te_gain_pct(),
                f.hiding_pct()
            );
        }
    }

    let mut group = c.benchmark_group("te_plan");
    group.sample_size(20);
    for app in mhla_apps::all_apps() {
        let platform = Platform::embedded_default(app.default_scratchpad);
        let mhla = Mhla::new(&app.program, &platform, MhlaConfig::default());
        let model = mhla.cost_model();
        let result = mhla.run();
        group.bench_function(app.name().to_string(), |b| {
            b.iter(|| black_box(te::plan(black_box(&model), black_box(&result.assignment))));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_te);
criterion_main!(benches);
