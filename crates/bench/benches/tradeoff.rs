//! Criterion bench for the trade-off exploration: the per-application
//! capacity sweep (the paper's "thorough trade-off exploration for
//! different memory layer sizes"), measured on both execution paths:
//!
//! * `tradeoff_cold/*` — the frozen pre-optimization reference
//!   ([`mhla_core::explore::sweep_cold`]): sequential, re-analyzed per
//!   point, every candidate move priced with the full `evaluate` oracle;
//! * `tradeoff_fast/*` — the production path
//!   ([`mhla_core::explore::sweep`]): shared analysis + move space,
//!   incremental move pricing, warm-started portfolio, parallel chunks.
//!
//! Prints the per-app and suite speedups (the PR target is ≥5× suite-wide)
//! with a per-app equivalence verdict from [`mhla_bench::measure_sweep_perf`].

use criterion::{criterion_group, criterion_main, Criterion};
use mhla_core::explore::{default_capacities, sweep, sweep_cold};
use mhla_core::MhlaConfig;
use mhla_hierarchy::{LayerId, Platform};
use std::hint::black_box;

fn bench_tradeoff(c: &mut Criterion) {
    let apps = mhla_bench::sweep_suite();
    let platform = Platform::embedded_default(1024);
    let caps = default_capacities();

    // Print the Pareto fronts once (path equivalence is asserted by
    // measure_sweep_perf's verdict below and by tests/sweep_equivalence.rs).
    for app in &apps {
        let fast = sweep(
            &app.program,
            &platform,
            LayerId(1),
            &caps,
            &MhlaConfig::default(),
        );
        let front = fast.pareto_cycles();
        println!(
            "\n{} Pareto (capacity, cycles): {:?}",
            app.name(),
            front
                .iter()
                .map(|&i| (fast.points[i].capacity, fast.points[i].cycles()))
                .collect::<Vec<_>>()
        );
    }

    let mut group = c.benchmark_group("tradeoff_cold");
    group.sample_size(10);
    for app in &apps {
        group.bench_function(app.name().to_string(), |b| {
            b.iter(|| {
                black_box(sweep_cold(
                    black_box(&app.program),
                    black_box(&platform),
                    LayerId(1),
                    &caps,
                    &MhlaConfig::default(),
                ))
            });
        });
    }
    group.finish();

    let mut group = c.benchmark_group("tradeoff_fast");
    group.sample_size(10);
    for app in &apps {
        group.bench_function(app.name().to_string(), |b| {
            b.iter(|| {
                black_box(sweep(
                    black_box(&app.program),
                    black_box(&platform),
                    LayerId(1),
                    &caps,
                    &MhlaConfig::default(),
                ))
            });
        });
    }
    group.finish();

    // Wall-clock summary with the suite speedup (the ≥5× PR target).
    let perfs = mhla_bench::measure_sweep_perf(5);
    println!("\ntradeoff sweep speedups (cold / fast):");
    for p in &perfs {
        println!(
            "  {:<18} {:>8.3} ms / {:>8.3} ms = {:>5.2}x  (identical: {})",
            p.app,
            p.cold_seconds * 1e3,
            p.fast_seconds * 1e3,
            p.speedup(),
            p.fronts_identical && p.points_identical
        );
        assert!(
            p.fronts_identical && p.points_identical,
            "{}: cold and fast sweeps diverge",
            p.app
        );
    }
    let cold: f64 = perfs.iter().map(|p| p.cold_seconds).sum();
    let fast: f64 = perfs.iter().map(|p| p.fast_seconds).sum();
    println!(
        "  suite: {:.1} ms / {:.1} ms = {:.2}x",
        cold * 1e3,
        fast * 1e3,
        cold / fast
    );
}

criterion_group!(benches, bench_tradeoff);
criterion_main!(benches);
