//! Criterion bench for the trade-off exploration: the per-application
//! capacity sweep (the paper's "thorough trade-off exploration for
//! different memory layer sizes"). Benchmarks the sweep on a representative
//! subset to keep `cargo bench` turnaround sane.

use criterion::{criterion_group, criterion_main, Criterion};
use mhla_core::explore::{default_capacities, sweep};
use mhla_core::MhlaConfig;
use mhla_hierarchy::{LayerId, Platform};
use std::hint::black_box;

fn bench_tradeoff(c: &mut Criterion) {
    let apps = [
        mhla_apps::sobel_edge::app(),
        mhla_apps::fir_bank::app(),
        mhla_apps::jpeg_enc::app(),
    ];
    let platform = Platform::embedded_default(1024);
    let caps = default_capacities();

    // Print the Pareto fronts once.
    for app in &apps {
        let s = sweep(&app.program, &platform, LayerId(1), &caps, &MhlaConfig::default());
        let front = s.pareto_cycles();
        println!(
            "\n{} Pareto (capacity, cycles): {:?}",
            app.name(),
            front
                .iter()
                .map(|&i| (s.points[i].capacity, s.points[i].cycles()))
                .collect::<Vec<_>>()
        );
    }

    let mut group = c.benchmark_group("tradeoff_sweep");
    group.sample_size(10);
    for app in &apps {
        group.bench_function(app.name().to_string(), |b| {
            b.iter(|| {
                black_box(sweep(
                    black_box(&app.program),
                    black_box(&platform),
                    LayerId(1),
                    &caps,
                    &MhlaConfig::default(),
                ))
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_tradeoff);
criterion_main!(benches);
