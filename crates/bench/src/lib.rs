//! # mhla-bench — figure regeneration harnesses
//!
//! One pipeline per experiment of the DATE 2005 paper (see DESIGN.md's
//! per-experiment index):
//!
//! * [`evaluate_app`] — the four Figure-2 bars and the two Figure-3 bars
//!   for one application, measured on the simulator (not the static
//!   estimates): out-of-the-box baseline, MHLA step 1, MHLA + TE, and the
//!   zero-wait ideal;
//! * [`fig2_fig3_suite`] — the full nine-application table;
//! * [`te_ablation_point`] — TE benefit as a function of available compute
//!   (the §3 claim: "up to 33%, if there are a lot of processing loops");
//! * capacity sweeps reuse [`mhla_core::explore`] directly.
//!
//! The binaries (`fig2_performance`, `fig3_energy`, `tradeoff_curves`,
//! `te_ablation`) print the tables and drop CSVs under `results/`; the
//! Criterion benches wrap the same pipelines so `cargo bench` regenerates
//! everything.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use mhla_apps::Application;
use mhla_core::{Mhla, MhlaConfig};
use mhla_hierarchy::Platform;
use mhla_sim::Simulator;

/// Allocation events per evaluation while running `f` (`evals`
/// evaluations). `Some` only when the binary was built with the
/// `alloc-counter` feature *and* registered the counting allocator
/// (`mhla_alloc_counter::is_counting`); plain builds and un-registered
/// binaries report `None` rather than a misleading zero.
#[cfg(feature = "alloc-counter")]
fn count_allocs_per_eval<R>(evals: usize, f: impl FnOnce() -> R) -> (R, Option<f64>) {
    let (r, events, _) = mhla_alloc_counter::allocations_during(f);
    let counting = mhla_alloc_counter::is_counting();
    (r, counting.then(|| events as f64 / evals.max(1) as f64))
}

#[cfg(not(feature = "alloc-counter"))]
fn count_allocs_per_eval<R>(evals: usize, f: impl FnOnce() -> R) -> (R, Option<f64>) {
    let _ = evals;
    (f(), None)
}

/// The suite-level `"<key>": <number>` of a previously written
/// `BENCH_*.json` document — the before/after hook: the `bench` and
/// `grid4` binaries read the tracked file's prior value before
/// overwriting it, so the regenerated document records the wall-time
/// trajectory across code changes. Reads the *first* `"suite"` object
/// (the sweep document's only one; the grid document's cycles/pruned
/// one).
pub fn prev_suite_value(content: &str, key: &str) -> Option<f64> {
    let suite = content.find("\"suite\"")?;
    let pat = format!("\"{key}\":");
    let at = content[suite..].find(&pat)? + suite + pat.len();
    let rest = content[at..].trim_start();
    let end = rest
        .find(|c: char| c != '.' && c != '-' && !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Simulated figures for one application (Figure 2 + Figure 3 bars).
#[derive(Clone, PartialEq, Debug)]
pub struct AppFigures {
    /// Application name.
    pub name: String,
    /// Scratchpad capacity used, bytes.
    pub scratchpad: u64,
    /// Simulated cycles, out-of-the-box (everything off-chip).
    pub baseline_cycles: u64,
    /// Simulated cycles after MHLA step 1 (no prefetching).
    pub mhla_cycles: u64,
    /// Simulated cycles after MHLA + Time Extensions.
    pub mhla_te_cycles: u64,
    /// Ideal bound: zero-wait block transfers.
    pub ideal_cycles: u64,
    /// Simulated memory energy, baseline, picojoule.
    pub baseline_energy_pj: f64,
    /// Simulated memory energy after MHLA (TE leaves it unchanged).
    pub mhla_energy_pj: f64,
}

impl AppFigures {
    /// Step-1 cycle reduction vs. baseline, percent.
    pub fn mhla_gain_pct(&self) -> f64 {
        100.0 * (1.0 - self.mhla_cycles as f64 / self.baseline_cycles.max(1) as f64)
    }

    /// Extra reduction of TE relative to the step-1 result, percent.
    pub fn te_gain_pct(&self) -> f64 {
        100.0 * (1.0 - self.mhla_te_cycles as f64 / self.mhla_cycles.max(1) as f64)
    }

    /// Energy reduction vs. baseline, percent.
    pub fn energy_gain_pct(&self) -> f64 {
        100.0 * (1.0 - self.mhla_energy_pj / self.baseline_energy_pj.max(f64::MIN_POSITIVE))
    }

    /// How much of the MHLA→ideal stall gap TE closes, percent (100 = all
    /// transfers hidden).
    pub fn hiding_pct(&self) -> f64 {
        let gap = self.mhla_cycles.saturating_sub(self.ideal_cycles);
        if gap == 0 {
            100.0
        } else {
            let closed = self.mhla_cycles.saturating_sub(self.mhla_te_cycles);
            100.0 * closed as f64 / gap as f64
        }
    }
}

/// Runs the full measurement pipeline for one application on a platform
/// with the given scratchpad capacity.
pub fn evaluate_app_at(app: &Application, scratchpad: u64) -> AppFigures {
    let platform = Platform::embedded_default(scratchpad);

    // Out-of-the-box: direct placement (no copies, no in-place, no TE) —
    // what the toolchain produces without the MHLA tool.
    let mhla = Mhla::new(&app.program, &platform, MhlaConfig::default());
    let model = mhla.cost_model();
    let baseline = mhla_core::assign::direct_placement(&model, Default::default()).assignment;
    let baseline_te = mhla_core::te::plan(&model, &baseline);
    let base_rep = Simulator::new(&model, &baseline, &baseline_te).run();

    // MHLA step 1 only (transfers never prefetched).
    let step1_cfg = MhlaConfig {
        disable_te: true,
        ..MhlaConfig::default()
    };
    let step1 = Mhla::new(&app.program, &platform, step1_cfg);
    let step1_model = step1.cost_model();
    let r1 = step1.run();
    let rep1 = Simulator::new(&step1_model, &r1.assignment, &r1.te).run();

    // MHLA + TE.
    let r2 = mhla.run();
    let rep2 = Simulator::new(&model, &r2.assignment, &r2.te).run();

    AppFigures {
        name: app.name().to_string(),
        scratchpad,
        baseline_cycles: base_rep.total_cycles(),
        mhla_cycles: rep1.total_cycles(),
        mhla_te_cycles: rep2.total_cycles(),
        ideal_cycles: rep2.busy_cycles,
        baseline_energy_pj: base_rep.total_energy_pj(),
        mhla_energy_pj: rep2.total_energy_pj(),
    }
}

/// [`evaluate_app_at`] with the application's default scratchpad.
pub fn evaluate_app(app: &Application) -> AppFigures {
    evaluate_app_at(app, app.default_scratchpad)
}

/// The nine-application suite (Figures 2 and 3).
pub fn fig2_fig3_suite() -> Vec<AppFigures> {
    mhla_apps::all_apps().iter().map(evaluate_app).collect()
}

/// One point of the TE ablation: TE benefit with the statement compute
/// cycles scaled by `compute_scale`. More processing per fetched byte
/// makes transfers easier to hide (hiding fraction rises) but a smaller
/// share of the execution (relative boost falls) — the paper's "up to
/// 33%, if there are a lot of processing loops" lives at the crossover.
pub fn te_ablation_point(app: &Application, compute_scale: u64) -> AppFigures {
    te_ablation_point_frac(app, compute_scale, 1)
}

/// [`te_ablation_point`] with a rational scale `mul/div`, so the sweep can
/// also visit the transfer-bound side (e.g. 1/4 of the original compute).
pub fn te_ablation_point_frac(app: &Application, mul: u64, div: u64) -> AppFigures {
    let mut program = app.program.clone();
    scale_compute(&mut program, mul, div.max(1));
    let scaled = Application {
        program,
        ..app.clone()
    };
    evaluate_app(&scaled)
}

/// Scales every statement's compute cycles by `mul/div`.
fn scale_compute(program: &mut mhla_ir::Program, mul: u64, div: u64) {
    // Rebuild through the public API: clone arrays/loops, scale statement
    // costs. The IR is an arena, so a structural rebuild is mechanical.
    let scaled = rebuild_with(program, |cycles| (cycles * mul.max(1)) / div);
    *program = scaled;
}

fn rebuild_with(program: &mhla_ir::Program, f: impl Fn(u64) -> u64) -> mhla_ir::Program {
    use mhla_ir::{NodeId, ProgramBuilder};
    let mut b = ProgramBuilder::new(program.name().to_string());
    for (_, a) in program.arrays() {
        b.array(a.name.clone(), &a.dims, a.elem);
    }
    fn emit(
        b: &mut mhla_ir::ProgramBuilder,
        program: &mhla_ir::Program,
        nodes: &[NodeId],
        f: &impl Fn(u64) -> u64,
    ) {
        for &n in nodes {
            match n {
                NodeId::Loop(l) => {
                    let lp = program.loop_(l);
                    b.begin_loop(lp.name.clone(), lp.lower, lp.upper, lp.step);
                    emit(b, program, &lp.body.clone(), f);
                    b.end_loop();
                }
                NodeId::Stmt(s) => {
                    let st = program.stmt(s);
                    let mut sb = b.stmt(st.name.clone());
                    for acc in &st.accesses {
                        sb = match acc.kind {
                            mhla_ir::AccessKind::Read => sb.read(acc.array, acc.index.clone()),
                            mhla_ir::AccessKind::Write => sb.write(acc.array, acc.index.clone()),
                        };
                    }
                    sb.compute_cycles(f(st.compute_cycles)).finish();
                }
            }
        }
    }
    emit(&mut b, program, program.roots(), &f);
    b.finish()
}

/// The eight-application sweep benchmark suite: [`mhla_apps::all_apps`]
/// minus the ninth (`lpc_voice`), mirroring the trade-off figures.
pub fn sweep_suite() -> Vec<Application> {
    let mut apps = mhla_apps::all_apps();
    apps.retain(|a| a.name() != "lpc_voice");
    assert_eq!(apps.len(), 8, "sweep suite must stay at eight apps");
    apps
}

/// Cold-vs-fast sweep timings for one application.
///
/// *Cold* is the frozen pre-optimization path
/// ([`mhla_core::explore::sweep_cold`]): sequential, re-analyzed per point,
/// every candidate move priced by the full `evaluate` oracle. *Fast* is the
/// production path ([`mhla_core::explore::sweep`]): shared analysis and
/// move space, incremental move pricing, warm-started portfolio search,
/// parallel chunks.
#[derive(Clone, PartialEq, Debug)]
pub struct SweepPerf {
    /// Application name.
    pub app: String,
    /// Best-of-`repeats` wall time of the cold sweep, seconds.
    pub cold_seconds: f64,
    /// Best-of-`repeats` wall time of the fast sweep, seconds.
    pub fast_seconds: f64,
    /// Capacity points evaluated per sweep.
    pub points: usize,
    /// Whether both paths produced identical Pareto fronts.
    pub fronts_identical: bool,
    /// Whether both paths produced identical (cycles, energy) per point.
    pub points_identical: bool,
    /// Allocation events per point of the fast sweep, measured by the
    /// counting allocator (`None` outside `alloc-counter` builds).
    pub allocs_per_eval: Option<f64>,
}

impl SweepPerf {
    /// cold / fast wall-time ratio.
    pub fn speedup(&self) -> f64 {
        self.cold_seconds / self.fast_seconds.max(f64::MIN_POSITIVE)
    }
}

/// Measures cold vs fast capacity sweeps over [`sweep_suite`], taking the
/// best of `repeats` runs per path (first run warms caches and the
/// allocator).
pub fn measure_sweep_perf(repeats: usize) -> Vec<SweepPerf> {
    measure_sweep_perf_with(repeats, mhla_core::explore::SweepOptions::default())
}

/// [`measure_sweep_perf`] with explicit [`SweepOptions`] for the fast
/// path — the chunk-size / fan-out tuning experiment. The `bench` binary
/// exposes the knobs through the `MHLA_SWEEP_CHUNK` and
/// `MHLA_SWEEP_PARALLEL` environment variables, so the experiment runs
/// without recompiling; results are identical for every setting (see
/// [`SweepOptions::chunk`]'s determinism guarantee), only wall time moves.
///
/// [`SweepOptions`]: mhla_core::explore::SweepOptions
/// [`SweepOptions::chunk`]: mhla_core::explore::SweepOptions::chunk
pub fn measure_sweep_perf_with(
    repeats: usize,
    opts: mhla_core::explore::SweepOptions,
) -> Vec<SweepPerf> {
    use mhla_core::explore::{default_capacities, sweep_cold, sweep_with};
    use mhla_core::MhlaConfig;
    use mhla_hierarchy::LayerId;

    let caps = default_capacities();
    let platform = Platform::embedded_default(1024);
    let config = MhlaConfig::default();
    sweep_suite()
        .iter()
        .map(|app| {
            let mut cold_s = f64::INFINITY;
            let mut fast_s = f64::INFINITY;
            let mut cold = None;
            let mut fast = None;
            for _ in 0..repeats.max(1) {
                let t = std::time::Instant::now();
                cold = Some(sweep_cold(
                    &app.program,
                    &platform,
                    LayerId(1),
                    &caps,
                    &config,
                ));
                cold_s = cold_s.min(t.elapsed().as_secs_f64());
                let t = std::time::Instant::now();
                fast = Some(sweep_with(
                    &app.program,
                    &platform,
                    LayerId(1),
                    &caps,
                    &config,
                    opts.clone(),
                ));
                fast_s = fast_s.min(t.elapsed().as_secs_f64());
            }
            let (cold, fast) = (cold.expect("ran"), fast.expect("ran"));
            // One extra (untimed) fast run under the counting allocator;
            // a no-op reporting `None` outside `alloc-counter` builds.
            let (_, allocs_per_eval) = count_allocs_per_eval(fast.points.len(), || {
                sweep_with(
                    &app.program,
                    &platform,
                    LayerId(1),
                    &caps,
                    &config,
                    opts.clone(),
                )
            });
            let fronts_identical = cold.pareto_cycles() == fast.pareto_cycles()
                && cold.pareto_energy() == fast.pareto_energy();
            let points_identical = cold.points.len() == fast.points.len()
                && cold
                    .points
                    .iter()
                    .zip(&fast.points)
                    .all(|(a, b)| a.cycles() == b.cycles() && a.energy_pj() == b.energy_pj());
            SweepPerf {
                app: app.name().to_string(),
                cold_seconds: cold_s,
                fast_seconds: fast_s,
                points: cold.points.len(),
                fronts_identical,
                points_identical,
                allocs_per_eval,
            }
        })
        .collect()
}

/// Renders [`SweepPerf`] rows as the `BENCH_sweep.json` document tracked
/// at the workspace root: wall times, points/sec throughput, and the
/// cold/fast equivalence verdict, per app and suite-wide. Optional
/// fields: per-app and suite `allocs_per_eval` when the counting
/// allocator measured the fast path, and suite `prev_fast_seconds` /
/// `wall_speedup_vs_prev` when the prior tracked document's suite time
/// is passed in (the before/after wall-time trajectory).
pub fn sweep_perf_json(perfs: &[SweepPerf], prev_fast: Option<f64>) -> String {
    let cold: f64 = perfs.iter().map(|p| p.cold_seconds).sum();
    let fast: f64 = perfs.iter().map(|p| p.fast_seconds).sum();
    let points: usize = perfs.iter().map(|p| p.points).sum();
    let all_identical = perfs
        .iter()
        .all(|p| p.fronts_identical && p.points_identical);
    let mut out = String::from("{\n  \"bench\": \"tradeoff_sweep\",\n  \"apps\": [\n");
    for (i, p) in perfs.iter().enumerate() {
        let allocs = p
            .allocs_per_eval
            .map(|a| format!("\"allocs_per_eval\": {a:.1}, "))
            .unwrap_or_default();
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"points\": {}, \"cold_seconds\": {:.6}, \
             \"fast_seconds\": {:.6}, \"speedup\": {:.2}, {allocs}\
             \"fronts_identical\": {}, \"points_identical\": {}}}{}\n",
            p.app,
            p.points,
            p.cold_seconds,
            p.fast_seconds,
            p.speedup(),
            p.fronts_identical,
            p.points_identical,
            if i + 1 < perfs.len() { "," } else { "" },
        ));
    }
    let suite_allocs = perfs
        .iter()
        .map(|p| p.allocs_per_eval.map(|a| a * p.points as f64))
        .sum::<Option<f64>>()
        .map(|total| format!("\"allocs_per_eval\": {:.1}, ", total / points.max(1) as f64))
        .unwrap_or_default();
    let prev = prev_fast
        .map(|prev| {
            format!(
                "\"prev_fast_seconds\": {prev:.6}, \"wall_speedup_vs_prev\": {:.2}, ",
                prev / fast.max(f64::MIN_POSITIVE)
            )
        })
        .unwrap_or_default();
    out.push_str(&format!(
        "  ],\n  \"suite\": {{\"points\": {points}, \"cold_seconds\": {cold:.6}, \
         \"fast_seconds\": {fast:.6}, \"speedup\": {:.2}, {suite_allocs}{prev}\
         \"points_per_second_cold\": {:.0}, \"points_per_second_fast\": {:.0}, \
         \"all_identical\": {all_identical}}}\n}}\n",
        cold / fast.max(f64::MIN_POSITIVE),
        points as f64 / cold.max(f64::MIN_POSITIVE),
        points as f64 / fast.max(f64::MIN_POSITIVE),
    ));
    out
}

/// Strict parsing of the sweep tuning environment variables
/// (`MHLA_SWEEP_CHUNK`, `MHLA_SWEEP_PARALLEL`, `MHLA_SWEEP_MAX_EVALS`).
///
/// # Errors
///
/// Malformed values are *rejected* with a typed
/// [`MhlaError::InvalidOptions`](mhla_core::MhlaError) instead of
/// silently falling back to defaults — a typo'd tuning run must not
/// masquerade as a default-configuration measurement. `MHLA_SWEEP_CHUNK`
/// must parse as a positive integer; `MHLA_SWEEP_PARALLEL` must be `0`
/// (sequential) or `1` (parallel, the default); `MHLA_SWEEP_MAX_EVALS`
/// must parse as a positive integer and caps the sweep's evaluation
/// budget ([`ExploreBudget`](mhla_core::explore::ExploreBudget)).
pub fn sweep_options_from_env() -> Result<mhla_core::explore::SweepOptions, mhla_core::MhlaError> {
    parse_sweep_options(
        env_value("MHLA_SWEEP_CHUNK")?.as_deref(),
        env_value("MHLA_SWEEP_PARALLEL")?.as_deref(),
        env_value("MHLA_SWEEP_MAX_EVALS")?.as_deref(),
    )
}

/// Strict parsing of `MHLA_SWEEP_PARALLEL` alone (`true` unless set to
/// `0`); shared by the sweep and pruned-grid harnesses.
///
/// # Errors
///
/// Any value other than `0` or `1` is rejected (see
/// [`sweep_options_from_env`]).
pub fn sweep_parallel_from_env() -> Result<bool, mhla_core::MhlaError> {
    parse_sweep_parallel(env_value("MHLA_SWEEP_PARALLEL")?.as_deref())
}

/// Strict parsing of `MHLA_SWEEP_MAX_EVALS` alone (`None` when unset);
/// shared by the grid harnesses' budget-interrupt smoke mode.
///
/// # Errors
///
/// Any value that is not a positive integer is rejected (see
/// [`sweep_options_from_env`]).
pub fn sweep_max_evals_from_env() -> Result<Option<usize>, mhla_core::MhlaError> {
    parse_sweep_max_evals(env_value("MHLA_SWEEP_MAX_EVALS")?.as_deref())
}

/// Reads one environment variable, distinguishing "absent" from
/// "unreadable" (non-unicode).
fn env_value(name: &str) -> Result<Option<String>, mhla_core::MhlaError> {
    match std::env::var(name) {
        Ok(v) => Ok(Some(v)),
        Err(std::env::VarError::NotPresent) => Ok(None),
        Err(e) => Err(mhla_core::MhlaError::InvalidOptions {
            what: format!("{name} unreadable: {e}"),
        }),
    }
}

/// The pure parsing behind [`sweep_options_from_env`] — unit-testable
/// without mutating process-global environment state.
fn parse_sweep_options(
    chunk: Option<&str>,
    parallel: Option<&str>,
    max_evals: Option<&str>,
) -> Result<mhla_core::explore::SweepOptions, mhla_core::MhlaError> {
    let mut opts = mhla_core::explore::SweepOptions::default();
    if let Some(v) = chunk {
        match v.parse::<usize>() {
            Ok(n) if n >= 1 => opts.chunk = n,
            _ => {
                return Err(mhla_core::MhlaError::InvalidOptions {
                    what: format!("MHLA_SWEEP_CHUNK must be a positive integer, got {v:?}"),
                })
            }
        }
    }
    opts.parallel = parse_sweep_parallel(parallel)?;
    opts.budget.max_evals = parse_sweep_max_evals(max_evals)?;
    Ok(opts)
}

/// The pure parsing behind [`sweep_parallel_from_env`].
fn parse_sweep_parallel(value: Option<&str>) -> Result<bool, mhla_core::MhlaError> {
    match value {
        None => Ok(true),
        Some("0") => Ok(false),
        Some("1") => Ok(true),
        Some(v) => Err(mhla_core::MhlaError::InvalidOptions {
            what: format!("MHLA_SWEEP_PARALLEL must be 0 or 1, got {v:?}"),
        }),
    }
}

/// The pure parsing behind [`sweep_max_evals_from_env`].
fn parse_sweep_max_evals(value: Option<&str>) -> Result<Option<usize>, mhla_core::MhlaError> {
    match value {
        None => Ok(None),
        Some(v) => match v.parse::<usize>() {
            Ok(n) if n >= 1 => Ok(Some(n)),
            _ => Err(mhla_core::MhlaError::InvalidOptions {
                what: format!("MHLA_SWEEP_MAX_EVALS must be a positive integer, got {v:?}"),
            }),
        },
    }
}

/// The default L1×L2 grid of the multi-layer benchmark: L2 from 1 KiB to
/// 16 KiB, L1 from 128 B to 512 B (powers of two) on
/// [`Platform::three_level_default`] — 15 joint sizing points per app.
pub fn default_grid_axes() -> Vec<mhla_core::explore::GridAxis> {
    use mhla_core::explore::GridAxis;
    use mhla_hierarchy::LayerId;
    vec![
        GridAxis::new(LayerId(1), (10..=14).map(|e| 1u64 << e).collect::<Vec<_>>()),
        GridAxis::new(LayerId(2), (7..=9).map(|e| 1u64 << e).collect::<Vec<_>>()),
    ]
}

/// The default L1×L2×L3 grid of the pruned four-level benchmark on
/// [`Platform::four_level_default`]: L3 (`M1`) from 16 KiB to 256 KiB
/// (with a 192 KiB step), L2 (`M2`) from 2 KiB to 32 KiB, L1 (`M3`) from
/// 256 B to 1 KiB — 90 joint sizing points per app. The upper parts of
/// the L3/L2 axes extend past the suite's working sets, which is exactly
/// where the saturation rule of
/// [`mhla_core::explore::sweep_grid_pruned`] collapses the grid: beyond
/// the size at which a layer stops rejecting anything, larger sizes
/// provably repeat the same search.
///
/// The axes overlap, so the grid deliberately visits non-pyramidal stacks
/// (e.g. a 32 KiB L2 above a 16 KiB L3) — [`Platform::four_level`]
/// asserts a pyramid for the *preset*, but grid exploration goes through
/// `Platform::with_layer_capacities`, whose documented contract is to not
/// re-validate: joint sizing is exactly where the interesting inversions
/// live (the frontier routinely lands on them).
pub fn default_grid4_axes() -> Vec<mhla_core::explore::GridAxis> {
    use mhla_core::explore::GridAxis;
    use mhla_hierarchy::LayerId;
    let mut l3: Vec<u64> = (14..=18).map(|e| 1u64 << e).collect();
    l3.push(192 * 1024);
    vec![
        GridAxis::new(LayerId(1), l3),
        GridAxis::new(LayerId(2), (11..=15).map(|e| 1u64 << e).collect::<Vec<_>>()),
        GridAxis::new(LayerId(3), (8..=10).map(|e| 1u64 << e).collect::<Vec<_>>()),
    ]
}

/// Exhaustive vs pruned timings and counts for one application's
/// four-level (L1×L2×L3) grid sweep.
///
/// *Exhaustive* evaluates the full Cartesian product with
/// [`mhla_core::explore::sweep_grid_with`] (sequential, cold — the same
/// per-point machinery and semantics as the pruned path, so the delta is
/// the pruning itself). *Pruned* is
/// [`mhla_core::explore::sweep_grid_pruned_with`], measured both
/// sequentially (`wave = 1`) and in the frontier-wave parallel mode
/// (default [`PruneOptions`](mhla_core::explore::PruneOptions)) — skip
/// decisions, evaluated points and frontiers are identical between the
/// two by construction, so the parallel column is pure wall time.
#[derive(Clone, PartialEq, Debug)]
pub struct Grid4Perf {
    /// Application name.
    pub app: String,
    /// The pruned sweep's own bookkeeping (candidates, evaluated, skip
    /// counts and ratios) — identical in both modes (asserted).
    pub stats: mhla_core::explore::PruneStats,
    /// Best-of-`repeats` wall time of the exhaustive sweep, seconds.
    pub exhaustive_seconds: f64,
    /// Best-of-`repeats` wall time of the sequential pruned sweep,
    /// seconds.
    pub pruned_seconds: f64,
    /// Best-of-`repeats` wall time of the frontier-wave parallel pruned
    /// sweep, seconds.
    pub pruned_parallel_seconds: f64,
    /// Dominance waves of the parallel run.
    pub waves: usize,
    /// Speculative evaluations the parallel run discarded at commit time.
    pub speculative_evals: usize,
    /// Whether the pruned cycles and energy frontiers are point-for-point
    /// (capacities + full results) those of the exhaustive grid.
    pub frontier_identical: bool,
    /// Whether every evaluated pruned point is bit-identical to the
    /// exhaustive point at the same capacity vector.
    pub points_identical: bool,
    /// Whether the sequential and parallel pruned runs produced identical
    /// `PruneStats` and evaluated points.
    pub modes_identical: bool,
    /// Allocation events per evaluated point of the sequential pruned
    /// sweep, measured by the counting allocator (`None` outside
    /// `alloc-counter` builds).
    pub allocs_per_eval: Option<f64>,
}

impl Grid4Perf {
    /// exhaustive / sequential-pruned wall-time ratio.
    pub fn speedup(&self) -> f64 {
        self.exhaustive_seconds / self.pruned_seconds.max(f64::MIN_POSITIVE)
    }

    /// exhaustive / parallel-pruned wall-time ratio.
    pub fn parallel_speedup(&self) -> f64 {
        self.exhaustive_seconds / self.pruned_parallel_seconds.max(f64::MIN_POSITIVE)
    }
}

/// The frontier of a grid as owned `(capacities, result)` pairs — the
/// representation the pruned-vs-exhaustive comparisons use (indices shift
/// when points are skipped; the underlying points must not).
pub fn grid_frontier_points(
    g: &mhla_core::explore::GridSweep,
    indices: &[usize],
) -> Vec<(Vec<u64>, mhla_core::MhlaResult)> {
    indices
        .iter()
        .map(|&i| (g.points[i].capacities.clone(), g.points[i].result.clone()))
        .collect()
}

/// Measures exhaustive vs pruned four-level grid sweeps over
/// [`sweep_suite`] under the default (cycles) objective, best of
/// `repeats` runs per path, verifying frontier and per-point identity.
pub fn measure_grid4_perf(repeats: usize) -> Vec<Grid4Perf> {
    measure_grid4_perf_with(repeats, &mhla_core::MhlaConfig::default())
}

/// [`measure_grid4_perf`] under an explicit [`MhlaConfig`] — the `grid4`
/// binary also measures `Objective::Energy`, where the gain-bound
/// saturation rule (instead of the cycles-only one) drives the pruning.
///
/// [`MhlaConfig`]: mhla_core::MhlaConfig
pub fn measure_grid4_perf_with(repeats: usize, config: &mhla_core::MhlaConfig) -> Vec<Grid4Perf> {
    use mhla_core::explore::{sweep_grid_pruned_with, sweep_grid_with, PruneOptions, SweepOptions};

    let axes = default_grid4_axes();
    let platform = Platform::four_level_default();
    // Sequential *cold* exhaustive reference: the pruned sweep evaluates
    // every point cold (its canonical, standalone-identical semantics), so
    // the reference must too — the timing delta then isolates pruning.
    let opts = SweepOptions {
        parallel: false,
        warm_start: false,
        ..SweepOptions::default()
    };
    let sequential_opts = PruneOptions {
        parallel: false,
        wave: 1,
        ..PruneOptions::default()
    };
    sweep_suite()
        .iter()
        .map(|app| {
            let mut exhaustive_s = f64::INFINITY;
            let mut pruned_s = f64::INFINITY;
            let mut parallel_s = f64::INFINITY;
            let mut exhaustive = None;
            let mut pruned = None;
            let mut parallel = None;
            for _ in 0..repeats.max(1) {
                let t = std::time::Instant::now();
                exhaustive = Some(sweep_grid_with(
                    &app.program,
                    &platform,
                    &axes,
                    config,
                    opts.clone(),
                ));
                exhaustive_s = exhaustive_s.min(t.elapsed().as_secs_f64());
                let t = std::time::Instant::now();
                pruned = Some(sweep_grid_pruned_with(
                    &app.program,
                    &platform,
                    &axes,
                    config,
                    sequential_opts.clone(),
                ));
                pruned_s = pruned_s.min(t.elapsed().as_secs_f64());
                let t = std::time::Instant::now();
                parallel = Some(sweep_grid_pruned_with(
                    &app.program,
                    &platform,
                    &axes,
                    config,
                    PruneOptions::default(),
                ));
                parallel_s = parallel_s.min(t.elapsed().as_secs_f64());
            }
            let (exhaustive, pruned, parallel) = (
                exhaustive.expect("ran"),
                pruned.expect("ran"),
                parallel.expect("ran"),
            );
            // One extra (untimed) sequential pruned run under the
            // counting allocator; `None` outside `alloc-counter` builds.
            let (_, allocs_per_eval) = count_allocs_per_eval(pruned.stats.evaluated, || {
                sweep_grid_pruned_with(
                    &app.program,
                    &platform,
                    &axes,
                    config,
                    sequential_opts.clone(),
                )
            });
            let frontier_identical = grid_frontier_points(&exhaustive, &exhaustive.pareto_cycles())
                == grid_frontier_points(&pruned.sweep, &pruned.sweep.pareto_cycles())
                && grid_frontier_points(&exhaustive, &exhaustive.pareto_energy())
                    == grid_frontier_points(&pruned.sweep, &pruned.sweep.pareto_energy());
            let points_identical = pruned.sweep.points.iter().all(|pp| {
                exhaustive
                    .points
                    .iter()
                    .find(|ep| ep.capacities == pp.capacities)
                    .is_some_and(|ep| ep.result == pp.result)
            });
            let modes_identical = pruned.stats == parallel.stats && pruned.sweep == parallel.sweep;
            Grid4Perf {
                app: app.name().to_string(),
                stats: pruned.stats,
                exhaustive_seconds: exhaustive_s,
                pruned_seconds: pruned_s,
                pruned_parallel_seconds: parallel_s,
                waves: parallel.waves,
                speculative_evals: parallel.speculative_evals,
                frontier_identical,
                points_identical,
                modes_identical,
                allocs_per_eval,
            }
        })
        .collect()
}

/// Adaptive-refinement bookkeeping for one application's four-level
/// grid: the virtual fine lattice certified by
/// [`mhla_core::explore::sweep_grid_refined_with`] over
/// [`default_grid4_axes`], the fraction of it actually searched, and the
/// frontier-equivalence verdict against the coarse sweep (the refined
/// frontier must dominate-or-equal the coarse one — it covers a superset
/// of the coarse lattice).
#[derive(Clone, PartialEq, Debug)]
pub struct Grid4Refine {
    /// Application name.
    pub app: String,
    /// The refinement's own bookkeeping (virtual lattice size, evals,
    /// certificate ledger).
    pub stats: mhla_core::explore::RefineStats,
    /// Refinement waves run.
    pub waves: usize,
    /// Whether every coarse-lattice point of the refined sweep is
    /// bit-identical to the pruned coarse sweep's point there, and the
    /// refined frontiers contain every coarse frontier point or a
    /// dominator of it.
    pub frontier_consistent: bool,
    /// Wall time of the refined sweep, seconds.
    pub refined_seconds: f64,
}

/// Measures the adaptive refinement over [`sweep_suite`] at the default
/// depth ([`mhla_core::explore::REFINE_DEPTH`]) under the given config,
/// checking per-app frontier consistency against the pruned coarse
/// sweep.
pub fn measure_grid4_refine(config: &mhla_core::MhlaConfig) -> Vec<Grid4Refine> {
    use mhla_core::explore::{
        sweep_grid_pruned_with, sweep_grid_refined_with, PruneOptions, RefineOptions,
    };
    use mhla_core::pareto;

    let axes = default_grid4_axes();
    let platform = Platform::four_level_default();
    sweep_suite()
        .iter()
        .map(|app| {
            let t = std::time::Instant::now();
            let refined = sweep_grid_refined_with(
                &app.program,
                &platform,
                &axes,
                config,
                RefineOptions::default(),
            );
            let refined_seconds = t.elapsed().as_secs_f64();
            let coarse = sweep_grid_pruned_with(
                &app.program,
                &platform,
                &axes,
                config,
                PruneOptions::default(),
            );
            // Every committed coarse point must reappear bit-identically
            // in the refined sweep (same cold semantics, superset
            // lattice), and the refined frontiers must dominate-or-equal
            // the coarse ones on both surfaces.
            let points_ok = coarse.sweep.points.iter().all(|cp| {
                refined
                    .sweep
                    .points
                    .iter()
                    .find(|rp| rp.capacities == cp.capacities)
                    .is_none_or(|rp| rp.result == cp.result)
            });
            let surface =
                |g: &mhla_core::explore::GridSweep, idx: &[usize], energy: bool| -> Vec<Vec<f64>> {
                    idx.iter()
                        .map(|&i| {
                            let p = &g.points[i];
                            let mut c: Vec<f64> = p.capacities.iter().map(|&c| c as f64).collect();
                            c.push(if energy {
                                p.energy_pj()
                            } else {
                                p.cycles() as f64
                            });
                            c
                        })
                        .collect()
                };
            let fronts_ok = pareto::front_dominates(
                &surface(&refined.sweep, &refined.sweep.pareto_cycles(), false),
                &surface(&coarse.sweep, &coarse.sweep.pareto_cycles(), false),
            ) && pareto::front_dominates(
                &surface(&refined.sweep, &refined.sweep.pareto_energy(), true),
                &surface(&coarse.sweep, &coarse.sweep.pareto_energy(), true),
            );
            Grid4Refine {
                app: app.name().to_string(),
                stats: refined.stats,
                waves: refined.waves,
                frontier_consistent: refined.status.is_complete() && points_ok && fronts_ok,
                refined_seconds,
            }
        })
        .collect()
}

/// Improving-vs-cold comparison for one application's four-level grid:
/// the mode-tagged eval counts and frontier deltas of
/// [`SearchMode`](mhla_core::explore::SearchMode) — `Cold` (the frozen
/// semantics) against `Improving` (the neighbor-seeded portfolio whose
/// results dominate-or-equal the cold ones on the objective surface).
#[derive(Clone, PartialEq, Debug)]
pub struct ImprovingGrid4Perf {
    /// Application name.
    pub app: String,
    /// Grid points per sweep.
    pub points: usize,
    /// Greedy search legs of the cold sweep (one per point).
    pub cold_evals: usize,
    /// Greedy search legs of the improving sweep (cold leg + distinct
    /// warm seeds per point).
    pub improving_evals: usize,
    /// Points whose committed result came from a warm seed — strict
    /// objective improvements over the cold search by construction.
    pub seed_wins: usize,
    /// Points whose improving objective score is strictly below the cold
    /// one (equals [`seed_wins`](Self::seed_wins); asserted).
    pub improved_points: usize,
    /// Largest per-point relative objective improvement, percent.
    pub max_improvement_pct: f64,
    /// Largest relative improvement the improving objective frontier
    /// offers over a cold frontier point, percent (0 when the frontiers
    /// coincide) — from [`mhla_core::pareto::front_deltas`].
    pub frontier_max_delta_pct: f64,
    /// The machine-checked guarantee: every point scores ≤ its cold
    /// counterpart and the improving objective frontier dominates-or-
    /// equals the cold one.
    pub dominates: bool,
    /// Best-of-`repeats` wall time of the (sequential) cold sweep,
    /// seconds.
    pub cold_seconds: f64,
    /// Best-of-`repeats` wall time of the improving sweep, seconds.
    pub improving_seconds: f64,
}

/// Measures cold-vs-improving four-level grid sweeps over [`sweep_suite`]
/// under an explicit [`MhlaConfig`], best of `repeats` runs per mode,
/// verifying the dominance guarantee per app.
///
/// [`MhlaConfig`]: mhla_core::MhlaConfig
pub fn measure_grid4_improving(
    repeats: usize,
    config: &mhla_core::MhlaConfig,
) -> Vec<ImprovingGrid4Perf> {
    use mhla_core::explore::{sweep_grid_run, SearchMode, SweepOptions};
    use mhla_core::{pareto, report};

    let axes = default_grid4_axes();
    let platform = Platform::four_level_default();
    // Sequential cold reference: the improving scheduler is sequential by
    // construction, so the timing delta isolates the extra portfolio legs.
    let cold_opts = SweepOptions {
        warm_start: false,
        parallel: false,
        ..SweepOptions::default()
    };
    let improving_opts = SweepOptions {
        mode: SearchMode::Improving,
        ..SweepOptions::default()
    };
    sweep_suite()
        .iter()
        .map(|app| {
            let mut cold_s = f64::INFINITY;
            let mut improving_s = f64::INFINITY;
            let mut cold = None;
            let mut improving = None;
            for _ in 0..repeats.max(1) {
                let t = std::time::Instant::now();
                cold = Some(sweep_grid_run(
                    &app.program,
                    &platform,
                    &axes,
                    config,
                    cold_opts.clone(),
                ));
                cold_s = cold_s.min(t.elapsed().as_secs_f64());
                let t = std::time::Instant::now();
                improving = Some(sweep_grid_run(
                    &app.program,
                    &platform,
                    &axes,
                    config,
                    improving_opts.clone(),
                ));
                improving_s = improving_s.min(t.elapsed().as_secs_f64());
            }
            let (cold, improving) = (cold.expect("ran"), improving.expect("ran"));
            let objective = &config.objective;
            let mut improved = 0usize;
            let mut max_improvement_pct = 0.0f64;
            let mut per_point_ok = improving.sweep.points.len() == cold.sweep.points.len();
            for (imp, base) in improving.sweep.points.iter().zip(&cold.sweep.points) {
                let (si, sc) = (
                    imp.objective_score(objective),
                    base.objective_score(objective),
                );
                per_point_ok &= imp.capacities == base.capacities && si <= sc;
                if si < sc {
                    improved += 1;
                    max_improvement_pct = max_improvement_pct.max(100.0 * (1.0 - si / sc));
                }
            }
            let imp_front = report::objective_coords(
                &improving.sweep,
                &improving.sweep.pareto_objective(objective),
                objective,
            );
            let cold_front = report::objective_coords(
                &cold.sweep,
                &cold.sweep.pareto_objective(objective),
                objective,
            );
            let deltas = pareto::front_deltas(&imp_front, &cold_front);
            let frontier_ok = deltas.iter().all(|&d| d >= 0.0);
            let frontier_max_delta_pct = deltas
                .iter()
                .zip(&cold_front)
                .map(|(&d, q)| 100.0 * d / q[q.len() - 1].max(f64::MIN_POSITIVE))
                .fold(0.0f64, f64::max);
            assert_eq!(
                improved,
                improving.seed_wins,
                "{}: seed wins must be exactly the strict improvements",
                app.name()
            );
            ImprovingGrid4Perf {
                app: app.name().to_string(),
                points: cold.sweep.points.len(),
                cold_evals: cold.evals,
                improving_evals: improving.evals,
                seed_wins: improving.seed_wins,
                improved_points: improved,
                max_improvement_pct,
                frontier_max_delta_pct,
                dominates: per_point_ok && frontier_ok,
                cold_seconds: cold_s,
                improving_seconds: improving_s,
            }
        })
        .collect()
}

/// Renders one objective's [`ImprovingGrid4Perf`] rows as a JSON object
/// (apps + suite totals), used by [`grid4_perf_json`]'s per-objective
/// `improving` section.
fn grid4_improving_json(perfs: &[ImprovingGrid4Perf], indent: &str) -> String {
    let cold: f64 = perfs.iter().map(|p| p.cold_seconds).sum();
    let improving: f64 = perfs.iter().map(|p| p.improving_seconds).sum();
    let points: usize = perfs.iter().map(|p| p.points).sum();
    let cold_evals: usize = perfs.iter().map(|p| p.cold_evals).sum();
    let improving_evals: usize = perfs.iter().map(|p| p.improving_evals).sum();
    let seed_wins: usize = perfs.iter().map(|p| p.seed_wins).sum();
    let improved: usize = perfs.iter().map(|p| p.improved_points).sum();
    let all_dominate = perfs.iter().all(|p| p.dominates);
    let mut out = format!("{{\n{indent}  \"apps\": [\n");
    for (i, p) in perfs.iter().enumerate() {
        out.push_str(&format!(
            "{indent}    {{\"name\": \"{}\", \"points\": {}, \"cold_evals\": {}, \
             \"improving_evals\": {}, \"seed_wins\": {}, \"improved_points\": {}, \
             \"max_improvement_pct\": {:.3}, \"frontier_max_delta_pct\": {:.3}, \
             \"dominates\": {}, \"cold_seconds\": {:.6}, \"improving_seconds\": {:.6}}}{}\n",
            p.app,
            p.points,
            p.cold_evals,
            p.improving_evals,
            p.seed_wins,
            p.improved_points,
            p.max_improvement_pct,
            p.frontier_max_delta_pct,
            p.dominates,
            p.cold_seconds,
            p.improving_seconds,
            if i + 1 < perfs.len() { "," } else { "" },
        ));
    }
    out.push_str(&format!(
        "{indent}  ],\n{indent}  \"suite\": {{\"points\": {points}, \
         \"cold_evals\": {cold_evals}, \"improving_evals\": {improving_evals}, \
         \"seed_wins\": {seed_wins}, \"improved_points\": {improved}, \
         \"cold_seconds\": {cold:.6}, \"improving_seconds\": {improving:.6}, \
         \"all_dominate\": {all_dominate}}}\n{indent}}}",
    ));
    out
}

/// Renders the [`Grid4Refine`] rows as a JSON object (apps + suite
/// totals), used by [`grid4_perf_json`]'s top-level `refine` section.
fn grid4_refine_json(perfs: &[Grid4Refine], indent: &str) -> String {
    let virtual_points: u64 = perfs.iter().map(|p| p.stats.virtual_points).sum();
    let evaluated: usize = perfs.iter().map(|p| p.stats.evaluated).sum();
    let certified: usize = perfs.iter().map(|p| p.stats.corners_certified).sum();
    let seconds: f64 = perfs.iter().map(|p| p.refined_seconds).sum();
    let all_consistent = perfs.iter().all(|p| p.frontier_consistent);
    let mut out = format!("{{\n{indent}  \"apps\": [\n");
    for (i, p) in perfs.iter().enumerate() {
        out.push_str(&format!(
            "{indent}    {{\"name\": \"{}\", \"virtual_points\": {}, \"evaluated\": {}, \
             \"eval_ratio\": {:.4}, \"coarse_points\": {}, \"cells_opened\": {}, \
             \"cells_closed_mask\": {}, \"cells_closed_floor\": {}, \"cells_leaf\": {}, \
             \"corners_certified\": {}, \"waves\": {}, \"frontier_consistent\": {}, \
             \"refined_seconds\": {:.6}}}{}\n",
            p.app,
            p.stats.virtual_points,
            p.stats.evaluated,
            p.stats.eval_ratio(),
            p.stats.coarse_points,
            p.stats.cells_opened,
            p.stats.cells_closed_mask,
            p.stats.cells_closed_floor,
            p.stats.cells_leaf,
            p.stats.corners_certified,
            p.waves,
            p.frontier_consistent,
            p.refined_seconds,
            if i + 1 < perfs.len() { "," } else { "" },
        ));
    }
    out.push_str(&format!(
        "{indent}  ],\n{indent}  \"suite\": {{\"virtual_points\": {virtual_points}, \
         \"evaluated\": {evaluated}, \"eval_ratio\": {:.4}, \
         \"corners_certified\": {certified}, \"refined_seconds\": {seconds:.6}, \
         \"all_consistent\": {all_consistent}}}\n{indent}}}",
        evaluated as f64 / (virtual_points.max(1)) as f64,
    ));
    out
}

/// Renders one objective's [`Grid4Perf`] rows as a JSON object (apps +
/// suite totals), used by [`grid4_perf_json`] per objective section.
/// `prev_pruned` is the prior tracked document's suite sequential-pruned
/// wall time, when known — the before/after trajectory hook.
fn grid4_objective_json(perfs: &[Grid4Perf], indent: &str, prev_pruned: Option<f64>) -> String {
    let exhaustive: f64 = perfs.iter().map(|p| p.exhaustive_seconds).sum();
    let pruned: f64 = perfs.iter().map(|p| p.pruned_seconds).sum();
    let parallel: f64 = perfs.iter().map(|p| p.pruned_parallel_seconds).sum();
    let candidates: usize = perfs.iter().map(|p| p.stats.candidates).sum();
    let evaluated: usize = perfs.iter().map(|p| p.stats.evaluated).sum();
    let skipped: usize = perfs.iter().map(|p| p.stats.skipped()).sum();
    let waves: usize = perfs.iter().map(|p| p.waves).sum();
    let speculative: usize = perfs.iter().map(|p| p.speculative_evals).sum();
    let all_identical = perfs
        .iter()
        .all(|p| p.frontier_identical && p.points_identical && p.modes_identical);
    let mut out = format!("{{\n{indent}  \"apps\": [\n");
    for (i, p) in perfs.iter().enumerate() {
        let allocs = p
            .allocs_per_eval
            .map(|a| format!("\"allocs_per_eval\": {a:.1}, "))
            .unwrap_or_default();
        out.push_str(&format!(
            "{indent}    {{\"name\": \"{}\", \"candidates\": {}, \"evaluated\": {}, \
             \"skipped_saturated\": {}, \"skipped_floor\": {}, \"skip_ratio\": {:.3}, \
             \"waves\": {}, \"speculative_evals\": {}, \
             \"exhaustive_seconds\": {:.6}, \"pruned_seconds\": {:.6}, \
             \"pruned_parallel_seconds\": {:.6}, \"speedup\": {:.2}, \
             \"parallel_speedup\": {:.2}, {allocs}\"frontier_identical\": {}, \
             \"points_identical\": {}, \"modes_identical\": {}}}{}\n",
            p.app,
            p.stats.candidates,
            p.stats.evaluated,
            p.stats.skipped_saturated,
            p.stats.skipped_floor,
            p.stats.skip_ratio(),
            p.waves,
            p.speculative_evals,
            p.exhaustive_seconds,
            p.pruned_seconds,
            p.pruned_parallel_seconds,
            p.speedup(),
            p.parallel_speedup(),
            p.frontier_identical,
            p.points_identical,
            p.modes_identical,
            if i + 1 < perfs.len() { "," } else { "" },
        ));
    }
    let suite_allocs = perfs
        .iter()
        .map(|p| p.allocs_per_eval.map(|a| a * p.stats.evaluated as f64))
        .sum::<Option<f64>>()
        .map(|total| {
            format!(
                "\"allocs_per_eval\": {:.1}, ",
                total / evaluated.max(1) as f64
            )
        })
        .unwrap_or_default();
    let prev = prev_pruned
        .map(|prev| {
            format!(
                "\"prev_pruned_seconds\": {prev:.6}, \"wall_speedup_vs_prev\": {:.2}, ",
                prev / pruned.max(f64::MIN_POSITIVE)
            )
        })
        .unwrap_or_default();
    out.push_str(&format!(
        "{indent}  ],\n{indent}  \"suite\": {{\"candidates\": {candidates}, \
         \"evaluated\": {evaluated}, \"skipped\": {skipped}, \"skip_ratio\": {:.3}, \
         \"waves\": {waves}, \"speculative_evals\": {speculative}, \
         \"exhaustive_seconds\": {exhaustive:.6}, \"pruned_seconds\": {pruned:.6}, \
         \"pruned_parallel_seconds\": {parallel:.6}, \"speedup\": {:.2}, \
         \"parallel_speedup\": {:.2}, {suite_allocs}{prev}\
         \"all_identical\": {all_identical}}}\n{indent}}}",
        skipped as f64 / candidates.max(1) as f64,
        exhaustive / pruned.max(f64::MIN_POSITIVE),
        exhaustive / parallel.max(f64::MIN_POSITIVE),
    ));
    out
}

/// Renders the cycles- and energy-objective [`Grid4Perf`] rows plus the
/// per-objective [`ImprovingGrid4Perf`] mode comparison and the
/// [`Grid4Refine`] adaptive-refinement rows as the `BENCH_grid4.json`
/// document tracked at the workspace root. Each objective section
/// carries the pruned-vs-exhaustive data under `pruned` and the
/// mode-tagged eval counts / frontier deltas under `improving`; the
/// top-level `refine` section holds the virtual-lattice bookkeeping.
pub fn grid4_perf_json(
    cycles: &[Grid4Perf],
    energy: &[Grid4Perf],
    cycles_improving: &[ImprovingGrid4Perf],
    energy_improving: &[ImprovingGrid4Perf],
    refine: &[Grid4Refine],
    prev_pruned: Option<f64>,
) -> String {
    format!(
        "{{\n  \"bench\": \"grid_sweep_l1_l2_l3_pruned\",\n  \"objectives\": {{\n    \
         \"cycles\": {{\n      \"pruned\": {},\n      \"improving\": {}\n    }},\n    \
         \"energy\": {{\n      \"pruned\": {},\n      \"improving\": {}\n    }}\n  }},\n  \
         \"refine\": {}\n}}\n",
        grid4_objective_json(cycles, "      ", prev_pruned),
        grid4_improving_json(cycles_improving, "      "),
        grid4_objective_json(energy, "      ", None),
        grid4_improving_json(energy_improving, "      "),
        grid4_refine_json(refine, "  "),
    )
}

/// Shared-context vs per-point-rebuild timings for one application's
/// L1×L2 grid sweep.
///
/// *Rebuild* evaluates every grid point with a standalone
/// [`Mhla::new`]`.run()` — the reuse analysis, program facts, TE caches
/// and move space re-derived per point (what a naive N-D generalization
/// of the seed sweep would do). *Shared* is
/// [`mhla_core::explore::sweep_grid`]: one `ExplorationContext`, cheap
/// per-platform views, warm-started parallel chunks.
#[derive(Clone, PartialEq, Debug)]
pub struct GridPerf {
    /// Application name.
    pub app: String,
    /// Grid points evaluated per sweep.
    pub points: usize,
    /// Best-of-`repeats` wall time of the per-point-rebuild path, seconds.
    pub rebuild_seconds: f64,
    /// Best-of-`repeats` wall time of the shared-context path, seconds.
    pub shared_seconds: f64,
    /// Whether both paths produced bit-identical results at every point.
    pub points_identical: bool,
}

impl GridPerf {
    /// rebuild / shared wall-time ratio.
    pub fn speedup(&self) -> f64 {
        self.rebuild_seconds / self.shared_seconds.max(f64::MIN_POSITIVE)
    }
}

/// Measures shared-context vs per-point-rebuild L1×L2 grid sweeps over
/// [`sweep_suite`], best of `repeats` runs per path.
pub fn measure_grid_perf(repeats: usize) -> Vec<GridPerf> {
    use mhla_core::explore::sweep_grid;
    use mhla_core::MhlaConfig;
    use mhla_hierarchy::LayerId;

    let axes = default_grid_axes();
    let platform = Platform::three_level_default();
    let config = MhlaConfig::default();
    sweep_suite()
        .iter()
        .map(|app| {
            let mut rebuild_s = f64::INFINITY;
            let mut shared_s = f64::INFINITY;
            let mut rebuild: Vec<mhla_core::MhlaResult> = Vec::new();
            let mut shared = None;
            for _ in 0..repeats.max(1) {
                let t = std::time::Instant::now();
                rebuild = {
                    let mut out = Vec::new();
                    for &l2 in &axes[0].capacities {
                        for &l1 in &axes[1].capacities {
                            let pf = platform
                                .with_layer_capacities(&[(LayerId(1), l2), (LayerId(2), l1)]);
                            out.push(Mhla::new(&app.program, &pf, config.clone()).run());
                        }
                    }
                    out
                };
                rebuild_s = rebuild_s.min(t.elapsed().as_secs_f64());
                let t = std::time::Instant::now();
                shared = Some(sweep_grid(&app.program, &platform, &axes, &config));
                shared_s = shared_s.min(t.elapsed().as_secs_f64());
            }
            let shared = shared.expect("ran");
            let points_identical = shared.points.len() == rebuild.len()
                && shared
                    .points
                    .iter()
                    .zip(&rebuild)
                    .all(|(a, b)| &a.result == b);
            GridPerf {
                app: app.name().to_string(),
                points: shared.points.len(),
                rebuild_seconds: rebuild_s,
                shared_seconds: shared_s,
                points_identical,
            }
        })
        .collect()
}

/// Renders [`GridPerf`] rows as the `BENCH_grid.json` document tracked at
/// the workspace root.
pub fn grid_perf_json(perfs: &[GridPerf]) -> String {
    let rebuild: f64 = perfs.iter().map(|p| p.rebuild_seconds).sum();
    let shared: f64 = perfs.iter().map(|p| p.shared_seconds).sum();
    let points: usize = perfs.iter().map(|p| p.points).sum();
    let all_identical = perfs.iter().all(|p| p.points_identical);
    let mut out = String::from("{\n  \"bench\": \"grid_sweep_l1_l2\",\n  \"apps\": [\n");
    for (i, p) in perfs.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"points\": {}, \"rebuild_seconds\": {:.6}, \
             \"shared_seconds\": {:.6}, \"speedup\": {:.2}, \"points_identical\": {}}}{}\n",
            p.app,
            p.points,
            p.rebuild_seconds,
            p.shared_seconds,
            p.speedup(),
            p.points_identical,
            if i + 1 < perfs.len() { "," } else { "" },
        ));
    }
    out.push_str(&format!(
        "  ],\n  \"suite\": {{\"points\": {points}, \"rebuild_seconds\": {rebuild:.6}, \
         \"shared_seconds\": {shared:.6}, \"speedup\": {:.2}, \
         \"points_per_second_rebuild\": {:.0}, \"points_per_second_shared\": {:.0}, \
         \"all_identical\": {all_identical}}}\n}}\n",
        rebuild / shared.max(f64::MIN_POSITIVE),
        points as f64 / rebuild.max(f64::MIN_POSITIVE),
        points as f64 / shared.max(f64::MIN_POSITIVE),
    ));
    out
}

/// Writes `content` to `results/<name>` relative to the workspace root,
/// creating the directory as needed. Best-effort: failures are printed,
/// not fatal (benches may run in sandboxes).
pub fn write_results(name: &str, content: &str) {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results");
    if let Err(e) =
        std::fs::create_dir_all(&dir).and_then(|_| std::fs::write(dir.join(name), content))
    {
        eprintln!("note: could not write results/{name}: {e}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gain_percentages_stay_finite_for_degenerate_figures() {
        // A program whose baseline simulates to zero cycles (empty loop
        // nests, zero-trip bounds) must not turn the report into NaN/-inf:
        // every denominator in the percentage helpers is clamped.
        let zero = AppFigures {
            name: "degenerate".into(),
            scratchpad: 1024,
            baseline_cycles: 0,
            mhla_cycles: 0,
            mhla_te_cycles: 0,
            ideal_cycles: 0,
            baseline_energy_pj: 0.0,
            mhla_energy_pj: 0.0,
        };
        assert!(zero.mhla_gain_pct().is_finite());
        assert!(zero.te_gain_pct().is_finite());
        assert!(zero.energy_gain_pct().is_finite());
        assert!(zero.hiding_pct().is_finite());
        // And a zero baseline with nonzero MHLA cycles stays finite too
        // (the pathological "optimization made it worse than nothing"
        // corner an untrusted serialized program can produce).
        let worse = AppFigures {
            mhla_cycles: 10,
            ..zero
        };
        assert!(worse.mhla_gain_pct().is_finite());
    }

    #[test]
    fn env_parsing_rejects_malformed_values() {
        use mhla_core::explore::SweepOptions;
        // Pure parsers — no process-global env mutation (set_var racing a
        // concurrent getenv in a sibling test would be UB on glibc).
        assert_eq!(
            parse_sweep_options(None, None, None).unwrap(),
            SweepOptions::default()
        );
        assert!(parse_sweep_parallel(None).unwrap());

        let opts = parse_sweep_options(Some("8"), Some("0"), None).unwrap();
        assert_eq!(opts.chunk, 8);
        assert!(!opts.parallel);
        assert!(
            parse_sweep_options(Some("8"), Some("1"), None)
                .unwrap()
                .parallel
        );
        let budgeted = parse_sweep_options(None, None, Some("5")).unwrap();
        assert_eq!(budgeted.budget.max_evals, Some(5));

        for bad in ["zero", "-1", "0", "", "4x"] {
            let err = parse_sweep_options(Some(bad), None, None).unwrap_err();
            assert!(
                matches!(err, mhla_core::MhlaError::InvalidOptions { .. }),
                "{err}"
            );
            assert!(err.to_string().contains("MHLA_SWEEP_CHUNK"), "{err}");
            let err = parse_sweep_max_evals(Some(bad)).unwrap_err();
            assert!(err.to_string().contains("MHLA_SWEEP_MAX_EVALS"), "{err}");
        }
        for bad in ["2", "yes", "", "true"] {
            let err = parse_sweep_parallel(Some(bad)).unwrap_err();
            assert!(err.to_string().contains("MHLA_SWEEP_PARALLEL"), "{err}");
            assert!(parse_sweep_options(None, Some(bad), None).is_err());
        }
    }

    #[test]
    fn figure_shape_holds_on_a_small_app() {
        let app = mhla_apps::sobel_edge::app();
        let f = evaluate_app(&app);
        assert!(f.baseline_cycles > f.mhla_cycles, "{f:?}");
        assert!(f.mhla_cycles >= f.mhla_te_cycles, "{f:?}");
        assert!(f.mhla_te_cycles >= f.ideal_cycles, "{f:?}");
        assert!(f.baseline_energy_pj > f.mhla_energy_pj, "{f:?}");
        assert!(f.mhla_gain_pct() > 0.0);
        assert!((0.0..=100.0).contains(&f.hiding_pct()));
    }

    #[test]
    fn compute_scaling_preserves_structure() {
        let app = mhla_apps::fir_bank::app();
        let mut p = app.program.clone();
        scale_compute(&mut p, 4, 1);
        assert_eq!(p.stmt_count(), app.program.stmt_count());
        assert_eq!(p.loop_count(), app.program.loop_count());
        let (s0, _) = (p.stmts().next().unwrap(), ());
        let (o0, _) = (app.program.stmts().next().unwrap(), ());
        assert_eq!(s0.1.compute_cycles, 4 * o0.1.compute_cycles);
    }

    #[test]
    fn more_compute_means_more_hiding() {
        let app = mhla_apps::fir_bank::app();
        let lean = te_ablation_point(&app, 1);
        let fat = te_ablation_point(&app, 8);
        assert!(fat.hiding_pct() >= lean.hiding_pct() - 1e-9);
    }

    #[test]
    fn transfer_bound_side_boosts_te_share() {
        // Shrinking the compute makes transfers a larger share of the
        // execution, so TE's *relative* boost grows (until nothing can be
        // hidden any more).
        let app = mhla_apps::fir_bank::app();
        let lean = te_ablation_point_frac(&app, 1, 4);
        let base = te_ablation_point(&app, 1);
        assert!(
            lean.te_gain_pct() >= base.te_gain_pct() - 1e-9,
            "lean {} < base {}",
            lean.te_gain_pct(),
            base.te_gain_pct()
        );
    }
}
