//! Regenerates the paper's §3 **TE claim**: "This step can boost
//! performance of up 33%, if there are a lot of processing loops that can
//! hide prefetching block transfers."
//!
//! The ablation scales every statement's compute cycles (×1/4 to ×8) on
//! three workloads and reports the TE boost and the fraction of the
//! transfer stall hidden. Less compute per fetched byte makes transfers a
//! larger share of the execution, so TE's relative boost grows toward the
//! paper's figure; more compute keeps the hiding fraction at ~100% while
//! the relative boost shrinks — "a lot of processing loops" make hiding
//! easy but also less important.
//!
//! Run with `cargo run --release -p mhla-bench --bin te_ablation`.

use mhla_bench::{te_ablation_point_frac, write_results};

fn main() {
    let apps = [
        mhla_apps::full_search_me::app(),
        mhla_apps::wavelet::app(),
        mhla_apps::fir_bank::app(),
    ];
    // mul/div compute scales: the left side is transfer-bound (big TE
    // share), the right side compute-bound (everything hidden, small share).
    let scales = [(1u64, 4u64), (1, 2), (1, 1), (2, 1), (4, 1), (8, 1)];

    println!("TE ablation — prefetch benefit vs. available processing");
    println!(
        "{:<18} {:>7} {:>12} {:>12} {:>8} {:>8}",
        "application", "scale", "mhla", "mhla+te", "te%", "hide%"
    );
    let mut csv =
        String::from("app,compute_scale,mhla_cycles,mhla_te_cycles,te_gain_pct,hiding_pct\n");
    for app in &apps {
        for &(mul, div) in &scales {
            let f = te_ablation_point_frac(app, mul, div);
            let label = if div == 1 {
                format!("{mul}")
            } else {
                format!("{mul}/{div}")
            };
            println!(
                "{:<18} {:>6}x {:>12} {:>12} {:>7.1}% {:>7.1}%",
                f.name,
                label,
                f.mhla_cycles,
                f.mhla_te_cycles,
                f.te_gain_pct(),
                f.hiding_pct()
            );
            csv.push_str(&format!(
                "{},{:.3},{},{},{:.2},{:.2}\n",
                f.name,
                mul as f64 / div.max(1) as f64,
                f.mhla_cycles,
                f.mhla_te_cycles,
                f.te_gain_pct(),
                f.hiding_pct()
            ));
        }
        println!();
    }
    write_results("te_ablation.csv", &csv);
}
