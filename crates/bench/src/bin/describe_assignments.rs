//! Prints the full MHLA decision record for every application: array homes,
//! selected copy chains, and per-transfer Time-Extension decisions
//! (bt_time, freedom, extension, buffers, DMA priority).
//!
//! Run with `cargo run --release -p mhla-bench --bin describe_assignments`.

use mhla_core::{report, Mhla, MhlaConfig};
use mhla_hierarchy::Platform;

fn main() {
    for app in mhla_apps::all_apps() {
        let pf = Platform::embedded_default(app.default_scratchpad);
        let mhla = Mhla::new(&app.program, &pf, MhlaConfig::default());
        let r = mhla.run();
        println!(
            "==== {} ({}; scratchpad {} B) ====",
            app.name(),
            app.domain,
            app.default_scratchpad
        );
        println!("{}", report::describe(&app.program, mhla.reuse(), &r));
    }
}
