//! Regenerates **Figure 2** of the paper: per-application execution time of
//! out-of-the-box code (100%), MHLA step 1, MHLA + Time Extensions, and the
//! ideal zero-wait bound.
//!
//! Run with `cargo run --release -p mhla-bench --bin fig2_performance`.

use mhla_bench::{fig2_fig3_suite, write_results};

fn main() {
    let suite = fig2_fig3_suite();

    println!("Figure 2 — MHLA improves performance up to 60%; TE boosts it further");
    println!(
        "{:<18} {:>12} {:>12} {:>12} {:>12}  {:>7} {:>7} {:>7}",
        "application", "baseline", "mhla", "mhla+te", "ideal", "mhla%", "te%", "hide%"
    );
    let mut csv = String::from(
        "app,scratchpad,baseline_cycles,mhla_cycles,mhla_te_cycles,ideal_cycles,mhla_gain_pct,te_gain_pct,hiding_pct\n",
    );
    for f in &suite {
        println!(
            "{:<18} {:>12} {:>12} {:>12} {:>12}  {:>6.1}% {:>6.1}% {:>6.1}%",
            f.name,
            f.baseline_cycles,
            f.mhla_cycles,
            f.mhla_te_cycles,
            f.ideal_cycles,
            f.mhla_gain_pct(),
            f.te_gain_pct(),
            f.hiding_pct()
        );
        csv.push_str(&format!(
            "{},{},{},{},{},{},{:.2},{:.2},{:.2}\n",
            f.name,
            f.scratchpad,
            f.baseline_cycles,
            f.mhla_cycles,
            f.mhla_te_cycles,
            f.ideal_cycles,
            f.mhla_gain_pct(),
            f.te_gain_pct(),
            f.hiding_pct()
        ));
    }
    let min = suite
        .iter()
        .map(|f| f.mhla_gain_pct())
        .fold(f64::INFINITY, f64::min);
    let max = suite
        .iter()
        .map(|f| f.mhla_gain_pct())
        .fold(0.0f64, f64::max);
    let te_max = suite.iter().map(|f| f.te_gain_pct()).fold(0.0f64, f64::max);
    println!(
        "\nstep-1 gain range: {min:.0}%–{max:.0}% (paper: 40%–60%); best TE boost: {te_max:.0}% (paper: up to 33%)"
    );
    write_results("fig2_performance.csv", &csv);
}
