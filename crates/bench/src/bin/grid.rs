//! Multi-layer grid-sweep tracker: measures the shared-context L1×L2 grid
//! sweep (`mhla_core::explore::sweep_grid`) against the per-point-rebuild
//! path (a standalone `Mhla::new().run()` per grid point) over the
//! eight-application suite on `Platform::three_level_default`, prints the
//! Pareto frontier of one app, and writes `BENCH_grid.json` at the
//! workspace root.
//!
//! Run with `cargo run --release -p mhla-bench --bin grid`.
//!
//! The frontier demo goes through the fallible entry point
//! ([`try_sweep_grid`]); a rejected ingress prints the typed error on
//! stderr and exits with code 2.

use std::process::ExitCode;

use mhla_bench::{default_grid_axes, grid_perf_json, measure_grid_perf, write_results};
use mhla_core::explore::try_sweep_grid;
use mhla_core::{report, MhlaConfig, MhlaError};
use mhla_hierarchy::Platform;

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(2)
        }
    }
}

fn run() -> Result<(), MhlaError> {
    let perfs = measure_grid_perf(5);

    println!("L1xL2 grid sweep: per-point rebuild vs shared exploration context");
    println!(
        "{:<18} {:>7} {:>13} {:>12} {:>9} {:>8}",
        "application", "points", "rebuild [ms]", "shared [ms]", "speedup", "points="
    );
    for p in &perfs {
        println!(
            "{:<18} {:>7} {:>13.3} {:>12.3} {:>8.2}x {:>8}",
            p.app,
            p.points,
            p.rebuild_seconds * 1e3,
            p.shared_seconds * 1e3,
            p.speedup(),
            p.points_identical,
        );
    }
    let rebuild: f64 = perfs.iter().map(|p| p.rebuild_seconds).sum();
    let shared: f64 = perfs.iter().map(|p| p.shared_seconds).sum();
    println!(
        "suite: rebuild {:.1} ms, shared {:.1} ms, speedup {:.2}x",
        rebuild * 1e3,
        shared * 1e3,
        rebuild / shared
    );

    // The joint-sizing frontier of one representative app (Figure-2/3
    // style artifact, dropped under results/).
    let app = mhla_apps::hierarchical_me::app();
    let grid = try_sweep_grid(
        &app.program,
        &Platform::three_level_default(),
        &default_grid_axes(),
        &MhlaConfig::default(),
    )?;
    println!();
    println!(
        "{}: L1xL2 Pareto frontier (C = cycles front, E = energy front)",
        app.name()
    );
    print!("{}", report::grid_frontier(&grid));
    write_results(
        &format!("grid_{}.csv", app.name()),
        &report::grid_csv(&grid),
    );

    let json = grid_perf_json(&perfs);
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_grid.json");
    match std::fs::write(&path, &json) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("note: could not write BENCH_grid.json: {e}"),
    }
    Ok(())
}
