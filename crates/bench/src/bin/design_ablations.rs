//! Ablations for the design choices DESIGN.md documents:
//!
//! 1. **Transfer policy** — sliding-window (delta) updates vs. full
//!    refresh of copy buffers: volume moved, cycles and energy.
//! 2. **In-place optimization** — scratchpad bytes required with lifetime
//!    sharing (peak occupancy) vs. without (sum of buffer sizes): how much
//!    capacity the paper's in-place step recovers.
//! 3. **Search strategy** — greedy gain/size steering vs. exhaustive
//!    branch-and-bound on shrunken instances: solution quality and search
//!    effort (validating that the published heuristic is near-optimal).
//!
//! Run with `cargo run --release -p mhla-bench --bin design_ablations`.

use mhla_core::{assign, Mhla, MhlaConfig, Objective, SearchStrategy, TransferPolicy};
use mhla_hierarchy::Platform;
use mhla_sim::Simulator;
use std::collections::HashMap;

fn main() {
    transfer_policy();
    inplace();
    search_strategy();
}

fn transfer_policy() {
    println!("== ablation 1: sliding-window (delta) vs full-refresh transfers ==");
    println!(
        "{:<18} {:>14} {:>14} {:>10} {:>10}",
        "application", "bytes(full)", "bytes(delta)", "cyc save", "E save"
    );
    let mut csv = String::from("app,bytes_full,bytes_delta,cycle_save_pct,energy_save_pct\n");
    for app in mhla_apps::all_apps() {
        let platform = Platform::embedded_default(app.default_scratchpad);
        let run = |policy: TransferPolicy| {
            let config = MhlaConfig {
                policy,
                ..MhlaConfig::default()
            };
            let mhla = Mhla::new(&app.program, &platform, config);
            let model = mhla.cost_model();
            let r = mhla.run();
            let sim = Simulator::new(&model, &r.assignment, &r.te).run();
            (
                sim.transfer_bytes,
                sim.total_cycles(),
                sim.total_energy_pj(),
            )
        };
        let (fb, fc, fe) = run(TransferPolicy::FullRefresh);
        let (db, dc, de) = run(TransferPolicy::SlidingDelta);
        let cyc = 100.0 * (1.0 - dc as f64 / fc.max(1) as f64);
        let en = 100.0 * (1.0 - de / fe.max(f64::MIN_POSITIVE));
        println!(
            "{:<18} {:>14} {:>14} {:>9.1}% {:>9.1}%",
            app.name(),
            fb,
            db,
            cyc,
            en
        );
        csv.push_str(&format!("{},{fb},{db},{cyc:.2},{en:.2}\n", app.name()));
    }
    mhla_bench::write_results("ablation_transfer_policy.csv", &csv);
    println!();
}

fn inplace() {
    println!("== ablation 2: in-place optimization (lifetime sharing) ==");
    println!(
        "{:<18} {:>12} {:>12} {:>10}",
        "application", "peak [B]", "no-share [B]", "recovered"
    );
    let mut csv = String::from("app,peak_bytes,sum_bytes,recovered_pct\n");
    for app in mhla_apps::all_apps() {
        let platform = Platform::embedded_default(app.default_scratchpad);
        let mhla = Mhla::new(&app.program, &platform, MhlaConfig::default());
        let model = mhla.cost_model();
        let r = mhla.run();
        let usage = &model.layer_usage(&r.assignment, &HashMap::new())[1];
        let recovered = if usage.without_inplace > 0 {
            100.0 * (1.0 - usage.required as f64 / usage.without_inplace as f64)
        } else {
            0.0
        };
        println!(
            "{:<18} {:>12} {:>12} {:>9.1}%",
            app.name(),
            usage.required,
            usage.without_inplace,
            recovered
        );
        csv.push_str(&format!(
            "{},{},{},{recovered:.2}\n",
            app.name(),
            usage.required,
            usage.without_inplace
        ));
    }
    mhla_bench::write_results("ablation_inplace.csv", &csv);
    println!();
}

fn search_strategy() {
    println!("== ablation 3: greedy steering vs exhaustive branch-and-bound ==");
    println!("(shrunken instances so the exhaustive search stays tractable)");
    println!(
        "{:<18} {:>14} {:>14} {:>8} {:>10}",
        "instance", "greedy cycles", "exact cycles", "gap", "bnb nodes"
    );
    let mut csv = String::from("instance,greedy_cycles,exact_cycles,gap_pct,nodes\n");
    let instances: Vec<(&str, mhla_ir::Program)> = vec![
        (
            "me_32x32",
            mhla_apps::full_search_me::program(mhla_apps::full_search_me::Params {
                width: 32,
                height: 32,
                block: 16,
                search: 2,
            }),
        ),
        (
            "fir_2x256",
            mhla_apps::fir_bank::program(mhla_apps::fir_bank::Params {
                bands: 2,
                samples: 256,
                taps: 16,
            }),
        ),
        (
            "sobel_32x32",
            mhla_apps::sobel_edge::program(mhla_apps::sobel_edge::Params {
                width: 32,
                height: 32,
            }),
        ),
        (
            "lpc_4x64",
            mhla_apps::lpc_voice::program(mhla_apps::lpc_voice::Params {
                frames: 4,
                frame_len: 64,
                order: 8,
            }),
        ),
    ];
    for (name, program) in &instances {
        let platform = Platform::embedded_default(1024);
        let config = MhlaConfig::default();
        let mhla = Mhla::new(program, &platform, config.clone());
        let model = mhla.cost_model();
        let g = assign::greedy(&model, &config);
        let e = assign::exhaustive(&model, &config, 2_000_000);
        let gap = 100.0
            * (Objective::Cycles.score(&g.cost)
                / Objective::Cycles.score(&e.cost).max(f64::MIN_POSITIVE)
                - 1.0);
        println!(
            "{:<18} {:>14} {:>14} {:>7.2}% {:>10}",
            name,
            g.cost.total_cycles(),
            e.cost.total_cycles(),
            gap,
            e.steps
        );
        csv.push_str(&format!(
            "{name},{},{},{gap:.3},{}\n",
            g.cost.total_cycles(),
            e.cost.total_cycles(),
            e.steps
        ));
        let _ = SearchStrategy::Greedy; // strategies exercised above
    }
    mhla_bench::write_results("ablation_search.csv", &csv);
}
