//! Sweep performance tracker: measures the cold (pre-optimization
//! reference) vs fast (shared-context, incremental, warm-started,
//! parallel) capacity sweep over the eight-application suite and writes
//! the results to `BENCH_sweep.json` at the workspace root, so the perf
//! trajectory is tracked from PR to PR.
//!
//! Run with `cargo run --release -p mhla-bench --bin bench`.
//!
//! Tuning knobs (the many-core chunking experiment — results are
//! identical for every setting, only wall time moves):
//!
//! * `MHLA_SWEEP_CHUNK=<n>` — points per warm-started chunk (default 4).
//! * `MHLA_SWEEP_PARALLEL=0` — disable the thread fan-out.
//!
//! Malformed values are rejected with a typed [`MhlaError`] on stderr
//! (exit code 2) — a typo'd tuning run must not silently measure the
//! defaults.

use std::process::ExitCode;

use mhla_bench::{
    measure_sweep_perf_with, prev_suite_value, sweep_options_from_env, sweep_perf_json,
};
use mhla_core::explore::SweepOptions;
use mhla_core::MhlaError;

/// With `--features alloc-counter`, every measurement row also reports
/// allocation events per evaluated point (the `allocs/eval` column and
/// JSON field).
#[cfg(feature = "alloc-counter")]
#[global_allocator]
static COUNTING_ALLOC: mhla_alloc_counter::CountingAlloc = mhla_alloc_counter::CountingAlloc::new();

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(2)
        }
    }
}

fn run() -> Result<(), MhlaError> {
    let opts = sweep_options_from_env()?;
    let perfs = measure_sweep_perf_with(5, opts.clone());

    println!("tradeoff sweep: cold (oracle, sequential) vs fast (incremental, warm, parallel)");
    println!(
        "options: chunk {} parallel {} (MHLA_SWEEP_CHUNK / MHLA_SWEEP_PARALLEL to tune)",
        opts.chunk, opts.parallel
    );
    println!(
        "{:<18} {:>7} {:>12} {:>12} {:>9} {:>12} {:>8} {:>8}",
        "application",
        "points",
        "cold [ms]",
        "fast [ms]",
        "speedup",
        "allocs/eval",
        "fronts",
        "points="
    );
    for p in &perfs {
        let allocs = p
            .allocs_per_eval
            .map_or_else(|| "-".to_string(), |a| format!("{a:.1}"));
        println!(
            "{:<18} {:>7} {:>12.3} {:>12.3} {:>8.2}x {:>12} {:>8} {:>8}",
            p.app,
            p.points,
            p.cold_seconds * 1e3,
            p.fast_seconds * 1e3,
            p.speedup(),
            allocs,
            p.fronts_identical,
            p.points_identical,
        );
    }
    let cold: f64 = perfs.iter().map(|p| p.cold_seconds).sum();
    let fast: f64 = perfs.iter().map(|p| p.fast_seconds).sum();
    println!(
        "suite: cold {:.1} ms, fast {:.1} ms, speedup {:.2}x",
        cold * 1e3,
        fast * 1e3,
        cold / fast
    );

    // Only the default configuration is tracked in BENCH_sweep.json:
    // tuning runs print their timings but must not overwrite the
    // trajectory with apples-to-oranges numbers.
    if opts == SweepOptions::default() {
        let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../..")
            .join("BENCH_sweep.json");
        // The prior document's suite wall time, kept as the before/after
        // trajectory field of the regenerated one.
        let prev_fast = std::fs::read_to_string(&path)
            .ok()
            .and_then(|old| prev_suite_value(&old, "fast_seconds"));
        let json = sweep_perf_json(&perfs, prev_fast);
        match std::fs::write(&path, &json) {
            Ok(()) => println!("wrote {}", path.display()),
            Err(e) => eprintln!("note: could not write BENCH_sweep.json: {e}"),
        }
    } else {
        println!("non-default options: BENCH_sweep.json left untouched");
    }
    Ok(())
}
