//! Sweep performance tracker: measures the cold (pre-optimization
//! reference) vs fast (incremental + warm-started + parallel) capacity
//! sweep over the eight-application suite and writes the results to
//! `BENCH_sweep.json` at the workspace root, so the perf trajectory is
//! tracked from PR to PR.
//!
//! Run with `cargo run --release -p mhla-bench --bin bench`.

use mhla_bench::{measure_sweep_perf, sweep_perf_json};

fn main() {
    let perfs = measure_sweep_perf(5);

    println!("tradeoff sweep: cold (oracle, sequential) vs fast (incremental, warm, parallel)");
    println!(
        "{:<18} {:>7} {:>12} {:>12} {:>9} {:>8} {:>8}",
        "application", "points", "cold [ms]", "fast [ms]", "speedup", "fronts", "points="
    );
    for p in &perfs {
        println!(
            "{:<18} {:>7} {:>12.3} {:>12.3} {:>8.2}x {:>8} {:>8}",
            p.app,
            p.points,
            p.cold_seconds * 1e3,
            p.fast_seconds * 1e3,
            p.speedup(),
            p.fronts_identical,
            p.points_identical,
        );
    }
    let cold: f64 = perfs.iter().map(|p| p.cold_seconds).sum();
    let fast: f64 = perfs.iter().map(|p| p.fast_seconds).sum();
    println!(
        "suite: cold {:.1} ms, fast {:.1} ms, speedup {:.2}x",
        cold * 1e3,
        fast * 1e3,
        cold / fast
    );

    let json = sweep_perf_json(&perfs);
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_sweep.json");
    match std::fs::write(&path, &json) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("note: could not write BENCH_sweep.json: {e}"),
    }
}
