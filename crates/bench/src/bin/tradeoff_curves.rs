//! Regenerates the paper's **trade-off exploration** claim (§1/§2): for
//! every application, sweep the scratchpad capacity, print the
//! (capacity, cycles, energy) curve and mark the Pareto-optimal points the
//! tool "is able to find".
//!
//! Run with `cargo run --release -p mhla-bench --bin tradeoff_curves`.

use mhla_bench::{evaluate_app_at, write_results};
use mhla_core::explore::default_capacities;

fn main() {
    let apps = mhla_apps::all_apps();
    let caps = default_capacities();
    let mut csv = String::from("app,capacity,cycles_mhla_te,energy_mhla_pj,pareto_cycles\n");

    for app in &apps {
        println!("\n=== {} — capacity sweep ===", app.name());
        println!(
            "{:>10} {:>14} {:>14} {:>8}",
            "capacity", "cycles(te)", "energy [uJ]", "pareto"
        );
        let points: Vec<_> = caps.iter().map(|&c| (c, evaluate_app_at(app, c))).collect();
        // Pareto on (capacity asc, cycles): strictly improving cycles.
        let mut best = u64::MAX;
        for (c, f) in &points {
            let pareto = f.mhla_te_cycles < best;
            if pareto {
                best = f.mhla_te_cycles;
            }
            println!(
                "{:>10} {:>14} {:>14.2} {:>8}",
                c,
                f.mhla_te_cycles,
                f.mhla_energy_pj / 1e6,
                if pareto { "*" } else { "" }
            );
            csv.push_str(&format!(
                "{},{},{},{:.1},{}\n",
                app.name(),
                c,
                f.mhla_te_cycles,
                f.mhla_energy_pj,
                pareto as u8
            ));
        }
    }
    write_results("tradeoff_curves.csv", &csv);
    println!("\n(*) Pareto-optimal (capacity, cycles) point");
}
