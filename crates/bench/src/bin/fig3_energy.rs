//! Regenerates **Figure 3** of the paper: per-application memory energy of
//! out-of-the-box code vs. MHLA (up to 70% reduction). Time Extensions do
//! not appear here because the energy model counts memory accesses only —
//! the binary asserts that invariant on every application.
//!
//! Run with `cargo run --release -p mhla-bench --bin fig3_energy`.

use mhla_bench::{fig2_fig3_suite, write_results};

fn main() {
    let suite = fig2_fig3_suite();

    println!("Figure 3 — MHLA benefits energy consumption as well");
    println!(
        "{:<18} {:>14} {:>14} {:>9}",
        "application", "baseline [uJ]", "mhla [uJ]", "saving"
    );
    let mut csv =
        String::from("app,scratchpad,baseline_energy_pj,mhla_energy_pj,energy_gain_pct\n");
    for f in &suite {
        println!(
            "{:<18} {:>14.2} {:>14.2} {:>8.1}%",
            f.name,
            f.baseline_energy_pj / 1e6,
            f.mhla_energy_pj / 1e6,
            f.energy_gain_pct()
        );
        csv.push_str(&format!(
            "{},{},{:.1},{:.1},{:.2}\n",
            f.name,
            f.scratchpad,
            f.baseline_energy_pj,
            f.mhla_energy_pj,
            f.energy_gain_pct()
        ));
    }
    let max = suite
        .iter()
        .map(|f| f.energy_gain_pct())
        .fold(0.0f64, f64::max);
    println!("\nbest energy saving: {max:.0}% (paper: up to 70%)");
    write_results("fig3_energy.csv", &csv);
}
