//! Pruned four-level grid-sweep tracker: measures the pruned L1×L2×L3
//! grid sweep (`mhla_core::explore::sweep_grid_pruned_with`) against the
//! exhaustive Cartesian product over the eight-application suite on
//! `Platform::four_level_default` — under both the cycles and the energy
//! objective, in both the sequential and the frontier-wave parallel mode
//! — verifies the pruned frontier is point-for-point the exhaustive one,
//! prints the frontier of one app, and writes `BENCH_grid4.json` at the
//! workspace root.
//!
//! Run with `cargo run --release -p mhla-bench --bin grid4`.
//!
//! `MHLA_SWEEP_PARALLEL=0` selects the sequential mode for the frontier
//! CSV run; malformed values of the tuning variables are rejected with a
//! typed error on stderr (exit code 2) instead of silently falling back.
//!
//! `MHLA_SWEEP_MAX_EVALS=<n>` switches the binary into the
//! budget-interrupt smoke mode: one app's pruned sweep runs under the
//! given evaluation budget, the completion status is printed, and the
//! interrupted run is resumed and checked bit-for-bit against the
//! uninterrupted sweep — the CI leg that proves a budgeted exploration
//! exits cleanly with a certified partial frontier.

use std::process::ExitCode;

use mhla_bench::{
    default_grid4_axes, grid4_perf_json, measure_grid4_improving, measure_grid4_perf,
    measure_grid4_perf_with, measure_grid4_refine, prev_suite_value, sweep_options_from_env,
    write_results, Grid4Perf, Grid4Refine, ImprovingGrid4Perf,
};
use mhla_core::explore::{
    sweep_grid_pruned_with, try_sweep_grid_pruned_resume, try_sweep_grid_pruned_with, PruneOptions,
    SweepOptions, SweepStatus,
};
use mhla_core::{report, MhlaConfig, MhlaError, Objective};
use mhla_hierarchy::Platform;

/// With `--features alloc-counter`, every measurement row also reports
/// allocation events per evaluated point (the `allocs/eval` column and
/// JSON field).
#[cfg(feature = "alloc-counter")]
#[global_allocator]
static COUNTING_ALLOC: mhla_alloc_counter::CountingAlloc = mhla_alloc_counter::CountingAlloc::new();

fn print_table(title: &str, perfs: &[Grid4Perf]) {
    println!("{title}");
    println!(
        "{:<18} {:>6} {:>6} {:>8} {:>7} {:>6} {:>5} {:>13} {:>12} {:>12} {:>8} {:>8} {:>12} {:>9}",
        "application",
        "cand",
        "eval",
        "skipped",
        "skip%",
        "waves",
        "spec",
        "exhaust [ms]",
        "pruned [ms]",
        "par [ms]",
        "speedup",
        "par-spd",
        "allocs/eval",
        "identical"
    );
    for p in perfs {
        let allocs = p
            .allocs_per_eval
            .map_or_else(|| "-".to_string(), |a| format!("{a:.1}"));
        println!(
            "{:<18} {:>6} {:>6} {:>8} {:>6.1}% {:>6} {:>5} {:>13.3} {:>12.3} {:>12.3} \
             {:>7.2}x {:>7.2}x {:>12} {:>9}",
            p.app,
            p.stats.candidates,
            p.stats.evaluated,
            p.stats.skipped(),
            100.0 * p.stats.skip_ratio(),
            p.waves,
            p.speculative_evals,
            p.exhaustive_seconds * 1e3,
            p.pruned_seconds * 1e3,
            p.pruned_parallel_seconds * 1e3,
            p.speedup(),
            p.parallel_speedup(),
            allocs,
            p.frontier_identical && p.points_identical && p.modes_identical,
        );
    }
    let exhaustive: f64 = perfs.iter().map(|p| p.exhaustive_seconds).sum();
    let pruned: f64 = perfs.iter().map(|p| p.pruned_seconds).sum();
    let parallel: f64 = perfs.iter().map(|p| p.pruned_parallel_seconds).sum();
    let candidates: usize = perfs.iter().map(|p| p.stats.candidates).sum();
    let evaluated: usize = perfs.iter().map(|p| p.stats.evaluated).sum();
    println!(
        "suite: {candidates} candidates, {evaluated} evaluated ({} skipped, {:.1}%), \
         exhaustive {:.1} ms, pruned {:.1} ms ({:.2}x), parallel {:.1} ms ({:.2}x)",
        candidates - evaluated,
        100.0 * (candidates - evaluated) as f64 / candidates.max(1) as f64,
        exhaustive * 1e3,
        pruned * 1e3,
        exhaustive / pruned.max(f64::MIN_POSITIVE),
        parallel * 1e3,
        exhaustive / parallel.max(f64::MIN_POSITIVE),
    );
    println!();
}

fn print_improving_table(title: &str, perfs: &[ImprovingGrid4Perf]) -> bool {
    println!("{title}");
    println!(
        "{:<18} {:>6} {:>10} {:>9} {:>9} {:>10} {:>11} {:>10} {:>9} {:>9}",
        "application",
        "points",
        "cold-eval",
        "imp-eval",
        "wins",
        "improved",
        "max-delta",
        "dominates",
        "cold [ms]",
        "imp [ms]"
    );
    for p in perfs {
        println!(
            "{:<18} {:>6} {:>10} {:>9} {:>9} {:>10} {:>10.2}% {:>10} {:>9.3} {:>9.3}",
            p.app,
            p.points,
            p.cold_evals,
            p.improving_evals,
            p.seed_wins,
            p.improved_points,
            p.max_improvement_pct,
            p.dominates,
            p.cold_seconds * 1e3,
            p.improving_seconds * 1e3,
        );
    }
    let all_dominate = perfs.iter().all(|p| p.dominates);
    let improved: usize = perfs.iter().map(|p| p.improved_points).sum();
    let points: usize = perfs.iter().map(|p| p.points).sum();
    println!(
        "suite: {improved}/{points} points strictly improved; \
         dominance check (improving >= cold everywhere): {}",
        if all_dominate { "PASS" } else { "FAIL" },
    );
    println!();
    all_dominate
}

/// Prints the adaptive-refinement table — the `evals /
/// virtual_lattice_points` ratio per app plus the frontier-equivalence
/// verdict — and returns whether every app's verdict is PASS.
fn print_refine_table(title: &str, perfs: &[Grid4Refine]) -> bool {
    println!("{title}");
    println!(
        "{:<18} {:>10} {:>8} {:>7} {:>7} {:>9} {:>6} {:>10} {:>10}",
        "application",
        "virtual",
        "evals",
        "ratio",
        "closed",
        "certified",
        "waves",
        "time [ms]",
        "frontier"
    );
    for p in perfs {
        println!(
            "{:<18} {:>10} {:>8} {:>6.2}% {:>7} {:>9} {:>6} {:>10.1} {:>10}",
            p.app,
            p.stats.virtual_points,
            p.stats.evaluated,
            100.0 * p.stats.eval_ratio(),
            p.stats.cells_closed_mask + p.stats.cells_closed_floor,
            p.stats.corners_certified,
            p.waves,
            p.refined_seconds * 1e3,
            if p.frontier_consistent {
                "PASS"
            } else {
                "FAIL"
            },
        );
    }
    let virtual_points: u64 = perfs.iter().map(|p| p.stats.virtual_points).sum();
    let evaluated: usize = perfs.iter().map(|p| p.stats.evaluated).sum();
    let all_pass = perfs.iter().all(|p| p.frontier_consistent);
    println!(
        "suite: {evaluated} evals / {virtual_points} virtual lattice points \
         ({:.2}%), frontier equivalence: {}",
        100.0 * evaluated as f64 / virtual_points.max(1) as f64,
        if all_pass { "PASS" } else { "FAIL" },
    );
    println!();
    all_pass
}

/// The budget-interrupt smoke: one app's pruned sweep under the
/// environment's evaluation budget. Prints the completion status, then
/// resumes the interrupted run and checks it point-for-point against the
/// uninterrupted sweep. Panics (nonzero exit) on any mismatch — this is
/// the machine-checked half of the "certified partial frontier"
/// guarantee that CI exercises.
fn budget_smoke(opts: &SweepOptions) -> Result<(), MhlaError> {
    let app = mhla_apps::hierarchical_me::app();
    let platform = Platform::four_level_default();
    let axes = default_grid4_axes();
    let config = MhlaConfig::default();

    let budgeted = PruneOptions::with_parallel(opts.parallel).budget(opts.budget.clone());
    let partial = try_sweep_grid_pruned_with(&app.program, &platform, &axes, &config, &budgeted)?;
    match partial.status {
        SweepStatus::Complete => println!(
            "budget smoke [{}]: status Complete within budget — {} evaluated of {} candidates",
            app.name(),
            partial.stats.evaluated,
            partial.stats.candidates,
        ),
        SweepStatus::Stopped { cause, next_lex } => println!(
            "budget smoke [{}]: status Stopped({cause:?}) at lex cursor {next_lex} — \
             {} evaluated of {} candidates, partial cycle frontier {} point(s)",
            app.name(),
            partial.stats.evaluated,
            partial.stats.candidates,
            partial.sweep.pareto_cycles().len(),
        ),
    }

    let unlimited = PruneOptions::with_parallel(opts.parallel);
    let resumed = try_sweep_grid_pruned_resume(
        &app.program,
        &platform,
        &axes,
        &config,
        &unlimited,
        &partial,
    )?;
    let full = try_sweep_grid_pruned_with(&app.program, &platform, &axes, &config, &unlimited)?;
    assert!(
        resumed.status.is_complete(),
        "resumed sweep must run to completion"
    );
    assert_eq!(
        resumed.sweep, full.sweep,
        "resumed sweep must match the uninterrupted run bit-for-bit"
    );
    assert_eq!(
        resumed.stats, full.stats,
        "resume must not change the stats"
    );
    println!(
        "budget smoke [{}]: resume reproduces the uninterrupted sweep bit-for-bit \
         ({} points, cycle front {}, energy front {})",
        app.name(),
        full.sweep.points.len(),
        full.sweep.pareto_cycles().len(),
        full.sweep.pareto_energy().len(),
    );
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(2)
        }
    }
}

fn run() -> Result<(), MhlaError> {
    // Validates the tuning variables up front (hard error on malformed
    // values); a budget in the environment switches to the smoke mode.
    let opts = sweep_options_from_env()?;
    if !opts.budget.is_unlimited() {
        return budget_smoke(&opts);
    }
    let parallel = opts.parallel;

    let cycles = measure_grid4_perf(3);
    print_table(
        "L1xL2xL3 grid sweep, Objective::Cycles: exhaustive vs pruned (sequential + wave-parallel)",
        &cycles,
    );
    let energy_config = MhlaConfig {
        objective: Objective::Energy,
        ..MhlaConfig::default()
    };
    let energy = measure_grid4_perf_with(2, &energy_config);
    print_table(
        "L1xL2xL3 grid sweep, Objective::Energy: exhaustive vs pruned (gain-bound saturation)",
        &energy,
    );

    // The mode comparison: cold (frozen) vs improving (neighbor-seeded
    // portfolio). The dominance check is the mode's machine-checked
    // guarantee — a FAIL here is a bug, and the process exits nonzero so
    // the CI smoke leg catches it.
    let cycles_improving = measure_grid4_improving(2, &MhlaConfig::default());
    let cycles_ok = print_improving_table(
        "L1xL2xL3 grid sweep, Objective::Cycles: cold vs improving mode (SearchMode::Improving)",
        &cycles_improving,
    );
    let energy_improving = measure_grid4_improving(2, &energy_config);
    let energy_ok = print_improving_table(
        "L1xL2xL3 grid sweep, Objective::Energy: cold vs improving mode (SearchMode::Improving)",
        &energy_improving,
    );
    if !(cycles_ok && energy_ok) {
        eprintln!("error: improving-mode dominance check failed");
        std::process::exit(1);
    }

    // The adaptive refinement: the certified virtual fine lattice, the
    // fraction searched, and the frontier-equivalence verdict. A FAIL is
    // a lost certificate — the CI smoke leg exits nonzero on it.
    let refine = measure_grid4_refine(&MhlaConfig::default());
    let refine_ok = print_refine_table(
        "L1xL2xL3 adaptive refinement: certified virtual fine lattice vs evals",
        &refine,
    );
    if !refine_ok {
        eprintln!("error: refinement frontier-equivalence check failed");
        std::process::exit(1);
    }

    // The joint three-axis frontier of one representative app.
    let app = mhla_apps::hierarchical_me::app();
    let grid = sweep_grid_pruned_with(
        &app.program,
        &Platform::four_level_default(),
        &default_grid4_axes(),
        &MhlaConfig::default(),
        PruneOptions::with_parallel(parallel),
    );
    println!(
        "{}: L1xL2xL3 Pareto frontier (C = cycles front, E = energy front)",
        app.name()
    );
    print!("{}", report::grid_frontier(&grid.sweep));
    write_results(
        &format!("grid4_{}.csv", app.name()),
        &report::grid_csv(&grid.sweep),
    );

    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_grid4.json");
    // The prior document's cycles/pruned suite wall time, kept as the
    // before/after trajectory field of the regenerated one.
    let prev_pruned = std::fs::read_to_string(&path)
        .ok()
        .and_then(|old| prev_suite_value(&old, "pruned_seconds"));
    let json = grid4_perf_json(
        &cycles,
        &energy,
        &cycles_improving,
        &energy_improving,
        &refine,
        prev_pruned,
    );
    match std::fs::write(&path, &json) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("note: could not write BENCH_grid4.json: {e}"),
    }
    Ok(())
}
