//! Pruned four-level grid-sweep tracker: measures the pruned L1×L2×L3
//! grid sweep (`mhla_core::explore::sweep_grid_pruned`) against the
//! exhaustive Cartesian product over the eight-application suite on
//! `Platform::four_level_default`, verifies the pruned frontier is
//! point-for-point the exhaustive one, prints the frontier of one app, and
//! writes `BENCH_grid4.json` at the workspace root.
//!
//! Run with `cargo run --release -p mhla-bench --bin grid4`.

use mhla_bench::{default_grid4_axes, grid4_perf_json, measure_grid4_perf, write_results};
use mhla_core::explore::sweep_grid_pruned;
use mhla_core::{report, MhlaConfig};
use mhla_hierarchy::Platform;

fn main() {
    let perfs = measure_grid4_perf(3);

    println!("L1xL2xL3 grid sweep: exhaustive vs pruned (both sequential, cold)");
    println!(
        "{:<18} {:>6} {:>6} {:>8} {:>7} {:>13} {:>12} {:>8} {:>9}",
        "application",
        "cand",
        "eval",
        "skipped",
        "skip%",
        "exhaust [ms]",
        "pruned [ms]",
        "speedup",
        "identical"
    );
    for p in &perfs {
        println!(
            "{:<18} {:>6} {:>6} {:>8} {:>6.1}% {:>13.3} {:>12.3} {:>7.2}x {:>9}",
            p.app,
            p.stats.candidates,
            p.stats.evaluated,
            p.stats.skipped(),
            100.0 * p.stats.skip_ratio(),
            p.exhaustive_seconds * 1e3,
            p.pruned_seconds * 1e3,
            p.speedup(),
            p.frontier_identical && p.points_identical,
        );
    }
    let exhaustive: f64 = perfs.iter().map(|p| p.exhaustive_seconds).sum();
    let pruned: f64 = perfs.iter().map(|p| p.pruned_seconds).sum();
    let candidates: usize = perfs.iter().map(|p| p.stats.candidates).sum();
    let evaluated: usize = perfs.iter().map(|p| p.stats.evaluated).sum();
    println!(
        "suite: {candidates} candidates, {evaluated} evaluated ({} skipped, {:.1}%), \
         exhaustive {:.1} ms, pruned {:.1} ms, speedup {:.2}x",
        candidates - evaluated,
        100.0 * (candidates - evaluated) as f64 / candidates.max(1) as f64,
        exhaustive * 1e3,
        pruned * 1e3,
        exhaustive / pruned.max(f64::MIN_POSITIVE),
    );

    // The joint three-axis frontier of one representative app.
    let app = mhla_apps::hierarchical_me::app();
    let grid = sweep_grid_pruned(
        &app.program,
        &Platform::four_level_default(),
        &default_grid4_axes(),
        &MhlaConfig::default(),
    );
    println!();
    println!(
        "{}: L1xL2xL3 Pareto frontier (C = cycles front, E = energy front)",
        app.name()
    );
    print!("{}", report::grid_frontier(&grid.sweep));
    write_results(
        &format!("grid4_{}.csv", app.name()),
        &report::grid_csv(&grid.sweep),
    );

    let json = grid4_perf_json(&perfs);
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_grid4.json");
    match std::fs::write(&path, &json) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("note: could not write BENCH_grid4.json: {e}"),
    }
}
