//! Residents: buffers competing for on-chip capacity.

use std::fmt;

use mhla_ir::{ArrayId, Program, TimeInterval, Timeline};
use mhla_reuse::{CandidateId, CopyCandidate};

/// What a resident buffer holds.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum ResidentKind {
    /// A whole array homed in this layer.
    Array(ArrayId),
    /// A copy buffer for a copy candidate.
    Copy(CandidateId),
    /// Anything else (tests, external users).
    Other(u64),
}

impl fmt::Display for ResidentKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ResidentKind::Array(a) => write!(f, "array {a}"),
            ResidentKind::Copy(c) => write!(f, "copy {c}"),
            ResidentKind::Other(i) => write!(f, "other {i}"),
        }
    }
}

/// One buffer occupying bytes of a layer during a live interval.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Resident {
    /// What the buffer holds.
    pub kind: ResidentKind,
    /// Live interval on the program's logical timeline.
    pub interval: TimeInterval,
    /// Buffer size in bytes (already doubled for double-buffered copies).
    pub bytes: u64,
}

impl Resident {
    /// Creates a resident.
    pub fn new(kind: ResidentKind, interval: TimeInterval, bytes: u64) -> Self {
        Resident {
            kind,
            interval,
            bytes,
        }
    }

    /// Resident for an array homed on-chip: live from its first to its last
    /// access. Returns `None` for arrays that are never accessed.
    pub fn for_array(program: &Program, timeline: &Timeline, array: ArrayId) -> Option<Self> {
        let interval = timeline.array_span(array)?;
        Some(Resident {
            kind: ResidentKind::Array(array),
            interval,
            bytes: program.array(array).bytes(),
        })
    }

    /// Resident for a copy candidate's buffer.
    ///
    /// The buffer is allocated for the whole execution span of its owning
    /// loop (it is refilled, not re-allocated, across iterations); the
    /// whole-array candidate is allocated for the array's access span.
    /// `double_buffered` doubles the size, which is how a Time Extension
    /// crossing the owning loop's back-edge is priced.
    pub fn for_candidate(
        program: &Program,
        timeline: &Timeline,
        id: CandidateId,
        candidate: &CopyCandidate,
        double_buffered: bool,
    ) -> Option<Self> {
        let interval = match candidate.at_loop {
            Some(l) => timeline.loop_span(l),
            None => timeline.array_span(candidate.array)?,
        };
        let _ = program;
        Some(Resident {
            kind: ResidentKind::Copy(id),
            interval,
            bytes: candidate.bytes * if double_buffered { 2 } else { 1 },
        })
    }

    /// Returns a copy of this resident with the live interval extended
    /// earlier by `ticks` (prefetching starts the lifetime earlier).
    pub fn extended_earlier(&self, ticks: u64) -> Self {
        Resident {
            interval: self.interval.extended_earlier(ticks),
            ..self.clone()
        }
    }
}

impl fmt::Display for Resident {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} B live {}", self.kind, self.bytes, self.interval)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mhla_ir::{ElemType, ProgramBuilder};
    use mhla_reuse::ReuseAnalysis;

    fn two_phase() -> (Program, ArrayId, ArrayId) {
        // Phase 1 writes tmp, phase 2 reads tmp and writes out.
        let mut b = ProgramBuilder::new("p");
        let tmp = b.array("tmp", &[32], ElemType::U8);
        let out = b.array("out", &[32], ElemType::U8);
        b.loop_scope("i", 0, 32, 1, |b, li| {
            let i = b.var(li);
            b.stmt("w").write(tmp, vec![i]).finish();
        });
        b.loop_scope("j", 0, 32, 1, |b, lj| {
            let j = b.var(lj);
            b.stmt("r")
                .read(tmp, vec![j.clone()])
                .write(out, vec![j])
                .finish();
        });
        (b.finish(), tmp, out)
    }

    #[test]
    fn array_resident_spans_first_to_last_access() {
        let (p, tmp, out) = two_phase();
        let tl = p.timeline();
        let r_tmp = Resident::for_array(&p, &tl, tmp).unwrap();
        assert_eq!(r_tmp.interval, TimeInterval::new(0, 64));
        assert_eq!(r_tmp.bytes, 32);
        let r_out = Resident::for_array(&p, &tl, out).unwrap();
        assert_eq!(r_out.interval, TimeInterval::new(32, 64));
    }

    #[test]
    fn unaccessed_array_is_not_resident() {
        let mut b = ProgramBuilder::new("p");
        let a = b.array("a", &[4], ElemType::U8);
        let dead = b.array("dead", &[4], ElemType::U8);
        b.loop_scope("i", 0, 4, 1, |b, li| {
            let i = b.var(li);
            b.stmt("s").read(a, vec![i]).finish();
        });
        let p = b.finish();
        let tl = p.timeline();
        assert!(Resident::for_array(&p, &tl, dead).is_none());
    }

    #[test]
    fn candidate_resident_covers_owning_loop_and_doubles() {
        let (p, tmp, _) = two_phase();
        let tl = p.timeline();
        let reuse = ReuseAnalysis::analyze(&p);
        let ar = reuse.array(tmp);
        // Candidate at the reading loop (index of that candidate in list).
        let (idx, cc) = ar
            .candidates()
            .iter()
            .enumerate()
            .find(|(_, c)| c.at_loop.is_some())
            .unwrap();
        let id = CandidateId {
            array: tmp,
            index: idx,
        };
        let single = Resident::for_candidate(&p, &tl, id, cc, false).unwrap();
        let double = Resident::for_candidate(&p, &tl, id, cc, true).unwrap();
        assert_eq!(double.bytes, 2 * single.bytes);
        assert_eq!(single.interval, tl.loop_span(cc.at_loop.unwrap()));
    }

    #[test]
    fn extended_earlier_moves_only_the_start() {
        let r = Resident::new(ResidentKind::Other(0), TimeInterval::new(10, 20), 8);
        let e = r.extended_earlier(4);
        assert_eq!(e.interval, TimeInterval::new(6, 20));
        let clamped = r.extended_earlier(100);
        assert_eq!(clamped.interval, TimeInterval::new(0, 20));
    }

    use mhla_ir::Program;
}
