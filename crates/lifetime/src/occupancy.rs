//! Capacity requirements: peak occupancy and concrete address assignment.

use std::fmt;

use crate::resident::Resident;

/// Maximum concurrent live bytes over time — the in-place lower bound on
/// the layer capacity needed to host `residents`.
///
/// Computed with a sweep line over interval endpoints; empty intervals
/// contribute nothing.
pub fn peak_occupancy(residents: &[Resident]) -> u64 {
    let mut events: Vec<(u64, i64)> = Vec::with_capacity(residents.len() * 2);
    for r in residents {
        if r.interval.is_empty() || r.bytes == 0 {
            continue;
        }
        events.push((r.interval.start, r.bytes as i64));
        events.push((r.interval.end, -(r.bytes as i64)));
    }
    // Process releases before acquisitions at equal time: half-open
    // intervals [a,b) and [b,c) do not overlap.
    events.sort_by_key(|&(t, d)| (t, d));
    let mut cur = 0i64;
    let mut peak = 0i64;
    for (_, d) in events {
        cur += d;
        peak = peak.max(cur);
    }
    peak as u64
}

/// Live bytes at one instant `t`.
pub fn occupancy_at(residents: &[Resident], t: u64) -> u64 {
    residents
        .iter()
        .filter(|r| r.interval.start <= t && t < r.interval.end)
        .map(|r| r.bytes)
        .sum()
}

/// A concrete base-address assignment for a set of residents.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct AddressMap {
    /// Byte offset per resident, parallel to the input slice.
    offsets: Vec<u64>,
    span: u64,
}

impl AddressMap {
    /// Base offset of resident `i` (input order of [`assign_addresses`]).
    pub fn offset(&self, i: usize) -> u64 {
        self.offsets[i]
    }

    /// Total bytes spanned by the assignment — a capacity that provably
    /// suffices.
    pub fn span(&self) -> u64 {
        self.span
    }

    /// Number of residents mapped.
    pub fn len(&self) -> usize {
        self.offsets.len()
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.offsets.is_empty()
    }
}

impl fmt::Display for AddressMap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "AddressMap(span {} B, {} residents)",
            self.span,
            self.offsets.len()
        )
    }
}

/// Greedy first-fit address assignment exploiting lifetime disjointness.
///
/// Residents are placed in decreasing size order (classic first-fit
/// decreasing); each is given the lowest offset where it fits without
/// address-AND-time overlap with already placed residents. The resulting
/// [`AddressMap::span`] is an *achievable* layer size:
/// `peak_occupancy ≤ span ≤ Σ bytes`.
pub fn assign_addresses(residents: &[Resident]) -> AddressMap {
    let mut order: Vec<usize> = (0..residents.len()).collect();
    order.sort_by_key(|&i| std::cmp::Reverse(residents[i].bytes));

    let mut offsets = vec![0u64; residents.len()];
    let mut placed: Vec<usize> = Vec::new();
    let mut span = 0u64;

    for &i in &order {
        let r = &residents[i];
        if r.bytes == 0 || r.interval.is_empty() {
            offsets[i] = 0;
            continue;
        }
        // Collect address ranges blocked by time-overlapping residents.
        let mut blocked: Vec<(u64, u64)> = placed
            .iter()
            .filter(|&&j| residents[j].interval.overlaps(&r.interval))
            .map(|&j| (offsets[j], offsets[j] + residents[j].bytes))
            .collect();
        blocked.sort_unstable();
        // First fit into the gaps.
        let mut candidate = 0u64;
        for (lo, hi) in blocked {
            if candidate + r.bytes <= lo {
                break;
            }
            candidate = candidate.max(hi);
        }
        offsets[i] = candidate;
        span = span.max(candidate + r.bytes);
        placed.push(i);
    }
    AddressMap { offsets, span }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resident::ResidentKind;
    use mhla_ir::TimeInterval;

    fn r(start: u64, end: u64, bytes: u64) -> Resident {
        Resident::new(
            ResidentKind::Other(start),
            TimeInterval::new(start, end),
            bytes,
        )
    }

    #[test]
    fn peak_of_disjoint_lifetimes_is_max() {
        let rs = vec![r(0, 10, 100), r(10, 20, 300), r(20, 30, 200)];
        assert_eq!(peak_occupancy(&rs), 300);
    }

    #[test]
    fn peak_of_overlapping_lifetimes_is_sum() {
        let rs = vec![r(0, 10, 100), r(5, 15, 300)];
        assert_eq!(peak_occupancy(&rs), 400);
    }

    #[test]
    fn touching_intervals_do_not_overlap() {
        let rs = vec![r(0, 10, 100), r(10, 20, 100)];
        assert_eq!(peak_occupancy(&rs), 100);
    }

    #[test]
    fn empty_and_zero_byte_residents_are_free() {
        let rs = vec![
            r(5, 5, 100),
            Resident::new(ResidentKind::Other(9), TimeInterval::new(0, 10), 0),
        ];
        assert_eq!(peak_occupancy(&rs), 0);
        assert_eq!(peak_occupancy(&[]), 0);
    }

    #[test]
    fn occupancy_at_instants() {
        let rs = vec![r(0, 10, 100), r(5, 15, 300)];
        assert_eq!(occupancy_at(&rs, 0), 100);
        assert_eq!(occupancy_at(&rs, 5), 400);
        assert_eq!(occupancy_at(&rs, 10), 300, "half-open end");
        assert_eq!(occupancy_at(&rs, 15), 0);
    }

    #[test]
    fn first_fit_shares_space_across_disjoint_lifetimes() {
        let rs = vec![r(0, 10, 256), r(10, 20, 256)];
        let map = assign_addresses(&rs);
        assert_eq!(map.span(), 256);
        assert_eq!(map.offset(0), 0);
        assert_eq!(map.offset(1), 0);
    }

    #[test]
    fn first_fit_separates_overlapping_lifetimes() {
        let rs = vec![r(0, 10, 256), r(5, 20, 128), r(8, 30, 64)];
        let map = assign_addresses(&rs);
        // All three overlap pairwise around t=8..10.
        assert_eq!(map.span(), 256 + 128 + 64);
        // No address overlap among time-overlapping residents.
        for i in 0..rs.len() {
            for j in (i + 1)..rs.len() {
                if rs[i].interval.overlaps(&rs[j].interval) {
                    let (a0, a1) = (map.offset(i), map.offset(i) + rs[i].bytes);
                    let (b0, b1) = (map.offset(j), map.offset(j) + rs[j].bytes);
                    assert!(a1 <= b0 || b1 <= a0, "{i} and {j} collide");
                }
            }
        }
    }

    #[test]
    fn first_fit_fills_gaps() {
        // Big lives [0,30); two small with disjoint lifetimes fit above it
        // in the same slot.
        let rs = vec![r(0, 30, 512), r(0, 15, 64), r(15, 30, 64)];
        let map = assign_addresses(&rs);
        assert_eq!(map.span(), 576);
        assert_eq!(map.offset(1), map.offset(2), "small ones share the slot");
    }

    #[test]
    fn span_is_between_peak_and_sum() {
        let rs = vec![r(0, 12, 100), r(4, 20, 50), r(16, 40, 200), r(0, 40, 30)];
        let peak = peak_occupancy(&rs);
        let span = assign_addresses(&rs).span();
        let sum: u64 = rs.iter().map(|x| x.bytes).sum();
        assert!(peak <= span, "peak {peak} > span {span}");
        assert!(span <= sum, "span {span} > sum {sum}");
    }
}
