//! # mhla-lifetime — lifetimes and in-place storage optimization
//!
//! MHLA's on-chip layers are scarce; the technique therefore exploits the
//! *limited lifetime* of arrays and copies: residents whose live intervals
//! do not overlap can share the same scratchpad bytes ("in-place
//! optimization" in the DATE 2003/2005 papers). The required capacity of a
//! layer is then not the *sum* of its residents' sizes but the *peak* of
//! their concurrent live sizes.
//!
//! This crate provides:
//!
//! * [`Resident`] — one array or copy buffer with its live interval and
//!   size (double-buffered copies count twice, which is how Time
//!   Extensions' `fits_size` check prices prefetching),
//! * [`peak_occupancy`] — the in-place lower bound (max concurrent bytes),
//! * [`assign_addresses`] — a concrete greedy first-fit address assignment
//!   whose span is a real, achievable layer size (`peak ≤ span ≤ sum`).
//!
//! # Example
//!
//! ```
//! use mhla_ir::TimeInterval;
//! use mhla_lifetime::{assign_addresses, peak_occupancy, Resident, ResidentKind};
//!
//! // Two buffers with disjoint lifetimes share space.
//! let residents = vec![
//!     Resident::new(ResidentKind::Other(0), TimeInterval::new(0, 10), 256),
//!     Resident::new(ResidentKind::Other(1), TimeInterval::new(10, 20), 256),
//! ];
//! assert_eq!(peak_occupancy(&residents), 256);
//! let map = assign_addresses(&residents);
//! assert_eq!(map.span(), 256); // first-fit achieves the bound here
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Lifetime/occupancy computations feed capacity checks on programs that
// may have crossed the serialized (hostile) ingress; they must be total —
// never an `unwrap` panic on unusual interval or size combinations.
#![warn(clippy::unwrap_used, clippy::expect_used)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

mod occupancy;
mod resident;

pub use occupancy::{assign_addresses, occupancy_at, peak_occupancy, AddressMap};
pub use resident::{Resident, ResidentKind};
