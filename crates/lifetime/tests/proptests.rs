//! Property tests for in-place packing: first-fit address maps are always
//! collision-free and their span is sandwiched between the occupancy peak
//! and the no-sharing sum.

use mhla_ir::TimeInterval;
use mhla_lifetime::{assign_addresses, occupancy_at, peak_occupancy, Resident, ResidentKind};
use proptest::prelude::*;

fn residents() -> impl Strategy<Value = Vec<Resident>> {
    prop::collection::vec((0u64..50, 1u64..30, 1u64..512), 0..24).prop_map(|v| {
        v.into_iter()
            .enumerate()
            .map(|(i, (start, len, bytes))| {
                Resident::new(
                    ResidentKind::Other(i as u64),
                    TimeInterval::new(start, start + len),
                    bytes,
                )
            })
            .collect()
    })
}

proptest! {
    /// peak ≤ first-fit span ≤ sum of sizes.
    #[test]
    fn span_is_sandwiched(rs in residents()) {
        let peak = peak_occupancy(&rs);
        let span = assign_addresses(&rs).span();
        let sum: u64 = rs.iter().map(|r| r.bytes).sum();
        prop_assert!(peak <= span);
        prop_assert!(span <= sum);
    }

    /// No two residents with overlapping lifetimes get overlapping
    /// address ranges.
    #[test]
    fn assignment_is_collision_free(rs in residents()) {
        let map = assign_addresses(&rs);
        for i in 0..rs.len() {
            for j in (i + 1)..rs.len() {
                if rs[i].interval.overlaps(&rs[j].interval) {
                    let (a0, a1) = (map.offset(i), map.offset(i) + rs[i].bytes);
                    let (b0, b1) = (map.offset(j), map.offset(j) + rs[j].bytes);
                    prop_assert!(a1 <= b0 || b1 <= a0,
                        "residents {i} and {j} overlap in time and address");
                }
            }
        }
    }

    /// The sweep-line peak matches pointwise sampling of occupancy.
    #[test]
    fn peak_matches_pointwise_maximum(rs in residents()) {
        let peak = peak_occupancy(&rs);
        let sampled = (0..=100)
            .map(|t| occupancy_at(&rs, t))
            .max()
            .unwrap_or(0);
        // All endpoints lie in 0..=80 < 100, so sampling every tick is exact.
        prop_assert_eq!(peak, sampled);
    }

    /// Extending a resident's lifetime earlier can only increase the peak.
    #[test]
    fn earlier_extension_is_monotone(rs in residents(), pick in any::<prop::sample::Index>(), ticks in 0u64..40) {
        prop_assume!(!rs.is_empty());
        let i = pick.index(rs.len());
        let mut extended = rs.clone();
        extended[i] = extended[i].extended_earlier(ticks);
        prop_assert!(peak_occupancy(&extended) >= peak_occupancy(&rs));
    }
}
