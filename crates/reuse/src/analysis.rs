//! Whole-program reuse analysis: candidate sets and chains.

use mhla_ir::{AccessKind, AffineExpr, ArrayId, LoopId, NodeId, Program};

use crate::candidate::{CandidateId, CopyCandidate};
use crate::footprint::Footprint;

/// All copy candidates of one array.
#[derive(Clone, PartialEq, Debug)]
pub struct ArrayReuse {
    /// The analysed array.
    pub array: ArrayId,
    candidates: Vec<CopyCandidate>,
    /// Loop path (enclosing loops, outermost first, including the owning
    /// loop itself) per candidate; empty for the whole-array candidate.
    paths: Vec<Vec<LoopId>>,
}

impl ArrayReuse {
    /// Candidates, whole-array first, then by loop in program (DFS) order.
    pub fn candidates(&self) -> &[CopyCandidate] {
        &self.candidates
    }

    /// The whole-array candidate, if the array is read at all.
    pub fn whole_array(&self) -> Option<&CopyCandidate> {
        self.candidates.first().filter(|c| c.is_whole_array())
    }

    /// The candidate owned by `loop_id`, if any.
    pub fn at(&self, loop_id: LoopId) -> Option<&CopyCandidate> {
        self.candidates.iter().find(|c| c.at_loop == Some(loop_id))
    }

    /// Loop path of candidate `index` (empty for whole-array).
    pub fn path(&self, index: usize) -> &[LoopId] {
        &self.paths[index]
    }

    /// Whether candidate `outer` may feed candidate `inner` in a chain:
    /// `inner` must be strictly deeper on the same loop path and not larger.
    pub fn can_chain(&self, outer: usize, inner: usize) -> bool {
        if outer == inner {
            return false;
        }
        let po = &self.paths[outer];
        let pi = &self.paths[inner];
        pi.len() > po.len()
            && pi.starts_with(po)
            && self.candidates[inner].elements <= self.candidates[outer].elements
    }
}

/// Result of [`ReuseAnalysis::analyze`]: copy candidates for every array.
#[derive(Clone, PartialEq, Debug)]
pub struct ReuseAnalysis {
    per_array: Vec<ArrayReuse>,
}

impl ReuseAnalysis {
    /// Computes copy candidates for every array of `program`.
    ///
    /// For each array, a candidate is created per loop whose subtree reads
    /// the array (footprint of one loop iteration) plus one whole-array
    /// candidate. Write-only arrays get no candidates (copies serve reads;
    /// writes are handled by write-back accounting on read/write regions).
    pub fn analyze(program: &Program) -> Self {
        let info = program.info();
        let mut per_array = Vec::with_capacity(program.array_count());

        for (aid, decl) in program.arrays() {
            let mut candidates = Vec::new();
            let mut paths = Vec::new();

            // Gather per-statement access lists once.
            let collect =
                |node: NodeId, kind: AccessKind| -> Vec<(mhla_ir::StmtId, Vec<&[AffineExpr]>)> {
                    info.subtree_stmts(node)
                        .into_iter()
                        .filter_map(|s| {
                            let idx: Vec<&[AffineExpr]> = program
                                .stmt(s)
                                .accesses
                                .iter()
                                .filter(|a| a.array == aid && a.kind == kind)
                                .map(|a| a.index.as_slice())
                                .collect();
                            (!idx.is_empty()).then_some((s, idx))
                        })
                        .collect()
                };

            let total_reads = info.access_counts(aid).reads;
            if total_reads > 0 {
                // Whole-array candidate: all reads, every iterator free.
                let mut all_reads: Vec<&[AffineExpr]> = Vec::new();
                let mut roots_reads = Vec::new();
                for &root in program.roots() {
                    roots_reads.extend(collect(root, AccessKind::Read));
                }
                for (_, idx) in &roots_reads {
                    all_reads.extend(idx.iter().copied());
                }
                if let Some(fp) = Footprint::of_accesses(
                    program,
                    decl,
                    &all_reads,
                    |l| Some(program.loop_(l).span()),
                    None,
                ) {
                    let elements = fp.elements();
                    let (writes_served, wb) = write_stats(program, &info, aid, decl, None, 1);
                    candidates.push(CopyCandidate {
                        array: aid,
                        at_loop: None,
                        elements,
                        bytes: elements * decl.elem.bytes(),
                        entries: 1,
                        accesses_served: total_reads,
                        writes_served,
                        transfers_full: elements,
                        transfers_delta: elements,
                        writebacks: wb,
                        footprint: fp,
                    });
                    paths.push(Vec::new());
                }
            }

            // Per-loop candidates, program order.
            program.walk(|node, _| {
                let NodeId::Loop(l) = node else { return };
                let reads = collect(node, AccessKind::Read);
                if reads.is_empty() {
                    return;
                }
                let mut accs: Vec<&[AffineExpr]> = Vec::new();
                let mut served = 0u64;
                for (s, idx) in &reads {
                    served += info.stmt_executions(*s) * idx.len() as u64;
                    accs.extend(idx.iter().copied());
                }
                let lp = program.loop_(l);
                let Some(fp) = Footprint::of_accesses(
                    program,
                    decl,
                    &accs,
                    |it| {
                        info.encloses(l, NodeId::Loop(it))
                            .then(|| program.loop_(it).span())
                    },
                    Some((l, lp.step)),
                ) else {
                    return;
                };
                let elements = fp.elements();
                let entries = info.loop_iterations(l);
                let loop_entries = info.loop_entries(l);
                let trips = lp.trip_count();
                let transfers_full = entries * elements;
                let transfers_delta = if fp.exact && trips > 0 {
                    loop_entries * (elements + (trips - 1) * fp.delta_elements())
                } else {
                    transfers_full
                };
                let (writes_served, writebacks) =
                    write_stats(program, &info, aid, decl, Some(l), entries);
                let mut path = info.enclosing_loops(NodeId::Loop(l));
                path.push(l);
                candidates.push(CopyCandidate {
                    array: aid,
                    at_loop: Some(l),
                    elements,
                    bytes: elements * decl.elem.bytes(),
                    entries,
                    accesses_served: served,
                    writes_served,
                    transfers_full,
                    transfers_delta: transfers_delta.min(transfers_full),
                    writebacks,
                    footprint: fp,
                });
                paths.push(path);
            });

            per_array.push(ArrayReuse {
                array: aid,
                candidates,
                paths,
            });
        }
        ReuseAnalysis { per_array }
    }

    /// Candidates of one array.
    ///
    /// # Panics
    ///
    /// Panics if `array` does not belong to the analysed program.
    pub fn array(&self, array: ArrayId) -> &ArrayReuse {
        &self.per_array[array.index()]
    }

    /// Iterates over all arrays' candidate sets.
    pub fn arrays(&self) -> impl Iterator<Item = &ArrayReuse> {
        self.per_array.iter()
    }

    /// Looks up one candidate.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn candidate(&self, id: CandidateId) -> &CopyCandidate {
        &self.per_array[id.array.index()].candidates[id.index]
    }

    /// Enumerates the valid candidate chains of an array: every non-empty
    /// sequence of nested candidates of length at most `max_len`, outermost
    /// first.
    pub fn chains(&self, array: ArrayId, max_len: usize) -> Vec<Vec<CandidateId>> {
        let ar = self.array(array);
        let n = ar.candidates().len();
        let mut out = Vec::new();
        let mut stack: Vec<usize> = Vec::new();
        fn extend(
            ar: &ArrayReuse,
            n: usize,
            max_len: usize,
            stack: &mut Vec<usize>,
            out: &mut Vec<Vec<CandidateId>>,
        ) {
            if !stack.is_empty() {
                out.push(
                    stack
                        .iter()
                        .map(|&i| CandidateId {
                            array: ar.array,
                            index: i,
                        })
                        .collect(),
                );
            }
            if stack.len() == max_len {
                return;
            }
            let start = stack.last().map_or(0, |&last| last + 1);
            for next in start..n {
                let ok = match stack.last() {
                    None => true,
                    Some(&last) => ar.can_chain(last, next),
                };
                if ok {
                    stack.push(next);
                    extend(ar, n, max_len, stack, out);
                    stack.pop();
                }
            }
        }
        extend(ar, n, max_len, &mut stack, &mut out);
        out
    }
}

/// Write statistics for the region of `array` covered by the candidate at
/// `at` (or the whole program for `None`): total writes served and the
/// write-back volume (dirty footprint × entries).
fn write_stats(
    program: &Program,
    info: &mhla_ir::ProgramInfo<'_>,
    array: ArrayId,
    decl: &mhla_ir::ArrayDecl,
    at: Option<LoopId>,
    entries: u64,
) -> (u64, u64) {
    let nodes: Vec<NodeId> = match at {
        Some(l) => vec![NodeId::Loop(l)],
        None => program.roots().to_vec(),
    };
    let mut writes = 0u64;
    let mut idx_all: Vec<Vec<AffineExpr>> = Vec::new();
    for node in nodes {
        for s in info.subtree_stmts(node) {
            for a in &program.stmt(s).accesses {
                if a.array == array && a.kind == AccessKind::Write {
                    writes += info.stmt_executions(s);
                    idx_all.push(a.index.clone());
                }
            }
        }
    }
    if writes == 0 {
        return (0, 0);
    }
    let refs: Vec<&[AffineExpr]> = idx_all.iter().map(|v| v.as_slice()).collect();
    let fp = Footprint::of_accesses(
        program,
        decl,
        &refs,
        |it| match at {
            Some(l) => info
                .encloses(l, NodeId::Loop(it))
                .then(|| program.loop_(it).span()),
            None => Some(program.loop_(it).span()),
        },
        at.map(|l| (l, program.loop_(l).step)),
    );
    let wb = fp.map_or(0, |f| f.elements() * entries);
    (writes, wb)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mhla_ir::{ElemType, ProgramBuilder};

    /// Motion-estimation-like program:
    /// ```text
    /// for mb in 0..9 {             // macroblocks
    ///   for dy in 0..8 {           // search
    ///     for y in 0..16 { for x in 0..16 {
    ///       read cur[y][16*mb+x], read prev[dy+y][16*mb+x]
    /// }}}}
    /// ```
    fn me_like() -> (Program, ArrayId, ArrayId, LoopId, LoopId, LoopId) {
        let mut b = ProgramBuilder::new("me");
        let cur = b.array("cur", &[16, 144], ElemType::U8);
        let prev = b.array("prev", &[24, 144], ElemType::U8);
        let lmb = b.begin_loop("mb", 0, 9, 1);
        let ldy = b.begin_loop("dy", 0, 8, 1);
        let ly = b.begin_loop("y", 0, 16, 1);
        let lx = b.begin_loop("x", 0, 16, 1);
        let (mb, dy, y, x) = (b.var(lmb), b.var(ldy), b.var(ly), b.var(lx));
        b.stmt("sad")
            .read(cur, vec![y.clone(), mb.clone() * 16 + x.clone()])
            .read(prev, vec![dy + y, mb * 16 + x])
            .compute_cycles(2)
            .finish();
        b.end_loop();
        b.end_loop();
        b.end_loop();
        b.end_loop();
        (b.finish(), cur, prev, lmb, ldy, ly)
    }

    use mhla_ir::Program;

    #[test]
    fn candidate_sizes_follow_loop_nesting() {
        let (p, cur, _, lmb, ldy, ly) = me_like();
        let r = ReuseAnalysis::analyze(&p);
        let ar = r.array(cur);
        // Whole array: 16 x 144.
        assert_eq!(ar.whole_array().unwrap().elements, 16 * 144);
        // One mb iteration reads a 16x16 tile of cur.
        assert_eq!(ar.at(lmb).unwrap().elements, 16 * 16);
        // One dy iteration also reads the 16x16 tile (cur ignores dy).
        assert_eq!(ar.at(ldy).unwrap().elements, 16 * 16);
        // One y iteration reads a 1x16 row.
        assert_eq!(ar.at(ly).unwrap().elements, 16);
    }

    #[test]
    fn accesses_and_transfers_scale_with_entries() {
        let (p, cur, _, lmb, ldy, _) = me_like();
        let r = ReuseAnalysis::analyze(&p);
        let ar = r.array(cur);
        let total_reads = 9 * 8 * 16 * 16;

        let at_mb = ar.at(lmb).unwrap();
        assert_eq!(at_mb.entries, 9);
        assert_eq!(at_mb.accesses_served, total_reads);
        assert_eq!(at_mb.transfers_full, 9 * 256);
        assert_eq!(at_mb.reuse_factor(), total_reads as f64 / (9.0 * 256.0));

        let at_dy = ar.at(ldy).unwrap();
        assert_eq!(at_dy.entries, 72);
        assert_eq!(at_dy.accesses_served, total_reads);
        assert_eq!(at_dy.transfers_full, 72 * 256);
        // Staging at mb is strictly better than at dy for cur: same size,
        // same serves, fewer transfers.
        assert!(at_mb.transfers_full < at_dy.transfers_full);
    }

    #[test]
    fn search_window_candidate_for_prev() {
        let (p, _, prev, lmb, ldy, _) = me_like();
        let r = ReuseAnalysis::analyze(&p);
        let ar = r.array(prev);
        // One mb iteration reads rows dy+y ∈ [0,22], cols 16mb+x (16 wide).
        assert_eq!(ar.at(lmb).unwrap().footprint.widths, vec![23, 16]);
        // One dy iteration reads a 16x16 block.
        assert_eq!(ar.at(ldy).unwrap().footprint.widths, vec![16, 16]);
        // dy candidate slides by 1 row per dy step: delta = one 16-wide row.
        assert_eq!(ar.at(ldy).unwrap().footprint.delta_elements(), 16);
        // Sliding-window transfers are far below full refresh.
        let c = ar.at(ldy).unwrap();
        assert!(c.transfers_delta < c.transfers_full);
        // Per mb entry: 256 + 7*16 = 368; 9 entries.
        assert_eq!(c.transfers_delta, 9 * (256 + 7 * 16));
    }

    #[test]
    fn chains_are_nested_and_bounded() {
        let (p, _, prev, lmb, ldy, _) = me_like();
        let r = ReuseAnalysis::analyze(&p);
        let chains = r.chains(prev, 2);
        // Singletons for every candidate plus nested pairs.
        assert!(chains.iter().any(|c| c.len() == 1));
        let pairs: Vec<_> = chains.iter().filter(|c| c.len() == 2).collect();
        assert!(!pairs.is_empty());
        for pair in &pairs {
            let outer = r.candidate(pair[0]);
            let inner = r.candidate(pair[1]);
            assert!(inner.elements <= outer.elements, "chains must shrink");
        }
        // A whole-array → mb-window → dy-block chain exists.
        let ar = r.array(prev);
        let mb_idx = ar
            .candidates()
            .iter()
            .position(|c| c.at_loop == Some(lmb))
            .unwrap();
        let dy_idx = ar
            .candidates()
            .iter()
            .position(|c| c.at_loop == Some(ldy))
            .unwrap();
        assert!(ar.can_chain(mb_idx, dy_idx));
        assert!(!ar.can_chain(dy_idx, mb_idx), "chains cannot go outward");
        let l3 = r.chains(prev, 3);
        assert!(l3.iter().all(|c| c.len() <= 3));
        assert!(l3.len() > chains.len());
    }

    #[test]
    fn write_only_arrays_have_no_candidates() {
        let mut b = ProgramBuilder::new("p");
        let out = b.array("out", &[64], ElemType::U8);
        b.loop_scope("i", 0, 64, 1, |b, li| {
            let i = b.var(li);
            b.stmt("s").write(out, vec![i]).finish();
        });
        let p = b.finish();
        let r = ReuseAnalysis::analyze(&p);
        assert!(r.array(out).candidates().is_empty());
        assert!(r.chains(out, 2).is_empty());
    }

    #[test]
    fn written_regions_account_writebacks() {
        // Read-modify-write of a tile per block iteration.
        let mut b = ProgramBuilder::new("p");
        let acc = b.array("acc", &[8, 64], ElemType::I32);
        let lb = b.begin_loop("blk", 0, 8, 1);
        let li = b.begin_loop("i", 0, 8, 1);
        let (blk, i) = (b.var(lb), b.var(li));
        b.stmt("rmw")
            .read(acc, vec![i.clone(), blk.clone() * 8])
            .write(acc, vec![i, blk * 8])
            .finish();
        b.end_loop();
        b.end_loop();
        let p = b.finish();
        let r = ReuseAnalysis::analyze(&p);
        let c = r.array(acc).at(lb).unwrap();
        assert_eq!(c.writes_served, 64);
        assert!(c.has_writes());
        // 8 entries × 8-element dirty column.
        assert_eq!(c.writebacks, 64);
    }

    #[test]
    fn whole_array_candidate_serves_multiple_nests() {
        // Two sequential nests both reading `tab`.
        let mut b = ProgramBuilder::new("p");
        let tab = b.array("tab", &[32], ElemType::U8);
        for pass in 0..2 {
            b.loop_scope(format!("i{pass}"), 0, 32, 1, |b, li| {
                let i = b.var(li);
                b.stmt(format!("s{pass}")).read(tab, vec![i]).finish();
            });
        }
        let p = b.finish();
        let r = ReuseAnalysis::analyze(&p);
        let whole = r.array(tab).whole_array().unwrap();
        assert_eq!(whole.accesses_served, 64, "both nests served");
        assert_eq!(whole.transfers_full, 32, "fetched once");
        assert_eq!(whole.reuse_factor(), 2.0);
    }
}
