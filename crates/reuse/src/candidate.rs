//! Copy candidates: stageable array regions with their cost-model counts.

use std::fmt;

use mhla_ir::{ArrayId, LoopId};

use crate::footprint::Footprint;

/// Identifies one [`CopyCandidate`] inside a
/// [`ReuseAnalysis`](crate::ReuseAnalysis).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct CandidateId {
    /// Array the candidate copies from.
    pub array: ArrayId,
    /// Index within the array's candidate list.
    pub index: usize,
}

impl fmt::Display for CandidateId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}#{}", self.array, self.index)
    }
}

/// A candidate copy of (part of) an array, staged one layer closer to the
/// CPU.
///
/// A candidate "at loop L" is refreshed once per iteration of `L` and holds
/// the bounding box of everything the subtree below `L` reads from the
/// array during that iteration. The special *whole-array* candidate
/// (`at_loop == None`) is fetched exactly once per program run and serves
/// every read of the array.
#[derive(Clone, PartialEq, Debug)]
pub struct CopyCandidate {
    /// Source array.
    pub array: ArrayId,
    /// Owning loop; `None` for the whole-array candidate.
    pub at_loop: Option<LoopId>,
    /// Geometric footprint (widths, per-step shift, exactness).
    pub footprint: Footprint,
    /// Buffer size in elements.
    pub elements: u64,
    /// Buffer size in bytes.
    pub bytes: u64,
    /// Block-transfer instances per program run (iterations of `at_loop`,
    /// or 1 for the whole-array candidate).
    pub entries: u64,
    /// CPU reads served by this copy per program run.
    pub accesses_served: u64,
    /// CPU writes landing in this copy per program run (0 for read-only
    /// regions; written copies need write-back transfers).
    pub writes_served: u64,
    /// Elements transferred per program run when each entry refreshes the
    /// full buffer.
    pub transfers_full: u64,
    /// Elements transferred per program run with sliding-window updates
    /// (first entry full, subsequent entries only the delta). Equals
    /// `transfers_full` when the footprint is inexact or does not slide.
    pub transfers_delta: u64,
    /// Elements written back to the parent per program run (0 when
    /// `writes_served == 0`).
    pub writebacks: u64,
}

impl CopyCandidate {
    /// Served reads per transferred element under full refresh.
    ///
    /// Values above 1 indicate genuine reuse: staging the copy reduces the
    /// number of expensive parent-layer accesses.
    pub fn reuse_factor(&self) -> f64 {
        if self.transfers_full == 0 {
            0.0
        } else {
            self.accesses_served as f64 / self.transfers_full as f64
        }
    }

    /// Whether this is the whole-array candidate.
    pub fn is_whole_array(&self) -> bool {
        self.at_loop.is_none()
    }

    /// Whether writes land in this copy (requiring write-back).
    pub fn has_writes(&self) -> bool {
        self.writes_served > 0
    }
}

impl fmt::Display for CopyCandidate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let loc = match self.at_loop {
            Some(l) => format!("@{l}"),
            None => "@whole".to_string(),
        };
        write!(
            f,
            "CC({}{loc}: {} el, {} B, {} entr, {} rd, rf {:.2})",
            self.array,
            self.elements,
            self.bytes,
            self.entries,
            self.accesses_served,
            self.reuse_factor()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cc(accesses: u64, transfers: u64) -> CopyCandidate {
        CopyCandidate {
            array: ArrayId::from_index(0),
            at_loop: None,
            footprint: Footprint {
                widths: vec![8],
                shifts: vec![0],
                exact: true,
            },
            elements: 8,
            bytes: 8,
            entries: 1,
            accesses_served: accesses,
            writes_served: 0,
            transfers_full: transfers,
            transfers_delta: transfers,
            writebacks: 0,
        }
    }

    #[test]
    fn reuse_factor_is_accesses_per_transfer() {
        assert_eq!(cc(64, 8).reuse_factor(), 8.0);
        assert_eq!(cc(4, 8).reuse_factor(), 0.5);
        assert_eq!(cc(4, 0).reuse_factor(), 0.0);
    }

    #[test]
    fn whole_array_flag() {
        let mut c = cc(1, 1);
        assert!(c.is_whole_array());
        c.at_loop = Some(LoopId::from_index(0));
        assert!(!c.is_whole_array());
    }

    #[test]
    fn display_is_compact() {
        let s = cc(64, 8).to_string();
        assert!(s.contains("@whole"), "{s}");
        assert!(s.contains("rf 8.00"), "{s}");
    }
}
