//! Rectangular footprints of access sets.
//!
//! The footprint of a set of accesses under a loop prefix is the bounding
//! box, per array dimension, of the elements touched while the *fixed*
//! (outer) iterators stay constant and the *free* (inner) iterators sweep
//! their full ranges.
//!
//! For uniformly generated references (same linear part, different
//! constants — the overwhelmingly common pattern in multimedia kernels) the
//! box is computed exactly and its per-step *shift* (how far it slides when
//! the owning loop advances) is known, enabling the sliding-window
//! (delta) transfer count. Non-uniform access sets fall back to a
//! conservative whole-range box and are marked inexact.

use mhla_ir::{AffineExpr, ArrayDecl, LoopId, Program};

/// Bounding-box footprint of a set of accesses to one array.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Footprint {
    /// Box width per array dimension (elements), capped at the dimension.
    pub widths: Vec<u64>,
    /// Absolute shift of the box per step of the owning loop, per dimension
    /// (elements). Zero for the whole-array footprint.
    pub shifts: Vec<u64>,
    /// Whether the box is exact (uniform references) or a conservative
    /// over-approximation.
    pub exact: bool,
}

impl Footprint {
    /// Total elements covered by the box.
    pub fn elements(&self) -> u64 {
        self.widths.iter().product()
    }

    /// Elements *newly entering* the box when the owning loop advances one
    /// step (the sliding-window update volume).
    ///
    /// Equal to `elements - overlap` where the overlap shrinks each
    /// dimension by its shift.
    pub fn delta_elements(&self) -> u64 {
        let total = self.elements();
        let overlap: u64 = self
            .widths
            .iter()
            .zip(&self.shifts)
            .map(|(&w, &s)| w.saturating_sub(s))
            .product();
        total - overlap
    }

    /// Computes the footprint of `accesses` (expressions per dimension) to
    /// `array`, where iterators for which `free_span` returns `Some(span)`
    /// are free (span = last value − first value) and all others are fixed.
    ///
    /// `owner_step` gives, for the owning loop, `(loop, step)` so the
    /// per-step shift can be derived; pass `None` for whole-array
    /// footprints.
    ///
    /// Returns `None` when `accesses` is empty.
    pub fn of_accesses(
        program: &Program,
        array: &ArrayDecl,
        accesses: &[&[AffineExpr]],
        free_span: impl Fn(LoopId) -> Option<i64>,
        owner_step: Option<(LoopId, i64)>,
    ) -> Option<Footprint> {
        if accesses.is_empty() {
            return None;
        }
        let rank = array.rank();
        let mut widths = Vec::with_capacity(rank);
        let mut shifts = Vec::with_capacity(rank);
        let mut exact = true;

        for d in 0..rank {
            let dim_extent = array.dims[d];
            // Uniformity check: all accesses must share the fixed-iterator
            // linear part in this dimension.
            let uniform = {
                let reference = fixed_part(&accesses[0][d], &free_span);
                accesses
                    .iter()
                    .all(|a| fixed_part(&a[d], &free_span) == reference)
            };
            if uniform {
                // Exact union box: extremes of (free part + constant) per
                // access; fixed parts cancel since they are identical.
                let mut lo = i64::MAX;
                let mut hi = i64::MIN;
                for a in accesses {
                    let (alo, ahi) = free_range(&a[d], &free_span);
                    lo = lo.min(alo);
                    hi = hi.max(ahi);
                }
                let width = (hi - lo + 1).max(0) as u64;
                widths.push(width.min(dim_extent));
                let shift = owner_step
                    .map(|(l, step)| (accesses[0][d].coeff(l).abs() * step) as u64)
                    .unwrap_or(0);
                shifts.push(shift);
            } else {
                // Conservative: full value range over every iterator that
                // is in scope, free or fixed, capped at the dimension.
                exact = false;
                let mut lo = i64::MAX;
                let mut hi = i64::MIN;
                for a in accesses {
                    let (alo, ahi) = a[d].value_range(|l| {
                        let lp = program.loop_(l);
                        Some((lp.lower, lp.last_value().unwrap_or(lp.lower)))
                    });
                    lo = lo.min(alo);
                    hi = hi.max(ahi);
                }
                let width = (hi - lo + 1).max(0) as u64;
                widths.push(width.min(dim_extent));
                shifts.push(widths[d].min(dim_extent)); // full refresh
            }
        }
        Some(Footprint {
            widths,
            shifts,
            exact,
        })
    }
}

/// The linear part of `e` restricted to fixed (non-free) iterators.
fn fixed_part(e: &AffineExpr, free_span: &impl Fn(LoopId) -> Option<i64>) -> Vec<(LoopId, i64)> {
    e.terms().filter(|(l, _)| free_span(*l).is_none()).collect()
}

/// Min/max of the free part of `e` (free iterators at their extremes, fixed
/// iterators contributing zero) plus the constant.
fn free_range(e: &AffineExpr, free_span: &impl Fn(LoopId) -> Option<i64>) -> (i64, i64) {
    let mut lo = e.constant();
    let mut hi = e.constant();
    for (l, c) in e.terms() {
        if let Some(span) = free_span(l) {
            // Free iterators are normalized to start at 0 relative to the
            // box origin; span = (trip-1)·step ≥ 0.
            if c >= 0 {
                hi += c * span;
            } else {
                lo += c * span;
            }
        }
    }
    (lo, hi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mhla_ir::{ElemType, ProgramBuilder};

    /// Program:
    /// ```text
    /// for mb in 0..9 { for y in 0..16 { for x in 0..16 {
    ///     read img[y][16*mb + x]
    /// }}}
    /// ```
    #[test]
    fn one_mb_iteration_footprint_is_a_16x16_tile() {
        let mut b = ProgramBuilder::new("p");
        let img = b.array("img", &[16, 144], ElemType::U8);
        let lmb = b.begin_loop("mb", 0, 9, 1);
        let ly = b.begin_loop("y", 0, 16, 1);
        let lx = b.begin_loop("x", 0, 16, 1);
        let (mb, y, x) = (b.var(lmb), b.var(ly), b.var(lx));
        b.stmt("s").read(img, vec![y, mb * 16 + x]).finish();
        b.end_loop();
        b.end_loop();
        b.end_loop();
        let p = b.finish();

        let array = p.array(mhla_ir::ArrayId::from_index(0)).clone();
        let idx = p.stmt(mhla_ir::StmtId::from_index(0)).accesses[0]
            .index
            .clone();
        let fp = Footprint::of_accesses(
            &p,
            &array,
            &[&idx],
            |l| (l == ly || l == lx).then(|| p.loop_(l).span()),
            Some((lmb, 1)),
        )
        .unwrap();
        assert_eq!(fp.widths, vec![16, 16]);
        assert_eq!(fp.elements(), 256);
        assert!(fp.exact);
        // mb advances by 1 → column index moves 16 → non-overlapping tiles.
        assert_eq!(fp.shifts, vec![0, 16]);
        assert_eq!(fp.delta_elements(), 256);
    }

    #[test]
    fn sliding_window_has_small_delta() {
        // for i in 0..100 { for k in 0..8 { read sig[i + k] } }
        let mut b = ProgramBuilder::new("fir");
        let sig = b.array("sig", &[107], ElemType::I16);
        let li = b.begin_loop("i", 0, 100, 1);
        let lk = b.begin_loop("k", 0, 8, 1);
        let (i, k) = (b.var(li), b.var(lk));
        b.stmt("s").read(sig, vec![i + k]).finish();
        b.end_loop();
        b.end_loop();
        let p = b.finish();
        let array = p.array(mhla_ir::ArrayId::from_index(0)).clone();
        let idx = p.stmt(mhla_ir::StmtId::from_index(0)).accesses[0]
            .index
            .clone();
        let fp = Footprint::of_accesses(
            &p,
            &array,
            &[&idx],
            |l| (l == lk).then(|| p.loop_(lk).span()),
            Some((li, 1)),
        )
        .unwrap();
        assert_eq!(fp.widths, vec![8]);
        assert_eq!(fp.shifts, vec![1]);
        assert_eq!(fp.delta_elements(), 1, "window slides by one element");
    }

    #[test]
    fn union_of_uniform_references() {
        // read a[i-1], a[i], a[i+1] with i fixed → box width 3.
        let mut b = ProgramBuilder::new("stencil");
        let a = b.array("a", &[64], ElemType::U8);
        let li = b.begin_loop("i", 1, 63, 1);
        let i = b.var(li);
        b.stmt("s")
            .read(a, vec![i.clone() - 1])
            .read(a, vec![i.clone()])
            .read(a, vec![i + 1])
            .finish();
        b.end_loop();
        let p = b.finish();
        let array = p.array(mhla_ir::ArrayId::from_index(0)).clone();
        let accs: Vec<&[AffineExpr]> = p
            .stmt(mhla_ir::StmtId::from_index(0))
            .accesses
            .iter()
            .map(|a| a.index.as_slice())
            .collect();
        // No free iterators: footprint of ONE i-iteration.
        let fp = Footprint::of_accesses(&p, &array, &accs, |_| None, Some((li, 1))).unwrap();
        assert_eq!(fp.widths, vec![3]);
        assert!(fp.exact);
        assert_eq!(fp.shifts, vec![1]);
        assert_eq!(fp.delta_elements(), 1);
    }

    #[test]
    fn non_uniform_references_fall_back_conservatively() {
        // read a[i] and a[2*i]: different fixed parts → inexact full box.
        let mut b = ProgramBuilder::new("p");
        let a = b.array("a", &[64], ElemType::U8);
        let li = b.begin_loop("i", 0, 16, 1);
        let i = b.var(li);
        b.stmt("s")
            .read(a, vec![i.clone()])
            .read(a, vec![i * 2])
            .finish();
        b.end_loop();
        let p = b.finish();
        let array = p.array(mhla_ir::ArrayId::from_index(0)).clone();
        let accs: Vec<&[AffineExpr]> = p
            .stmt(mhla_ir::StmtId::from_index(0))
            .accesses
            .iter()
            .map(|a| a.index.as_slice())
            .collect();
        let fp = Footprint::of_accesses(&p, &array, &accs, |_| None, Some((li, 1))).unwrap();
        assert!(!fp.exact);
        // i in 0..16 → a[i] spans [0,15], a[2i] spans [0,30] → box 31 wide.
        assert_eq!(fp.widths, vec![31]);
        // Inexact boxes refresh fully.
        assert_eq!(fp.delta_elements(), fp.elements());
    }

    #[test]
    fn widths_are_capped_at_array_dims() {
        let mut b = ProgramBuilder::new("p");
        let a = b.array("a", &[10], ElemType::U8);
        let li = b.begin_loop("i", 0, 10, 1);
        let i = b.var(li);
        b.stmt("s").read(a, vec![i * 3]).finish(); // reaches index 27 > dim
        b.end_loop();
        let p = b.finish();
        let array = p.array(mhla_ir::ArrayId::from_index(0)).clone();
        let idx = p.stmt(mhla_ir::StmtId::from_index(0)).accesses[0]
            .index
            .clone();
        let fp = Footprint::of_accesses(
            &p,
            &array,
            &[&idx],
            |l| (l == li).then(|| p.loop_(li).span()),
            None,
        )
        .unwrap();
        assert_eq!(fp.widths, vec![10], "cap at declared dimension");
    }

    #[test]
    fn empty_access_set_has_no_footprint() {
        let mut b = ProgramBuilder::new("p");
        let a = b.array("a", &[10], ElemType::U8);
        b.stmt("s").read(a, vec![AffineExpr::zero()]).finish();
        let p = b.finish();
        let array = p.array(mhla_ir::ArrayId::from_index(0)).clone();
        assert!(Footprint::of_accesses(&p, &array, &[], |_| None, None).is_none());
    }
}
