//! # mhla-reuse — data-reuse and copy-candidate analysis
//!
//! MHLA exploits *data reuse*: when a loop nest re-reads the same array
//! region across iterations of an outer loop, a copy of that region can be
//! staged in a smaller on-chip layer, so that most accesses hit the cheap
//! copy instead of the expensive big memory.
//!
//! For every array and every enclosing loop level this crate computes a
//! [`CopyCandidate`]: the rectangular (bounding-box) footprint of the data
//! the subtree below that loop accesses during **one iteration** of it,
//! together with the counts the cost model needs:
//!
//! * `elements` / `bytes` — size of the copy buffer,
//! * `accesses_served` — CPU reads redirected to the copy,
//! * `transfers_full` / `transfers_delta` — elements moved per program run
//!   under full-refresh vs. sliding-window update,
//! * [`reuse_factor`](CopyCandidate::reuse_factor) — served accesses per
//!   transferred element (> 1 means the copy pays off in access count).
//!
//! [`ReuseAnalysis::analyze`] computes candidate sets for all arrays;
//! [`ReuseAnalysis::chains`] enumerates the candidate chains (array → copy →
//! sub-copy …) the assignment step selects from.
//!
//! # Example
//!
//! ```
//! use mhla_ir::{ProgramBuilder, ElemType};
//! use mhla_reuse::ReuseAnalysis;
//!
//! // for b in 0..8 { for i in 0..64 { read tab[i] } } — tab fully reused.
//! let mut bld = ProgramBuilder::new("p");
//! let tab = bld.array("tab", &[64], ElemType::U8);
//! let lb = bld.begin_loop("b", 0, 8, 1);
//! let li = bld.begin_loop("i", 0, 64, 1);
//! let iv = bld.var(li);
//! bld.stmt("s").read(tab, vec![iv]).finish();
//! bld.end_loop();
//! bld.end_loop();
//! let p = bld.finish();
//!
//! let reuse = ReuseAnalysis::analyze(&p);
//! // The whole-array candidate (fetched once) serves all 512 reads with
//! // 64 transferred elements: reuse factor 8.
//! let whole = reuse.array(tab).whole_array().unwrap();
//! assert_eq!(whole.elements, 64);
//! assert_eq!(whole.accesses_served, 8 * 64);
//! assert_eq!(whole.reuse_factor(), 8.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// The analyses run on programs that may have arrived through serialized
// (hostile) ingress; everything reachable there must degrade to a typed
// error upstream or a total computation here — never an `unwrap` panic.
#![warn(clippy::unwrap_used, clippy::expect_used)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

mod analysis;
mod candidate;
mod footprint;

pub use analysis::{ArrayReuse, ReuseAnalysis};
pub use candidate::{CandidateId, CopyCandidate};
pub use footprint::Footprint;
