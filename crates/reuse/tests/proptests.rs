//! Property tests: copy-candidate footprints are sound (cover every element
//! actually accessed) and exact for uniform references, validated against
//! brute-force enumeration of the iteration space.

use std::collections::HashSet;

use mhla_ir::{AccessKind, ElemType, LoopId, ProgramBuilder, StmtId};
use mhla_reuse::ReuseAnalysis;
use proptest::prelude::*;

/// A random 3-deep nest reading a 2-D array with affine subscripts.
///
/// Shape: `for a in 0..ta { for b in 0..tb { for c in 0..tc {
///   read img[ca*a + cb*b + cc*c + k0][da*a + db*b + dc*c + k1] }}}`
/// with coefficients chosen so that subscripts stay in bounds.
#[derive(Clone, Debug)]
struct Nest {
    trips: [i64; 3],
    row: [i64; 4], // ca, cb, cc, k0
    col: [i64; 4],
}

fn nests() -> impl Strategy<Value = Nest> {
    (
        prop::array::uniform3(1i64..=5),
        prop::array::uniform4(0i64..=3),
        prop::array::uniform4(0i64..=3),
    )
        .prop_map(|(trips, row, col)| Nest { trips, row, col })
}

fn build(nest: &Nest) -> (mhla_ir::Program, mhla_ir::ArrayId, [LoopId; 3]) {
    // Size the array to cover the maximal subscript.
    let max_row: i64 = nest.row[0] * (nest.trips[0] - 1)
        + nest.row[1] * (nest.trips[1] - 1)
        + nest.row[2] * (nest.trips[2] - 1)
        + nest.row[3];
    let max_col: i64 = nest.col[0] * (nest.trips[0] - 1)
        + nest.col[1] * (nest.trips[1] - 1)
        + nest.col[2] * (nest.trips[2] - 1)
        + nest.col[3];
    let mut b = ProgramBuilder::new("rand");
    let img = b.array(
        "img",
        &[(max_row + 1) as u64, (max_col + 1) as u64],
        ElemType::U8,
    );
    let la = b.begin_loop("a", 0, nest.trips[0], 1);
    let lb = b.begin_loop("b", 0, nest.trips[1], 1);
    let lc = b.begin_loop("c", 0, nest.trips[2], 1);
    let (a, bb, c) = (b.var(la), b.var(lb), b.var(lc));
    let row =
        a.clone() * nest.row[0] + bb.clone() * nest.row[1] + c.clone() * nest.row[2] + nest.row[3];
    let col = a * nest.col[0] + bb * nest.col[1] + c * nest.col[2] + nest.col[3];
    b.stmt("s").read(img, vec![row, col]).finish();
    b.end_loop();
    b.end_loop();
    b.end_loop();
    (b.finish(), img, [la, lb, lc])
}

/// Enumerates the elements read during iteration `fixed` of the outermost
/// loops (those not in `free_from..`).
fn touched(p: &mhla_ir::Program, nest: &Nest, fixed: &[i64]) -> HashSet<(i64, i64)> {
    let stmt = p.stmt(StmtId::from_index(0));
    let acc = &stmt.accesses[0];
    assert_eq!(acc.kind, AccessKind::Read);
    let free_from = fixed.len();
    let mut out = HashSet::new();
    // Iterate the free loops exhaustively.
    let free_trips: Vec<i64> = (free_from..3).map(|i| nest.trips[i]).collect();
    let mut counters = vec![0i64; free_trips.len()];
    loop {
        let env = |l: LoopId| {
            let i = l.index();
            if i < free_from {
                fixed[i]
            } else {
                counters[i - free_from]
            }
        };
        let r = acc.index[0].eval(env);
        let c = acc.index[1].eval(env);
        out.insert((r, c));
        // increment odometer
        let mut k = free_trips.len();
        loop {
            if k == 0 {
                return out;
            }
            k -= 1;
            counters[k] += 1;
            if counters[k] < free_trips[k] {
                break;
            }
            counters[k] = 0;
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The candidate at the outermost loop covers exactly the elements read
    /// during each of its iterations (uniform single reference → exact box),
    /// and `accesses_served`/`transfers_full` match enumeration.
    #[test]
    fn outer_candidate_box_is_exact_and_sound(nest in nests()) {
        let (p, img, [la, _, _]) = build(&nest);
        let reuse = ReuseAnalysis::analyze(&p);
        let Some(cc) = reuse.array(img).at(la) else {
            // Loop with zero reads cannot happen here.
            return Err(TestCaseError::fail("missing candidate"));
        };
        prop_assert!(cc.footprint.exact, "single reference is uniform");

        for a_val in 0..nest.trips[0] {
            let set = touched(&p, &nest, &[a_val]);
            // Soundness: the box is at least as large as the touched set.
            prop_assert!(cc.elements >= set.len() as u64,
                "box {} smaller than touched {}", cc.elements, set.len());
            // Exactness of the box *extent*: widths match the spans.
            let rmin = set.iter().map(|e| e.0).min().unwrap();
            let rmax = set.iter().map(|e| e.0).max().unwrap();
            let cmin = set.iter().map(|e| e.1).min().unwrap();
            let cmax = set.iter().map(|e| e.1).max().unwrap();
            prop_assert_eq!(cc.footprint.widths[0] as i64, rmax - rmin + 1);
            prop_assert_eq!(cc.footprint.widths[1] as i64, cmax - cmin + 1);
        }

        let total_reads = (nest.trips[0] * nest.trips[1] * nest.trips[2]) as u64;
        prop_assert_eq!(cc.accesses_served, total_reads);
        prop_assert_eq!(cc.transfers_full, nest.trips[0] as u64 * cc.elements);
        prop_assert_eq!(cc.entries, nest.trips[0] as u64);
    }

    /// Whole-array candidate covers the union of everything ever read and
    /// never exceeds the array size.
    #[test]
    fn whole_array_candidate_covers_program(nest in nests()) {
        let (p, img, _) = build(&nest);
        let reuse = ReuseAnalysis::analyze(&p);
        let whole = reuse.array(img).whole_array().expect("array is read");
        let set = touched(&p, &nest, &[]);
        prop_assert!(whole.elements >= set.len() as u64);
        prop_assert!(whole.elements <= p.array(img).elements());
        prop_assert_eq!(whole.entries, 1);
        prop_assert_eq!(whole.transfers_full, whole.elements);
    }

    /// Candidates shrink (or stay equal) with loop depth along each path,
    /// and sliding-window transfers never exceed full-refresh transfers.
    #[test]
    fn candidates_shrink_inward(nest in nests()) {
        let (p, img, [la, lb, lc]) = build(&nest);
        let reuse = ReuseAnalysis::analyze(&p);
        let ar = reuse.array(img);
        let ea = ar.at(la).map(|c| c.elements);
        let eb = ar.at(lb).map(|c| c.elements);
        let ec = ar.at(lc).map(|c| c.elements);
        if let (Some(ea), Some(eb)) = (ea, eb) {
            prop_assert!(eb <= ea);
        }
        if let (Some(eb), Some(ec)) = (eb, ec) {
            prop_assert!(ec <= eb);
        }
        for cc in ar.candidates() {
            prop_assert!(cc.transfers_delta <= cc.transfers_full);
            prop_assert!(cc.elements > 0);
            prop_assert!(cc.reuse_factor() >= 0.0);
        }
    }
}
