//! End-to-end tests over real sockets: a [`Server`] on an ephemeral
//! port, driven by the blocking [`Client`] — the same pair `mhla serve`
//! and `mhla submit` wrap.
//!
//! Pinned here (ISSUE acceptance):
//!
//! * a served frontier is **bit-identical** to the in-process engine —
//!   both the raw result body and the reconstructed `mhla grid` CSV;
//! * a repeated submission is answered **from cache** (`"cached":true`,
//!   byte-identical body, engine-run counter unchanged);
//! * corrupted submissions get **typed error responses** and the
//!   connection (and process) stays alive for the next request;
//! * a **budget-stopped** partial result is *not* cached;
//! * **graceful shutdown** acknowledges, drains, and `Server::join`
//!   returns with the listener closed.

use std::io::{Read as _, Write as _};
use std::net::TcpStream;

use mhla_core::explore::{try_sweep_grid_run, GridAxis, SweepOptions};
use mhla_core::fingerprint::{platform_fingerprint, program_fingerprint};
use mhla_core::{report, MhlaConfig};
use mhla_hierarchy::serdes::platform_value;
use mhla_hierarchy::{LayerId, Platform};
use mhla_ir::serdes::{field, program_value, Json};
use mhla_ir::Program;
use mhla_serve::protocol::{result_body, MAX_REQUEST_BYTES};
use mhla_serve::{Client, Response, ServedStatus, Server, ServerOptions, Service, ServiceOptions};

fn small_server() -> Server {
    Server::bind(
        "127.0.0.1:0",
        ServerOptions {
            workers: 2,
            queue: 8,
            ..ServerOptions::default()
        },
    )
    .expect("bind an ephemeral port")
}

fn small_axes() -> Vec<GridAxis> {
    vec![
        GridAxis::new(LayerId(1), vec![128u64, 256, 1024]),
        GridAxis::new(LayerId(2), vec![64u64, 128]),
    ]
}

fn axes_value(axes: &[GridAxis]) -> Json {
    Json::Arr(
        axes.iter()
            .map(|a| {
                Json::Obj(vec![
                    ("layer".into(), Json::from_u64(a.layer.0 as u64)),
                    (
                        "capacities".into(),
                        Json::Arr(a.capacities.iter().map(|&c| Json::from_u64(c)).collect()),
                    ),
                ])
            })
            .collect(),
    )
}

fn explore_line(program: &Program, platform: &Platform, extra: Vec<(String, Json)>) -> String {
    let mut fields = vec![
        ("op".into(), Json::Str("explore".into())),
        ("program".into(), program_value(program)),
        ("platform".into(), platform_value(platform)),
        ("axes".into(), axes_value(&small_axes())),
    ];
    fields.extend(extra);
    Json::Obj(fields).render_compact()
}

/// The `result` body of an ok explore response line, verbatim.
fn raw_body(line: &str) -> &str {
    let start = line.find("\"result\":").expect("result field") + "\"result\":".len();
    &line[start..line.len() - 1]
}

/// Reads a numeric counter out of a status response body.
fn counter(status: &Json, group: &str, key: &str) -> u64 {
    let o = status.as_object("status").unwrap();
    let g = field(o, group, "status").unwrap().as_object(group).unwrap();
    field(g, key, group).unwrap().as_u64(key).unwrap()
}

#[test]
fn served_frontier_is_bit_identical_to_engine_and_resubmit_hits_cache() {
    let app = mhla_apps::fir_bank::app();
    let platform = Platform::three_level(1024, 256);
    let server = small_server();
    let mut client = Client::connect(server.addr()).expect("connect");

    let line = explore_line(&app.program, &platform, vec![]);
    let cold_line = client.roundtrip(&line).expect("cold roundtrip");
    let cold = match Response::parse(&cold_line).expect("parse cold") {
        Response::Frontier { cached, frontier } => {
            assert!(!cached, "first submission must be a cache miss");
            frontier
        }
        _ => panic!("expected a frontier, got {cold_line}"),
    };

    // The in-process oracle: same program, platform, axes, defaults.
    let run = try_sweep_grid_run(
        &app.program,
        &platform,
        &small_axes(),
        &MhlaConfig::default(),
        &SweepOptions::default(),
    )
    .expect("oracle run");
    assert!(run.status.is_complete());
    let oracle_body = result_body(
        &run,
        program_fingerprint(&app.program),
        platform_fingerprint(&platform),
    );
    assert_eq!(
        raw_body(&cold_line),
        oracle_body,
        "served body must be bit-identical to the in-process engine"
    );
    assert_eq!(
        cold.grid_csv(),
        report::grid_csv(&run.sweep),
        "reconstructed CSV must be bit-identical to `mhla grid`"
    );
    assert_eq!(cold.status, ServedStatus::Complete);

    // Resubmit on the same connection: answered from cache, same bytes,
    // and the engine has still only run once.
    let warm_line = client.roundtrip(&line).expect("warm roundtrip");
    match Response::parse(&warm_line).expect("parse warm") {
        Response::Frontier { cached, frontier } => {
            assert!(cached, "resubmission must be a cache hit");
            assert_eq!(frontier, cold);
        }
        _ => panic!("expected a frontier, got {warm_line}"),
    }
    assert_eq!(raw_body(&warm_line), oracle_body);

    let status_line = client.roundtrip("{\"op\":\"status\"}").expect("status");
    match Response::parse(&status_line).expect("parse status") {
        Response::Other(status) => {
            assert_eq!(
                counter(&status, "engine", "runs"),
                1,
                "hit must skip the engine"
            );
            assert_eq!(counter(&status, "cache", "hits"), 1);
            assert_eq!(counter(&status, "cache", "misses"), 1);
        }
        _ => panic!("expected a status body, got {status_line}"),
    }

    client.roundtrip("{\"op\":\"shutdown\"}").expect("shutdown");
    server.join();
}

#[test]
fn corrupted_submissions_get_typed_errors_and_the_connection_survives() {
    let server = small_server();
    let mut client = Client::connect(server.addr()).expect("connect");

    for (junk, class) in [
        ("not json", "bad_request"),
        ("[]", "bad_request"),
        ("{\"op\":\"fly\"}", "bad_request"),
        ("{\"op\":\"explore\",\"program\":42}", "invalid_options"),
        (
            // A well-formed document holding a corrupt program (dangling root).
            "{\"op\":\"explore\",\"program\":{\"format\":\"mhla.program\",\"version\":1,\
             \"name\":\"x\",\"arrays\":[],\"loops\":[],\"stmts\":[],\"roots\":[\"S5\"]}}",
            "invalid_program",
        ),
    ] {
        let response = client.roundtrip(junk).expect("the connection must survive");
        match Response::parse(&response).expect("typed error line") {
            Response::Error(e) => assert_eq!(e.class, class, "for {junk:?}: {}", e.message),
            _ => panic!("junk {junk:?} must get an error response, got {response}"),
        }
    }

    // The same connection still serves a valid exploration afterwards.
    let app = mhla_apps::sobel_edge::app();
    let platform = Platform::three_level(1024, 256);
    let line = explore_line(&app.program, &platform, vec![]);
    let response = client.roundtrip(&line).expect("valid roundtrip after junk");
    assert!(
        matches!(
            Response::parse(&response).expect("parse"),
            Response::Frontier { cached: false, .. }
        ),
        "expected a frontier, got {response}"
    );

    client.roundtrip("{\"op\":\"shutdown\"}").expect("shutdown");
    server.join();
}

#[test]
fn budget_stopped_partial_results_are_not_cached() {
    let app = mhla_apps::fir_bank::app();
    let platform = Platform::three_level(1024, 256);
    let server = small_server();
    let mut client = Client::connect(server.addr()).expect("connect");

    let line = explore_line(
        &app.program,
        &platform,
        vec![("max_evals".into(), Json::from_u64(2))],
    );
    for round in 0..2 {
        let response = client.roundtrip(&line).expect("roundtrip");
        match Response::parse(&response).expect("parse") {
            Response::Frontier { cached, frontier } => {
                assert!(
                    !cached,
                    "round {round}: a partial result must never be served from cache"
                );
                assert_eq!(
                    frontier.status,
                    ServedStatus::Stopped {
                        cause: "max_evals".into(),
                        next_lex: 2
                    },
                    "the 6-point grid under a 2-eval budget stops at lex 2"
                );
                assert_eq!(frontier.points.len(), 2);
            }
            _ => panic!("expected a frontier, got {response}"),
        }
    }
    let status_line = client.roundtrip("{\"op\":\"status\"}").expect("status");
    match Response::parse(&status_line).expect("parse status") {
        Response::Other(status) => {
            assert_eq!(
                counter(&status, "engine", "runs"),
                2,
                "both rounds must hit the engine"
            );
            assert_eq!(counter(&status, "cache", "insertions"), 0);
            assert_eq!(counter(&status, "cache", "uncacheable"), 0);
        }
        _ => panic!("expected a status body, got {status_line}"),
    }

    client.roundtrip("{\"op\":\"shutdown\"}").expect("shutdown");
    server.join();
}

#[test]
fn graceful_shutdown_acknowledges_drains_and_closes_the_listener() {
    let server = small_server();
    let addr = server.addr();
    let mut client = Client::connect(addr).expect("connect");

    let ack = client
        .roundtrip("{\"op\":\"shutdown\"}")
        .expect("shutdown ack");
    match Response::parse(&ack).expect("parse ack") {
        Response::Other(body) => {
            let o = body.as_object("ack").unwrap();
            assert!(matches!(
                field(o, "stopping", "ack").unwrap(),
                Json::Bool(true)
            ));
        }
        _ => panic!("expected a shutdown ack, got {ack}"),
    }
    assert!(server.service().is_draining());

    // join() returns: accept loop, handlers and workers all exit.
    server.join();

    // The listener is gone — a fresh connection must fail (or be reset
    // before it can answer).
    match TcpStream::connect(addr) {
        Err(_) => {}
        Ok(mut s) => {
            let dead = s.write_all(b"{\"op\":\"status\"}\n").is_err()
                || mhla_serve::request_once(addr, "{\"op\":\"status\"}").is_err();
            assert!(dead, "the drained server must not accept new requests");
        }
    }
}

#[test]
fn draining_service_refuses_new_explorations_with_a_typed_class() {
    let app = mhla_apps::fir_bank::app();
    let platform = Platform::three_level(1024, 256);
    let service = Service::new(ServiceOptions::default());
    service.begin_shutdown();
    let response = service.handle_line(&explore_line(&app.program, &platform, vec![]));
    assert!(
        response.contains("\"class\":\"shutting_down\""),
        "got {response}"
    );
    // Status still answers while draining.
    let status = service.handle_line("{\"op\":\"status\"}");
    assert!(status.contains("\"draining\":true"), "got {status}");
}

#[test]
fn oversized_request_line_gets_one_bad_request_then_close() {
    let server = small_server();

    // One line over the cap — sent raw, with no trailing newline, so the
    // server consumes every byte before the cap fires and the close after
    // the response is a clean FIN (no unread data, no reset).
    let mut stream = TcpStream::connect(server.addr()).expect("connect");
    let chunk = vec![b'x'; 64 * 1024];
    let mut sent = 0usize;
    while sent < MAX_REQUEST_BYTES + 2 {
        let n = chunk.len().min(MAX_REQUEST_BYTES + 2 - sent);
        stream.write_all(&chunk[..n]).expect("write oversized line");
        sent += n;
    }
    stream.flush().expect("flush");
    let mut reply = String::new();
    stream
        .read_to_string(&mut reply)
        .expect("read until the server closes");
    let line = reply.lines().next().expect("one response line");
    match Response::parse(line).expect("parse") {
        Response::Error(e) => assert_eq!(e.class, "bad_request", "{}", e.message),
        _ => panic!("expected bad_request, got {line}"),
    }

    // The process survives: a new connection works.
    let status = mhla_serve::request_once(server.addr(), "{\"op\":\"status\"}").expect("reconnect");
    assert!(status.contains("\"ok\":true"), "got {status}");

    mhla_serve::request_once(server.addr(), "{\"op\":\"shutdown\"}").expect("shutdown");
    server.join();
}
