//! Satellite: cache correctness under randomized traffic.
//!
//! Two properties, driven through [`Service::handle_line`] (no sockets):
//!
//! 1. **Hit ≡ cold, byte for byte.** For random programs × platforms ×
//!    objectives, a cache hit's response body is byte-identical to the
//!    cold evaluation's — and to what a *fresh* service computes for the
//!    same request.
//! 2. **Eviction never serves a stale or cross-keyed frontier.** Under a
//!    byte budget too small to hold the working set, every response —
//!    hit, miss, or post-eviction recompute — still equals the fresh-
//!    service oracle for its own request.
//!
//! Plus the same no-cross-keying property on [`ResultCache`] directly,
//! with random keys and bodies.

use mhla_hierarchy::serdes::platform_value;
use mhla_hierarchy::Platform;
use mhla_ir::arbitrary::program_specs;
use mhla_ir::serdes::{program_value, Json};
use mhla_ir::Program;
use mhla_serve::cache::{CacheKey, ResultCache};
use mhla_serve::{Service, ServiceOptions};
use proptest::prelude::*;

/// Renders an explore request line for the service ingress.
fn explore_line(program: &Program, platform: &Platform, objective: &Json, caps: &[u64]) -> String {
    let axes = Json::Arr(vec![
        Json::Obj(vec![
            ("layer".into(), Json::from_u64(1)),
            (
                "capacities".into(),
                Json::Arr(caps.iter().map(|&c| Json::from_u64(c)).collect()),
            ),
        ]),
        Json::Obj(vec![
            ("layer".into(), Json::from_u64(2)),
            (
                "capacities".into(),
                Json::Arr(vec![Json::from_u64(64), Json::from_u64(128)]),
            ),
        ]),
    ]);
    Json::Obj(vec![
        ("op".into(), Json::Str("explore".into())),
        ("program".into(), program_value(program)),
        ("platform".into(), platform_value(platform)),
        ("objective".into(), objective.clone()),
        ("axes".into(), axes),
    ])
    .render_compact()
}

/// Splits an explore response line into (cached, body). Panics on an
/// error line — these tests only submit valid requests.
fn split_ok(line: &str) -> (bool, &str) {
    let rest = line
        .strip_prefix("{\"ok\":true,\"cached\":")
        .unwrap_or_else(|| panic!("expected an ok explore response, got {line}"));
    let (cached, body) = if let Some(b) = rest.strip_prefix("false,\"result\":") {
        (false, b)
    } else if let Some(b) = rest.strip_prefix("true,\"result\":") {
        (true, b)
    } else {
        panic!("malformed cached flag in {line}");
    };
    (cached, body.strip_suffix('}').expect("closing brace"))
}

/// The three objective shapes the wire accepts.
fn objectives() -> Vec<Json> {
    vec![
        Json::Str("cycles".into()),
        Json::Str("energy".into()),
        Json::Obj(vec![
            ("energy_weight".into(), Json::from_f64(0.5)),
            ("cycle_weight".into(), Json::from_f64(0.5)),
        ]),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Property 1: the second submission is answered from cache and its
    /// body is byte-identical both to the first (cold) response and to a
    /// fresh service's cold evaluation of the same request.
    #[test]
    fn cache_hit_is_byte_identical_to_cold(
        spec in program_specs(),
        obj_idx in 0usize..3,
        platform_idx in 0usize..2,
    ) {
        let program = spec.build();
        let platform = if platform_idx == 0 {
            Platform::three_level(1024, 256)
        } else {
            Platform::three_level(2048, 512)
        };
        let objective = objectives().swap_remove(obj_idx);
        let line = explore_line(&program, &platform, &objective, &[128, 256]);

        let service = Service::new(ServiceOptions::default());
        let cold = service.handle_line(&line);
        let warm = service.handle_line(&line);
        let (c0, body_cold) = split_ok(&cold);
        let (c1, body_warm) = split_ok(&warm);
        prop_assert!(!c0, "first submission must miss");
        prop_assert!(c1, "second submission must hit");
        prop_assert_eq!(body_cold, body_warm, "hit must be byte-identical to cold");

        let oracle = Service::new(ServiceOptions::default());
        let oracle_line = oracle.handle_line(&line);
        let (_, body_oracle) = split_ok(&oracle_line);
        prop_assert_eq!(
            body_cold, body_oracle,
            "a fresh service must compute the same body"
        );
    }

    /// Property 2: a cache squeezed far below the working set keeps
    /// evicting, yet every response still matches the per-request oracle
    /// — eviction never surfaces a stale or cross-keyed frontier.
    #[test]
    fn eviction_under_tiny_budget_never_serves_wrong_frontier(
        spec in program_specs(),
        order in proptest::prop::collection::vec(0usize..3, 6..=10),
    ) {
        let program = spec.build();
        let platform = Platform::three_level(1024, 256);
        let objective = Json::Str("cycles".into());
        // Three distinct cache keys (distinct axes) cycled in random
        // order through a cache that holds roughly one body.
        let cap_sets: [&[u64]; 3] = [&[128, 256], &[256, 1024], &[128, 1024]];
        let lines: Vec<String> = cap_sets
            .iter()
            .map(|caps| explore_line(&program, &platform, &objective, caps))
            .collect();
        let oracle_bodies: Vec<String> = lines
            .iter()
            .map(|line| {
                let oracle = Service::new(ServiceOptions::default());
                split_ok(&oracle.handle_line(line)).1.to_string()
            })
            .collect();

        let first_body_len = oracle_bodies[0].len();
        let service = Service::new(ServiceOptions {
            cache_bytes: first_body_len + first_body_len / 2,
            ..ServiceOptions::default()
        });
        for &i in &order {
            let response = service.handle_line(&lines[i]);
            let (_, body) = split_ok(&response);
            prop_assert_eq!(
                body,
                oracle_bodies[i].as_str(),
                "response under eviction pressure diverged from the oracle"
            );
        }
    }

    /// The same non-cross-keying property on the cache itself: whatever
    /// the insert/get interleaving and however small the budget, a `get`
    /// returns `None` or exactly the body last inserted under that key.
    #[test]
    fn result_cache_never_crosses_keys(
        budget in 8usize..200,
        ops in proptest::prop::collection::vec((0u8..2, 0usize..4), 1..40),
    ) {
        // Each key has one canonical body (as in real traffic, where the
        // body is a function of the key's content); a hit must return
        // exactly its own key's bytes.
        let keys: Vec<CacheKey> = (0..4)
            .map(|i| CacheKey {
                program_fp: i as u128,
                platform_fp: 0,
                options: format!("opts-{i}"),
            })
            .collect();
        let bodies: Vec<String> =
            (0..4).map(|i| format!("body-{i}-{}", "x".repeat(i * 7))).collect();
        let mut cache = ResultCache::new(budget);
        for (op, k) in ops {
            if op == 0 {
                cache.insert(keys[k].clone(), bodies[k].clone());
            } else if let Some(got) = cache.get(&keys[k]) {
                prop_assert_eq!(
                    got,
                    bodies[k].clone(),
                    "cache served another key's bytes"
                );
            }
        }
        prop_assert!(cache.bytes() <= budget.max(1), "byte budget violated");
    }
}

/// Deterministic spot-check of the eviction property with the real
/// engine: two alternating keys in a one-body cache keep evicting each
/// other, and the served bytes always match the right key.
#[test]
fn alternating_keys_in_one_body_cache_stay_correct() {
    let app = mhla_apps::fir_bank::app();
    let platform = Platform::three_level(1024, 256);
    let objective = Json::Str("cycles".into());
    let line_a = explore_line(&app.program, &platform, &objective, &[128, 256]);
    let line_b = explore_line(&app.program, &platform, &objective, &[256, 1024]);

    let oracle = Service::new(ServiceOptions::default());
    let body_a = split_ok(&oracle.handle_line(&line_a)).1.to_string();
    let body_b = split_ok(&oracle.handle_line(&line_b)).1.to_string();
    assert_ne!(body_a, body_b, "distinct axes must produce distinct bodies");

    let service = Service::new(ServiceOptions {
        cache_bytes: body_a.len() + 64,
        ..ServiceOptions::default()
    });
    for _ in 0..3 {
        assert_eq!(split_ok(&service.handle_line(&line_a)).1, body_a);
        assert_eq!(split_ok(&service.handle_line(&line_b)).1, body_b);
    }
}
