//! A minimal blocking client for the NDJSON protocol — what `mhla
//! submit`/`status`/`shutdown` are built on.

use std::io::{self, ErrorKind, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};

/// A blocking connection to an `mhla serve` instance.
pub struct Client {
    stream: TcpStream,
    pending: Vec<u8>,
}

impl Client {
    /// Connects to a running server.
    ///
    /// # Errors
    ///
    /// [`io::Error`] from the connect.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        Ok(Client {
            stream: TcpStream::connect(addr)?,
            pending: Vec::new(),
        })
    }

    /// Sends one request line and blocks for its response line (without
    /// the trailing newline). The connection stays open — NDJSON carries
    /// any number of request/response pairs.
    ///
    /// # Errors
    ///
    /// [`io::Error`] from the transport; [`ErrorKind::UnexpectedEof`]
    /// when the server closes before answering.
    pub fn roundtrip(&mut self, line: &str) -> io::Result<String> {
        self.stream.write_all(line.as_bytes())?;
        self.stream.write_all(b"\n")?;
        self.stream.flush()?;
        self.read_line()
    }

    fn read_line(&mut self) -> io::Result<String> {
        let mut buf = [0u8; 16 * 1024];
        loop {
            if let Some(nl) = self.pending.iter().position(|&b| b == b'\n') {
                let line: Vec<u8> = self.pending.drain(..=nl).collect();
                return Ok(String::from_utf8_lossy(&line[..nl])
                    .trim_end_matches('\r')
                    .to_string());
            }
            match self.stream.read(&mut buf) {
                Ok(0) => {
                    return Err(io::Error::new(
                        ErrorKind::UnexpectedEof,
                        "server closed the connection mid-response",
                    ))
                }
                Ok(n) => self.pending.extend_from_slice(&buf[..n]),
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
    }
}

/// One-shot convenience: connect, send one line, return the response.
///
/// # Errors
///
/// As [`Client::connect`] / [`Client::roundtrip`].
pub fn request_once(addr: impl ToSocketAddrs, line: &str) -> io::Result<String> {
    Client::connect(addr)?.roundtrip(line)
}
