//! # mhla-serve — the batch exploration server behind `mhla serve`
//!
//! Exploration-as-a-service over plain TCP: clients submit serialized
//! programs (and optionally platforms, axes, objectives and budgets) as
//! newline-delimited JSON and get certified exploration frontiers back —
//! the paper's trade-off sweeps as a long-running, cache-backed service
//! instead of a per-invocation CLI run.
//!
//! Layering, bottom up:
//!
//! * [`cache`] — the content-addressed result cache: finished frontier
//!   bodies keyed by (program fingerprint, platform fingerprint,
//!   canonical options), LRU-evicted under a byte budget;
//! * [`protocol`] — the NDJSON wire format: request parsing (total — any
//!   ingress maps to a typed error, never a panic), result-body and
//!   error rendering, client-side result parsing and the exact
//!   `mhla grid` CSV reconstruction;
//! * [`service`] — one request line in, one response line out, no
//!   sockets: the result cache, the per-program analysis cache (reuse
//!   analysis paid once per program, shared across requests via
//!   [`mhla_core::explore::try_sweep_grid_run_in`]), counters, and the
//!   graceful-shutdown flag wired into every in-flight budget;
//! * [`server`] — the [`std::net::TcpListener`] shell: accept loop,
//!   per-connection NDJSON framing, a bounded job queue feeding a worker
//!   pool, and a drain-to-certified-partial-frontiers shutdown;
//! * [`client`] — the minimal blocking client the CLI's `submit`,
//!   `status` and `shutdown` subcommands use.
//!
//! Everything is hand-rolled on `std` — no async runtime, no serde, no
//! new dependencies — matching the workspace's offline-container
//! constraint and its existing [`mhla_ir::serdes::Json`] layer.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// The server faces hostile ingress by design: every byte off a socket
// must end as a typed response, never an `unwrap` panic.
#![warn(clippy::unwrap_used, clippy::expect_used)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub mod cache;
pub mod client;
pub mod protocol;
pub mod server;
pub mod service;

pub use cache::{CacheKey, CacheStats, ResultCache};
pub use client::{request_once, Client};
pub use protocol::{ErrorBody, Request, Response, ServedFrontier, ServedStatus};
pub use server::{serve, Server, ServerOptions};
pub use service::{Service, ServiceOptions};
