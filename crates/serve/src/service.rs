//! The transport-free request handler.
//!
//! [`Service`] owns everything the server shares between connections —
//! the content-addressed [`ResultCache`], the per-program analysis cache,
//! the shutdown flag and the counters — and turns one request line into
//! one response line. The TCP layer ([`crate::server`]) is a thin shell
//! around [`Service::handle_line`]; tests (including the no-panic
//! ingress matrix) drive the service directly, without sockets.
//!
//! Two caches, two different things:
//!
//! * the **result cache** stores finished, fully-rendered exploration
//!   bodies, content-addressed — a hit skips the engine entirely;
//! * the **analysis cache** stores the expensive program-level
//!   preprocessing ([`ReuseAnalysis`]) keyed by program fingerprint, so a
//!   *miss* for a known program still skips the reuse analysis and only
//!   pays for the sweep itself ([`ExplorationContext::with_reuse`] +
//!   [`try_sweep_grid_run_in`]).

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use mhla_core::explore::{
    default_capacities, try_sweep_grid_run_in, ExploreBudget, GridAxis, SweepOptions,
};
use mhla_core::fingerprint::{platform_fingerprint, program_fingerprint};
use mhla_core::{ExplorationContext, MhlaConfig};
use mhla_hierarchy::Platform;
use mhla_ir::serdes::Json;
use mhla_ir::Program;
use mhla_reuse::ReuseAnalysis;

use crate::cache::{CacheKey, ResultCache};
use crate::protocol::{
    canonical_options, error_line, ok_line, result_body, ErrorBody, ExploreRequest, Request,
};

/// Tuning knobs of a [`Service`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ServiceOptions {
    /// Byte budget of the result cache.
    pub cache_bytes: usize,
    /// Entry cap of the per-program analysis cache.
    pub analysis_entries: usize,
}

impl Default for ServiceOptions {
    fn default() -> Self {
        ServiceOptions {
            cache_bytes: 64 * 1024 * 1024,
            analysis_entries: 32,
        }
    }
}

/// One cached program analysis: the owned program (the engine borrows
/// it for the exploration context) plus its reuse analysis.
struct Analysis {
    program: Program,
    reuse: ReuseAnalysis,
}

/// The analysis LRU: program fingerprint → shared analysis.
struct AnalysisCache {
    entries: HashMap<u128, (u64, Arc<Analysis>)>,
    cap: usize,
    tick: u64,
}

impl AnalysisCache {
    fn new(cap: usize) -> Self {
        AnalysisCache {
            entries: HashMap::new(),
            cap: cap.max(1),
            tick: 0,
        }
    }

    fn get(&mut self, fp: u128) -> Option<Arc<Analysis>> {
        self.tick += 1;
        let tick = self.tick;
        self.entries.get_mut(&fp).map(|(t, a)| {
            *t = tick;
            Arc::clone(a)
        })
    }

    fn insert(&mut self, fp: u128, analysis: Arc<Analysis>) {
        self.tick += 1;
        while self.entries.len() >= self.cap && !self.entries.contains_key(&fp) {
            let stalest = self
                .entries
                .iter()
                .min_by_key(|(_, (t, _))| *t)
                .map(|(&k, _)| k);
            match stalest {
                Some(k) => {
                    self.entries.remove(&k);
                }
                None => break,
            }
        }
        self.entries.insert(fp, (self.tick, analysis));
    }
}

/// The shared state behind every connection; see the module docs.
pub struct Service {
    cache: Mutex<ResultCache>,
    analyses: Mutex<AnalysisCache>,
    /// Raised by a `shutdown` request. Every in-flight budget carries a
    /// clone, so raising it stops running sweeps at certified partial
    /// frontiers.
    cancel: Arc<AtomicBool>,
    draining: AtomicBool,
    requests: AtomicU64,
    engine_runs: AtomicU64,
    points_evaluated: AtomicU64,
}

impl Service {
    /// A fresh service.
    pub fn new(opts: ServiceOptions) -> Self {
        Service {
            cache: Mutex::new(ResultCache::new(opts.cache_bytes)),
            analyses: Mutex::new(AnalysisCache::new(opts.analysis_entries)),
            cancel: Arc::new(AtomicBool::new(false)),
            draining: AtomicBool::new(false),
            requests: AtomicU64::new(0),
            engine_runs: AtomicU64::new(0),
            points_evaluated: AtomicU64::new(0),
        }
    }

    /// Whether a graceful shutdown has begun.
    pub fn is_draining(&self) -> bool {
        self.draining.load(Ordering::Relaxed)
    }

    /// Begins graceful shutdown: refuse new explorations, cancel running
    /// sweeps (they stop at certified partial frontiers).
    pub fn begin_shutdown(&self) {
        self.draining.store(true, Ordering::Relaxed);
        self.cancel.store(true, Ordering::Relaxed);
    }

    /// Handles one request line, producing one response line. Total:
    /// never panics, whatever the input — hostile ingress maps to typed
    /// error responses (`tests/no_panic.rs` contract 4 pins this).
    pub fn handle_line(&self, line: &str) -> String {
        self.requests.fetch_add(1, Ordering::Relaxed);
        match Request::parse(line) {
            Err(e) => error_line(&e),
            Ok(Request::Status) => ok_line(None, &self.status_body()),
            Ok(Request::Shutdown) => {
                self.begin_shutdown();
                ok_line(None, "{\"stopping\":true}")
            }
            Ok(Request::Explore(req)) => match self.explore(*req) {
                Ok((cached, body)) => ok_line(Some(cached), &body),
                Err(e) => error_line(&e),
            },
        }
    }

    /// One exploration: cache lookup, then (on a miss) a context-reuse
    /// engine run under the request's budget. Returns `(cached, body)`.
    fn explore(&self, req: ExploreRequest) -> Result<(bool, String), ErrorBody> {
        if self.is_draining() {
            return Err(ErrorBody {
                class: "shutting_down".into(),
                message: "the server is draining; no new explorations accepted".into(),
            });
        }
        let program_fp = program_fingerprint(&req.program);
        let platform_fp = platform_fingerprint(&req.platform);
        let axes = match req.axes {
            Some(axes) => axes,
            None => default_axes(&req.platform),
        };
        let key = CacheKey {
            program_fp,
            platform_fp,
            options: canonical_options(&req.objective, req.mode, &axes),
        };
        if let Some(body) = self.lock_cache().get(&key) {
            return Ok((true, body));
        }

        let analysis = self.analysis_for(program_fp, req.program);
        let config = MhlaConfig {
            objective: req.objective,
            ..MhlaConfig::default()
        };
        let budget = ExploreBudget {
            max_evals: req.max_evals,
            deadline: req
                .timeout_ms
                .map(|ms| Instant::now() + Duration::from_millis(ms)),
            cancel: Some(Arc::clone(&self.cancel)),
        };
        let opts = SweepOptions {
            mode: req.mode,
            budget,
            ..SweepOptions::default()
        };
        let ctx = ExplorationContext::with_reuse(
            &analysis.program,
            &req.platform,
            config,
            analysis.reuse.clone(),
        );
        let run = try_sweep_grid_run_in(&ctx, &req.platform, &axes, &opts)?;
        self.engine_runs.fetch_add(1, Ordering::Relaxed);
        self.points_evaluated
            .fetch_add(run.sweep.points.len() as u64, Ordering::Relaxed);
        let body = result_body(&run, program_fp, platform_fp);
        if run.status.is_complete() {
            self.lock_cache().insert(key, body.clone());
        }
        Ok((false, body))
    }

    /// The shared analysis of a program, computing and caching it on
    /// first sight. The `Arc` is cloned out of the lock, so concurrent
    /// sweeps over the same program never serialize on the cache mutex.
    fn analysis_for(&self, fp: u128, program: Program) -> Arc<Analysis> {
        if let Some(hit) = self.lock_analyses().get(fp) {
            return hit;
        }
        // Analyze outside the lock: two workers may race the same new
        // program, costing one duplicate analysis, never a wrong result.
        let analysis = Arc::new(Analysis {
            reuse: ReuseAnalysis::analyze(&program),
            program,
        });
        self.lock_analyses().insert(fp, Arc::clone(&analysis));
        analysis
    }

    fn status_body(&self) -> String {
        let (stats, entries, bytes, capacity) = {
            let cache = self.lock_cache();
            (
                cache.stats(),
                cache.len(),
                cache.bytes(),
                cache.capacity_bytes(),
            )
        };
        let programs = self.lock_analyses().entries.len();
        Json::Obj(vec![
            (
                "cache".into(),
                Json::Obj(vec![
                    ("hits".into(), Json::from_u64(stats.hits)),
                    ("misses".into(), Json::from_u64(stats.misses)),
                    ("evictions".into(), Json::from_u64(stats.evictions)),
                    ("insertions".into(), Json::from_u64(stats.insertions)),
                    ("uncacheable".into(), Json::from_u64(stats.uncacheable)),
                    ("entries".into(), Json::from_u64(entries as u64)),
                    ("bytes".into(), Json::from_u64(bytes as u64)),
                    ("capacity_bytes".into(), Json::from_u64(capacity as u64)),
                ]),
            ),
            (
                "engine".into(),
                Json::Obj(vec![
                    (
                        "runs".into(),
                        Json::from_u64(self.engine_runs.load(Ordering::Relaxed)),
                    ),
                    (
                        "points_evaluated".into(),
                        Json::from_u64(self.points_evaluated.load(Ordering::Relaxed)),
                    ),
                    ("programs_analyzed".into(), Json::from_u64(programs as u64)),
                ]),
            ),
            (
                "requests".into(),
                Json::from_u64(self.requests.load(Ordering::Relaxed)),
            ),
            ("draining".into(), Json::Bool(self.is_draining())),
        ])
        .render_compact()
    }

    /// Mutex poisoning cannot happen (`handle_line` is panic-free by the
    /// no-panic contract), but `#![forbid(unsafe_code)]` leaves no cheap
    /// recovery either — recover the inner value instead of unwrapping.
    fn lock_cache(&self) -> std::sync::MutexGuard<'_, ResultCache> {
        match self.cache.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    fn lock_analyses(&self) -> std::sync::MutexGuard<'_, AnalysisCache> {
        match self.analyses.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

/// The standard grid for a platform's depth — the same default `mhla
/// grid` uses, so an axis-less request is served with the familiar grid.
fn default_axes(platform: &Platform) -> Vec<GridAxis> {
    match platform.layer_count() {
        3 => mhla_bench::default_grid_axes(),
        4 => mhla_bench::default_grid4_axes(),
        _ => vec![GridAxis::new(platform.closest(), default_capacities())],
    }
}
