//! The TCP shell: listener, bounded job queue, worker pool, graceful
//! shutdown.
//!
//! Dependency-free networking over [`std::net::TcpListener`]. The
//! threading model:
//!
//! * one **accept loop** (non-blocking, polling the drain flag) spawns a
//!   handler thread per connection;
//! * each **handler** frames NDJSON request lines (own buffer scan — no
//!   `BufReader`, so read timeouts never lose partial lines), pushes jobs
//!   onto the **bounded queue** and writes the responses back;
//! * a fixed **worker pool** drains the queue through
//!   [`Service::handle_line`] — the sweep inside then fans out further
//!   over the engine's own rayon pool.
//!
//! A full queue is answered immediately with a typed `queue_full` error
//! (the queue never blocks ingress), and an over-long line with
//! `bad_request` before the connection closes (its framing is
//! unrecoverable). Graceful shutdown (`{"op":"shutdown"}`) stops the
//! accept loop, cancels in-flight sweeps through the shared budget flag —
//! they stop at certified partial frontiers and still answer — drains the
//! queue, and joins every thread.

use std::io::{self, ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::mpsc::{Receiver, SyncSender, TrySendError};
use std::sync::{mpsc, Arc, Mutex};
use std::thread;
use std::time::Duration;

use crate::protocol::{error_line, ErrorBody, MAX_REQUEST_BYTES};
use crate::service::{Service, ServiceOptions};

/// Tuning knobs of a [`Server`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ServerOptions {
    /// Worker threads evaluating explorations.
    pub workers: usize,
    /// Bounded job-queue depth; a full queue answers `queue_full`.
    pub queue: usize,
    /// Byte budget of the result cache.
    pub cache_bytes: usize,
}

impl Default for ServerOptions {
    fn default() -> Self {
        ServerOptions {
            workers: 2,
            queue: 32,
            cache_bytes: ServiceOptions::default().cache_bytes,
        }
    }
}

/// How often blocked loops poll the drain flag.
const POLL: Duration = Duration::from_millis(50);

/// One queued request: the raw line plus the handler's reply channel.
struct Job {
    line: String,
    reply: mpsc::Sender<String>,
}

/// A running batch exploration server; see the module docs.
pub struct Server {
    addr: SocketAddr,
    service: Arc<Service>,
    accept: Option<thread::JoinHandle<()>>,
    workers: Vec<thread::JoinHandle<()>>,
    queue: Option<SyncSender<Job>>,
}

impl Server {
    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and
    /// starts the accept loop and worker pool.
    ///
    /// # Errors
    ///
    /// [`io::Error`] from binding or configuring the listener.
    pub fn bind(addr: impl ToSocketAddrs, opts: ServerOptions) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let service = Arc::new(Service::new(ServiceOptions {
            cache_bytes: opts.cache_bytes,
            ..ServiceOptions::default()
        }));

        let (tx, rx) = mpsc::sync_channel::<Job>(opts.queue.max(1));
        let rx = Arc::new(Mutex::new(rx));
        let workers = (0..opts.workers.max(1))
            .map(|_| {
                let rx = Arc::clone(&rx);
                let service = Arc::clone(&service);
                thread::spawn(move || worker_loop(&rx, &service))
            })
            .collect();

        let accept = {
            let service = Arc::clone(&service);
            let tx = tx.clone();
            thread::spawn(move || accept_loop(&listener, &service, &tx))
        };

        Ok(Server {
            addr,
            service,
            accept: Some(accept),
            workers,
            queue: Some(tx),
        })
    }

    /// The bound address (with the OS-assigned port when bound to `:0`).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared service (counters, drain flag) — what tests inspect.
    pub fn service(&self) -> &Arc<Service> {
        &self.service
    }

    /// Blocks until the server has fully shut down: the accept loop has
    /// exited (it watches the drain flag a `shutdown` request raises),
    /// every connection has closed, the queue has drained and every
    /// worker has exited.
    pub fn join(mut self) {
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        // All handler clones are gone once the accept loop has joined its
        // handlers; dropping the master sender ends the workers' queue.
        self.queue = None;
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

fn worker_loop(rx: &Arc<Mutex<Receiver<Job>>>, service: &Arc<Service>) {
    loop {
        let job = {
            let guard = match rx.lock() {
                Ok(g) => g,
                Err(poisoned) => poisoned.into_inner(),
            };
            guard.recv()
        };
        match job {
            Ok(job) => {
                let response = service.handle_line(&job.line);
                let _ = job.reply.send(response);
            }
            Err(_) => return, // every sender gone: shutdown complete
        }
    }
}

fn accept_loop(listener: &TcpListener, service: &Arc<Service>, tx: &SyncSender<Job>) {
    let mut handlers: Vec<thread::JoinHandle<()>> = Vec::new();
    while !service.is_draining() {
        match listener.accept() {
            Ok((stream, _)) => {
                let service = Arc::clone(service);
                let tx = tx.clone();
                handlers.push(thread::spawn(move || {
                    handle_connection(stream, &service, &tx);
                }));
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => thread::sleep(POLL),
            Err(_) => thread::sleep(POLL),
        }
        handlers.retain(|h| !h.is_finished());
    }
    for h in handlers {
        let _ = h.join();
    }
}

/// Frames NDJSON lines off one connection and round-trips each through
/// the job queue. Exits on EOF, an unrecoverable framing error, a write
/// failure, or (when idle) a draining server.
fn handle_connection(stream: TcpStream, service: &Arc<Service>, tx: &SyncSender<Job>) {
    let mut stream = stream;
    if stream.set_read_timeout(Some(POLL)).is_err() {
        return;
    }
    let mut pending: Vec<u8> = Vec::new();
    let mut buf = [0u8; 16 * 1024];
    loop {
        // Drain complete lines first.
        while let Some(nl) = pending.iter().position(|&b| b == b'\n') {
            let line_bytes: Vec<u8> = pending.drain(..=nl).collect();
            let line = String::from_utf8_lossy(&line_bytes[..nl]).into_owned();
            let line = line.trim_end_matches('\r').to_string();
            if line.is_empty() {
                continue;
            }
            let response = dispatch(line, tx);
            if stream
                .write_all(response.as_bytes())
                .and_then(|()| stream.write_all(b"\n"))
                .and_then(|()| stream.flush())
                .is_err()
            {
                return;
            }
        }
        if pending.len() > MAX_REQUEST_BYTES {
            // The line cap is enforced mid-read: answer once, then close
            // (the rest of the oversized line cannot be re-framed).
            let e = ErrorBody::bad_request(format!(
                "request line exceeds the {MAX_REQUEST_BYTES}-byte cap"
            ));
            let _ = stream.write_all(error_line(&e).as_bytes());
            let _ = stream.write_all(b"\n");
            let _ = stream.flush();
            return;
        }
        match stream.read(&mut buf) {
            Ok(0) => return, // EOF
            Ok(n) => pending.extend_from_slice(&buf[..n]),
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                // Idle poll: once the server drains, stop waiting for
                // more requests (in-flight ones were already answered).
                if service.is_draining() && pending.is_empty() {
                    return;
                }
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(_) => return,
        }
    }
}

/// Queues one line for a worker and waits for its response. A full
/// queue or a torn-down pool answers immediately with a typed error.
fn dispatch(line: String, tx: &SyncSender<Job>) -> String {
    let (reply_tx, reply_rx) = mpsc::channel();
    match tx.try_send(Job {
        line,
        reply: reply_tx,
    }) {
        Ok(()) => match reply_rx.recv() {
            Ok(response) => response,
            Err(_) => error_line(&ErrorBody {
                class: "shutting_down".into(),
                message: "the server shut down before answering".into(),
            }),
        },
        Err(TrySendError::Full(_)) => error_line(&ErrorBody {
            class: "queue_full".into(),
            message: "the job queue is full; retry later".into(),
        }),
        Err(TrySendError::Disconnected(_)) => error_line(&ErrorBody {
            class: "shutting_down".into(),
            message: "the server is shutting down".into(),
        }),
    }
}

/// Runs a server in the foreground: binds, then blocks until a
/// `shutdown` request completes the drain. The `on_ready` callback gets
/// the bound address before serving starts (the CLI prints it).
///
/// # Errors
///
/// As [`Server::bind`].
pub fn serve(
    addr: impl ToSocketAddrs,
    opts: ServerOptions,
    on_ready: impl FnOnce(SocketAddr),
) -> io::Result<()> {
    let server = Server::bind(addr, opts)?;
    on_ready(server.addr());
    // Park until the drain flag rises, then join everything.
    while !server.service().is_draining() {
        thread::sleep(POLL);
    }
    server.join();
    Ok(())
}
