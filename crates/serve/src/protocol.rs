//! The `mhla serve` wire protocol: newline-delimited JSON.
//!
//! One request per line, one response line per request, both in the
//! compact rendering of the workspace's hand-rolled [`Json`] layer — no
//! serde, no framing beyond `\n`. Requests are objects dispatched on
//! their `"op"` field:
//!
//! ```json
//! {"op":"explore","program":{…mhla.program doc…},
//!  "platform":"three-level" | {…mhla.platform doc…},
//!  "objective":"cycles"|"energy"|{"energy_weight":1.0,"cycle_weight":0.1},
//!  "mode":"cold"|"improving",
//!  "axes":[{"layer":1,"capacities":[1024,2048]},…],
//!  "max_evals":100,"timeout_ms":5000}
//! {"op":"status"}
//! {"op":"shutdown"}
//! ```
//!
//! Everything after `"program"` is optional: the platform defaults to the
//! `three-level` preset, the axes to the standard grid of the platform's
//! depth (as `mhla grid` does), the objective to cycles, the mode to
//! cold, the budget to unlimited. Responses are
//!
//! ```json
//! {"ok":true,"cached":false,"result":{…}}
//! {"ok":false,"error":{"class":"invalid_program","message":"…"}}
//! ```
//!
//! with `"cached"` present on explore responses only. The `result` body
//! of an explore is rendered **once**, server-side, and cached verbatim —
//! a cache hit is byte-identical to the cold response body by
//! construction. Every failure, from a syntax error to an exhausted
//! budget promoted by the client, maps to a typed error class
//! ([`error_class`]); the server never answers a request with a dropped
//! connection or a panic.

use std::fmt;

use mhla_core::explore::{GridAxis, GridSweepRun, SearchMode, StopCause, SweepStatus};
use mhla_core::{MhlaError, Objective};
use mhla_hierarchy::serdes::platform_from_value;
use mhla_hierarchy::{LayerId, Platform};
use mhla_ir::serdes::{field, opt_field, program_from_value, Json, SerdesError};
use mhla_ir::Program;

/// Hard cap on a request line, bytes. A line that exceeds it gets a
/// `bad_request` response and the connection is closed (the framing of a
/// half-read line cannot be recovered).
pub const MAX_REQUEST_BYTES: usize = 16 * 1024 * 1024;

/// A typed protocol failure: the `class` is the machine-readable error
/// taxonomy of the wire format, the `message` the human-readable detail.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ErrorBody {
    /// Machine-readable class, e.g. `"bad_request"`, `"invalid_program"`.
    pub class: String,
    /// Human-readable detail.
    pub message: String,
}

impl ErrorBody {
    /// A `bad_request` — the request line itself (syntax, shape, unknown
    /// op) rather than the exploration it asks for.
    pub fn bad_request(message: impl Into<String>) -> Self {
        ErrorBody {
            class: "bad_request".into(),
            message: message.into(),
        }
    }
}

impl fmt::Display for ErrorBody {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.class, self.message)
    }
}

impl From<SerdesError> for ErrorBody {
    /// Serialization failures inside a request: the embedded program or
    /// platform document was bad. Routed through [`MhlaError`] so the
    /// class taxonomy matches the CLI's typed ingress exactly.
    fn from(e: SerdesError) -> Self {
        ErrorBody::from(MhlaError::from(e))
    }
}

impl From<MhlaError> for ErrorBody {
    fn from(e: MhlaError) -> Self {
        ErrorBody {
            class: error_class(&e).into(),
            message: e.to_string(),
        }
    }
}

/// The wire class of a typed engine error.
pub fn error_class(e: &MhlaError) -> &'static str {
    match e {
        MhlaError::InvalidProgram(_) => "invalid_program",
        MhlaError::InvalidOptions { .. } => "invalid_options",
        MhlaError::InvalidObjective { .. } => "invalid_objective",
        MhlaError::InfeasiblePoint { .. } => "infeasible_point",
        MhlaError::BudgetExhausted { .. } => "budget_exhausted",
        MhlaError::Cancelled { .. } => "cancelled",
        // `MhlaError` is non_exhaustive; future variants report generically.
        _ => "engine",
    }
}

/// A parsed request line.
pub enum Request {
    /// Run (or answer from cache) one grid exploration.
    Explore(Box<ExploreRequest>),
    /// Report cache/engine counters.
    Status,
    /// Begin graceful shutdown: stop accepting, cancel in-flight sweeps
    /// to certified partial frontiers, drain, exit.
    Shutdown,
}

/// The payload of an `explore` request; see the module docs for the
/// wire shape and the defaults.
pub struct ExploreRequest {
    /// The program to explore (already through the validating ingress).
    pub program: Program,
    /// The platform (preset name or inline document).
    pub platform: Platform,
    /// Explicit axes, or `None` for the platform's standard grid.
    pub axes: Option<Vec<GridAxis>>,
    /// The optimization objective.
    pub objective: Objective,
    /// The search mode.
    pub mode: SearchMode,
    /// Optional evaluation budget.
    pub max_evals: Option<usize>,
    /// Optional wall-clock budget, milliseconds from receipt.
    pub timeout_ms: Option<u64>,
}

impl Request {
    /// Parses one request line. Total: any input — malformed JSON, a
    /// corrupt embedded document, an unknown op — comes back as a typed
    /// [`ErrorBody`], never a panic.
    pub fn parse(line: &str) -> Result<Request, ErrorBody> {
        if line.len() > MAX_REQUEST_BYTES {
            return Err(ErrorBody::bad_request(format!(
                "request line of {} bytes exceeds the {MAX_REQUEST_BYTES}-byte cap",
                line.len()
            )));
        }
        let doc = Json::parse(line).map_err(|e| ErrorBody::bad_request(e.to_string()))?;
        let fields = doc
            .as_object("request")
            .map_err(|e| ErrorBody::bad_request(e.to_string()))?;
        let op = field(fields, "op", "request")
            .and_then(|v| v.as_str("request \"op\"").map(str::to_string))
            .map_err(|e| ErrorBody::bad_request(e.to_string()))?;
        match op.as_str() {
            "status" => Ok(Request::Status),
            "shutdown" => Ok(Request::Shutdown),
            "explore" => Ok(Request::Explore(Box::new(parse_explore(fields)?))),
            other => Err(ErrorBody::bad_request(format!(
                "unknown op \"{other}\" (expected explore, status or shutdown)"
            ))),
        }
    }
}

fn parse_explore(fields: &[(String, Json)]) -> Result<ExploreRequest, ErrorBody> {
    let program = program_from_value(
        field(fields, "program", "explore").map_err(|e| ErrorBody::bad_request(e.to_string()))?,
    )?;
    let platform = match opt_field(fields, "platform") {
        None => Platform::three_level_default(),
        Some(v) => platform_from_spec(v)?,
    };
    let axes = match opt_field(fields, "axes") {
        None => None,
        Some(v) => Some(parse_axes(v)?),
    };
    let objective = match opt_field(fields, "objective") {
        None => Objective::Cycles,
        Some(v) => parse_objective(v)?,
    };
    let mode = match opt_field(fields, "mode") {
        None => SearchMode::Cold,
        Some(v) => match v.as_str("explore \"mode\"") {
            Ok("cold") => SearchMode::Cold,
            Ok("improving") => SearchMode::Improving,
            Ok(other) => {
                return Err(ErrorBody::bad_request(format!(
                    "unknown mode \"{other}\" (expected cold or improving)"
                )))
            }
            Err(e) => return Err(ErrorBody::bad_request(e.to_string())),
        },
    };
    let max_evals = match opt_field(fields, "max_evals") {
        None => None,
        Some(v) => {
            let n = v
                .as_u64("explore \"max_evals\"")
                .map_err(|e| ErrorBody::bad_request(e.to_string()))?;
            let n = usize::try_from(n)
                .map_err(|_| ErrorBody::bad_request("max_evals out of range".to_string()))?;
            if n == 0 {
                return Err(ErrorBody::bad_request("max_evals must be positive"));
            }
            Some(n)
        }
    };
    let timeout_ms = match opt_field(fields, "timeout_ms") {
        None => None,
        Some(v) => Some(
            v.as_u64("explore \"timeout_ms\"")
                .map_err(|e| ErrorBody::bad_request(e.to_string()))?,
        ),
    };
    Ok(ExploreRequest {
        program,
        platform,
        axes,
        objective,
        mode,
        max_evals,
        timeout_ms,
    })
}

/// Resolves the `"platform"` field: a preset name (the CLI's `--platform`
/// vocabulary) or an inline `mhla.platform` document.
pub fn platform_from_spec(v: &Json) -> Result<Platform, ErrorBody> {
    if let Json::Str(spec) = v {
        return match spec.as_str() {
            "three-level" => Ok(Platform::three_level_default()),
            "four-level" => Ok(Platform::four_level_default()),
            "embedded" => Ok(Platform::embedded_default(16 * 1024)),
            "no-dma" => Ok(Platform::without_dma(16 * 1024)),
            other => {
                if let Some(bytes) = other.strip_prefix("embedded:") {
                    return Ok(Platform::embedded_default(parse_preset_bytes(bytes)?));
                }
                if let Some(bytes) = other.strip_prefix("no-dma:") {
                    return Ok(Platform::without_dma(parse_preset_bytes(bytes)?));
                }
                Err(ErrorBody::bad_request(format!(
                    "unknown platform preset \"{other}\""
                )))
            }
        };
    }
    Ok(platform_from_value(v)?)
}

fn parse_preset_bytes(text: &str) -> Result<u64, ErrorBody> {
    match text.parse::<u64>() {
        Ok(n) if n > 0 => Ok(n),
        _ => Err(ErrorBody::bad_request(format!(
            "platform preset: invalid capacity \"{text}\""
        ))),
    }
}

fn parse_axes(v: &Json) -> Result<Vec<GridAxis>, ErrorBody> {
    let items = v
        .as_array("explore \"axes\"")
        .map_err(|e| ErrorBody::bad_request(e.to_string()))?;
    let mut axes = Vec::with_capacity(items.len());
    for (i, item) in items.iter().enumerate() {
        let what = format!("axes[{i}]");
        let inner = (|| -> Result<GridAxis, SerdesError> {
            let o = item.as_object(&what)?;
            let layer = field(o, "layer", &what)?.as_u64(&format!("{what}.layer"))?;
            let layer = usize::try_from(layer).map_err(|_| SerdesError::Schema {
                what: format!("{what}.layer out of range"),
            })?;
            let mut capacities = Vec::new();
            for (j, c) in field(o, "capacities", &what)?
                .as_array(&format!("{what}.capacities"))?
                .iter()
                .enumerate()
            {
                capacities.push(c.as_u64(&format!("{what}.capacities[{j}]"))?);
            }
            Ok(GridAxis::new(LayerId(layer), capacities))
        })()
        .map_err(|e| ErrorBody::bad_request(e.to_string()))?;
        axes.push(inner);
    }
    Ok(axes)
}

fn parse_objective(v: &Json) -> Result<Objective, ErrorBody> {
    match v {
        Json::Str(s) => match s.as_str() {
            "cycles" => Ok(Objective::Cycles),
            "energy" => Ok(Objective::Energy),
            other => Err(ErrorBody::bad_request(format!(
                "unknown objective \"{other}\" (expected cycles, energy or a weighted object)"
            ))),
        },
        Json::Obj(fields) => {
            let inner = (|| -> Result<Objective, SerdesError> {
                Ok(Objective::Weighted {
                    energy_weight: field(fields, "energy_weight", "objective")?
                        .as_f64("objective.energy_weight")?,
                    cycle_weight: field(fields, "cycle_weight", "objective")?
                        .as_f64("objective.cycle_weight")?,
                })
            })();
            inner.map_err(|e| ErrorBody::bad_request(e.to_string()))
        }
        other => Err(ErrorBody::bad_request(format!(
            "objective must be a string or a weighted object, found {}",
            other.render_compact()
        ))),
    }
}

// ---------------------------------------------------------------------------
// Canonical options (the third cache-key component)
// ---------------------------------------------------------------------------

/// The canonical options string of an explore request: objective, mode
/// and the *cleaned* axes (sorted, deduped capacities — the form the
/// engine actually sweeps), compactly rendered. Together with the two
/// content fingerprints this is the full cache key; budgets are
/// deliberately excluded (a complete result satisfies any budget).
pub fn canonical_options(objective: &Objective, mode: SearchMode, axes: &[GridAxis]) -> String {
    let objective = match objective {
        Objective::Cycles => Json::Str("cycles".into()),
        Objective::Energy => Json::Str("energy".into()),
        Objective::Weighted {
            energy_weight,
            cycle_weight,
        } => Json::Obj(vec![
            ("energy_weight".into(), Json::from_f64(*energy_weight)),
            ("cycle_weight".into(), Json::from_f64(*cycle_weight)),
        ]),
    };
    let mode = Json::Str(
        match mode {
            SearchMode::Cold => "cold",
            SearchMode::Improving => "improving",
        }
        .into(),
    );
    let axes = Json::Arr(
        axes.iter()
            .map(|a| {
                let mut caps = a.capacities.clone();
                caps.sort_unstable();
                caps.dedup();
                Json::Obj(vec![
                    ("layer".into(), Json::from_u64(a.layer.0 as u64)),
                    (
                        "capacities".into(),
                        Json::Arr(caps.into_iter().map(Json::from_u64).collect()),
                    ),
                ])
            })
            .collect(),
    );
    Json::Obj(vec![
        ("objective".into(), objective),
        ("mode".into(), mode),
        ("axes".into(), axes),
    ])
    .render_compact()
}

// ---------------------------------------------------------------------------
// Response rendering
// ---------------------------------------------------------------------------

/// Renders a success response line around an already-rendered result
/// body. `cached` is present on explore responses only.
pub fn ok_line(cached: Option<bool>, body: &str) -> String {
    match cached {
        Some(c) => format!("{{\"ok\":true,\"cached\":{c},\"result\":{body}}}"),
        None => format!("{{\"ok\":true,\"result\":{body}}}"),
    }
}

/// Renders a typed error response line (message properly JSON-escaped).
pub fn error_line(error: &ErrorBody) -> String {
    Json::Obj(vec![
        ("ok".into(), Json::Bool(false)),
        (
            "error".into(),
            Json::Obj(vec![
                ("class".into(), Json::Str(error.class.clone())),
                ("message".into(), Json::Str(error.message.clone())),
            ]),
        ),
    ])
    .render_compact()
}

/// Renders the result body of an explore: the full point list with the
/// six cost figures of `mhla_core::report::grid_csv`, both Pareto index
/// sets, the run bookkeeping, and the content fingerprints the cache
/// keyed on. Rendered once and cached verbatim — hits are byte-identical
/// to the cold body.
pub fn result_body(run: &GridSweepRun, program_fp: u128, platform_fp: u128) -> String {
    let status = match run.status {
        SweepStatus::Complete => Json::Str("complete".into()),
        SweepStatus::Stopped { cause, next_lex } => Json::Obj(vec![
            (
                "cause".into(),
                Json::Str(
                    match cause {
                        StopCause::MaxEvals => "max_evals",
                        StopCause::Deadline => "deadline",
                        StopCause::Cancelled => "cancelled",
                    }
                    .into(),
                ),
            ),
            ("next_lex".into(), Json::from_u64(next_lex as u64)),
        ]),
    };
    let points = run
        .sweep
        .points
        .iter()
        .map(|p| {
            Json::Obj(vec![
                (
                    "capacities".into(),
                    Json::Arr(p.capacities.iter().map(|&c| Json::from_u64(c)).collect()),
                ),
                (
                    "cycles_baseline".into(),
                    Json::from_u64(p.result.baseline_cycles()),
                ),
                ("cycles_mhla".into(), Json::from_u64(p.result.mhla_cycles())),
                (
                    "cycles_mhla_te".into(),
                    Json::from_u64(p.result.mhla_te_cycles()),
                ),
                (
                    "cycles_ideal".into(),
                    Json::from_u64(p.result.ideal_cycles()),
                ),
                (
                    "energy_baseline_pj".into(),
                    Json::from_f64(p.result.baseline_energy_pj()),
                ),
                (
                    "energy_mhla_pj".into(),
                    Json::from_f64(p.result.mhla_energy_pj()),
                ),
            ])
        })
        .collect();
    let index_list = |idx: Vec<usize>| {
        Json::Arr(
            idx.into_iter()
                .map(|i| Json::from_u64(i as u64))
                .collect::<Vec<Json>>(),
        )
    };
    Json::Obj(vec![
        (
            "program_fp".into(),
            Json::Str(mhla_core::fingerprint::fingerprint_hex(program_fp)),
        ),
        (
            "platform_fp".into(),
            Json::Str(mhla_core::fingerprint::fingerprint_hex(platform_fp)),
        ),
        (
            "layers".into(),
            Json::Arr(
                run.sweep
                    .layers
                    .iter()
                    .map(|l| Json::from_u64(l.0 as u64))
                    .collect(),
            ),
        ),
        (
            "evaluated".into(),
            Json::from_u64(run.sweep.points.len() as u64),
        ),
        ("candidates".into(), Json::from_u64(run.candidates as u64)),
        ("evals".into(), Json::from_u64(run.evals as u64)),
        ("status".into(), status),
        ("points".into(), Json::Arr(points)),
        (
            "pareto_cycles".into(),
            index_list(run.sweep.pareto_cycles()),
        ),
        (
            "pareto_energy".into(),
            index_list(run.sweep.pareto_energy()),
        ),
    ])
    .render_compact()
}

// ---------------------------------------------------------------------------
// Client-side result parsing
// ---------------------------------------------------------------------------

/// How far a served exploration got (the client-side mirror of
/// [`SweepStatus`], with the cause as its wire string).
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ServedStatus {
    /// The whole grid was covered.
    Complete,
    /// The budget ran out first; the points are a certified prefix.
    Stopped {
        /// The wire cause (`"max_evals"`, `"deadline"`, `"cancelled"`).
        cause: String,
        /// First lexicographic index not decided.
        next_lex: u64,
    },
}

/// One served grid point: the capacity vector plus the six cost figures.
#[derive(Clone, PartialEq, Debug)]
pub struct ServedPoint {
    /// Capacity per axis, bytes.
    pub capacities: Vec<u64>,
    /// Baseline (everything off-chip) cycles.
    pub cycles_baseline: u64,
    /// MHLA cycles before Time Extensions.
    pub cycles_mhla: u64,
    /// MHLA + Time Extensions cycles.
    pub cycles_mhla_te: u64,
    /// Ideal (all transfers hidden) cycles.
    pub cycles_ideal: u64,
    /// Baseline memory energy, picojoule.
    pub energy_baseline_pj: f64,
    /// MHLA memory energy, picojoule.
    pub energy_mhla_pj: f64,
}

/// A parsed explore result body — what `mhla submit` renders back into
/// the exact `mhla grid` CSV.
#[derive(Clone, PartialEq, Debug)]
pub struct ServedFrontier {
    /// The program fingerprint the cache keyed on, hex.
    pub program_fp: String,
    /// The platform fingerprint, hex.
    pub platform_fp: String,
    /// The swept layer per axis.
    pub layers: Vec<LayerId>,
    /// Points evaluated (a lexicographic prefix when stopped).
    pub points: Vec<ServedPoint>,
    /// Indices of the (capacities, cycles) Pareto surface.
    pub pareto_cycles: Vec<u64>,
    /// Indices of the (capacities, energy) Pareto surface.
    pub pareto_energy: Vec<u64>,
    /// Full Cartesian product size.
    pub candidates: u64,
    /// Search legs executed server-side (0 on a cache hit's *re-serve* —
    /// the figure is the original run's).
    pub evals: u64,
    /// How far the sweep got.
    pub status: ServedStatus,
}

/// The three shapes a response line can take, as the client sees them.
pub enum Response {
    /// `{"ok":true,…}` with an explore result body.
    Frontier {
        /// Whether the server answered from its result cache.
        cached: bool,
        /// The parsed body.
        frontier: Box<ServedFrontier>,
    },
    /// `{"ok":true,…}` with a non-explore body (status, shutdown ack);
    /// carried as raw JSON for display.
    Other(Json),
    /// `{"ok":false,…}`.
    Error(ErrorBody),
}

impl Response {
    /// Parses one response line.
    ///
    /// # Errors
    ///
    /// [`SerdesError`] when the line is not a well-formed response
    /// envelope (a transport-level failure, distinct from a well-formed
    /// [`Response::Error`]).
    pub fn parse(line: &str) -> Result<Response, SerdesError> {
        let doc = Json::parse(line)?;
        let fields = doc.as_object("response")?;
        let ok = match field(fields, "ok", "response")? {
            Json::Bool(b) => *b,
            other => {
                return Err(SerdesError::Schema {
                    what: format!(
                        "response \"ok\": expected a bool, found {}",
                        other.render_compact()
                    ),
                })
            }
        };
        if !ok {
            let e = field(fields, "error", "response")?.as_object("response \"error\"")?;
            return Ok(Response::Error(ErrorBody {
                class: field(e, "class", "error")?
                    .as_str("error.class")?
                    .to_string(),
                message: field(e, "message", "error")?
                    .as_str("error.message")?
                    .to_string(),
            }));
        }
        let result = field(fields, "result", "response")?;
        match opt_field(fields, "cached") {
            Some(Json::Bool(cached)) => Ok(Response::Frontier {
                cached: *cached,
                frontier: Box::new(parse_frontier(result)?),
            }),
            Some(other) => Err(SerdesError::Schema {
                what: format!(
                    "response \"cached\": expected a bool, found {}",
                    other.render_compact()
                ),
            }),
            None => Ok(Response::Other(result.clone())),
        }
    }
}

fn parse_frontier(v: &Json) -> Result<ServedFrontier, SerdesError> {
    let o = v.as_object("result")?;
    let u64_list = |key: &str| -> Result<Vec<u64>, SerdesError> {
        field(o, key, "result")?
            .as_array(&format!("result.{key}"))?
            .iter()
            .enumerate()
            .map(|(i, x)| x.as_u64(&format!("result.{key}[{i}]")))
            .collect()
    };
    let layers = u64_list("layers")?
        .into_iter()
        .map(|l| {
            usize::try_from(l)
                .map(LayerId)
                .map_err(|_| SerdesError::Schema {
                    what: format!("result.layers: {l} out of range"),
                })
        })
        .collect::<Result<Vec<LayerId>, SerdesError>>()?;
    let mut points = Vec::new();
    for (i, p) in field(o, "points", "result")?
        .as_array("result.points")?
        .iter()
        .enumerate()
    {
        let what = format!("points[{i}]");
        let po = p.as_object(&what)?;
        let capacities = field(po, "capacities", &what)?
            .as_array(&format!("{what}.capacities"))?
            .iter()
            .enumerate()
            .map(|(j, c)| c.as_u64(&format!("{what}.capacities[{j}]")))
            .collect::<Result<Vec<u64>, SerdesError>>()?;
        points.push(ServedPoint {
            capacities,
            cycles_baseline: field(po, "cycles_baseline", &what)?
                .as_u64(&format!("{what}.cycles_baseline"))?,
            cycles_mhla: field(po, "cycles_mhla", &what)?.as_u64(&format!("{what}.cycles_mhla"))?,
            cycles_mhla_te: field(po, "cycles_mhla_te", &what)?
                .as_u64(&format!("{what}.cycles_mhla_te"))?,
            cycles_ideal: field(po, "cycles_ideal", &what)?
                .as_u64(&format!("{what}.cycles_ideal"))?,
            energy_baseline_pj: field(po, "energy_baseline_pj", &what)?
                .as_f64(&format!("{what}.energy_baseline_pj"))?,
            energy_mhla_pj: field(po, "energy_mhla_pj", &what)?
                .as_f64(&format!("{what}.energy_mhla_pj"))?,
        });
    }
    let status = match field(o, "status", "result")? {
        Json::Str(s) if s == "complete" => ServedStatus::Complete,
        Json::Obj(fields) => ServedStatus::Stopped {
            cause: field(fields, "cause", "status")?
                .as_str("status.cause")?
                .to_string(),
            next_lex: field(fields, "next_lex", "status")?.as_u64("status.next_lex")?,
        },
        other => {
            return Err(SerdesError::Schema {
                what: format!("result.status: unexpected {}", other.render_compact()),
            })
        }
    };
    Ok(ServedFrontier {
        program_fp: field(o, "program_fp", "result")?
            .as_str("result.program_fp")?
            .to_string(),
        platform_fp: field(o, "platform_fp", "result")?
            .as_str("result.platform_fp")?
            .to_string(),
        layers,
        points,
        pareto_cycles: u64_list("pareto_cycles")?,
        pareto_energy: u64_list("pareto_energy")?,
        candidates: field(o, "candidates", "result")?.as_u64("result.candidates")?,
        evals: field(o, "evals", "result")?.as_u64("result.evals")?,
        status,
    })
}

impl ServedFrontier {
    /// Renders the served points as the exact CSV `mhla grid` emits for
    /// the same sweep — byte-identical header and rows (energies carry
    /// the engine's `f64`s through the shortest-round-trip wire encoding,
    /// so the `{:.1}` formatting reproduces exactly).
    pub fn grid_csv(&self) -> String {
        use std::fmt::Write as _;
        let header: Vec<String> = self
            .layers
            .iter()
            .map(|l| format!("capacity_{l}"))
            .chain([
                "cycles_baseline".to_string(),
                "cycles_mhla".to_string(),
                "cycles_mhla_te".to_string(),
                "cycles_ideal".to_string(),
                "energy_baseline_pj".to_string(),
                "energy_mhla_pj".to_string(),
            ])
            .collect();
        let mut out = header.join(",");
        out.push('\n');
        for p in &self.points {
            let mut row: Vec<String> = p.capacities.iter().map(|c| c.to_string()).collect();
            row.push(p.cycles_baseline.to_string());
            row.push(p.cycles_mhla.to_string());
            row.push(p.cycles_mhla_te.to_string());
            row.push(p.cycles_ideal.to_string());
            row.push(format!("{:.1}", p.energy_baseline_pj));
            row.push(format!("{:.1}", p.energy_mhla_pj));
            let _ = writeln!(out, "{}", row.join(","));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_parse_is_total_on_junk() {
        for junk in [
            "",
            "not json",
            "42",
            "[]",
            "{}",
            "{\"op\":7}",
            "{\"op\":\"fly\"}",
            "{\"op\":\"explore\"}",
            "{\"op\":\"explore\",\"program\":12}",
        ] {
            assert!(
                matches!(Request::parse(junk), Err(ref e) if e.class == "bad_request"
                    || e.class == "invalid_program"
                    || e.class == "invalid_options"),
                "junk {junk:?} must yield a typed error"
            );
        }
    }

    #[test]
    fn error_line_escapes_messages() {
        let line = error_line(&ErrorBody::bad_request("quote \" and \n newline"));
        let back = Json::parse(&line).expect("the error line is valid JSON");
        let fields = back.as_object("line").unwrap();
        assert!(matches!(
            field(fields, "ok", "line").unwrap(),
            Json::Bool(false)
        ));
    }

    #[test]
    fn canonical_options_cleans_axes() {
        let a = canonical_options(
            &Objective::Cycles,
            SearchMode::Cold,
            &[GridAxis::new(LayerId(1), vec![2048, 1024, 2048])],
        );
        let b = canonical_options(
            &Objective::Cycles,
            SearchMode::Cold,
            &[GridAxis::new(LayerId(1), vec![1024, 2048])],
        );
        assert_eq!(a, b, "axis order/duplicates must not split the cache key");
        let c = canonical_options(
            &Objective::Energy,
            SearchMode::Cold,
            &[GridAxis::new(LayerId(1), vec![1024, 2048])],
        );
        assert_ne!(a, c, "objectives must split the cache key");
    }

    #[test]
    fn platform_presets_resolve() {
        let p = platform_from_spec(&Json::Str("embedded:4096".into())).expect("preset");
        assert_eq!(p.layer_count(), 2);
        assert!(platform_from_spec(&Json::Str("warp-core".into())).is_err());
        assert!(platform_from_spec(&Json::Str("embedded:0".into())).is_err());
    }
}
