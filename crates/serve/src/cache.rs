//! The content-addressed result cache.
//!
//! A cached entry is a fully-rendered exploration result body, addressed
//! by *what was explored*: the program's and platform's content
//! fingerprints ([`mhla_core::fingerprint`], 128-bit FNV-1a over the
//! canonical serialized bytes) plus the exact canonical options string
//! (objective, search mode, cleaned axes). Budgets are deliberately not
//! part of the key — a complete result satisfies any budget — and only
//! [`SweepStatus::Complete`](mhla_core::explore::SweepStatus) results are
//! ever inserted, so a hit can never hand out a request-specific partial
//! frontier.
//!
//! Collisions: the fingerprints are 128 bits each and the options string
//! compares *exactly*, so two distinct explorations share a slot only on
//! a 256-bit FNV collision — not a realistic event for a result cache
//! whose submitters are trusted not to engineer collisions.
//!
//! Eviction is least-recently-used under a byte budget: every entry is
//! priced as its key + body bytes, and inserts evict the stalest entries
//! until the new one fits. An entry larger than the whole budget is
//! simply not cached (counted in
//! [`CacheStats::uncacheable`]). All traffic is counted in [`CacheStats`]
//! — the numbers the `status` response reports and the CI smoke leg
//! asserts on.

use std::collections::HashMap;

/// The full content address of a cached result.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct CacheKey {
    /// [`mhla_core::fingerprint::program_fingerprint`] of the program.
    pub program_fp: u128,
    /// [`mhla_core::fingerprint::platform_fingerprint`] of the platform.
    pub platform_fp: u128,
    /// The canonical options string (objective, mode, cleaned axes) —
    /// compared exactly, never hashed down.
    pub options: String,
}

impl CacheKey {
    /// The bytes this key charges against the cache budget (the options
    /// string plus the two fingerprints).
    fn cost(&self) -> usize {
        self.options.len() + 32
    }
}

/// Traffic counters of a [`ResultCache`] — monotone over the cache's
/// lifetime, reported by the server's `status` operation.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Entries evicted to make room.
    pub evictions: u64,
    /// Entries inserted (first-time or replacement).
    pub insertions: u64,
    /// Results too large for the whole cache budget, never stored.
    pub uncacheable: u64,
}

struct Entry {
    body: String,
    /// Recency stamp: the cache tick of the last touch (insert or hit).
    tick: u64,
}

/// An LRU result cache under a byte budget; see the module docs.
pub struct ResultCache {
    capacity_bytes: usize,
    bytes: usize,
    tick: u64,
    map: HashMap<CacheKey, Entry>,
    stats: CacheStats,
}

impl ResultCache {
    /// An empty cache holding at most `capacity_bytes` of keys + bodies.
    pub fn new(capacity_bytes: usize) -> Self {
        ResultCache {
            capacity_bytes,
            bytes: 0,
            tick: 0,
            map: HashMap::new(),
            stats: CacheStats::default(),
        }
    }

    /// Looks `key` up, refreshing its recency. Returns the cached body.
    pub fn get(&mut self, key: &CacheKey) -> Option<String> {
        self.tick += 1;
        match self.map.get_mut(key) {
            Some(entry) => {
                entry.tick = self.tick;
                self.stats.hits += 1;
                Some(entry.body.clone())
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Stores `body` under `key`, evicting least-recently-used entries
    /// until it fits. A body that cannot fit an empty cache is dropped
    /// (counted as [`CacheStats::uncacheable`]); re-inserting an existing
    /// key replaces its body.
    pub fn insert(&mut self, key: CacheKey, body: String) {
        let cost = key.cost() + body.len();
        if cost > self.capacity_bytes {
            self.stats.uncacheable += 1;
            return;
        }
        self.tick += 1;
        if let Some(old) = self.map.remove(&key) {
            self.bytes -= key.cost() + old.body.len();
        }
        while self.bytes + cost > self.capacity_bytes {
            // O(n) stalest scan: entry counts stay small at realistic
            // body sizes, and eviction is off every hot path.
            let stalest = self
                .map
                .iter()
                .min_by_key(|(_, e)| e.tick)
                .map(|(k, _)| k.clone());
            match stalest {
                Some(k) => self.evict(&k),
                None => break,
            }
        }
        self.bytes += cost;
        self.stats.insertions += 1;
        self.map.insert(
            key,
            Entry {
                body,
                tick: self.tick,
            },
        );
    }

    fn evict(&mut self, key: &CacheKey) {
        if let Some(entry) = self.map.remove(key) {
            self.bytes -= key.cost() + entry.body.len();
            self.stats.evictions += 1;
        }
    }

    /// The traffic counters.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Entries currently cached.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Bytes currently charged (keys + bodies).
    pub fn bytes(&self) -> usize {
        self.bytes
    }

    /// The configured byte budget.
    pub fn capacity_bytes(&self) -> usize {
        self.capacity_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(n: u8, options: &str) -> CacheKey {
        CacheKey {
            program_fp: u128::from(n),
            platform_fp: 7,
            options: options.to_string(),
        }
    }

    #[test]
    fn hit_returns_the_inserted_body_and_counts() {
        let mut c = ResultCache::new(1024);
        assert_eq!(c.get(&key(1, "o")), None);
        c.insert(key(1, "o"), "body".into());
        assert_eq!(c.get(&key(1, "o")).as_deref(), Some("body"));
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 1);
        assert_eq!(c.len(), 1);
        assert_eq!(c.bytes(), 1 + 32 + 4);
    }

    #[test]
    fn distinct_options_are_distinct_entries() {
        let mut c = ResultCache::new(1024);
        c.insert(key(1, "a"), "A".into());
        c.insert(key(1, "b"), "B".into());
        assert_eq!(c.get(&key(1, "a")).as_deref(), Some("A"));
        assert_eq!(c.get(&key(1, "b")).as_deref(), Some("B"));
    }

    #[test]
    fn lru_eviction_under_byte_budget() {
        // Each entry costs 1 + 32 + 2 = 35 bytes; budget fits two.
        let mut c = ResultCache::new(70);
        c.insert(key(1, "a"), "11".into());
        c.insert(key(2, "b"), "22".into());
        assert!(c.get(&key(1, "a")).is_some()); // refresh 1: 2 is now LRU
        c.insert(key(3, "c"), "33".into());
        assert_eq!(c.get(&key(2, "b")), None, "LRU entry evicted");
        assert!(c.get(&key(1, "a")).is_some());
        assert!(c.get(&key(3, "c")).is_some());
        assert_eq!(c.stats().evictions, 1);
        assert!(c.bytes() <= c.capacity_bytes());
    }

    #[test]
    fn oversized_bodies_are_never_stored() {
        let mut c = ResultCache::new(40);
        c.insert(key(1, "a"), "x".repeat(64));
        assert!(c.is_empty());
        assert_eq!(c.stats().uncacheable, 1);
        assert_eq!(c.bytes(), 0);
    }

    #[test]
    fn reinsert_replaces_without_leaking_bytes() {
        let mut c = ResultCache::new(1024);
        c.insert(key(1, "a"), "long-first-body".into());
        let after_first = c.bytes();
        c.insert(key(1, "a"), "tiny".into());
        assert!(c.bytes() < after_first);
        assert_eq!(c.get(&key(1, "a")).as_deref(), Some("tiny"));
        assert_eq!(c.len(), 1);
    }
}
