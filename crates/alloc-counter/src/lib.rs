//! # mhla-alloc-counter — counting global allocator
//!
//! A thin wrapper around the system allocator that counts allocation
//! events, backing the workspace's allocation-budget harnesses (the
//! `alloc-counter` features of `mhla-bench` and the facade crate): the
//! evaluation hot paths are expected to run (near-)allocation-free in
//! steady state, and the counters turn that expectation into a pinned,
//! CI-enforced budget.
//!
//! This is the one crate in the workspace that needs `unsafe` (the
//! [`GlobalAlloc`] contract); everything else keeps
//! `#![forbid(unsafe_code)]`. To count anything, a binary must register
//! the allocator:
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: mhla_alloc_counter::CountingAlloc = mhla_alloc_counter::CountingAlloc::new();
//! ```
//!
//! Counters are process-global relaxed atomics, and counting is *gated
//! at runtime* ([`set_counting`] / [`allocations_during`]): while
//! disabled — the default — the registered allocator costs one relaxed
//! load per event, so wall-time measurements taken in the same binary
//! are not perturbed by the counting of other sections.
//! [`allocation_count`] returning 0 after a counted section means the
//! allocator is *not registered* — any measured workload allocates —
//! and measurement helpers should report "not counting" rather than a
//! zero budget.

#![warn(missing_docs)]

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

static ENABLED: AtomicBool = AtomicBool::new(false);
static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);
static ALLOCATED_BYTES: AtomicU64 = AtomicU64::new(0);

#[inline]
fn record(bytes: usize) {
    if ENABLED.load(Ordering::Relaxed) {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        ALLOCATED_BYTES.fetch_add(bytes as u64, Ordering::Relaxed);
    }
}

/// A [`System`]-backed allocator that counts allocation events.
///
/// `alloc`, `alloc_zeroed` and `realloc` each count as one event (a
/// `realloc` is a fresh acquisition of `new_size` bytes for counting
/// purposes); `dealloc` is free. Counts only accumulate in binaries that
/// register the allocator via `#[global_allocator]`.
#[derive(Debug, Default)]
pub struct CountingAlloc;

impl CountingAlloc {
    /// A new counting allocator (const, for `static` registration).
    #[must_use]
    pub const fn new() -> Self {
        CountingAlloc
    }
}

// SAFETY: every method delegates directly to `System`, which upholds the
// `GlobalAlloc` contract; the counter updates touch no allocator state.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        record(layout.size());
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        record(layout.size());
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        record(new_size);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

/// Turns event counting on or off (off at startup). Returns the prior
/// state. Counting only has an effect in binaries that registered
/// [`CountingAlloc`].
pub fn set_counting(on: bool) -> bool {
    ENABLED.swap(on, Ordering::Relaxed)
}

/// Allocation events observed so far (0 when the allocator is not
/// registered in this binary).
#[must_use]
pub fn allocation_count() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// Bytes requested by those events (0 when the allocator is not
/// registered in this binary).
#[must_use]
pub fn allocated_bytes() -> u64 {
    ALLOCATED_BYTES.load(Ordering::Relaxed)
}

/// Whether the counting allocator is live in this binary: any *counted*
/// workload allocates, so a zero cumulative count after a counted
/// section means "not registered".
#[must_use]
pub fn is_counting() -> bool {
    allocation_count() > 0
}

/// Allocation events and bytes observed while running `f`, with counting
/// enabled for exactly that span (the prior enabled state is restored).
pub fn allocations_during<R>(f: impl FnOnce() -> R) -> (R, u64, u64) {
    let events = allocation_count();
    let bytes = allocated_bytes();
    let was = set_counting(true);
    let r = f();
    set_counting(was);
    (
        r,
        allocation_count().saturating_sub(events),
        allocated_bytes().saturating_sub(bytes),
    )
}
