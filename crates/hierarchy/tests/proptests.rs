//! Property tests for the platform models: scaling-law monotonicity,
//! transfer-time consistency, and platform constructor invariants.

use mhla_hierarchy::{energy, DmaModel, LayerId, MemoryLayer, Platform};
use proptest::prelude::*;

proptest! {
    /// SRAM energy and latency are monotone non-decreasing in capacity.
    #[test]
    fn sram_scaling_is_monotone(a in 1u64..1_000_000, b in 1u64..1_000_000) {
        let (lo, hi) = (a.min(b), a.max(b));
        prop_assert!(energy::sram_read_pj(lo) <= energy::sram_read_pj(hi));
        prop_assert!(energy::sram_write_pj(lo) <= energy::sram_write_pj(hi));
        prop_assert!(energy::sram_access_cycles(lo) <= energy::sram_access_cycles(hi));
    }

    /// Writes never cost less than reads at any capacity.
    #[test]
    fn writes_dominate_reads(cap in 1u64..1_000_000) {
        prop_assert!(energy::sram_write_pj(cap) >= energy::sram_read_pj(cap));
    }

    /// DMA transfer time is monotone in bytes and superadditive-ish:
    /// one combined transfer never costs more than two split ones
    /// (the setup is paid once instead of twice).
    #[test]
    fn dma_transfer_time_is_monotone_and_batch_friendly(
        x in 1u64..100_000,
        y in 1u64..100_000,
    ) {
        let dma = DmaModel::single_channel();
        let sdram = MemoryLayer::off_chip_sdram();
        let spm = MemoryLayer::scratchpad(16 * 1024);
        let tx = dma.transfer_cycles(x, &sdram, &spm);
        let ty = dma.transfer_cycles(y, &sdram, &spm);
        let txy = dma.transfer_cycles(x + y, &sdram, &spm);
        prop_assert!(txy >= tx.max(ty), "monotone");
        prop_assert!(txy <= tx + ty, "batching amortizes setup");
    }

    /// Transfer energy is linear in the number of elements.
    #[test]
    fn dma_energy_is_linear(elems in 1u64..10_000, elem_bytes in 1u64..8) {
        let dma = DmaModel::single_channel();
        let sdram = MemoryLayer::off_chip_sdram();
        let spm = MemoryLayer::scratchpad(4096);
        let one = dma.transfer_energy_pj(elem_bytes, elem_bytes, &sdram, &spm);
        let many = dma.transfer_energy_pj(elems * elem_bytes, elem_bytes, &sdram, &spm);
        prop_assert!((many - one * elems as f64).abs() < 1e-6 * many.max(1.0));
    }

    /// Any scratchpad size yields a well-formed default platform whose
    /// layers get strictly cheaper per access toward the CPU.
    #[test]
    fn default_platform_is_always_well_formed(spm in 1u64..4_000_000) {
        let p = Platform::embedded_default(spm);
        prop_assert_eq!(p.layer_count(), 2);
        prop_assert!(p.layer(LayerId(1)).read_energy_pj < p.layer(LayerId(0)).read_energy_pj);
        prop_assert!(p.access_cycles(LayerId(1)) <= p.access_cycles(LayerId(0)));
        prop_assert_eq!(p.on_chip_capacity(), spm);
    }

    /// Resizing a scratchpad re-derives a consistent layer.
    #[test]
    fn resize_round_trips(spm in 1u64..1_000_000, resized in 1u64..1_000_000) {
        let p = Platform::embedded_default(spm);
        let q = p.with_layer_capacity(LayerId(1), resized);
        prop_assert_eq!(q.layer(LayerId(1)).capacity, Some(resized));
        let back = q.with_layer_capacity(LayerId(1), spm);
        prop_assert_eq!(back.layer(LayerId(1)), p.layer(LayerId(1)));
    }

    /// Three-level stacks are pyramids whenever L1 < L2.
    #[test]
    fn three_level_pyramids(l2 in 2u64..1_000_000, l1_frac in 1u64..100) {
        let l1 = (l2 * l1_frac / 100).max(1).min(l2 - 1);
        let p = Platform::three_level(l2, l1);
        prop_assert_eq!(p.layer_count(), 3);
        let e: Vec<f64> = p.layers().map(|(_, l)| l.read_energy_pj).collect();
        prop_assert!(e[0] > e[1] && e[1] >= e[2]);
    }
}
