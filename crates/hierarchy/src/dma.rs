//! DMA engine ("memory transfer engine") model.

use crate::layer::MemoryLayer;

/// Model of the platform's block-transfer engine.
///
/// The DATE 2005 paper's Time Extensions "need the support of a memory
/// transfer engine (like DMA engine or data mover) that allows simultaneous
/// the CPU to continue processing data and the engine to copy off-chip data
/// to on-chip layers". This struct is that engine: block transfers cost a
/// fixed setup plus a throughput-limited streaming phase, and run
/// concurrently with the CPU.
///
/// A platform *without* an engine (see
/// [`Platform::without_dma`](crate::Platform::without_dma)) must perform
/// copies on the CPU, and Time Extensions are not applicable — exactly the
/// caveat in the paper.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct DmaModel {
    /// Independent channels that can stream concurrently.
    pub channels: u32,
    /// Programming + arbitration overhead per block transfer, cycles.
    pub setup_cycles: u64,
    /// Engine's own maximum throughput, bytes per cycle (the effective rate
    /// is additionally bounded by source and destination layers).
    pub bytes_per_cycle: f64,
}

impl DmaModel {
    /// A single-channel engine representative of 2005-era embedded SoCs:
    /// 30-cycle setup (descriptor write + bus arbitration), 4 B/cycle
    /// engine limit (64-bit internal bus at half the core clock).
    pub fn single_channel() -> Self {
        DmaModel {
            channels: 1,
            setup_cycles: 30,
            bytes_per_cycle: 4.0,
        }
    }

    /// A wider engine with `channels` concurrent channels.
    ///
    /// # Panics
    ///
    /// Panics if `channels` is zero.
    pub fn multi_channel(channels: u32) -> Self {
        assert!(channels > 0, "DMA engine needs at least one channel");
        DmaModel {
            channels,
            ..Self::single_channel()
        }
    }

    /// Cycles to move `bytes` from `src` to `dst`, including setup.
    ///
    /// The streaming phase is limited by the slowest of engine, source and
    /// destination throughput.
    pub fn transfer_cycles(&self, bytes: u64, src: &MemoryLayer, dst: &MemoryLayer) -> u64 {
        if bytes == 0 {
            return 0;
        }
        let rate = self
            .bytes_per_cycle
            .min(src.burst_bytes_per_cycle)
            .min(dst.burst_bytes_per_cycle);
        self.setup_cycles + (bytes as f64 / rate).ceil() as u64
    }

    /// Energy to move `bytes` from `src` to `dst`, picojoule.
    ///
    /// Each element is read from the source and written to the destination
    /// at the layers' *burst* energy (block transfers amortize row
    /// activation and I/O toggling relative to random CPU accesses).
    pub fn transfer_energy_pj(
        &self,
        bytes: u64,
        elem_bytes: u64,
        src: &MemoryLayer,
        dst: &MemoryLayer,
    ) -> f64 {
        debug_assert!(elem_bytes > 0);
        let elems = (bytes / elem_bytes.max(1)) as f64;
        elems * (src.burst_energy_pj + dst.burst_energy_pj)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_time_is_setup_plus_stream() {
        let dma = DmaModel::single_channel();
        let sdram = MemoryLayer::off_chip_sdram(); // 0.25 B/cycle — bottleneck
        let spm = MemoryLayer::scratchpad(16 * 1024); // 4 B/cycle
        let t = dma.transfer_cycles(256, &sdram, &spm);
        assert_eq!(t, 30 + 1024);
    }

    #[test]
    fn on_chip_to_on_chip_is_engine_limited() {
        let dma = DmaModel::single_channel(); // 4 B/cycle
        let a = MemoryLayer::scratchpad(64 * 1024);
        let b = MemoryLayer::scratchpad(1024);
        assert_eq!(dma.transfer_cycles(400, &a, &b), 30 + 100);
    }

    #[test]
    fn zero_bytes_is_free() {
        let dma = DmaModel::single_channel();
        let sdram = MemoryLayer::off_chip_sdram();
        let spm = MemoryLayer::scratchpad(1024);
        assert_eq!(dma.transfer_cycles(0, &sdram, &spm), 0);
        assert_eq!(dma.transfer_energy_pj(0, 1, &sdram, &spm), 0.0);
    }

    #[test]
    fn transfer_energy_uses_burst_rates() {
        let dma = DmaModel::single_channel();
        let sdram = MemoryLayer::off_chip_sdram();
        let spm = MemoryLayer::scratchpad(1024);
        let e = dma.transfer_energy_pj(64, 1, &sdram, &spm);
        let expect = 64.0 * (sdram.burst_energy_pj + spm.burst_energy_pj);
        assert!((e - expect).abs() < 1e-9);
        // Burst transfers must beat 64 individual CPU round-trips.
        let cpu = 64.0 * (sdram.read_energy_pj + spm.write_energy_pj);
        assert!(e < cpu);
    }

    #[test]
    #[should_panic(expected = "at least one channel")]
    fn zero_channels_rejected() {
        let _ = DmaModel::multi_channel(0);
    }

    #[test]
    fn multi_channel_inherits_per_channel_parameters() {
        let dma = DmaModel::multi_channel(4);
        assert_eq!(dma.channels, 4);
        assert_eq!(dma.setup_cycles, DmaModel::single_channel().setup_cycles);
    }
}
