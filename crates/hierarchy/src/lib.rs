//! # mhla-hierarchy — memory hierarchy, energy and DMA models
//!
//! MHLA (DATE 2003/2005) explores trade-offs over a *multi-layered memory
//! organization*: a large, slow, energy-hungry off-chip memory plus one or
//! more small on-chip scratchpad layers, with a DMA engine ("memory transfer
//! engine" in the paper) that can move blocks between layers concurrently
//! with CPU execution.
//!
//! This crate provides the parametric platform models the rest of the
//! workspace prices against:
//!
//! * [`MemoryLayer`] — capacity, per-access energy, access latency, and
//!   streaming (burst) throughput of one layer,
//! * [`energy`] — CACTI-style analytic scaling of SRAM energy/latency with
//!   capacity, and fixed off-chip SDRAM costs,
//! * [`DmaModel`] — block-transfer engine (setup cycles + per-byte cost),
//! * [`Platform`] — a complete machine: ordered layers + DMA + CPU model,
//!   with presets matching the paper's experimental setup.
//!
//! The absolute numbers are *representative* of a 2005-era embedded platform
//! (documented per preset); MHLA's reported results are relative (% gains),
//! which depend only on the ratios preserved here: off-chip accesses cost
//! roughly an order of magnitude more cycles and 20–50× more energy than
//! scratchpad accesses, and burst DMA transfers amortize the per-access
//! off-chip cost.
//!
//! # Example
//!
//! ```
//! use mhla_hierarchy::Platform;
//!
//! let platform = Platform::embedded_default(16 * 1024);
//! assert_eq!(platform.layers().count(), 2);
//! assert!(platform.dma().is_some());
//! let spm = platform.closest();
//! assert!(platform.layer(spm).access_cycles < platform.layer(platform.furthest()).access_cycles);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Serialized platforms are hostile ingress: every reachable failure must
// surface as a typed error ([`serdes::SerdesError`] / [`PlatformError`]),
// never a panic. Surviving `expect`s are compile-time-constant preset
// constructions, each carrying an explicit `#[allow]` + justification.
#![warn(clippy::unwrap_used, clippy::expect_used)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub mod energy;

mod dma;
mod layer;
mod platform;
pub mod serdes;

pub use dma::DmaModel;
pub use layer::{LayerId, LayerKind, MemoryLayer};
pub use platform::{CpuModel, Platform, PlatformError};
