//! Analytic energy and latency scaling models.
//!
//! The MHLA papers price memory accesses with vendor/CACTI-style memory
//! models: per-access energy of an on-chip SRAM grows roughly with the
//! square root of its capacity (bitline/wordline lengths grow with each
//! dimension of the cell array), while an external SDRAM has a high, roughly
//! capacity-independent cost per access dominated by I/O drivers and page
//! circuitry.
//!
//! Absolute values below are representative of a 130 nm-class embedded
//! process (the paper's era): a 1 KiB scratchpad read costs ≈ 5 pJ, a 1 MiB
//! one ≈ 160 pJ, and an off-chip SDRAM access ≈ 4 nJ. The reproduction only
//! relies on the *ratios*, which are squarely inside the ranges published
//! for such platforms (off-chip ≈ 20–1000× on-chip).

/// Reference capacity for SRAM scaling (1 KiB).
pub const SRAM_REF_BYTES: u64 = 1024;

/// Energy per read access of the reference 1 KiB SRAM, picojoule.
pub const SRAM_REF_READ_PJ: f64 = 5.0;

/// Write accesses cost slightly more than reads (bitline full-swing).
pub const SRAM_WRITE_FACTOR: f64 = 1.2;

/// Capacity exponent of the SRAM energy scaling law.
pub const SRAM_ENERGY_EXPONENT: f64 = 0.5;

/// Energy per off-chip SDRAM access (one element), picojoule.
///
/// Includes I/O pad energy; capacity independent in this model.
pub const SDRAM_ACCESS_PJ: f64 = 4000.0;

/// Energy per element when the SDRAM is streamed in burst mode (DMA block
/// transfers), picojoule. Bursts amortize row activation and I/O toggling.
pub const SDRAM_BURST_PJ: f64 = 1200.0;

/// Per-access energy of an on-chip SRAM read, picojoule.
///
/// `E(C) = E_ref · (C / C_ref)^0.5`, clamped below at the reference energy
/// for sub-reference capacities (periphery dominates very small macros).
///
/// ```
/// use mhla_hierarchy::energy::sram_read_pj;
/// assert!(sram_read_pj(4096) > sram_read_pj(1024));
/// assert_eq!(sram_read_pj(256), sram_read_pj(1024)); // clamped
/// ```
pub fn sram_read_pj(capacity_bytes: u64) -> f64 {
    let ratio = (capacity_bytes.max(SRAM_REF_BYTES) as f64) / SRAM_REF_BYTES as f64;
    SRAM_REF_READ_PJ * ratio.powf(SRAM_ENERGY_EXPONENT)
}

/// Per-access energy of an on-chip SRAM write, picojoule.
pub fn sram_write_pj(capacity_bytes: u64) -> f64 {
    sram_read_pj(capacity_bytes) * SRAM_WRITE_FACTOR
}

/// CPU-visible random access latency of an on-chip SRAM, cycles.
///
/// Single cycle up to 32 KiB, two cycles up to 256 KiB, three beyond —
/// the classic scratchpad pipeline break-points.
pub fn sram_access_cycles(capacity_bytes: u64) -> u64 {
    match capacity_bytes {
        0..=32_768 => 1,
        32_769..=262_144 => 2,
        _ => 3,
    }
}

/// CPU-visible random access latency of the off-chip SDRAM, cycles.
///
/// A single-element access pays control + CAS + bus turnaround; with the
/// page-hit-dominated access streams of these kernels it averages ≈ 8 CPU
/// cycles on a 2005-era embedded core with a PC133-class SDRAM.
pub const SDRAM_ACCESS_CYCLES: u64 = 8;

/// Sustained burst throughput of the SDRAM in bytes per CPU cycle when
/// streamed by the DMA engine.
///
/// A 16-bit SDR SDRAM at a third of the core clock sustains ≈ 0.25 B per
/// core cycle once row activation is amortized — the classic 2005-era
/// shared external bus seen from a 150–200 MHz embedded core.
pub const SDRAM_BURST_BYTES_PER_CYCLE: f64 = 0.25;

/// Sustained throughput of an on-chip SRAM port in bytes per cycle.
pub const SRAM_BURST_BYTES_PER_CYCLE: f64 = 4.0;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sram_energy_grows_with_sqrt_capacity() {
        let e1 = sram_read_pj(1024);
        let e4 = sram_read_pj(4 * 1024);
        let e16 = sram_read_pj(16 * 1024);
        assert!((e4 / e1 - 2.0).abs() < 1e-9, "4x capacity = 2x energy");
        assert!((e16 / e1 - 4.0).abs() < 1e-9, "16x capacity = 4x energy");
    }

    #[test]
    fn sram_energy_clamps_below_reference() {
        assert_eq!(sram_read_pj(1), sram_read_pj(1024));
        assert_eq!(sram_read_pj(0), sram_read_pj(1024));
    }

    #[test]
    fn writes_cost_more_than_reads() {
        assert!(sram_write_pj(8192) > sram_read_pj(8192));
    }

    #[test]
    fn off_chip_dwarfs_on_chip() {
        // The on/off-chip gap drives all of MHLA's energy gains; keep it
        // in the published 20–1000x band even for large scratchpads.
        let big_spm = sram_read_pj(256 * 1024);
        assert!(SDRAM_ACCESS_PJ / big_spm > 20.0);
        let small_spm = sram_read_pj(1024);
        assert!(SDRAM_ACCESS_PJ / small_spm < 1000.0);
    }

    #[test]
    #[allow(clippy::assertions_on_constants)]
    fn burst_is_cheaper_than_random_access() {
        assert!(SDRAM_BURST_PJ < SDRAM_ACCESS_PJ);
    }

    #[test]
    fn latency_break_points() {
        assert_eq!(sram_access_cycles(1024), 1);
        assert_eq!(sram_access_cycles(32 * 1024), 1);
        assert_eq!(sram_access_cycles(32 * 1024 + 1), 2);
        assert_eq!(sram_access_cycles(256 * 1024), 2);
        assert_eq!(sram_access_cycles(1024 * 1024), 3);
        assert!(SDRAM_ACCESS_CYCLES > sram_access_cycles(1024 * 1024));
    }
}
