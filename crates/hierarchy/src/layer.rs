//! Memory layer descriptions.

use std::fmt;

use crate::energy;

/// Index of a layer within a [`Platform`](crate::Platform).
///
/// Layer 0 is the *furthest* from the processor (off-chip main memory);
/// higher indices are closer (on-chip scratchpads).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct LayerId(pub usize);

impl LayerId {
    /// Raw index.
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for LayerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "M{}", self.0)
    }
}

/// Technology class of a memory layer.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum LayerKind {
    /// External DRAM: large/unbounded, slow, expensive per access.
    OffChipSdram,
    /// On-chip software-controlled SRAM (scratchpad).
    ScratchpadSram,
}

impl fmt::Display for LayerKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            LayerKind::OffChipSdram => "off-chip SDRAM",
            LayerKind::ScratchpadSram => "scratchpad SRAM",
        })
    }
}

/// One layer of the memory hierarchy.
///
/// Constructed via [`MemoryLayer::off_chip_sdram`] or
/// [`MemoryLayer::scratchpad`] (which derive energy/latency from the
/// [`energy`] scaling laws), or field-by-field for custom technologies.
#[derive(Clone, PartialEq, Debug)]
pub struct MemoryLayer {
    /// Human-readable name, e.g. `"SDRAM"` or `"SPM-16K"`.
    pub name: String,
    /// Technology class.
    pub kind: LayerKind,
    /// Usable capacity in bytes; `None` = effectively unbounded.
    pub capacity: Option<u64>,
    /// Energy of one CPU element read, picojoule.
    pub read_energy_pj: f64,
    /// Energy of one CPU element write, picojoule.
    pub write_energy_pj: f64,
    /// Energy per element when streamed in DMA burst mode, picojoule.
    pub burst_energy_pj: f64,
    /// CPU-visible latency of one random access, cycles.
    pub access_cycles: u64,
    /// Sustained streaming throughput, bytes per cycle.
    pub burst_bytes_per_cycle: f64,
}

impl MemoryLayer {
    /// An off-chip SDRAM layer with representative 2005-era parameters
    /// (see [`energy`] for the constants and their justification).
    pub fn off_chip_sdram() -> Self {
        MemoryLayer {
            name: "SDRAM".into(),
            kind: LayerKind::OffChipSdram,
            capacity: None,
            read_energy_pj: energy::SDRAM_ACCESS_PJ,
            write_energy_pj: energy::SDRAM_ACCESS_PJ,
            burst_energy_pj: energy::SDRAM_BURST_PJ,
            access_cycles: energy::SDRAM_ACCESS_CYCLES,
            burst_bytes_per_cycle: energy::SDRAM_BURST_BYTES_PER_CYCLE,
        }
    }

    /// An on-chip scratchpad of the given capacity, with energy and latency
    /// derived from the analytic scaling laws.
    ///
    /// # Panics
    ///
    /// Panics if `capacity_bytes` is zero.
    pub fn scratchpad(capacity_bytes: u64) -> Self {
        assert!(capacity_bytes > 0, "scratchpad capacity must be positive");
        MemoryLayer {
            name: format!("SPM-{}", format_size(capacity_bytes)),
            kind: LayerKind::ScratchpadSram,
            capacity: Some(capacity_bytes),
            read_energy_pj: energy::sram_read_pj(capacity_bytes),
            write_energy_pj: energy::sram_write_pj(capacity_bytes),
            burst_energy_pj: energy::sram_write_pj(capacity_bytes),
            access_cycles: energy::sram_access_cycles(capacity_bytes),
            burst_bytes_per_cycle: energy::SRAM_BURST_BYTES_PER_CYCLE,
        }
    }

    /// Re-derives this layer as a scratchpad of the given capacity, in
    /// place: every field the cost model reads (`kind`, `capacity`, the
    /// energy/latency/bandwidth numbers) ends up exactly as
    /// [`MemoryLayer::scratchpad`] would build it. The `name` is left
    /// untouched — renaming would allocate, and this is the sweep
    /// engine's per-grid-point hot path; callers that surface names use
    /// the allocating constructor instead.
    ///
    /// # Panics
    ///
    /// Panics if `capacity_bytes` is zero.
    pub fn resize_scratchpad(&mut self, capacity_bytes: u64) {
        assert!(capacity_bytes > 0, "scratchpad capacity must be positive");
        self.kind = LayerKind::ScratchpadSram;
        self.capacity = Some(capacity_bytes);
        self.read_energy_pj = energy::sram_read_pj(capacity_bytes);
        self.write_energy_pj = energy::sram_write_pj(capacity_bytes);
        self.burst_energy_pj = energy::sram_write_pj(capacity_bytes);
        self.access_cycles = energy::sram_access_cycles(capacity_bytes);
        self.burst_bytes_per_cycle = energy::SRAM_BURST_BYTES_PER_CYCLE;
    }

    /// Whether a block of `bytes` fits the layer capacity.
    pub fn fits(&self, bytes: u64) -> bool {
        self.capacity.is_none_or(|c| bytes <= c)
    }

    /// Energy of one element access of the given direction, picojoule.
    pub fn access_energy_pj(&self, is_write: bool) -> f64 {
        if is_write {
            self.write_energy_pj
        } else {
            self.read_energy_pj
        }
    }

    /// Cycles for the layer to stream `bytes` in burst mode (excluding
    /// DMA engine setup).
    pub fn stream_cycles(&self, bytes: u64) -> u64 {
        (bytes as f64 / self.burst_bytes_per_cycle).ceil() as u64
    }
}

fn format_size(bytes: u64) -> String {
    if bytes.is_multiple_of(1024 * 1024) {
        format!("{}M", bytes / (1024 * 1024))
    } else if bytes.is_multiple_of(1024) {
        format!("{}K", bytes / 1024)
    } else {
        format!("{bytes}B")
    }
}

impl fmt::Display for MemoryLayer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({}, cap {}, {:.1}/{:.1} pJ r/w, {} cyc)",
            self.name,
            self.kind,
            self.capacity.map_or("inf".to_string(), format_size),
            self.read_energy_pj,
            self.write_energy_pj,
            self.access_cycles
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scratchpad_derives_from_scaling_laws() {
        let spm = MemoryLayer::scratchpad(16 * 1024);
        assert_eq!(spm.kind, LayerKind::ScratchpadSram);
        assert_eq!(spm.capacity, Some(16 * 1024));
        assert_eq!(spm.read_energy_pj, energy::sram_read_pj(16 * 1024));
        assert_eq!(spm.access_cycles, 1);
        assert_eq!(spm.name, "SPM-16K");
    }

    #[test]
    fn resize_matches_fresh_scratchpad_except_name() {
        let mut spm = MemoryLayer::scratchpad(16 * 1024);
        spm.resize_scratchpad(2048);
        let fresh = MemoryLayer::scratchpad(2048);
        assert_eq!(spm.name, "SPM-16K"); // stale by design
        spm.name = fresh.name.clone();
        assert_eq!(spm, fresh);
    }

    #[test]
    fn sdram_is_unbounded_and_slow() {
        let sdram = MemoryLayer::off_chip_sdram();
        assert_eq!(sdram.capacity, None);
        assert!(sdram.fits(u64::MAX));
        assert!(sdram.access_cycles > MemoryLayer::scratchpad(1024).access_cycles);
    }

    #[test]
    fn fits_respects_capacity() {
        let spm = MemoryLayer::scratchpad(2048);
        assert!(spm.fits(2048));
        assert!(!spm.fits(2049));
        assert!(spm.fits(0));
    }

    #[test]
    fn stream_cycles_round_up() {
        let sdram = MemoryLayer::off_chip_sdram(); // 0.25 B/cycle
        assert_eq!(sdram.stream_cycles(100), 400);
        let spm = MemoryLayer::scratchpad(1024); // 4 B/cycle
        assert_eq!(spm.stream_cycles(100), 25);
        assert_eq!(spm.stream_cycles(101), 26);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_scratchpad_rejected() {
        let _ = MemoryLayer::scratchpad(0);
    }

    #[test]
    fn size_formatting() {
        assert_eq!(MemoryLayer::scratchpad(512).name, "SPM-512B");
        assert_eq!(MemoryLayer::scratchpad(4096).name, "SPM-4K");
        assert_eq!(MemoryLayer::scratchpad(2 * 1024 * 1024).name, "SPM-2M");
    }

    #[test]
    fn access_energy_selects_direction() {
        let spm = MemoryLayer::scratchpad(8192);
        assert_eq!(spm.access_energy_pj(false), spm.read_energy_pj);
        assert_eq!(spm.access_energy_pj(true), spm.write_energy_pj);
    }
}
