//! Versioned on-disk JSON format for [`Platform`] — platforms as data.
//!
//! The platform counterpart of [`mhla_ir::serdes`]: the same hand-rolled
//! [`Json`] layer, the same envelope convention (`"format"` tag + explicit
//! `"version"`), the same ingress discipline (typed [`SerdesError`]s, never
//! a panic). A serialized platform spells every [`MemoryLayer`] field out,
//! so custom technologies round-trip exactly — nothing is re-derived from
//! the scaling laws on read.
//!
//! Deserialization goes through [`Platform::from_parts`], which enforces
//! the structural rules every platform obeys (≥ 2 layers, unbounded
//! off-chip layer 0) but *not* the monotonicity check of [`Platform::new`]:
//! grid sweeps legitimately emit non-pyramidal stacks via
//! [`Platform::with_layer_capacities`], and a format that cannot represent
//! what the explorer produces would be useless as an interchange format.
//! (This matches the engine's own ingress contract,
//! `mhla_core::validate_platform`.)
//!
//! # Schema (version 1)
//!
//! ```json
//! {
//!   "format": "mhla.platform",
//!   "version": 1,
//!   "name": "embedded-spm16",
//!   "layers": [
//!     {"name": "SDRAM", "kind": "off_chip_sdram", "capacity": null,
//!      "read_energy_pj": 12.0, "write_energy_pj": 12.0,
//!      "burst_energy_pj": 2.0, "access_cycles": 20,
//!      "burst_bytes_per_cycle": 0.25}
//!   ],
//!   "dma": {"channels": 1, "setup_cycles": 30, "bytes_per_cycle": 4},
//!   "cpu": {"access_overhead_cycles": 0}
//! }
//! ```
//!
//! A platform without a transfer engine serializes `"dma": null`. Unknown
//! object keys are ignored (additive extensions stay readable).

use mhla_ir::serdes::{check_envelope, field, Json, SerdesError};

use crate::dma::DmaModel;
use crate::layer::{LayerKind, MemoryLayer};
use crate::platform::{CpuModel, Platform};

/// The `"format"` tag of a serialized [`Platform`].
pub const PLATFORM_FORMAT: &str = "mhla.platform";
/// The platform schema version this build reads and writes.
pub const PLATFORM_VERSION: u64 = 1;

/// Serializes a platform to its version-[`PLATFORM_VERSION`] JSON document.
pub fn platform_to_json(platform: &Platform) -> String {
    platform_value(platform).render()
}

/// Encodes a platform as a [`Json`] value (the document
/// [`platform_to_json`] renders).
pub fn platform_value(platform: &Platform) -> Json {
    let layers = platform
        .layers()
        .map(|(_, l)| layer_value(l))
        .collect::<Vec<Json>>();
    let dma = match platform.dma() {
        Some(d) => Json::Obj(vec![
            ("channels".into(), Json::from_u64(u64::from(d.channels))),
            ("setup_cycles".into(), Json::from_u64(d.setup_cycles)),
            ("bytes_per_cycle".into(), Json::from_f64(d.bytes_per_cycle)),
        ]),
        None => Json::Null,
    };
    Json::Obj(vec![
        ("format".into(), Json::Str(PLATFORM_FORMAT.into())),
        ("version".into(), Json::from_u64(PLATFORM_VERSION)),
        ("name".into(), Json::Str(platform.name().into())),
        ("layers".into(), Json::Arr(layers)),
        ("dma".into(), dma),
        (
            "cpu".into(),
            Json::Obj(vec![(
                "access_overhead_cycles".into(),
                Json::from_u64(platform.cpu().access_overhead_cycles),
            )]),
        ),
    ])
}

fn layer_value(layer: &MemoryLayer) -> Json {
    let kind = match layer.kind {
        LayerKind::OffChipSdram => "off_chip_sdram",
        LayerKind::ScratchpadSram => "scratchpad_sram",
    };
    Json::Obj(vec![
        ("name".into(), Json::Str(layer.name.clone())),
        ("kind".into(), Json::Str(kind.into())),
        (
            "capacity".into(),
            match layer.capacity {
                Some(c) => Json::from_u64(c),
                None => Json::Null,
            },
        ),
        (
            "read_energy_pj".into(),
            Json::from_f64(layer.read_energy_pj),
        ),
        (
            "write_energy_pj".into(),
            Json::from_f64(layer.write_energy_pj),
        ),
        (
            "burst_energy_pj".into(),
            Json::from_f64(layer.burst_energy_pj),
        ),
        ("access_cycles".into(), Json::from_u64(layer.access_cycles)),
        (
            "burst_bytes_per_cycle".into(),
            Json::from_f64(layer.burst_bytes_per_cycle),
        ),
    ])
}

/// The canonical bytes of a platform: its version-[`PLATFORM_VERSION`]
/// document in the compact rendering ([`Json::render_compact`]) — the
/// platform counterpart of `mhla_ir::serdes::program_canonical_bytes`.
/// Structurally equal platforms produce identical bytes; a stable hash
/// over them (`mhla_core::fingerprint`) is a durable content address.
pub fn platform_canonical_bytes(platform: &Platform) -> Vec<u8> {
    platform_value(platform).render_compact().into_bytes()
}

/// Deserializes a platform from a version-[`PLATFORM_VERSION`] JSON
/// document.
///
/// # Errors
///
/// * [`SerdesError::Syntax`] — the input is not JSON,
/// * [`SerdesError::Schema`] — the document shape does not match the
///   schema, or the stack violates [`Platform::from_parts`]'s structural
///   rules (fewer than two layers, layer 0 not unbounded off-chip),
/// * [`SerdesError::Version`] — the document is from a different schema
///   version.
///
/// Never panics.
pub fn platform_from_json(text: &str) -> Result<Platform, SerdesError> {
    let doc = Json::parse(text)?;
    platform_from_value(&doc)
}

/// Deserializes a platform from an already-parsed [`Json`] value; see
/// [`platform_from_json`].
///
/// # Errors
///
/// As [`platform_from_json`], minus the syntax class.
pub fn platform_from_value(doc: &Json) -> Result<Platform, SerdesError> {
    let fields = doc.as_object("platform document")?;
    check_envelope(fields, PLATFORM_FORMAT, PLATFORM_VERSION)?;
    let name = field(fields, "name", "platform")?
        .as_str("platform \"name\"")?
        .to_string();

    let mut layers = Vec::new();
    for (i, entry) in field(fields, "layers", "platform")?
        .as_array("\"layers\"")?
        .iter()
        .enumerate()
    {
        layers.push(layer_from_value(entry, &format!("layers[{i}]"))?);
    }

    let dma_value = field(fields, "dma", "platform")?;
    let dma = if dma_value.is_null() {
        None
    } else {
        let o = dma_value.as_object("\"dma\"")?;
        let channels = field(o, "channels", "dma")?.as_u64("dma.channels")?;
        Some(DmaModel {
            channels: u32::try_from(channels).map_err(|_| SerdesError::Schema {
                what: format!("dma.channels: {channels} out of range"),
            })?,
            setup_cycles: field(o, "setup_cycles", "dma")?.as_u64("dma.setup_cycles")?,
            bytes_per_cycle: field(o, "bytes_per_cycle", "dma")?.as_f64("dma.bytes_per_cycle")?,
        })
    };

    let cpu_fields = field(fields, "cpu", "platform")?.as_object("\"cpu\"")?;
    let cpu = CpuModel {
        access_overhead_cycles: field(cpu_fields, "access_overhead_cycles", "cpu")?
            .as_u64("cpu.access_overhead_cycles")?,
    };

    Platform::from_parts(name, layers, dma, cpu).map_err(|e| SerdesError::Schema {
        what: format!("platform: {e}"),
    })
}

fn layer_from_value(value: &Json, what: &str) -> Result<MemoryLayer, SerdesError> {
    let o = value.as_object(what)?;
    let kind = match field(o, "kind", what)?.as_str(&format!("{what}.kind"))? {
        "off_chip_sdram" => LayerKind::OffChipSdram,
        "scratchpad_sram" => LayerKind::ScratchpadSram,
        other => {
            return Err(SerdesError::Schema {
                what: format!("{what}.kind: unknown layer kind \"{other}\""),
            })
        }
    };
    let capacity_value = field(o, "capacity", what)?;
    let capacity = if capacity_value.is_null() {
        None
    } else {
        Some(capacity_value.as_u64(&format!("{what}.capacity"))?)
    };
    Ok(MemoryLayer {
        name: field(o, "name", what)?
            .as_str(&format!("{what}.name"))?
            .to_string(),
        kind,
        capacity,
        read_energy_pj: field(o, "read_energy_pj", what)?
            .as_f64(&format!("{what}.read_energy_pj"))?,
        write_energy_pj: field(o, "write_energy_pj", what)?
            .as_f64(&format!("{what}.write_energy_pj"))?,
        burst_energy_pj: field(o, "burst_energy_pj", what)?
            .as_f64(&format!("{what}.burst_energy_pj"))?,
        access_cycles: field(o, "access_cycles", what)?.as_u64(&format!("{what}.access_cycles"))?,
        burst_bytes_per_cycle: field(o, "burst_bytes_per_cycle", what)?
            .as_f64(&format!("{what}.burst_bytes_per_cycle"))?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::LayerId;

    #[test]
    fn presets_round_trip() {
        for p in [
            Platform::embedded_default(16 * 1024),
            Platform::three_level_default(),
            Platform::four_level_default(),
            Platform::without_dma(8 * 1024),
        ] {
            let text = platform_to_json(&p);
            let back = platform_from_json(&text).expect("round trip");
            assert_eq!(p, back);
            assert_eq!(platform_to_json(&back), text);
        }
    }

    #[test]
    fn non_pyramidal_grid_stacks_round_trip() {
        // Grid sweeps emit inverted pyramids via with_layer_capacities;
        // the format must carry them even though Platform::new would not.
        let p = Platform::three_level_default()
            .with_layer_capacities(&[(LayerId(1), 1024), (LayerId(2), 64 * 1024)]);
        let back = platform_from_json(&platform_to_json(&p)).expect("round trip");
        assert_eq!(p, back);
    }

    #[test]
    fn structural_rules_still_hold() {
        let p = Platform::embedded_default(4 * 1024);
        let text = platform_to_json(&p);
        // Turn layer 0 into a scratchpad: structurally invalid everywhere.
        let bad = text.replacen("off_chip_sdram", "scratchpad_sram", 1);
        match platform_from_json(&bad) {
            Err(SerdesError::Schema { what }) => assert!(what.contains("off-chip")),
            other => panic!("expected schema error, got {other:?}"),
        }
    }

    #[test]
    fn version_and_format_are_checked() {
        let text = platform_to_json(&Platform::embedded_default(4 * 1024));
        let wrong = text.replace("\"version\": 1", "\"version\": 2");
        assert!(matches!(
            platform_from_json(&wrong),
            Err(SerdesError::Version {
                found: 2,
                expected: PLATFORM_VERSION
            })
        ));
        assert!(matches!(
            platform_from_json(&text.replace("mhla.platform", "mhla.program")),
            Err(SerdesError::Schema { .. })
        ));
    }

    #[test]
    fn canonical_bytes_are_stable_and_parse_back() {
        let p = Platform::three_level_default();
        let bytes = platform_canonical_bytes(&p);
        assert_eq!(bytes, platform_canonical_bytes(&p));
        let text = String::from_utf8(bytes).expect("utf8");
        assert!(!text.contains('\n'));
        assert_eq!(platform_from_json(&text).expect("parse"), p);
    }

    #[test]
    fn missing_dma_serializes_as_null() {
        let p = Platform::without_dma(8 * 1024);
        let text = platform_to_json(&p);
        assert!(text.contains("\"dma\": null"));
        assert!(platform_from_json(&text).expect("parse").dma().is_none());
    }
}
