//! Complete platform descriptions (layers + DMA + CPU).

use std::error::Error;
use std::fmt;

use crate::dma::DmaModel;
use crate::layer::{LayerId, LayerKind, MemoryLayer};

/// Simple in-order CPU model.
///
/// Each statement costs its `compute_cycles` plus the access latency of
/// every memory reference (single-issue, blocking accesses — representative
/// of the embedded cores the paper targets).
#[derive(Clone, Copy, PartialEq, Debug, Default)]
pub struct CpuModel {
    /// Latency overhead added per memory access instruction on top of the
    /// layer latency (address generation etc.).
    pub access_overhead_cycles: u64,
}

/// Errors constructing or modifying a [`Platform`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum PlatformError {
    /// Layer 0 must be the (unbounded) off-chip memory.
    FurthestLayerNotOffChip,
    /// A platform needs at least two layers for MHLA to have any freedom.
    TooFewLayers,
    /// Layers must get strictly faster (or equal) and smaller toward the CPU.
    NotMonotone {
        /// Index of the offending layer.
        layer: usize,
    },
}

impl fmt::Display for PlatformError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlatformError::FurthestLayerNotOffChip => {
                write!(f, "layer 0 must be an off-chip memory")
            }
            PlatformError::TooFewLayers => {
                write!(f, "a platform needs at least two memory layers")
            }
            PlatformError::NotMonotone { layer } => write!(
                f,
                "layer {layer} is slower or more energy-hungry than the layer below it"
            ),
        }
    }
}

impl Error for PlatformError {}

/// A complete machine description: ordered memory layers, optional DMA
/// engine, and CPU model.
///
/// Layer 0 is the off-chip main memory; the last layer is closest to the
/// CPU. Use the presets ([`embedded_default`](Self::embedded_default),
/// [`three_level`](Self::three_level), …) or [`Platform::new`] for custom
/// stacks.
#[derive(Clone, PartialEq, Debug)]
pub struct Platform {
    name: String,
    layers: Vec<MemoryLayer>,
    dma: Option<DmaModel>,
    cpu: CpuModel,
}

impl Platform {
    /// Builds a platform from an ordered layer stack (furthest first).
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError`] when the stack is malformed: fewer than two
    /// layers, layer 0 not off-chip, or energy/latency not monotonically
    /// non-increasing toward the CPU.
    pub fn new(
        name: impl Into<String>,
        layers: Vec<MemoryLayer>,
        dma: Option<DmaModel>,
        cpu: CpuModel,
    ) -> Result<Self, PlatformError> {
        if layers.len() < 2 {
            return Err(PlatformError::TooFewLayers);
        }
        if layers[0].kind != LayerKind::OffChipSdram || layers[0].capacity.is_some() {
            return Err(PlatformError::FurthestLayerNotOffChip);
        }
        for i in 1..layers.len() {
            let closer = &layers[i];
            let further = &layers[i - 1];
            if closer.access_cycles > further.access_cycles
                || closer.read_energy_pj > further.read_energy_pj
            {
                return Err(PlatformError::NotMonotone { layer: i });
            }
        }
        Ok(Platform {
            name: name.into(),
            layers,
            dma,
            cpu,
        })
    }

    /// Builds a platform from parts *without* the monotonicity check of
    /// [`Platform::new`] — the ingress constructor of the serialization
    /// layer. Grid sweeps legitimately visit non-pyramidal stacks
    /// ([`with_layer_capacities`](Self::with_layer_capacities) deliberately
    /// skips re-validation), so a serialized platform must round-trip them.
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError`] for stacks no caller may build: fewer than
    /// two layers, or layer 0 not the unbounded off-chip memory.
    pub fn from_parts(
        name: impl Into<String>,
        layers: Vec<MemoryLayer>,
        dma: Option<DmaModel>,
        cpu: CpuModel,
    ) -> Result<Self, PlatformError> {
        if layers.len() < 2 {
            return Err(PlatformError::TooFewLayers);
        }
        if layers[0].kind != LayerKind::OffChipSdram || layers[0].capacity.is_some() {
            return Err(PlatformError::FurthestLayerNotOffChip);
        }
        Ok(Platform {
            name: name.into(),
            layers,
            dma,
            cpu,
        })
    }

    /// The paper's default platform: off-chip SDRAM + one on-chip
    /// scratchpad of `scratchpad_bytes`, single-channel DMA.
    ///
    /// # Panics
    ///
    /// Panics if `scratchpad_bytes` is zero.
    // The `expect` implements the documented size-precondition panic of
    // this in-process preset constructor; nothing else about the fixed
    // stack can be rejected. Serialized (hostile) ingress never reaches
    // it — `from_parts` returns typed errors instead.
    #[allow(clippy::expect_used)]
    pub fn embedded_default(scratchpad_bytes: u64) -> Self {
        Platform::new(
            format!("embedded-spm{}", scratchpad_bytes / 1024),
            vec![
                MemoryLayer::off_chip_sdram(),
                MemoryLayer::scratchpad(scratchpad_bytes),
            ],
            Some(DmaModel::single_channel()),
            CpuModel::default(),
        )
        .expect("default platform is well-formed")
    }

    /// A three-level hierarchy: SDRAM + large L2 scratchpad + small L1
    /// scratchpad.
    ///
    /// # Panics
    ///
    /// Panics if `l1_bytes >= l2_bytes` (the stack would not be a pyramid)
    /// or either size is zero.
    // The `expect` implements the documented size-precondition panic of
    // this in-process preset constructor; nothing else about the fixed
    // stack can be rejected. Serialized (hostile) ingress never reaches
    // it — `from_parts` returns typed errors instead.
    #[allow(clippy::expect_used)]
    pub fn three_level(l2_bytes: u64, l1_bytes: u64) -> Self {
        assert!(
            l1_bytes < l2_bytes,
            "L1 ({l1_bytes} B) must be smaller than L2 ({l2_bytes} B)"
        );
        Platform::new(
            format!("embedded-l2-{}k-l1-{}k", l2_bytes / 1024, l1_bytes / 1024),
            vec![
                MemoryLayer::off_chip_sdram(),
                MemoryLayer::scratchpad(l2_bytes),
                MemoryLayer::scratchpad(l1_bytes),
            ],
            Some(DmaModel::single_channel()),
            CpuModel::default(),
        )
        .expect("three-level platform is well-formed")
    }

    /// [`three_level`](Self::three_level) with representative default
    /// sizes: a 64 KiB L2 above a 4 KiB L1 — the base platform of the
    /// multi-layer (L1×L2) grid exploration.
    pub fn three_level_default() -> Self {
        Platform::three_level(64 * 1024, 4 * 1024)
    }

    /// A four-level hierarchy: SDRAM + L3 + L2 + L1 scratchpads — the deep
    /// stack of the L1×L2×L3 grid exploration (`M1` = L3 is the largest
    /// on-chip layer, `M3` = L1 the closest).
    ///
    /// Passing `l3_bytes == 0` collapses the stack to
    /// [`three_level`](Self::three_level)`(l2_bytes, l1_bytes)`: a
    /// zero-byte scratchpad is no scratchpad, and the differential tests
    /// rely on the degenerate preset reproducing the three-level results
    /// exactly.
    ///
    /// # Panics
    ///
    /// Panics if the sizes do not form a pyramid
    /// (`l1 < l2 < l3` with `l1`, `l2` nonzero).
    // The `expect` implements the documented size-precondition panic of
    // this in-process preset constructor; nothing else about the fixed
    // stack can be rejected. Serialized (hostile) ingress never reaches
    // it — `from_parts` returns typed errors instead.
    #[allow(clippy::expect_used)]
    pub fn four_level(l3_bytes: u64, l2_bytes: u64, l1_bytes: u64) -> Self {
        if l3_bytes == 0 {
            return Platform::three_level(l2_bytes, l1_bytes);
        }
        assert!(
            l1_bytes < l2_bytes && l2_bytes < l3_bytes,
            "four-level stack must be a pyramid: L1 ({l1_bytes} B) < L2 \
             ({l2_bytes} B) < L3 ({l3_bytes} B)"
        );
        Platform::new(
            format!(
                "embedded-l3-{}k-l2-{}k-l1-{}k",
                l3_bytes / 1024,
                l2_bytes / 1024,
                l1_bytes / 1024
            ),
            vec![
                MemoryLayer::off_chip_sdram(),
                MemoryLayer::scratchpad(l3_bytes),
                MemoryLayer::scratchpad(l2_bytes),
                MemoryLayer::scratchpad(l1_bytes),
            ],
            Some(DmaModel::single_channel()),
            CpuModel::default(),
        )
        .expect("four-level platform is well-formed")
    }

    /// [`four_level`](Self::four_level) with representative default sizes:
    /// a 32 KiB L3 above an 8 KiB L2 above a 1 KiB L1 — the base platform
    /// of the pruned L1×L2×L3 grid exploration.
    pub fn four_level_default() -> Self {
        Platform::four_level(32 * 1024, 8 * 1024, 1024)
    }

    /// Same as [`embedded_default`](Self::embedded_default) but without a
    /// memory transfer engine. Copies must run on the CPU and Time
    /// Extensions are not applicable (paper, §1).
    pub fn without_dma(scratchpad_bytes: u64) -> Self {
        let mut p = Self::embedded_default(scratchpad_bytes);
        p.dma = None;
        p.name = format!("embedded-nodma-spm{}", scratchpad_bytes / 1024);
        p
    }

    /// Platform name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The layers, furthest (off-chip) first.
    pub fn layers(&self) -> impl Iterator<Item = (LayerId, &MemoryLayer)> {
        self.layers.iter().enumerate().map(|(i, l)| (LayerId(i), l))
    }

    /// Looks up one layer.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn layer(&self, id: LayerId) -> &MemoryLayer {
        &self.layers[id.0]
    }

    /// Number of layers.
    pub fn layer_count(&self) -> usize {
        self.layers.len()
    }

    /// The off-chip layer (always `LayerId(0)`).
    pub fn furthest(&self) -> LayerId {
        LayerId(0)
    }

    /// The layer closest to the CPU.
    pub fn closest(&self) -> LayerId {
        LayerId(self.layers.len() - 1)
    }

    /// On-chip layers (everything above the off-chip memory).
    pub fn on_chip_layers(&self) -> impl Iterator<Item = (LayerId, &MemoryLayer)> {
        self.layers().skip(1)
    }

    /// Total on-chip capacity in bytes.
    pub fn on_chip_capacity(&self) -> u64 {
        self.on_chip_layers()
            .map(|(_, l)| l.capacity.unwrap_or(0))
            .sum()
    }

    /// The DMA engine, if the platform has one.
    pub fn dma(&self) -> Option<&DmaModel> {
        self.dma.as_ref()
    }

    /// The CPU model.
    pub fn cpu(&self) -> &CpuModel {
        &self.cpu
    }

    /// Returns a copy with the scratchpad at `layer` resized to
    /// `capacity_bytes` (energy/latency re-derived). Used by the capacity
    /// sweep of the trade-off exploration.
    ///
    /// # Panics
    ///
    /// Panics if `layer` is the off-chip layer or out of range, or if
    /// `capacity_bytes` is zero.
    pub fn with_layer_capacity(&self, layer: LayerId, capacity_bytes: u64) -> Self {
        assert!(layer.0 != 0, "cannot resize the off-chip layer");
        let mut p = self.clone();
        p.layers[layer.0] = MemoryLayer::scratchpad(capacity_bytes);
        p.name = format!("{}@{}", self.name, p.layers[layer.0].name);
        p
    }

    /// Returns a copy with several scratchpad layers resized at once
    /// (energy/latency re-derived per layer) — one point of an
    /// N-dimensional layer-size grid sweep. Like
    /// [`with_layer_capacity`](Self::with_layer_capacity), the stack is
    /// *not* re-validated: grid callers pick their own axes, including
    /// deliberately non-pyramidal ones.
    ///
    /// # Panics
    ///
    /// Panics if any layer is the off-chip layer or out of range, or any
    /// capacity is zero.
    pub fn with_layer_capacities(&self, sizes: &[(LayerId, u64)]) -> Self {
        let mut p = self.clone();
        let mut name = self.name.clone();
        for &(layer, capacity_bytes) in sizes {
            assert!(layer.0 != 0, "cannot resize the off-chip layer");
            p.layers[layer.0] = MemoryLayer::scratchpad(capacity_bytes);
            name = format!("{name}@{}", p.layers[layer.0].name);
        }
        p.name = name;
        p
    }

    /// Resizes the scratchpad at `layer` **in place** — the
    /// allocation-free counterpart of
    /// [`with_layer_capacity`](Self::with_layer_capacity) for the sweep
    /// engine's per-grid-point hot path. Every field the cost model
    /// reads is re-derived exactly as the allocating constructor would
    /// (see [`MemoryLayer::resize_scratchpad`]); the platform and layer
    /// *names* are left untouched, so results are bit-identical but
    /// display output is not — keep one reusable platform per worker and
    /// never surface it.
    ///
    /// # Panics
    ///
    /// Panics if `layer` is the off-chip layer or out of range, or if
    /// `capacity_bytes` is zero.
    pub fn set_layer_capacity(&mut self, layer: LayerId, capacity_bytes: u64) {
        assert!(layer.0 != 0, "cannot resize the off-chip layer");
        self.layers[layer.0].resize_scratchpad(capacity_bytes);
    }

    /// Resizes several scratchpad layers in place at once — one point of
    /// an N-dimensional grid sweep without the per-point clone of
    /// [`with_layer_capacities`](Self::with_layer_capacities). Same
    /// name-staleness caveat as
    /// [`set_layer_capacity`](Self::set_layer_capacity).
    ///
    /// # Panics
    ///
    /// Panics if any layer is the off-chip layer or out of range, or any
    /// capacity is zero.
    pub fn set_layer_capacities(&mut self, sizes: &[(LayerId, u64)]) {
        for &(layer, capacity_bytes) in sizes {
            self.set_layer_capacity(layer, capacity_bytes);
        }
    }

    /// CPU-visible cycles for one access to `layer`.
    pub fn access_cycles(&self, layer: LayerId) -> u64 {
        self.cpu.access_overhead_cycles + self.layer(layer).access_cycles
    }
}

impl fmt::Display for Platform {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "platform {} {{", self.name)?;
        for (id, l) in self.layers() {
            writeln!(f, "  {id}: {l}")?;
        }
        match &self.dma {
            Some(d) => writeln!(
                f,
                "  dma: {} ch, {} setup cyc, {} B/cyc",
                d.channels, d.setup_cycles, d.bytes_per_cycle
            )?,
            None => writeln!(f, "  dma: none (TE not applicable)")?,
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_platform_shape() {
        let p = Platform::embedded_default(16 * 1024);
        assert_eq!(p.layer_count(), 2);
        assert_eq!(p.furthest(), LayerId(0));
        assert_eq!(p.closest(), LayerId(1));
        assert_eq!(p.on_chip_capacity(), 16 * 1024);
        assert!(p.dma().is_some());
    }

    #[test]
    fn three_level_is_a_pyramid() {
        let p = Platform::three_level(64 * 1024, 4 * 1024);
        assert_eq!(p.layer_count(), 3);
        let caps: Vec<_> = p.layers().map(|(_, l)| l.capacity).collect();
        assert_eq!(caps, vec![None, Some(64 * 1024), Some(4 * 1024)]);
        // Energy strictly decreases toward the CPU.
        let e: Vec<_> = p.layers().map(|(_, l)| l.read_energy_pj).collect();
        assert!(e[0] > e[1] && e[1] > e[2]);
    }

    #[test]
    #[should_panic(expected = "smaller than L2")]
    fn three_level_rejects_inverted_pyramid() {
        let _ = Platform::three_level(4 * 1024, 64 * 1024);
    }

    #[test]
    fn without_dma_disables_te_support() {
        let p = Platform::without_dma(8 * 1024);
        assert!(p.dma().is_none());
        assert!(p.to_string().contains("TE not applicable"));
    }

    #[test]
    fn constructor_rejects_malformed_stacks() {
        let cpu = CpuModel::default();
        assert_eq!(
            Platform::new("x", vec![MemoryLayer::off_chip_sdram()], None, cpu).unwrap_err(),
            PlatformError::TooFewLayers
        );
        assert_eq!(
            Platform::new(
                "x",
                vec![MemoryLayer::scratchpad(1024), MemoryLayer::scratchpad(512)],
                None,
                cpu
            )
            .unwrap_err(),
            PlatformError::FurthestLayerNotOffChip
        );
        // A huge scratchpad above a small one is slower toward the CPU.
        assert_eq!(
            Platform::new(
                "x",
                vec![
                    MemoryLayer::off_chip_sdram(),
                    MemoryLayer::scratchpad(1024),
                    MemoryLayer::scratchpad(1024 * 1024),
                ],
                None,
                cpu
            )
            .unwrap_err(),
            PlatformError::NotMonotone { layer: 2 }
        );
    }

    #[test]
    fn resize_rederives_layer_parameters() {
        let p = Platform::embedded_default(4 * 1024);
        let big = p.with_layer_capacity(LayerId(1), 64 * 1024);
        assert_eq!(big.layer(LayerId(1)).capacity, Some(64 * 1024));
        assert!(
            big.layer(LayerId(1)).read_energy_pj > p.layer(LayerId(1)).read_energy_pj,
            "bigger scratchpad costs more per access"
        );
        assert_eq!(big.layer(LayerId(0)), p.layer(LayerId(0)));
    }

    #[test]
    #[should_panic(expected = "off-chip")]
    fn resize_rejects_off_chip_layer() {
        let p = Platform::embedded_default(4 * 1024);
        let _ = p.with_layer_capacity(LayerId(0), 1024);
    }

    #[test]
    fn multi_layer_resize_rederives_each_layer() {
        let p = Platform::three_level_default();
        let q = p.with_layer_capacities(&[(LayerId(1), 32 * 1024), (LayerId(2), 2 * 1024)]);
        assert_eq!(q.layer(LayerId(1)).capacity, Some(32 * 1024));
        assert_eq!(q.layer(LayerId(2)).capacity, Some(2 * 1024));
        assert_eq!(q.layer(LayerId(0)), p.layer(LayerId(0)));
        assert_eq!(
            q.layer(LayerId(2)),
            &MemoryLayer::scratchpad(2 * 1024),
            "parameters re-derived from the scaling laws"
        );
        assert!(q.name().contains("SPM-32K") && q.name().contains("SPM-2K"));
        // Resizing one layer leaves the other untouched.
        let r = p.with_layer_capacities(&[(LayerId(2), 512)]);
        assert_eq!(r.layer(LayerId(1)), p.layer(LayerId(1)));
    }

    #[test]
    #[should_panic(expected = "off-chip")]
    fn multi_layer_resize_rejects_off_chip_layer() {
        let p = Platform::three_level_default();
        let _ = p.with_layer_capacities(&[(LayerId(0), 1024)]);
    }

    #[test]
    fn in_place_resize_matches_allocating_resize_except_names() {
        let base = Platform::three_level_default();
        let sizes = [(LayerId(1), 32 * 1024), (LayerId(2), 2 * 1024)];
        let fresh = base.with_layer_capacities(&sizes);
        let mut reused = base.clone();
        // Resize twice to a detour first: steady-state reuse must not
        // depend on the starting capacities.
        reused.set_layer_capacities(&[(LayerId(1), 128 * 1024), (LayerId(2), 512)]);
        reused.set_layer_capacities(&sizes);
        for (id, l) in fresh.layers() {
            let r = reused.layer(id);
            assert_eq!((r.kind, r.capacity), (l.kind, l.capacity), "{id}");
            assert_eq!(r.read_energy_pj, l.read_energy_pj, "{id}");
            assert_eq!(r.write_energy_pj, l.write_energy_pj, "{id}");
            assert_eq!(r.burst_energy_pj, l.burst_energy_pj, "{id}");
            assert_eq!(r.access_cycles, l.access_cycles, "{id}");
            assert_eq!(r.burst_bytes_per_cycle, l.burst_bytes_per_cycle, "{id}");
        }
        assert_eq!(reused.name(), base.name(), "names stay stale by design");
    }

    #[test]
    #[should_panic(expected = "off-chip")]
    fn in_place_resize_rejects_off_chip_layer() {
        let mut p = Platform::three_level_default();
        p.set_layer_capacity(LayerId(0), 1024);
    }

    #[test]
    fn four_level_is_a_pyramid_with_dma() {
        let p = Platform::four_level(32 * 1024, 8 * 1024, 1024);
        assert_eq!(p.layer_count(), 4);
        let caps: Vec<_> = p.layers().map(|(_, l)| l.capacity).collect();
        assert_eq!(
            caps,
            vec![None, Some(32 * 1024), Some(8 * 1024), Some(1024)]
        );
        // Energy strictly decreases toward the CPU.
        let e: Vec<_> = p.layers().map(|(_, l)| l.read_energy_pj).collect();
        assert!(e[0] > e[1] && e[1] > e[2] && e[2] >= e[3]);
        assert!(p.dma().is_some());
        assert_eq!(p, Platform::four_level_default());
    }

    #[test]
    fn four_level_with_zero_l3_collapses_to_three_level() {
        let p = Platform::four_level(0, 8 * 1024, 1024);
        assert_eq!(p, Platform::three_level(8 * 1024, 1024));
        assert_eq!(p.layer_count(), 3);
    }

    #[test]
    #[should_panic(expected = "pyramid")]
    fn four_level_rejects_inverted_pyramid() {
        let _ = Platform::four_level(8 * 1024, 32 * 1024, 1024);
    }

    #[test]
    fn three_level_default_is_a_64k_4k_pyramid() {
        let p = Platform::three_level_default();
        assert_eq!(p.layer(LayerId(1)).capacity, Some(64 * 1024));
        assert_eq!(p.layer(LayerId(2)).capacity, Some(4 * 1024));
        assert!(p.dma().is_some());
    }

    #[test]
    fn access_cycles_include_cpu_overhead() {
        let mut p = Platform::embedded_default(4 * 1024);
        assert_eq!(p.access_cycles(LayerId(1)), 1);
        p.cpu.access_overhead_cycles = 1;
        assert_eq!(p.access_cycles(LayerId(1)), 2);
    }

    #[test]
    fn display_lists_layers() {
        let text = Platform::embedded_default(16 * 1024).to_string();
        assert!(text.contains("M0: SDRAM"), "{text}");
        assert!(text.contains("M1: SPM-16K"), "{text}");
        assert!(text.contains("dma: 1 ch"), "{text}");
    }
}
