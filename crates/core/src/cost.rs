//! Static cost model: cycles, energy and capacity usage of an assignment.
//!
//! The model follows the paper's conventions:
//!
//! * **Energy counts memory-hierarchy accesses only** ("in our models we
//!   only consider accesses to the memory hierarchy") — CPU datapath energy
//!   is out of scope, and Time Extensions therefore cannot change energy.
//! * **Cycles** decompose into pure compute, CPU access latency, and block-
//!   transfer time. The step-1 estimate charges the full transfer time as
//!   stall (the CPU waits at each block transfer); the *ideal* bound
//!   charges none of it (every transfer hidden — the paper's "0 wait
//!   cycles block transfer time" line in Figure 2). The TE step and the
//!   simulator land in between.

use std::borrow::Cow;
use std::cell::RefCell;
use std::collections::HashMap;

use mhla_hierarchy::{LayerId, Platform};
use mhla_ir::{AccessKind, ArrayId, LoopId, NodeId, Program, ProgramInfo, StmtId, Timeline};
use mhla_lifetime::{peak_occupancy, Resident};
use mhla_reuse::{CandidateId, CopyCandidate, ReuseAnalysis};

use crate::classify::ArrayClass;
use crate::context::ProgramFacts;
use crate::types::{Assignment, AssignmentError, SelectedCopy, TransferPolicy};

/// One block-transfer stream: the transfer geometry of one selected copy.
#[derive(Clone, PartialEq, Debug)]
pub struct TransferStream {
    /// The copy this stream feeds.
    pub copy: SelectedCopy,
    /// Layer the data comes from (parent copy's layer or the array home).
    pub src: LayerId,
    /// Layer the copy buffer lives in.
    pub dst: LayerId,
    /// Loop owning the refreshes (`None` for the whole-array copy).
    pub owner: Option<LoopId>,
    /// Buffer size in bytes (one buffer).
    pub buffer_bytes: u64,
    /// Total BT instances per program run.
    pub entries: u64,
    /// How many of the `entries` are *first* entries (full fill); the rest
    /// are steady-state refreshes.
    pub first_entries: u64,
    /// Bytes of a first (full) transfer.
    pub full_bytes: u64,
    /// Bytes of a steady-state transfer under the active policy
    /// (= `full_bytes` for [`TransferPolicy::FullRefresh`]).
    pub steady_bytes: u64,
    /// Write-back bytes per entry (0 for read-only regions).
    pub writeback_bytes: u64,
}

impl TransferStream {
    /// Total bytes moved per program run (fills + refreshes + write-backs).
    pub fn total_bytes(&self) -> u64 {
        self.first_entries * self.full_bytes
            + (self.entries - self.first_entries) * self.steady_bytes
            + self.entries * self.writeback_bytes
    }
}

/// Per-layer capacity usage of an assignment.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct LayerUsage {
    /// The layer.
    pub layer: LayerId,
    /// Bytes required after in-place optimization (peak concurrent live).
    pub required: u64,
    /// Bytes required without lifetime sharing (sum of resident sizes).
    pub without_inplace: u64,
    /// Layer capacity (`u64::MAX` for unbounded off-chip).
    pub capacity: u64,
}

impl LayerUsage {
    /// Whether the residents fit.
    pub fn fits(&self) -> bool {
        self.required <= self.capacity
    }
}

/// Cycle and energy totals of an assignment under the static model.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct CostBreakdown {
    /// Pure datapath cycles.
    pub compute_cycles: u64,
    /// CPU memory-access latency cycles.
    pub cpu_access_cycles: u64,
    /// Block-transfer cycles, charged as stall in the step-1 estimate.
    pub transfer_cycles: u64,
    /// Block-transfer instances per program run.
    pub transfer_count: u64,
    /// Energy of CPU accesses, picojoule.
    pub cpu_access_energy_pj: f64,
    /// Energy of block transfers, picojoule.
    pub transfer_energy_pj: f64,
    /// CPU accesses per layer (indexed by layer).
    pub accesses_per_layer: Vec<u64>,
}

impl CostBreakdown {
    /// Step-1 estimate: every block transfer stalls the CPU.
    pub fn total_cycles(&self) -> u64 {
        self.compute_cycles + self.cpu_access_cycles + self.transfer_cycles
    }

    /// Ideal bound: every block transfer fully hidden (the paper's
    /// "0 wait cycles" line).
    pub fn ideal_cycles(&self) -> u64 {
        self.compute_cycles + self.cpu_access_cycles
    }

    /// Total memory energy, picojoule.
    pub fn total_energy_pj(&self) -> f64 {
        self.cpu_access_energy_pj + self.transfer_energy_pj
    }
}

/// The cost contribution of one array under one (home, copy-chain) state:
/// the CPU accesses it serves plus the block transfers of its chain.
///
/// [`CostModel::evaluate`] is the sum of these over all arrays (plus the
/// constant compute cycles); [`IncrementalCost`] re-prices only the touched
/// array's contribution per candidate move.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct ArrayContribution {
    /// CPU memory-access latency cycles of this array's accesses.
    pub cpu_access_cycles: u64,
    /// Energy of this array's CPU accesses, picojoule.
    pub cpu_access_energy_pj: f64,
    /// This array's CPU accesses per layer.
    pub accesses_per_layer: Vec<u64>,
    /// Block-transfer cycles of this array's chain.
    pub transfer_cycles: u64,
    /// Block-transfer energy of this array's chain, picojoule.
    pub transfer_energy_pj: f64,
    /// Block-transfer instances of this array's chain.
    pub transfer_count: u64,
    /// Per layer: how many *write-energy units* this contribution charges
    /// the layer — `∂(energy)/∂(write energy of the layer)` under the
    /// scratchpad scaling laws, where one CPU write or one DMA burst
    /// element-end counts 1 and one CPU read counts
    /// `1 / SRAM_WRITE_FACTOR` (reads scale in lock-step with writes:
    /// `E_w = 1.2·E_r`, and burst energy equals write energy). When a
    /// scratchpad layer is resized, this contribution's energy moves by
    /// exactly `Σ_l δw_l · energy_sensitivity[l]` with `δw_l` the layer's
    /// write-energy delta — the *gain-bound* data the pruned grid sweep's
    /// energy-side saturation rule is built on (see
    /// [`RunStats`](crate::RunStats)).
    pub energy_sensitivity: Vec<f64>,
}

impl ArrayContribution {
    /// Zeroes the contribution for `layers` layers, keeping the vector
    /// allocations — the workspace-reuse paths re-price contributions in
    /// place instead of building fresh ones per candidate move.
    pub(crate) fn reset(&mut self, layers: usize) {
        self.cpu_access_cycles = 0;
        self.cpu_access_energy_pj = 0.0;
        self.transfer_cycles = 0;
        self.transfer_energy_pj = 0.0;
        self.transfer_count = 0;
        self.accesses_per_layer.clear();
        self.accesses_per_layer.resize(layers, 0);
        self.energy_sensitivity.clear();
        self.energy_sensitivity.resize(layers, 0.0);
    }
}

impl CostBreakdown {
    /// Adds one array's contribution to the running totals.
    ///
    /// Summation order is canonical (ascending array index) in both
    /// [`CostModel::evaluate`] and [`IncrementalCost`], so incremental
    /// totals are bit-for-bit identical to the oracle's — including the
    /// floating-point energy fields.
    fn absorb(&mut self, c: &ArrayContribution) {
        self.cpu_access_cycles += c.cpu_access_cycles;
        self.cpu_access_energy_pj += c.cpu_access_energy_pj;
        self.transfer_cycles += c.transfer_cycles;
        self.transfer_energy_pj += c.transfer_energy_pj;
        self.transfer_count += c.transfer_count;
        for (total, &a) in self
            .accesses_per_layer
            .iter_mut()
            .zip(&c.accesses_per_layer)
        {
            *total += a;
        }
    }
}

/// Capacity-independent geometry of one candidate's block-transfer
/// stream: entry counts and byte volumes, everything of a
/// [`TransferStream`] that does not depend on the chain's layers or the
/// active refresh policy.
///
/// Derived by [`stream_template`]; the [`ExplorationContext`]
/// (`crate::ExplorationContext`) caches one per candidate so sweeps do not
/// re-derive them per point.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) struct StreamTemplate {
    /// Total BT instances per program run.
    pub(crate) entries: u64,
    /// How many of the `entries` are *first* entries (full fill).
    pub(crate) first_entries: u64,
    /// Bytes of a first (full) transfer.
    pub(crate) full_bytes: u64,
    /// Steady-state bytes under [`TransferPolicy::SlidingDelta`].
    pub(crate) delta_bytes: u64,
    /// Write-back bytes per entry (0 for read-only regions).
    pub(crate) writeback_bytes: u64,
}

impl StreamTemplate {
    /// Steady-state transfer bytes under a refresh policy.
    pub(crate) fn steady_bytes(&self, policy: TransferPolicy) -> u64 {
        match policy {
            TransferPolicy::FullRefresh => self.full_bytes,
            TransferPolicy::SlidingDelta => self.delta_bytes,
        }
    }
}

/// Derives one candidate's [`StreamTemplate`] (`elem` is the array's
/// element size in bytes). The single source of the transfer geometry:
/// both the inline per-assignment derivation and the context cache call
/// this, so cached and uncached paths are identical by construction.
pub(crate) fn stream_template(
    info: &ProgramInfo<'_>,
    cc: &CopyCandidate,
    elem: u64,
) -> StreamTemplate {
    let (entries, first_entries) = match cc.at_loop {
        Some(l) => (cc.entries, info.loop_entries(l)),
        None => (1, 1),
    };
    let full_bytes = cc.bytes;
    let delta_bytes = if cc.footprint.exact {
        cc.footprint.delta_elements() * elem
    } else {
        full_bytes
    };
    let writeback_bytes = (cc.writebacks * elem).checked_div(entries).unwrap_or(0);
    StreamTemplate {
        entries,
        first_entries: first_entries.min(entries),
        full_bytes,
        delta_bytes,
        writeback_bytes,
    }
}

/// Capacity-monotone lower bounds on the cost of *any* assignment of a
/// (program, platform) pair — the lower-bound hook of the pruned grid
/// sweep ([`explore`](crate::explore)).
///
/// Derivation: `mhla_te_cycles = compute + CPU access cycles + residual
/// stalls ≥ compute + Σ execs · min-layer access cycles`, and `energy =
/// CPU access energy + transfer energy ≥ Σ execs · min-layer access
/// energy` (per access direction; transfers ≥ 0). Both minima are taken
/// over every layer of the platform, so the bounds hold regardless of
/// which layers serve which accesses. They are monotone in the layer
/// capacities (the scaling laws never get cheaper as a layer grows), so a
/// grid point whose *floor* is already dominated by an evaluated point
/// with componentwise-smaller capacities can be skipped losslessly.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct CostFloor {
    /// No assignment on this platform finishes in fewer cycles.
    pub cycles: u64,
    /// No assignment on this platform uses less memory energy, picojoule.
    pub energy_pj: f64,
}

/// Allocation-free [`CostFloor`] evaluator for a grid sweep: everything
/// capacity-*invariant* (the program's access totals, the CPU overhead,
/// and the cost minima over the non-axis layers) is folded once at
/// construction, so probing the floor at a grid point is a handful of
/// arithmetic ops over the axis capacities — no [`CostModel`], no resized
/// [`Platform`], no allocation.
///
/// Bit-identity: [`Platform::with_layer_capacities`] re-derives every
/// resized layer's parameters from the same scaling laws
/// ([`mhla_hierarchy::energy::sram_access_cycles`],
/// [`mhla_hierarchy::energy::sram_read_pj`],
/// [`mhla_hierarchy::energy::sram_write_pj`]) this
/// probe applies, `min` over `u64`/finite `f64` is order-insensitive and
/// exact, and `min_i (overhead + x_i) = overhead + min_i x_i` — so
/// [`floor_at`](FloorProbe::floor_at) equals
/// [`CostModel::cost_floor`] on the correspondingly resized platform,
/// bit for bit. Requires distinct axis layers (a repeated layer would
/// fold both trial capacities where the resized platform keeps only the
/// last); the sweep entry points guarantee this after capacity cleaning.
#[derive(Clone, PartialEq, Debug)]
pub struct FloorProbe {
    total_compute: u64,
    total_read_execs: u64,
    total_write_execs: u64,
    overhead: u64,
    base_access: u64,
    base_read: f64,
    base_write: f64,
}

impl FloorProbe {
    /// Folds the capacity-invariant floor inputs: program access totals
    /// from `facts`, CPU overhead and fixed-layer minima from `platform`,
    /// leaving only the `axis_layers` to be priced per probe.
    pub fn new(facts: &ProgramFacts<'_>, platform: &Platform, axis_layers: &[LayerId]) -> Self {
        debug_assert!(
            axis_layers
                .iter()
                .enumerate()
                .all(|(i, l)| !axis_layers[..i].contains(l)),
            "FloorProbe requires distinct axis layers"
        );
        let mut base_access = u64::MAX;
        let (mut base_read, mut base_write) = (f64::INFINITY, f64::INFINITY);
        for (lid, layer) in platform.layers() {
            if axis_layers.contains(&lid) {
                continue;
            }
            base_access = base_access.min(layer.access_cycles);
            base_read = base_read.min(layer.read_energy_pj);
            base_write = base_write.min(layer.write_energy_pj);
        }
        FloorProbe {
            total_compute: facts.total_compute,
            total_read_execs: facts.total_read_execs,
            total_write_execs: facts.total_write_execs,
            overhead: platform.cpu().access_overhead_cycles,
            base_access,
            base_read,
            base_write,
        }
    }

    /// The [`CostFloor`] at the grid point where the axis layers hold
    /// `caps` (aligned with the `axis_layers` of construction). Equals
    /// [`CostModel::cost_floor`] on the resized platform. Because the
    /// floor is monotone nondecreasing in every capacity, calling this at
    /// the *minimal corner* of a capacity box lower-bounds the whole box.
    pub fn floor_at(&self, caps: &[u64]) -> CostFloor {
        use mhla_hierarchy::energy::{sram_access_cycles, sram_read_pj, sram_write_pj};
        let mut min_access = self.base_access;
        let (mut min_read, mut min_write) = (self.base_read, self.base_write);
        for &c in caps {
            min_access = min_access.min(sram_access_cycles(c));
            min_read = min_read.min(sram_read_pj(c));
            min_write = min_write.min(sram_write_pj(c));
        }
        let accesses = self.total_read_execs + self.total_write_execs;
        CostFloor {
            cycles: self.total_compute + accesses * (self.overhead + min_access),
            energy_pj: self.total_read_execs as f64 * min_read
                + self.total_write_execs as f64 * min_write,
        }
    }
}

/// Static estimator for a fixed (program, platform) pair.
///
/// Construction caches the derived program facts ([`ProgramFacts`]:
/// `ProgramInfo`, timeline, per-array access lists);
/// [`evaluate`](CostModel::evaluate) then prices any assignment in
/// `O(accesses + copies)` with no re-analysis. Sweeps build the facts once
/// per program through an [`ExplorationContext`](crate::ExplorationContext)
/// and *borrow* them here ([`with_facts`](CostModel::with_facts)), so a
/// per-platform model costs nothing to construct.
#[derive(Debug)]
pub struct CostModel<'a> {
    program: &'a Program,
    platform: &'a Platform,
    reuse: &'a ReuseAnalysis,
    facts: Cow<'a, ProgramFacts<'a>>,
}

impl<'a> CostModel<'a> {
    /// Builds a cost model, deriving the program facts from scratch.
    pub fn new(
        program: &'a Program,
        platform: &'a Platform,
        reuse: &'a ReuseAnalysis,
        classes: Vec<ArrayClass>,
    ) -> Self {
        CostModel {
            program,
            platform,
            reuse,
            facts: Cow::Owned(ProgramFacts::new(program, reuse, classes)),
        }
    }

    /// Builds a cost model over shared, pre-derived program facts — the
    /// fast path of the capacity/grid sweeps. The facts must describe
    /// `program` (the [`ExplorationContext`](crate::ExplorationContext)
    /// guarantees this).
    pub fn with_facts(
        program: &'a Program,
        platform: &'a Platform,
        reuse: &'a ReuseAnalysis,
        facts: &'a ProgramFacts<'a>,
    ) -> Self {
        CostModel {
            program,
            platform,
            reuse,
            facts: Cow::Borrowed(facts),
        }
    }

    /// The analysed program.
    pub fn program(&self) -> &'a Program {
        self.program
    }

    /// The platform being priced against.
    pub fn platform(&self) -> &'a Platform {
        self.platform
    }

    /// The reuse analysis in use.
    pub fn reuse(&self) -> &'a ReuseAnalysis {
        self.reuse
    }

    /// Array classes (external/internal) in array order.
    pub fn classes(&self) -> &[ArrayClass] {
        &self.facts.classes
    }

    /// The program's logical timeline.
    pub fn timeline(&self) -> &Timeline {
        &self.facts.timeline
    }

    /// The cached structural facts of the program.
    pub fn info(&self) -> &ProgramInfo<'a> {
        &self.facts.info
    }

    /// The full shared fact bundle this model prices against.
    pub fn facts(&self) -> &ProgramFacts<'a> {
        &self.facts
    }

    /// The platform's [`CostFloor`]: capacity-monotone lower bounds on any
    /// assignment's cycles and energy. `O(layers)` — the access totals are
    /// cached in the program facts.
    pub fn cost_floor(&self) -> CostFloor {
        let mut min_cycles = u64::MAX;
        let (mut min_read, mut min_write) = (f64::INFINITY, f64::INFINITY);
        for (lid, layer) in self.platform.layers() {
            min_cycles = min_cycles.min(self.platform.access_cycles(lid));
            min_read = min_read.min(layer.read_energy_pj);
            min_write = min_write.min(layer.write_energy_pj);
        }
        let accesses = self.facts.total_read_execs + self.facts.total_write_execs;
        CostFloor {
            cycles: self.facts.total_compute + accesses * min_cycles,
            energy_pj: self.facts.total_read_execs as f64 * min_read
                + self.facts.total_write_execs as f64 * min_write,
        }
    }

    /// The cached freedom loops of a candidate, when an
    /// [`ExplorationContext`](crate::ExplorationContext) populated the TE
    /// cache; `None` on the standalone path (the TE planner then derives
    /// them on the fly).
    pub(crate) fn cached_freedom(&self, id: CandidateId) -> Option<&[LoopId]> {
        self.facts
            .te
            .as_ref()
            .map(|te| te.freedom[id.array.index()][id.index].as_slice())
    }

    /// One candidate's transfer geometry: from the context cache when
    /// present, derived on the fly otherwise (identical by construction —
    /// both go through [`stream_template`]).
    fn template(&self, id: CandidateId, cc: &CopyCandidate, elem: u64) -> StreamTemplate {
        match &self.facts.te {
            Some(te) => te.geometry[id.array.index()][id.index],
            None => stream_template(&self.facts.info, cc, elem),
        }
    }

    /// The layer serving a given access of a statement: the innermost
    /// selected copy whose region covers the statement, or the array home.
    pub fn serving_layer(&self, assignment: &Assignment, stmt: StmtId, array: ArrayId) -> LayerId {
        let mut layer = assignment.home(array);
        for copy in assignment.copies() {
            if copy.candidate.array != array {
                continue;
            }
            let covers = match self.reuse.candidate(copy.candidate).at_loop {
                None => true,
                Some(l) => self.facts.info.encloses(l, NodeId::Stmt(stmt)),
            };
            if covers {
                layer = layer.max(copy.layer);
            }
        }
        layer
    }

    /// Appends the block-transfer streams of one array's copy chain
    /// (`chain` outermost first, as [`Assignment::copies_of`] returns it).
    fn chain_streams(
        &self,
        array: ArrayId,
        home: LayerId,
        chain: &[SelectedCopy],
        policy: TransferPolicy,
        out: &mut Vec<TransferStream>,
    ) {
        let elem = self.program.array(array).elem.bytes();
        let mut src = home;
        for &copy in chain {
            let cc = self.reuse.candidate(copy.candidate);
            let t = self.template(copy.candidate, cc, elem);
            out.push(TransferStream {
                copy,
                src,
                dst: copy.layer,
                owner: cc.at_loop,
                buffer_bytes: cc.bytes,
                entries: t.entries,
                first_entries: t.first_entries,
                full_bytes: t.full_bytes,
                steady_bytes: t.steady_bytes(policy),
                writeback_bytes: t.writeback_bytes,
            });
            src = copy.layer;
        }
    }

    /// Derives the block-transfer streams of an assignment: one per
    /// selected copy, with the source resolved through the chain.
    pub fn transfer_streams(&self, assignment: &Assignment) -> Vec<TransferStream> {
        let mut out = Vec::new();
        for aid in 0..assignment.array_count() {
            let array = ArrayId::from_index(aid);
            let chain = assignment.copies_of(array);
            self.chain_streams(
                array,
                assignment.home(array),
                &chain,
                assignment.policy(),
                &mut out,
            );
        }
        out
    }

    /// Cycles and energy to run one stream's transfers (all instances).
    fn price_stream(&self, s: &TransferStream) -> (u64, f64, u64) {
        let src = self.platform.layer(s.src);
        let dst = self.platform.layer(s.dst);
        let elem = self
            .program
            .array(s.copy.candidate.array)
            .elem
            .bytes()
            .max(1);
        let mut cycles = 0u64;
        let mut energy = 0f64;
        let mut count = 0u64;
        let steady_entries = s.entries - s.first_entries;
        match self.platform.dma() {
            Some(dma) => {
                for (n, bytes) in [
                    (s.first_entries, s.full_bytes),
                    (steady_entries, s.steady_bytes),
                    (s.entries, s.writeback_bytes),
                ] {
                    if n == 0 || bytes == 0 {
                        continue;
                    }
                    cycles += n * dma.transfer_cycles(bytes, src, dst);
                    energy += n as f64 * dma.transfer_energy_pj(bytes, elem, src, dst);
                    count += n;
                }
            }
            None => {
                // CPU-performed copy: element loads + stores, blocking.
                let per_elem_cycles =
                    self.platform.access_cycles(s.src) + self.platform.access_cycles(s.dst);
                let per_elem_energy = src.read_energy_pj + dst.write_energy_pj;
                for (n, bytes) in [
                    (s.first_entries, s.full_bytes),
                    (steady_entries, s.steady_bytes),
                    (s.entries, s.writeback_bytes),
                ] {
                    if n == 0 || bytes == 0 {
                        continue;
                    }
                    let elems = bytes / elem;
                    cycles += n * elems * per_elem_cycles;
                    energy += n as f64 * elems as f64 * per_elem_energy;
                    count += n;
                }
            }
        }
        (cycles, energy, count)
    }

    /// Prices one array's (home, chain) state: its CPU accesses plus its
    /// chain's block transfers. `chain` must be ordered outermost first
    /// (ascending layer), as [`Assignment::copies_of`] returns it.
    pub fn array_contribution(
        &self,
        array: ArrayId,
        home: LayerId,
        chain: &[SelectedCopy],
        policy: TransferPolicy,
    ) -> ArrayContribution {
        let mut c = ArrayContribution::default();
        let mut streams = Vec::new();
        self.array_contribution_into(array, home, chain, policy, &mut streams, &mut c);
        c
    }

    /// [`array_contribution`](Self::array_contribution) into caller-owned
    /// buffers: `out` is reset and re-priced in place, `streams` is a
    /// scratch the chain's transfer streams are staged in. The
    /// workspace-reuse evaluation paths price thousands of candidate
    /// moves through two long-lived allocations instead of two per move;
    /// the arithmetic (and its order) is exactly the allocating
    /// method's, so results are bit-identical.
    pub(crate) fn array_contribution_into(
        &self,
        array: ArrayId,
        home: LayerId,
        chain: &[SelectedCopy],
        policy: TransferPolicy,
        streams: &mut Vec<TransferStream>,
        out: &mut ArrayContribution,
    ) {
        let c = out;
        c.reset(self.platform.layer_count());
        for &(sid, kind) in &self.facts.array_accesses[array.index()] {
            let execs = self.facts.stmt_execs[sid.index()];
            let mut layer = home;
            for copy in chain {
                let covers = match self.reuse.candidate(copy.candidate).at_loop {
                    None => true,
                    Some(l) => self.facts.info.encloses(l, NodeId::Stmt(sid)),
                };
                if covers {
                    layer = layer.max(copy.layer);
                }
            }
            let l = self.platform.layer(layer);
            c.cpu_access_cycles += execs * self.platform.access_cycles(layer);
            c.cpu_access_energy_pj += execs as f64 * l.access_energy_pj(kind == AccessKind::Write);
            c.accesses_per_layer[layer.index()] += execs;
            c.energy_sensitivity[layer.index()] += if kind == AccessKind::Write {
                execs as f64
            } else {
                execs as f64 / mhla_hierarchy::energy::SRAM_WRITE_FACTOR
            };
        }
        streams.clear();
        self.chain_streams(array, home, chain, policy, streams);
        let has_dma = self.platform.dma().is_some();
        for stream in streams.iter() {
            let (cycles, energy, count) = self.price_stream(stream);
            c.transfer_cycles += cycles;
            c.transfer_energy_pj += energy;
            c.transfer_count += count;
            // Transfer sensitivity: each moved element is one read at the
            // source and one write at the destination — at burst energy
            // (= write energy) per end under DMA, at CPU read/write energy
            // on the CPU-copy path. Element counts mirror `price_stream`
            // exactly (integer division per instance kind).
            let elem = self
                .program
                .array(stream.copy.candidate.array)
                .elem
                .bytes()
                .max(1);
            let steady_entries = stream.entries - stream.first_entries;
            let mut elems = 0u64;
            for (n, bytes) in [
                (stream.first_entries, stream.full_bytes),
                (steady_entries, stream.steady_bytes),
                (stream.entries, stream.writeback_bytes),
            ] {
                if n == 0 || bytes == 0 {
                    continue;
                }
                elems += n * (bytes / elem);
            }
            let src_units = if has_dma {
                elems as f64
            } else {
                elems as f64 / mhla_hierarchy::energy::SRAM_WRITE_FACTOR
            };
            c.energy_sensitivity[stream.src.index()] += src_units;
            c.energy_sensitivity[stream.dst.index()] += elems as f64;
        }
    }

    /// The whole-assignment energy sensitivity: per layer, the sum of
    /// every array's [`ArrayContribution::energy_sensitivity`] — how many
    /// write-energy units the assignment's total energy moves per unit of
    /// the layer's write-energy delta. Used by the driver to record a
    /// decision margin for the baseline-fallback comparison.
    pub fn assignment_energy_sensitivity(&self, assignment: &Assignment) -> Vec<f64> {
        let mut sens = Vec::new();
        self.assignment_energy_sensitivity_into(assignment, &mut IncPool::default(), &mut sens);
        sens
    }

    /// [`assignment_energy_sensitivity`](CostModel::assignment_energy_sensitivity)
    /// accumulating into `out` through pooled scratch — the
    /// allocation-free variant of the driver's baseline-fallback margin
    /// computation. Bit-identical (same per-array summation order).
    pub(crate) fn assignment_energy_sensitivity_into(
        &self,
        assignment: &Assignment,
        pool: &mut IncPool,
        out: &mut Vec<f64>,
    ) {
        out.clear();
        out.resize(self.platform.layer_count(), 0.0);
        for aid in 0..assignment.array_count() {
            let array = ArrayId::from_index(aid);
            assignment.copies_of_into(array, &mut pool.chain);
            self.array_contribution_into(
                array,
                assignment.home(array),
                &pool.chain,
                assignment.policy(),
                &mut pool.streams,
                &mut pool.trial,
            );
            for (total, s) in out.iter_mut().zip(&pool.trial.energy_sensitivity) {
                *total += s;
            }
        }
    }

    /// Prices an assignment under the static model.
    ///
    /// This is the oracle the incremental evaluator is validated against:
    /// it sums [`array_contribution`](CostModel::array_contribution)s in
    /// ascending array order, the same canonical order
    /// [`IncrementalCost`] maintains.
    pub fn evaluate(&self, assignment: &Assignment) -> CostBreakdown {
        let mut b = CostBreakdown {
            compute_cycles: self.facts.total_compute,
            accesses_per_layer: vec![0; self.platform.layer_count()],
            ..CostBreakdown::default()
        };
        for aid in 0..assignment.array_count() {
            let array = ArrayId::from_index(aid);
            let chain = assignment.copies_of(array);
            b.absorb(&self.array_contribution(
                array,
                assignment.home(array),
                &chain,
                assignment.policy(),
            ));
        }
        b
    }

    /// [`evaluate`](CostModel::evaluate) pricing through pooled scratch
    /// buffers instead of per-array allocations. Bit-identical to
    /// `evaluate` (same contributions absorbed in the same ascending
    /// array order); used by the driver's result-assembly tail so the
    /// sweep hot path prices the direct-placement baseline without
    /// rebuilding chain/stream/contribution vectors per point.
    pub(crate) fn evaluate_in(&self, assignment: &Assignment, pool: &mut IncPool) -> CostBreakdown {
        let mut b = CostBreakdown {
            compute_cycles: self.facts.total_compute,
            accesses_per_layer: vec![0; self.platform.layer_count()],
            ..CostBreakdown::default()
        };
        for aid in 0..assignment.array_count() {
            let array = ArrayId::from_index(aid);
            assignment.copies_of_into(array, &mut pool.chain);
            self.array_contribution_into(
                array,
                assignment.home(array),
                &pool.chain,
                assignment.policy(),
                &mut pool.streams,
                &mut pool.trial,
            );
            b.absorb(&pool.trial);
        }
        b
    }

    /// CPU cycles of ONE iteration of `loop_id` under an assignment:
    /// compute plus access latencies of everything executed inside, with
    /// no block-transfer time (that is what Time Extensions hide the
    /// transfers *behind* — Figure 1's `compute_loop_cycles()`).
    pub fn cycles_per_iteration(&self, assignment: &Assignment, loop_id: LoopId) -> u64 {
        let info = &self.facts.info;
        let iterations = info.loop_iterations(loop_id).max(1);
        let mut total = 0u64;
        for s in info.subtree_stmts(NodeId::Loop(loop_id)) {
            let execs = self.facts.stmt_execs[s.index()];
            let stmt = self.program.stmt(s);
            let mut per_exec = stmt.compute_cycles;
            for acc in &stmt.accesses {
                let layer = self.serving_layer(assignment, s, acc.array);
                per_exec += self.platform.access_cycles(layer);
            }
            total += execs * per_exec;
        }
        total / iterations
    }

    /// The residents occupying one layer under an assignment.
    ///
    /// `buffers` gives the buffer multiplier per copy (Time Extensions
    /// request 2+ for prefetched copies); copies absent from the map hold a
    /// single buffer.
    pub fn residents(
        &self,
        assignment: &Assignment,
        layer: LayerId,
        buffers: &HashMap<CandidateId, u32>,
    ) -> Vec<Resident> {
        let mut out = Vec::new();
        for (aid, _) in self.program.arrays() {
            if assignment.home(aid) == layer && layer.index() != 0 {
                if let Some(r) = Resident::for_array(self.program, &self.facts.timeline, aid) {
                    out.push(r);
                }
            }
        }
        for copy in assignment.copies() {
            if copy.layer != layer {
                continue;
            }
            let cc = self.reuse.candidate(copy.candidate);
            let mult = buffers.get(&copy.candidate).copied().unwrap_or(1).max(1);
            if let Some(mut r) = Resident::for_candidate(
                self.program,
                &self.facts.timeline,
                copy.candidate,
                cc,
                false,
            ) {
                r.bytes *= mult as u64;
                out.push(r);
            }
        }
        out
    }

    /// Capacity usage per layer (after in-place) with the given buffer
    /// multipliers.
    pub fn layer_usage(
        &self,
        assignment: &Assignment,
        buffers: &HashMap<CandidateId, u32>,
    ) -> Vec<LayerUsage> {
        self.platform
            .layers()
            .map(|(lid, layer)| {
                let residents = self.residents(assignment, lid, buffers);
                LayerUsage {
                    layer: lid,
                    required: peak_occupancy(&residents),
                    without_inplace: residents.iter().map(|r| r.bytes).sum(),
                    capacity: layer.capacity.unwrap_or(u64::MAX),
                }
            })
            .collect()
    }

    /// Checks that every layer fits its residents (after in-place).
    ///
    /// # Errors
    ///
    /// Returns [`AssignmentError::CapacityExceeded`] for the first overfull
    /// layer.
    pub fn check_capacity(
        &self,
        assignment: &Assignment,
        buffers: &HashMap<CandidateId, u32>,
    ) -> Result<(), AssignmentError> {
        for usage in self.layer_usage(assignment, buffers) {
            if !usage.fits() {
                return Err(AssignmentError::CapacityExceeded {
                    layer: usage.layer,
                    required: usage.required,
                    capacity: usage.capacity,
                });
            }
        }
        Ok(())
    }

    /// The residents one array's (home, chain) state places on each layer,
    /// single-buffered (the step-1 search never double-buffers; Time
    /// Extensions price extra buffers through the full path).
    ///
    /// Like [`array_contribution`](CostModel::array_contribution), this
    /// depends only on the one array's state — the greedy search caches it
    /// per candidate move.
    pub fn array_residents(
        &self,
        array: ArrayId,
        home: LayerId,
        chain: &[SelectedCopy],
    ) -> Vec<(LayerId, Resident)> {
        let mut out = Vec::new();
        self.array_residents_into(array, home, chain, &mut out);
        out
    }

    /// [`array_residents`](Self::array_residents) into a caller-owned
    /// buffer (cleared first) — the workspace-reuse paths refill one
    /// long-lived vector per cached trial instead of allocating.
    pub(crate) fn array_residents_into(
        &self,
        array: ArrayId,
        home: LayerId,
        chain: &[SelectedCopy],
        out: &mut Vec<(LayerId, Resident)>,
    ) {
        out.clear();
        if home.index() != 0 {
            if let Some(r) = Resident::for_array(self.program, &self.facts.timeline, array) {
                out.push((home, r));
            }
        }
        for copy in chain {
            let cc = self.reuse.candidate(copy.candidate);
            if let Some(r) = Resident::for_candidate(
                self.program,
                &self.facts.timeline,
                copy.candidate,
                cc,
                false,
            ) {
                out.push((copy.layer, r));
            }
        }
    }
}

/// Per-layer incremental peak-occupancy ledger.
///
/// Every resident interval endpoint comes from a small, program-fixed set
/// (array access spans and candidate spans — precomputed as
/// `ProgramFacts::occupancy_times`). The ledger keeps, per on-chip layer, a
/// byte-delta array indexed by position in that sorted time set; the peak
/// occupancy is the running maximum of its prefix sums — exactly what
/// [`peak_occupancy`] computes from a resident pool, without materializing
/// the pool.
///
/// A capacity probe for a single-array trial copies the layer's deltas
/// into a reused scratch buffer, swaps the touched array's events for the
/// trial's, and scans: `O(times + residents-of-that-array)` with zero
/// allocation — compared to the previous `O(all residents)` clone + sort
/// per probe. Commits invalidate only the touched array's events.
#[derive(Debug)]
struct OccupancyLedger<'t> {
    /// Sorted, deduped candidate event times (shared coordinate set),
    /// borrowed from the model's [`ProgramFacts`] — constructing a
    /// ledger no longer clones the endpoint table.
    times: &'t [u64],
    /// Per on-chip layer: (layer, capacity, aggregated byte deltas).
    layers: Vec<(LayerId, u64, Vec<i64>)>,
    /// Probe scratch, one allocation reused across all probes.
    scratch: RefCell<Vec<i64>>,
}

impl<'t> OccupancyLedger<'t> {
    /// Builds an empty ledger, drawing the per-layer delta buffers and
    /// the probe scratch from `pool` when it has recycled ones.
    fn new_in(model: &'t CostModel<'_>, pool: &mut IncPool) -> Self {
        let times: &'t [u64] = &model.facts().occupancy_times;
        let layers = model
            .platform()
            .on_chip_layers()
            .map(|(lid, l)| {
                let mut delta = pool.deltas.pop().unwrap_or_default();
                delta.clear();
                delta.resize(times.len(), 0);
                (lid, l.capacity.unwrap_or(u64::MAX), delta)
            })
            .collect();
        let mut scratch = std::mem::take(&mut pool.scratch);
        scratch.clear();
        scratch.resize(times.len(), 0);
        OccupancyLedger {
            times,
            layers,
            scratch: RefCell::new(scratch),
        }
    }

    /// Returns the ledger's buffers to `pool` for the next evaluator.
    fn recycle(self, pool: &mut IncPool) {
        for (.., delta) in self.layers {
            pool.deltas.push(delta);
        }
        pool.scratch = self.scratch.into_inner();
    }

    /// Index of an endpoint in the precomputed time set. Every resident
    /// the cost model can produce has its endpoints in the set.
    fn time_index(&self, t: u64) -> usize {
        // Internal invariant, not user-reachable: ProgramFacts
        // precomputes the endpoint set of every resident the cost model
        // can produce.
        #[allow(clippy::expect_used)]
        self.times
            .binary_search(&t)
            .expect("resident endpoint missing from precomputed occupancy times")
    }

    /// Adds (`sign = 1`) or removes (`sign = -1`) one resident's events.
    fn apply(&mut self, layer: LayerId, r: &Resident, sign: i64) {
        if r.bytes == 0 || r.interval.is_empty() {
            return;
        }
        let (s, e) = (
            self.time_index(r.interval.start),
            self.time_index(r.interval.end),
        );
        if let Some((_, _, delta)) = self.layers.iter_mut().find(|(lid, ..)| *lid == layer) {
            delta[s] += sign * r.bytes as i64;
            delta[e] -= sign * r.bytes as i64;
        }
    }

    /// Peak of a delta array: max prefix sum (and ≥ 0, matching
    /// [`peak_occupancy`]'s empty-pool behavior).
    fn peak(delta: &[i64]) -> u64 {
        let mut cur = 0i64;
        let mut peak = 0i64;
        for &d in delta {
            cur += d;
            peak = peak.max(cur);
        }
        peak as u64
    }

    /// Applies one resident set's events of one layer onto `scratch`.
    fn splice(
        &self,
        scratch: &mut [i64],
        layer: LayerId,
        residents: &[(LayerId, Resident)],
        sign: i64,
    ) {
        for (l, r) in residents {
            if *l != layer || r.bytes == 0 || r.interval.is_empty() {
                continue;
            }
            scratch[self.time_index(r.interval.start)] += sign * r.bytes as i64;
            scratch[self.time_index(r.interval.end)] -= sign * r.bytes as i64;
        }
    }

    /// Capacity probe: peak per layer with `old` (the touched array's
    /// cached residents) removed and `trial` added. `Err` names the first
    /// overflowing layer (in platform order) together with the bytes the
    /// trial state needs there — a capacity-independent requirement, so
    /// any capacity still below it provably rejects the same probe. `Ok`
    /// is the summed on-chip requirement.
    fn probe(
        &self,
        old: &[(LayerId, Resident)],
        trial: &[(LayerId, Resident)],
    ) -> Result<u64, (LayerId, u64)> {
        let mut total = 0u64;
        let mut scratch = self.scratch.borrow_mut();
        for (lid, capacity, delta) in &self.layers {
            scratch.clear();
            scratch.extend_from_slice(delta);
            self.splice(&mut scratch, *lid, old, -1);
            self.splice(&mut scratch, *lid, trial, 1);
            let required = Self::peak(&scratch);
            if required > *capacity {
                return Err((*lid, required));
            }
            total += required;
        }
        Ok(total)
    }

    /// Total on-chip bytes required by the committed state.
    fn onchip_required(&self) -> u64 {
        self.layers.iter().map(|(.., d)| Self::peak(d)).sum()
    }
}

/// Recyclable buffers of an [`IncrementalCost`] evaluator.
///
/// One greedy search leg builds an evaluator (per-array contributions,
/// per-array residents, the occupancy ledger's delta arrays) and tears
/// it down again; a sweep runs thousands of legs over the same program.
/// The pool carries those buffers from one evaluator to the next —
/// [`IncrementalCost::new_in`] draws from it,
/// [`IncrementalCost::into_parts`] returns to it — so steady-state legs
/// reuse every allocation. A fresh default pool reproduces the
/// allocating path exactly; results are bit-identical either way (the
/// buffers are fully reset before use).
#[derive(Debug, Default)]
pub struct IncPool {
    contribs: Vec<ArrayContribution>,
    residents: Vec<Vec<(LayerId, Resident)>>,
    deltas: Vec<Vec<i64>>,
    scratch: Vec<i64>,
    streams: Vec<TransferStream>,
    chain: Vec<SelectedCopy>,
    current: CostBreakdown,
    trial: ArrayContribution,
}

impl IncPool {
    /// Recycles a [`CostBreakdown`] (typically a losing search leg's)
    /// into the pool so the next evaluator's running total reuses its
    /// per-layer vector.
    pub(crate) fn give_breakdown(&mut self, b: CostBreakdown) {
        self.current = b;
    }
}

/// Incremental re-pricing of single-array moves over a working assignment.
///
/// The greedy search evaluates hundreds of candidate moves per step, each
/// touching exactly one array. The full [`CostModel::evaluate`] re-prices
/// every access of every array; this evaluator caches the per-array
/// [`ArrayContribution`]s and layer residents, so a candidate move costs
/// `O(accesses-of-that-array)` to price, and a capacity probe costs
/// `O(event times + residents-of-that-array)` through the occupancy
/// ledger (`OccupancyLedger`) — no assignment clone, no timeline re-walk,
/// no resident-pool rebuild.
///
/// Totals are maintained by re-summing the cached contributions in
/// ascending array order, the exact summation order of the oracle, so
/// [`cost`](IncrementalCost::cost) is **bit-for-bit identical** to
/// `model.evaluate(assignment)` at every point (see the equivalence
/// proptests in `crates/core/tests/`).
#[derive(Debug)]
pub struct IncrementalCost<'m, 'a> {
    model: &'m CostModel<'a>,
    assignment: Assignment,
    contribs: Vec<ArrayContribution>,
    /// Per array: the residents its current state places, with their layer.
    residents: Vec<Vec<(LayerId, Resident)>>,
    occupancy: OccupancyLedger<'m>,
    current: CostBreakdown,
    /// Stream-pricing scratch for in-place contribution refills.
    streams: Vec<TransferStream>,
}

impl<'m, 'a> IncrementalCost<'m, 'a> {
    /// Builds the evaluator, pricing `assignment` once in full.
    pub fn new(model: &'m CostModel<'a>, assignment: Assignment) -> Self {
        IncrementalCost::new_in(model, assignment, &mut IncPool::default())
    }

    /// [`new`](Self::new) drawing every internal buffer from `pool` —
    /// the allocation-free construction of the workspace-reuse paths.
    pub fn new_in(model: &'m CostModel<'a>, assignment: Assignment, pool: &mut IncPool) -> Self {
        let policy = assignment.policy();
        let n = assignment.array_count();
        let mut contribs = std::mem::take(&mut pool.contribs);
        contribs.resize_with(n, ArrayContribution::default);
        let mut residents = std::mem::take(&mut pool.residents);
        residents.resize_with(n, Vec::new);
        let mut streams = std::mem::take(&mut pool.streams);
        let mut chain = std::mem::take(&mut pool.chain);
        let mut occupancy = OccupancyLedger::new_in(model, pool);
        for aid in 0..n {
            let array = ArrayId::from_index(aid);
            assignment.copies_of_into(array, &mut chain);
            let home = assignment.home(array);
            model.array_contribution_into(
                array,
                home,
                &chain,
                policy,
                &mut streams,
                &mut contribs[aid],
            );
            model.array_residents_into(array, home, &chain, &mut residents[aid]);
            for (l, r) in &residents[aid] {
                occupancy.apply(*l, r, 1);
            }
        }
        pool.chain = chain;
        let mut inc = IncrementalCost {
            model,
            assignment,
            contribs,
            residents,
            occupancy,
            current: std::mem::take(&mut pool.current),
            streams,
        };
        inc.refresh_total();
        inc
    }

    /// Tears the evaluator down into its committed `(assignment, cost)`
    /// pair, returning every internal buffer to `pool` for the next
    /// [`new_in`](Self::new_in).
    pub fn into_parts(self, pool: &mut IncPool) -> (Assignment, CostBreakdown) {
        let IncrementalCost {
            assignment,
            contribs,
            residents,
            occupancy,
            current,
            streams,
            ..
        } = self;
        pool.contribs = contribs;
        pool.residents = residents;
        pool.streams = streams;
        occupancy.recycle(pool);
        (assignment, current)
    }

    /// Re-sums the cached contributions into `current`, in canonical
    /// ascending array order (bit-identical to the oracle's summation),
    /// reusing the running total's per-layer vector.
    fn refresh_total(&mut self) {
        let mut b = CostBreakdown {
            compute_cycles: self.model.facts.total_compute,
            accesses_per_layer: std::mem::take(&mut self.current.accesses_per_layer),
            ..CostBreakdown::default()
        };
        b.accesses_per_layer.clear();
        b.accesses_per_layer
            .resize(self.model.platform.layer_count(), 0);
        for c in &self.contribs {
            b.absorb(c);
        }
        self.current = b;
    }

    /// The working assignment.
    pub fn assignment(&self) -> &Assignment {
        &self.assignment
    }

    /// The cached contribution of one array's *committed* state — the
    /// "current side" of the greedy search's gain computations (the margin
    /// bookkeeping diffs its energy sensitivity against a trial's).
    pub fn contribution(&self, array: ArrayId) -> &ArrayContribution {
        &self.contribs[array.index()]
    }

    /// The cost of the working assignment (equals
    /// `model.evaluate(self.assignment())` bit-for-bit).
    pub fn cost(&self) -> &CostBreakdown {
        &self.current
    }

    /// Prices the assignment with `array`'s state replaced by
    /// `(home, chain)`, without mutating anything. `chain` must be ordered
    /// outermost first (ascending layer).
    pub fn evaluate_array_state(
        &self,
        array: ArrayId,
        home: LayerId,
        chain: &[SelectedCopy],
    ) -> CostBreakdown {
        let trial = self
            .model
            .array_contribution(array, home, chain, self.assignment.policy());
        self.evaluate_with_contribution(array, &trial)
    }

    /// [`evaluate_array_state`](IncrementalCost::evaluate_array_state) with
    /// the trial contribution already computed — the greedy search caches
    /// contributions per candidate move (they depend only on the touched
    /// array's state), so a re-evaluation costs `O(arrays)` additions.
    pub fn evaluate_with_contribution(
        &self,
        array: ArrayId,
        trial: &ArrayContribution,
    ) -> CostBreakdown {
        let mut b = CostBreakdown::default();
        self.evaluate_with_contribution_into(array, trial, &mut b);
        b
    }

    /// [`evaluate_with_contribution`](IncrementalCost::evaluate_with_contribution)
    /// into a caller-owned scratch buffer — the greedy loop re-prices
    /// hundreds of moves per step and reuses one allocation for all of
    /// them.
    pub fn evaluate_with_contribution_into(
        &self,
        array: ArrayId,
        trial: &ArrayContribution,
        out: &mut CostBreakdown,
    ) {
        *out = CostBreakdown {
            compute_cycles: self.model.facts.total_compute,
            accesses_per_layer: std::mem::take(&mut out.accesses_per_layer),
            ..CostBreakdown::default()
        };
        out.accesses_per_layer.clear();
        out.accesses_per_layer
            .resize(self.model.platform.layer_count(), 0);
        for (i, c) in self.contribs.iter().enumerate() {
            out.absorb(if i == array.index() { trial } else { c });
        }
    }

    /// Capacity probe for the trial state: `None` when some on-chip layer
    /// overflows (after in-place sharing), otherwise the total on-chip
    /// bytes required — the denominator of the greedy gain/size ratio.
    pub fn onchip_required_with(
        &self,
        array: ArrayId,
        home: LayerId,
        chain: &[SelectedCopy],
    ) -> Option<u64> {
        let trial = self.model.array_residents(array, home, chain);
        self.onchip_required_with_residents(array, &trial)
    }

    /// [`onchip_required_with`](IncrementalCost::onchip_required_with) with
    /// the trial residents already computed (cacheable per candidate move).
    ///
    /// Served by the occupancy ledger: the cached per-layer delta arrays
    /// stand in for the resident pool, so the probe neither clones
    /// residents nor re-sorts events.
    pub fn onchip_required_with_residents(
        &self,
        array: ArrayId,
        trial: &[(LayerId, Resident)],
    ) -> Option<u64> {
        self.probe_required(array, trial).ok()
    }

    /// [`onchip_required_with_residents`](Self::onchip_required_with_residents)
    /// reporting the *first overflowing layer* (in platform order) and the
    /// bytes the trial state needed there on failure. The greedy search
    /// records these: a run whose failed probes all stopped at layers a
    /// grid sweep does not grow reproduces identically on the grown
    /// platform — the per-layer saturation argument of the pruned grid
    /// sweep — and because the required bytes are capacity-independent,
    /// any capacity still *below* the recorded requirement provably
    /// rejects the same probe, extending the replay argument to bounded
    /// growth ([`RunStats::allows_growth_to`](crate::RunStats::allows_growth_to)).
    pub fn probe_required(
        &self,
        array: ArrayId,
        trial: &[(LayerId, Resident)],
    ) -> Result<u64, (LayerId, u64)> {
        self.occupancy.probe(&self.residents[array.index()], trial)
    }

    /// Total on-chip bytes required by the working assignment.
    pub fn onchip_required(&self) -> u64 {
        self.occupancy.onchip_required()
    }

    /// Commits `array`'s new state, updating the cached contribution,
    /// residents, occupancy ledger and totals. Only the touched array's
    /// cached state is invalidated.
    pub fn commit_array_state(&mut self, array: ArrayId, home: LayerId, chain: &[SelectedCopy]) {
        self.assignment.clear_copies_of(array);
        self.assignment.set_home(array, home);
        for &c in chain {
            self.assignment.add_copy(c);
        }
        let policy = self.assignment.policy();
        let model = self.model;
        model.array_contribution_into(
            array,
            home,
            chain,
            policy,
            &mut self.streams,
            &mut self.contribs[array.index()],
        );
        for (l, r) in &self.residents[array.index()] {
            self.occupancy.apply(*l, r, -1);
        }
        let slot = &mut self.residents[array.index()];
        model.array_residents_into(array, home, chain, slot);
        for (l, r) in self.residents[array.index()].iter() {
            self.occupancy.apply(*l, r, 1);
        }
        self.refresh_total();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classify::classify_arrays;
    use mhla_ir::{ElemType, ProgramBuilder};

    /// `for rep in 0..64 { for i in 0..256 { read tab[i] } }`
    fn scan() -> (Program, ArrayId, LoopId) {
        let mut b = ProgramBuilder::new("scan");
        let tab = b.array("tab", &[256], ElemType::U8);
        let lr = b.begin_loop("rep", 0, 64, 1);
        let li = b.begin_loop("i", 0, 256, 1);
        let iv = b.var(li);
        b.stmt("s").read(tab, vec![iv]).compute_cycles(2).finish();
        b.end_loop();
        b.end_loop();
        (b.finish(), tab, lr)
    }

    fn model<'a>(p: &'a Program, pf: &'a Platform, reuse: &'a ReuseAnalysis) -> CostModel<'a> {
        CostModel::new(p, pf, reuse, classify_arrays(p, &[]))
    }

    #[test]
    fn baseline_puts_all_accesses_off_chip() {
        let (p, _, _) = scan();
        let pf = Platform::embedded_default(1024);
        let reuse = ReuseAnalysis::analyze(&p);
        let m = model(&p, &pf, &reuse);
        let base = Assignment::baseline(1, TransferPolicy::default());
        let cost = m.evaluate(&base);
        let accesses = 64 * 256;
        assert_eq!(cost.compute_cycles, 2 * accesses);
        assert_eq!(
            cost.cpu_access_cycles,
            accesses * mhla_hierarchy::energy::SDRAM_ACCESS_CYCLES
        );
        assert_eq!(cost.transfer_cycles, 0);
        assert_eq!(cost.accesses_per_layer, vec![accesses, 0]);
        let expect_e = accesses as f64 * mhla_hierarchy::energy::SDRAM_ACCESS_PJ;
        assert!((cost.cpu_access_energy_pj - expect_e).abs() < 1e-6);
    }

    #[test]
    fn staging_the_table_moves_accesses_on_chip() {
        let (p, tab, _) = scan();
        let pf = Platform::embedded_default(1024);
        let reuse = ReuseAnalysis::analyze(&p);
        let m = model(&p, &pf, &reuse);

        let mut a = Assignment::baseline(1, TransferPolicy::default());
        // Whole-array candidate is index 0.
        a.add_copy(SelectedCopy {
            candidate: CandidateId {
                array: tab,
                index: 0,
            },
            layer: LayerId(1),
        });
        let cost = m.evaluate(&a);
        let accesses = 64 * 256;
        assert_eq!(cost.accesses_per_layer, vec![0, accesses]);
        assert_eq!(cost.cpu_access_cycles, accesses, "1 cycle per SPM access");
        // One fill transfer of 256 B.
        assert_eq!(cost.transfer_count, 1);
        let dma = pf.dma().unwrap();
        let expect = dma.transfer_cycles(256, pf.layer(LayerId(0)), pf.layer(LayerId(1)));
        assert_eq!(cost.transfer_cycles, expect);
        // Far cheaper than baseline on both axes.
        let base = m.evaluate(&Assignment::baseline(1, TransferPolicy::default()));
        assert!(cost.total_cycles() < base.total_cycles() / 2);
        assert!(cost.total_energy_pj() < base.total_energy_pj() / 2.0);
        // Ideal bound strips the transfer cycles.
        assert_eq!(
            cost.ideal_cycles(),
            cost.total_cycles() - cost.transfer_cycles
        );
    }

    #[test]
    fn copy_at_rep_loop_refreshes_every_iteration() {
        let (p, tab, lr) = scan();
        let pf = Platform::embedded_default(1024);
        let reuse = ReuseAnalysis::analyze(&p);
        let m = model(&p, &pf, &reuse);
        let idx = reuse
            .array(tab)
            .candidates()
            .iter()
            .position(|c| c.at_loop == Some(lr))
            .unwrap();
        let mut a = Assignment::baseline(1, TransferPolicy::FullRefresh);
        a.add_copy(SelectedCopy {
            candidate: CandidateId {
                array: tab,
                index: idx,
            },
            layer: LayerId(1),
        });
        let streams = m.transfer_streams(&a);
        assert_eq!(streams.len(), 1);
        assert_eq!(streams[0].entries, 64);
        assert_eq!(streams[0].total_bytes(), 64 * 256);
        // Sliding-delta collapses the refreshes (footprint does not move
        // with rep): only the first fill transfers data.
        let mut a2 = a.clone();
        a2 = {
            let mut x = Assignment::baseline(1, TransferPolicy::SlidingDelta);
            for c in a2.copies() {
                x.add_copy(*c);
            }
            x
        };
        let streams2 = m.transfer_streams(&a2);
        assert_eq!(streams2[0].steady_bytes, 0, "window never slides");
        assert_eq!(streams2[0].total_bytes(), 256);
    }

    #[test]
    fn capacity_checking_uses_inplace_peak() {
        let (p, tab, _) = scan();
        let pf = Platform::embedded_default(128); // too small for 256 B
        let reuse = ReuseAnalysis::analyze(&p);
        let m = model(&p, &pf, &reuse);
        let mut a = Assignment::baseline(1, TransferPolicy::default());
        a.add_copy(SelectedCopy {
            candidate: CandidateId {
                array: tab,
                index: 0,
            },
            layer: LayerId(1),
        });
        let err = m.check_capacity(&a, &HashMap::new()).unwrap_err();
        assert!(matches!(err, AssignmentError::CapacityExceeded { .. }));
        // Double-buffering request doubles the requirement.
        let pf_big = Platform::embedded_default(384);
        let m2 = model(&p, &pf_big, &reuse);
        assert!(m2.check_capacity(&a, &HashMap::new()).is_ok());
        let mut buffers = HashMap::new();
        buffers.insert(
            CandidateId {
                array: tab,
                index: 0,
            },
            2,
        );
        assert!(m2.check_capacity(&a, &buffers).is_err(), "2x256 > 384");
    }

    #[test]
    fn without_dma_copies_run_on_the_cpu() {
        let (p, tab, _) = scan();
        let pf = Platform::without_dma(1024);
        let reuse = ReuseAnalysis::analyze(&p);
        let m = model(&p, &pf, &reuse);
        let mut a = Assignment::baseline(1, TransferPolicy::default());
        a.add_copy(SelectedCopy {
            candidate: CandidateId {
                array: tab,
                index: 0,
            },
            layer: LayerId(1),
        });
        let cost = m.evaluate(&a);
        // 256 elements × (8 + 1) cycles (CPU copy loop: SDRAM read + SPM
        // write per element).
        assert_eq!(cost.transfer_cycles, 256 * 9);
        // Still wins overall.
        let base = m.evaluate(&Assignment::baseline(1, TransferPolicy::default()));
        assert!(cost.total_cycles() < base.total_cycles());
    }

    #[test]
    fn internal_array_homed_on_chip_has_no_transfers() {
        // tmp written then read; home it on-chip.
        let mut b = ProgramBuilder::new("p");
        let tmp = b.array("tmp", &[64], ElemType::U8);
        b.loop_scope("i", 0, 64, 1, |b, li| {
            let i = b.var(li);
            b.stmt("w").write(tmp, vec![i]).finish();
        });
        b.loop_scope("j", 0, 64, 1, |b, lj| {
            let j = b.var(lj);
            b.stmt("r").read(tmp, vec![j]).finish();
        });
        let p = b.finish();
        let pf = Platform::embedded_default(1024);
        let reuse = ReuseAnalysis::analyze(&p);
        let m = model(&p, &pf, &reuse);
        let mut a = Assignment::baseline(1, TransferPolicy::default());
        a.set_home(tmp, LayerId(1));
        let cost = m.evaluate(&a);
        assert_eq!(cost.transfer_count, 0);
        assert_eq!(cost.accesses_per_layer, vec![0, 128]);
        let usage = m.layer_usage(&a, &HashMap::new());
        assert_eq!(usage[1].required, 64);
    }

    use mhla_ir::{LoopId, Program};
}
