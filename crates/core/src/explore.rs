//! Trade-off exploration over on-chip layer sizes.
//!
//! The paper's §1 claim — "performs a thorough trade-off exploration for
//! different memory layer sizes … able to find all the optimal trade-off
//! points" — maps to sweeps over the on-chip layer sizes:
//!
//! * [`sweep`] — the 1-D capacity sweep: one scratchpad layer resized over
//!   a range, both MHLA steps run at every size, Pareto-optimal
//!   (capacity, cycles) and (capacity, energy) points kept.
//! * [`sweep_grid`] — the N-dimensional generalization: every on-chip
//!   layer gets its own capacity axis ([`GridAxis`]) and the full
//!   Cartesian product is evaluated — the *joint* sizing of a multi-layer
//!   hierarchy (e.g. L1×L2 on [`Platform::three_level`]), whose
//!   interesting trade-offs single-axis sweeps cannot see. Pareto
//!   filtering generalizes to dominance over the capacity vector.
//!
//! Both run on a shared [`ExplorationContext`]: the reuse analysis,
//! program facts, TE caches and candidate-move space are computed once per
//! program; each point only pays for its search. Points are processed in
//! fixed-size chunks scheduled across threads with `rayon`, and within a
//! chunk each point warm-starts the greedy search from its predecessor
//! along the innermost axis.
//!
//! [`sweep_grid_pruned`] is the sub-exhaustive production path for large
//! grids: points that provably cannot contribute a Pareto point are
//! skipped *without evaluation* (see its documentation for the two prune
//! rules and the losslessness argument); `tests/prune_equivalence.rs`
//! verifies the pruned frontier bit-for-bit against the exhaustive one.
//!
//! [`sweep_cold`] keeps the frozen pre-optimization reference path:
//! strictly sequential, every point re-analyzed and searched from scratch.
//! The `tradeoff` bench and the equivalence tests compare the paths; their
//! Pareto fronts must be identical.
//!
//! Pareto filtering is shared between [`Sweep`] and [`GridSweep`] through
//! [`pareto::front`] — the sort-based sweep that replaced the seed's
//! all-pairs dominance scan.

use rayon::prelude::*;

use mhla_hierarchy::{energy::sram_access_cycles, LayerId, Platform};
use mhla_ir::Program;

use crate::context::ExplorationContext;
use crate::driver::{Mhla, MhlaResult};
use crate::pareto;
use crate::types::{Assignment, MhlaConfig, Objective, SearchStrategy};

/// One point of the capacity sweep.
#[derive(Clone, PartialEq, Debug)]
pub struct SweepPoint {
    /// On-chip scratchpad capacity of this point, bytes.
    pub capacity: u64,
    /// The full MHLA result at this capacity.
    pub result: MhlaResult,
}

impl SweepPoint {
    /// Static MHLA+TE cycles at this point.
    pub fn cycles(&self) -> u64 {
        self.result.mhla_te_cycles()
    }

    /// Memory energy at this point, picojoule.
    pub fn energy_pj(&self) -> f64 {
        self.result.mhla_energy_pj()
    }
}

/// Result of [`sweep`]: all evaluated points in ascending capacity order.
#[derive(Clone, PartialEq, Debug)]
pub struct Sweep {
    /// Evaluated points, ascending capacity.
    pub points: Vec<SweepPoint>,
}

impl Sweep {
    /// Indices of the Pareto-optimal (capacity, cycles) points: no other
    /// point has both smaller-or-equal capacity and strictly fewer cycles.
    pub fn pareto_cycles(&self) -> Vec<usize> {
        pareto_indices(&self.points, |p| p.cycles() as f64)
    }

    /// Indices of the Pareto-optimal (capacity, energy) points.
    pub fn pareto_energy(&self) -> Vec<usize> {
        pareto_indices(&self.points, |p| p.energy_pj())
    }

    /// The point with the fewest cycles (ties: smallest capacity).
    pub fn best_cycles(&self) -> Option<&SweepPoint> {
        self.points
            .iter()
            .min_by(|a, b| (a.cycles(), a.capacity).cmp(&(b.cycles(), b.capacity)))
    }

    /// The point with the least energy (ties: smallest capacity).
    pub fn best_energy(&self) -> Option<&SweepPoint> {
        self.points.iter().min_by(|a, b| {
            (a.energy_pj(), a.capacity)
                .partial_cmp(&(b.energy_pj(), b.capacity))
                .unwrap_or(std::cmp::Ordering::Equal)
        })
    }
}

/// Pareto filter over (capacity, objective): keep a point iff no other
/// point has smaller-or-equal capacity and objective without being the
/// exact same point. Shared with the grid sweep through the sort-based
/// [`pareto::front`].
fn pareto_indices(points: &[SweepPoint], objective: impl Fn(&SweepPoint) -> f64) -> Vec<usize> {
    let coords: Vec<Vec<f64>> = points
        .iter()
        .map(|p| vec![p.capacity as f64, objective(p)])
        .collect();
    pareto::front(&coords)
}

/// Default capacity grid: powers of two from 128 B to 128 KiB.
pub fn default_capacities() -> Vec<u64> {
    (7..=17).map(|e| 1u64 << e).collect()
}

/// Default number of consecutive capacity points one parallel task
/// processes (the default of [`SweepOptions::chunk`]).
///
/// Within a chunk, points after the first warm-start from their
/// predecessor; chunks are independent, so this is also the granularity of
/// the `rayon` fan-out. Fixed (instead of `capacities / threads`) so sweep
/// results never depend on the machine's core count. Tunable at runtime
/// through [`SweepOptions::chunk`] (the `bench` binary reads
/// `MHLA_SWEEP_CHUNK` for the many-core tuning experiment).
pub const SWEEP_CHUNK: usize = 4;

/// Tuning knobs for [`sweep_with`] and [`sweep_grid_with`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct SweepOptions {
    /// Warm-start each point (within a chunk) from its predecessor's
    /// assignment along the innermost axis. Applies to the greedy strategy
    /// only.
    pub warm_start: bool,
    /// Process chunks of capacities on a thread pool.
    pub parallel: bool,
    /// Points per sequential chunk along the innermost sweep axis
    /// (clamped to ≥ 1; default [`SWEEP_CHUNK`]).
    ///
    /// **Determinism guarantee:** the chunking is fixed by this value
    /// alone — never derived from the machine's core count — and each
    /// point's result is the warm/cold search *portfolio* (the cold
    /// search always runs; the warm result is kept only when strictly
    /// better). Sweep results are therefore identical for every
    /// `chunk`/`parallel`/`warm_start` combination and on any thread
    /// fan-out; only wall time changes. Larger chunks lengthen warm-start
    /// chains but reduce scheduling slack — tune per machine via the
    /// `bench` binary (`MHLA_SWEEP_CHUNK`), tracked in `BENCH_sweep.json`.
    pub chunk: usize,
}

impl Default for SweepOptions {
    fn default() -> Self {
        SweepOptions {
            warm_start: true,
            parallel: true,
            chunk: SWEEP_CHUNK,
        }
    }
}

/// Sweeps scratchpad capacities, resizing `layer` of `platform` to each of
/// `capacities` and running the full MHLA flow. Production path: shared
/// reuse analysis, warm starts, parallel chunks (see [`SweepOptions`]).
///
/// # Panics
///
/// Panics if `layer` is the off-chip layer (it cannot be resized).
pub fn sweep(
    program: &Program,
    platform: &Platform,
    layer: LayerId,
    capacities: &[u64],
    config: &MhlaConfig,
) -> Sweep {
    sweep_with(
        program,
        platform,
        layer,
        capacities,
        config,
        SweepOptions::default(),
    )
}

/// The pre-optimization reference sweep: strictly sequential, the reuse
/// analysis re-derived at every point, every candidate move re-priced with
/// the full `evaluate` oracle, no warm starts — the seed implementation,
/// frozen. Kept for validation and benchmarking; [`sweep`] must yield
/// identical Pareto fronts (see the equivalence tests).
pub fn sweep_cold(
    program: &Program,
    platform: &Platform,
    layer: LayerId,
    capacities: &[u64],
    config: &MhlaConfig,
) -> Sweep {
    let caps = clean_capacities(capacities);
    let points = caps
        .into_iter()
        .map(|capacity| {
            let pf = platform.with_layer_capacity(layer, capacity);
            let result = Mhla::new(program, &pf, config.clone()).run_reference();
            SweepPoint { capacity, result }
        })
        .collect();
    Sweep { points }
}

/// [`sweep`] with explicit [`SweepOptions`].
///
/// Implemented as the 1-axis degenerate case of [`sweep_grid_with`], so
/// the 1-D and N-D sweeps share one execution path: identical context
/// sharing, chunking and warm-start behavior by construction.
pub fn sweep_with(
    program: &Program,
    platform: &Platform,
    layer: LayerId,
    capacities: &[u64],
    config: &MhlaConfig,
    opts: SweepOptions,
) -> Sweep {
    let axis = GridAxis {
        layer,
        capacities: capacities.to_vec(),
    };
    let grid = sweep_grid_with(program, platform, &[axis], config, opts);
    Sweep {
        points: grid
            .points
            .into_iter()
            .map(|p| SweepPoint {
                capacity: p.capacities[0],
                result: p.result,
            })
            .collect(),
    }
}

fn clean_capacities(capacities: &[u64]) -> Vec<u64> {
    let mut caps: Vec<u64> = capacities.to_vec();
    caps.sort_unstable();
    caps.dedup();
    caps
}

/// One axis of a layer-size grid sweep: the on-chip layer to resize and
/// the capacities to visit on it (sorted and deduped before use).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct GridAxis {
    /// The on-chip layer this axis resizes.
    pub layer: LayerId,
    /// Capacities to visit, bytes.
    pub capacities: Vec<u64>,
}

impl GridAxis {
    /// Builds an axis.
    pub fn new(layer: LayerId, capacities: impl Into<Vec<u64>>) -> Self {
        GridAxis {
            layer,
            capacities: capacities.into(),
        }
    }
}

/// One point of a grid sweep: a capacity per axis plus the full MHLA
/// result on the platform resized to those capacities.
#[derive(Clone, PartialEq, Debug)]
pub struct GridPoint {
    /// Capacity per axis, parallel to [`GridSweep::layers`], bytes.
    pub capacities: Vec<u64>,
    /// The full MHLA result at this capacity vector.
    pub result: MhlaResult,
}

impl GridPoint {
    /// Static MHLA+TE cycles at this point.
    pub fn cycles(&self) -> u64 {
        self.result.mhla_te_cycles()
    }

    /// Memory energy at this point, picojoule.
    pub fn energy_pj(&self) -> f64 {
        self.result.mhla_energy_pj()
    }

    /// Total on-chip bytes of this point's capacity vector.
    pub fn total_capacity(&self) -> u64 {
        self.capacities.iter().sum()
    }
}

/// Result of [`sweep_grid`]: every point of the capacity grid, in
/// lexicographic order of the capacity vector (the last axis varies
/// fastest).
#[derive(Clone, PartialEq, Debug)]
pub struct GridSweep {
    /// The resized layer per axis, in axis order.
    pub layers: Vec<LayerId>,
    /// Evaluated points, lexicographic by capacity vector.
    pub points: Vec<GridPoint>,
}

impl GridSweep {
    /// Indices of the Pareto surface over (capacity vector, cycles): a
    /// point survives iff no other point dominates it — capacities all ≤,
    /// cycles ≤, and at least one strictly smaller. On a 1-axis grid this
    /// is exactly [`Sweep::pareto_cycles`].
    pub fn pareto_cycles(&self) -> Vec<usize> {
        dominance_front(&self.points, |p| p.cycles() as f64)
    }

    /// Indices of the Pareto surface over (capacity vector, energy).
    pub fn pareto_energy(&self) -> Vec<usize> {
        dominance_front(&self.points, |p| p.energy_pj())
    }

    /// The point with the fewest cycles (ties: smallest total capacity,
    /// then lexicographically smallest vector).
    pub fn best_cycles(&self) -> Option<&GridPoint> {
        self.points.iter().min_by(|a, b| {
            (a.cycles(), a.total_capacity(), &a.capacities).cmp(&(
                b.cycles(),
                b.total_capacity(),
                &b.capacities,
            ))
        })
    }

    /// The point with the least energy (ties as
    /// [`best_cycles`](Self::best_cycles)).
    pub fn best_energy(&self) -> Option<&GridPoint> {
        self.points.iter().min_by(|a, b| {
            (a.energy_pj(), a.total_capacity())
                .partial_cmp(&(b.energy_pj(), b.total_capacity()))
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.capacities.cmp(&b.capacities))
        })
    }
}

/// The multi-dimensional Pareto filter: point `i` survives iff no point
/// `j` has every capacity ≤ `i`'s, objective ≤ `i`'s, and is not the
/// exact same `(capacities, objective)` point.
///
/// Capacity vectors in a grid are unique, so for the 1-axis case (points
/// in ascending capacity order) this degenerates to "keep iff the
/// objective strictly improves on everything at smaller capacity" — the
/// exact filter of [`Sweep::pareto_cycles`] (asserted by the grid
/// equivalence tests). Implemented with the sort-based
/// [`pareto::front`]; `pareto::front_quadratic` keeps the seed's all-pairs
/// scan as the test oracle.
fn dominance_front(points: &[GridPoint], objective: impl Fn(&GridPoint) -> f64) -> Vec<usize> {
    let coords: Vec<Vec<f64>> = points
        .iter()
        .map(|p| {
            let mut c: Vec<f64> = p.capacities.iter().map(|&c| c as f64).collect();
            c.push(objective(p));
            c
        })
        .collect();
    pareto::front(&coords)
}

/// Cartesian product of the outer axes, lexicographic. An empty axis list
/// yields one empty prefix (the 1-axis degenerate case).
fn cartesian(axes: &[Vec<u64>]) -> Vec<Vec<u64>> {
    let mut out = vec![Vec::new()];
    for axis in axes {
        out = out
            .iter()
            .flat_map(|prefix| {
                axis.iter().map(move |&c| {
                    let mut p = prefix.clone();
                    p.push(c);
                    p
                })
            })
            .collect();
    }
    out
}

/// Sweeps an N-dimensional layer-size grid: for every point of the
/// Cartesian product of the axes' capacities, resizes the named layers of
/// `platform` and runs the full MHLA flow — the *joint* trade-off
/// exploration of a multi-layer hierarchy (e.g. L1×L2 on
/// [`Platform::three_level`]).
///
/// Production path: one shared [`ExplorationContext`] (reuse analysis,
/// program facts, TE caches, move space computed once), the innermost
/// axis processed in warm-started chunks, chunks scheduled across threads
/// (see [`SweepOptions`]). Each point's result is bit-identical to a cold
/// standalone [`Mhla::run`] on the same platform (the portfolio search
/// prefers the cold result on ties), and a 1-axis grid is exactly
/// [`sweep`] — both asserted by the equivalence tests.
///
/// # Panics
///
/// Panics if any axis names the off-chip layer or a layer out of range,
/// or if any capacity is zero.
pub fn sweep_grid(
    program: &Program,
    platform: &Platform,
    axes: &[GridAxis],
    config: &MhlaConfig,
) -> GridSweep {
    sweep_grid_with(program, platform, axes, config, SweepOptions::default())
}

/// [`sweep_grid`] with explicit [`SweepOptions`].
pub fn sweep_grid_with(
    program: &Program,
    platform: &Platform,
    axes: &[GridAxis],
    config: &MhlaConfig,
    opts: SweepOptions,
) -> GridSweep {
    let layers: Vec<LayerId> = axes.iter().map(|a| a.layer).collect();
    let axis_caps: Vec<Vec<u64>> = axes
        .iter()
        .map(|a| clean_capacities(&a.capacities))
        .collect();
    if axis_caps.is_empty() || axis_caps.iter().any(Vec::is_empty) {
        return GridSweep {
            layers,
            points: Vec::new(),
        };
    }

    // Everything capacity-independent — reuse analysis, program facts, TE
    // caches, candidate moves — is computed once here and borrowed by
    // every point.
    let ctx = ExplorationContext::new(program, platform, config.clone());

    // The last axis is the warm-start dimension: a task is one chunk of
    // it under one fixed prefix of the outer axes. Tasks are independent,
    // so their parallel schedule cannot affect results.
    let (outer, innermost) = axis_caps.split_at(axis_caps.len() - 1);
    let innermost = &innermost[0];
    let prefixes = cartesian(outer);
    let chunk = opts.chunk.max(1).min(innermost.len());
    let tasks: Vec<(&[u64], &[u64])> = prefixes
        .iter()
        .flat_map(|p| innermost.chunks(chunk).map(move |c| (p.as_slice(), c)))
        .collect();

    let run_task = |task: &(&[u64], &[u64])| -> Vec<GridPoint> {
        let (prefix, caps) = *task;
        let mut warm: Option<Assignment> = None;
        caps.iter()
            .map(|&cap| {
                let mut capacities = prefix.to_vec();
                capacities.push(cap);
                let sizes: Vec<(LayerId, u64)> = layers
                    .iter()
                    .copied()
                    .zip(capacities.iter().copied())
                    .collect();
                let pf = platform.with_layer_capacities(&sizes);
                let mhla = Mhla::with_context(&ctx, &pf);
                let result = mhla.run_with(
                    if opts.warm_start { warm.as_ref() } else { None },
                    Some(ctx.moves()),
                );
                if opts.warm_start {
                    warm = Some(result.assignment.clone());
                }
                GridPoint { capacities, result }
            })
            .collect()
    };

    let per_task: Vec<Vec<GridPoint>> = if opts.parallel {
        tasks.par_iter().map(run_task).collect()
    } else {
        tasks.iter().map(run_task).collect()
    };
    GridSweep {
        layers,
        points: per_task.into_iter().flatten().collect(),
    }
}

/// Bookkeeping of one [`sweep_grid_pruned`] run.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct PruneStats {
    /// Points of the full Cartesian product.
    pub candidates: usize,
    /// Points actually evaluated (searched).
    pub evaluated: usize,
    /// Points skipped by the saturation rule.
    pub skipped_saturated: usize,
    /// Points skipped by the cost-floor rule.
    pub skipped_floor: usize,
}

impl PruneStats {
    /// Points skipped without evaluation.
    pub fn skipped(&self) -> usize {
        self.skipped_saturated + self.skipped_floor
    }

    /// Fraction of the Cartesian product skipped (0 on an empty grid).
    pub fn skip_ratio(&self) -> f64 {
        self.skipped() as f64 / self.candidates.max(1) as f64
    }
}

/// Result of [`sweep_grid_pruned`]: the evaluated subset of the grid (in
/// lexicographic order, like [`GridSweep`]) plus the prune bookkeeping.
#[derive(Clone, PartialEq, Debug)]
pub struct PrunedGridSweep {
    /// The evaluated points. Skipped points are absent, but the Pareto
    /// surfaces ([`GridSweep::pareto_cycles`] / `pareto_energy`) are
    /// point-for-point those of the exhaustive grid.
    pub sweep: GridSweep,
    /// How many points were evaluated vs skipped, and why.
    pub stats: PruneStats,
}

/// `q ≤ p` in every coordinate without being the same vector.
fn caps_dominate(q: &[u64], p: &[u64]) -> bool {
    q != p && q.iter().zip(p).all(|(a, b)| a <= b)
}

/// The sub-exhaustive grid sweep: like [`sweep_grid`], but capacity
/// vectors that provably cannot contribute a Pareto point are skipped
/// *without running the search*. Lossless: every skipped point is
/// dominated on both the cycles and the energy surface by an evaluated
/// point, so [`GridSweep::pareto_cycles`] / `pareto_energy` of the result
/// select exactly the frontier of the exhaustive grid
/// (`tests/prune_equivalence.rs` asserts this bit-for-bit on all nine
/// applications).
///
/// Every evaluated point runs *cold* (no warm start), so each result is
/// bit-identical to a standalone [`Mhla::run`] on the same platform — the
/// canonical semantics the losslessness proof and the equivalence harness
/// build on. Two prune rules apply, both conservative:
///
/// 1. **Per-layer saturation.** Under the cycles objective with every
///    axis inside one scratchpad latency class, per-access cycles and
///    block-transfer times are capacity-independent — capacities enter
///    the search only through *feasibility*, which is monotone (anything
///    that fits keeps fitting as layers grow). Each evaluated run records
///    which layers actually *bound* it
///    ([`RunStats`](crate::RunStats)): the first-overflow layer of every
///    failed greedy probe, every layer at which TE rejected an extension,
///    every layer that turned an array away during direct placement. If
///    point `p` differs from an evaluated point `q ≤ p` only on layers
///    that never bound `q`'s run, the run at `p` replays `q`'s decision
///    for decision — failed probes still fail (their overflow layer is
///    unchanged), successful ones still succeed (capacities only grew) —
///    yielding the same assignment and TE schedule, hence *equal cycles*
///    and, because per-access energies are monotone in capacity, *no
///    lower energy*. `p` is dominated by `q` on both surfaces and is
///    skipped. Growth is additionally required to stay inside the grown
///    layer's scratchpad latency class (the cycle landscape is only
///    capacity-independent within one class), checked per point pair.
/// 2. **Cost floor.** [`CostModel::cost_floor`](crate::CostModel::cost_floor)
///    bounds any assignment's cycles and energy from below using only the
///    point's layer parameters. If some evaluated point with
///    componentwise-smaller capacities already meets the floor on cycles
///    *and* some evaluated point does so on energy, the point cannot beat
///    either incumbent and is skipped.
///
/// Both rules only ever skip points dominated by an *evaluated* point, so
/// dominance transitivity keeps every surface intact (anything a skipped
/// point would dominate is already dominated by its dominator). When the
/// preconditions of rule 1 do not hold (energy/weighted objective or a
/// non-greedy strategy), the rule disarms itself and the sweep degrades
/// towards exhaustive — never towards a wrong frontier.
///
/// # Panics
///
/// Panics if any axis names the off-chip layer or a layer out of range,
/// or if any capacity is zero.
pub fn sweep_grid_pruned(
    program: &Program,
    platform: &Platform,
    axes: &[GridAxis],
    config: &MhlaConfig,
) -> PrunedGridSweep {
    let layers: Vec<LayerId> = axes.iter().map(|a| a.layer).collect();
    let axis_caps: Vec<Vec<u64>> = axes
        .iter()
        .map(|a| clean_capacities(&a.capacities))
        .collect();
    if axis_caps.is_empty() || axis_caps.iter().any(Vec::is_empty) {
        return PrunedGridSweep {
            sweep: GridSweep {
                layers,
                points: Vec::new(),
            },
            stats: PruneStats::default(),
        };
    }

    let ctx = ExplorationContext::new(program, platform, config.clone());

    // The saturation rule is valid only while the search's cycle landscape
    // is capacity-independent: cycles objective (access latencies and
    // block-transfer times do not scale with capacity inside one latency
    // class; energies do) and greedy strategy (the instrumented search).
    // The latency-class condition is checked per point pair, per differing
    // axis, so axes may span latency break-points — pruning simply never
    // crosses one.
    let saturation_armed =
        config.objective == Objective::Cycles && config.strategy == SearchStrategy::Greedy;

    let mut stats = PruneStats {
        candidates: axis_caps.iter().map(Vec::len).product(),
        ..PruneStats::default()
    };
    // Every evaluated point: capacities and reported (cycles, energy) —
    // the incumbents of the cost-floor rule.
    struct Evaluated {
        capacities: Vec<u64>,
        cycles: u64,
        energy_pj: f64,
    }
    // Rule-1 dominator candidates: evaluated points with at least one
    // *growable* axis (per-axis, precomputed from the run's
    // constrained-layer mask). Points whose run was bound on every axis
    // can never justify a skip and never enter this list, which keeps the
    // per-candidate scan short — on fully capacity-bound apps it is
    // empty. (Both scans are still linear in their list; a spatial index
    // over the capacity lattice would be the next step for 10⁵+ grids.)
    struct Replayable {
        capacities: Vec<u64>,
        growable: Vec<bool>,
    }
    let mut seen: Vec<Evaluated> = Vec::new();
    let mut replayable: Vec<Replayable> = Vec::new();
    let mut points: Vec<GridPoint> = Vec::new();

    for capacities in cartesian(&axis_caps) {
        // Rule 1: an evaluated q ≤ p whose run was not bound by any layer
        // on which p grows — with every grown layer staying inside its
        // scratchpad latency class — would replay identically at p.
        if saturation_armed
            && replayable.iter().any(|q| {
                caps_dominate(&q.capacities, &capacities)
                    && q.capacities.iter().zip(&capacities).zip(&q.growable).all(
                        |((&qc, &pc), &growable)| {
                            qc == pc
                                || (growable && sram_access_cycles(qc) == sram_access_cycles(pc))
                        },
                    )
            })
        {
            stats.skipped_saturated += 1;
            continue;
        }
        let sizes: Vec<(LayerId, u64)> = layers
            .iter()
            .copied()
            .zip(capacities.iter().copied())
            .collect();
        let pf = platform.with_layer_capacities(&sizes);
        // Rule 2: incumbents at or below the point's cost floor. The
        // energy scan only runs once the cycles scan has found a
        // dominator — a miss on either side keeps the point.
        let floor = ctx.cost_model(&pf).cost_floor();
        let floor_dominated = seen
            .iter()
            .any(|q| caps_dominate(&q.capacities, &capacities) && q.cycles <= floor.cycles)
            && seen.iter().any(|q| {
                caps_dominate(&q.capacities, &capacities) && q.energy_pj <= floor.energy_pj
            });
        if floor_dominated {
            stats.skipped_floor += 1;
            continue;
        }

        let mhla = Mhla::with_context(&ctx, &pf);
        let (result, run) = mhla.run_with_stats(None, Some(ctx.moves()));
        if saturation_armed {
            let growable: Vec<bool> = layers.iter().map(|&l| run.allows_growth_of(l)).collect();
            if growable.iter().any(|&g| g) {
                replayable.push(Replayable {
                    capacities: capacities.clone(),
                    growable,
                });
            }
        }
        seen.push(Evaluated {
            capacities: capacities.clone(),
            cycles: result.mhla_te_cycles(),
            energy_pj: result.mhla_energy_pj(),
        });
        stats.evaluated += 1;
        points.push(GridPoint { capacities, result });
    }

    PrunedGridSweep {
        sweep: GridSweep { layers, points },
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mhla_ir::{ElemType, ProgramBuilder};

    fn blocked() -> Program {
        let mut b = ProgramBuilder::new("blocked");
        let data = b.array("data", &[4096], ElemType::U8);
        let lb = b.begin_loop("blk", 0, 16, 1);
        let lr = b.begin_loop("rep", 0, 8, 1);
        let li = b.begin_loop("i", 0, 256, 1);
        let (blk, i) = (b.var(lb), b.var(li));
        b.stmt("use")
            .read(data, vec![blk * 256 + i])
            .compute_cycles(2)
            .finish();
        b.end_loop();
        b.end_loop();
        b.end_loop();
        let _ = lr;
        b.finish()
    }

    #[test]
    fn sweep_is_monotone_enough_and_pareto_is_sane() {
        let p = blocked();
        let pf = Platform::embedded_default(1024);
        let caps: Vec<u64> = vec![32, 64, 128, 256, 512, 1024, 4096];
        let s = sweep(&p, &pf, LayerId(1), &caps, &MhlaConfig::default());
        assert_eq!(s.points.len(), caps.len());
        // Capacities ascend.
        for w in s.points.windows(2) {
            assert!(w[0].capacity < w[1].capacity);
        }
        // The Pareto front is non-empty, ascending in capacity and strictly
        // descending in cycles.
        let front = s.pareto_cycles();
        assert!(!front.is_empty());
        for w in front.windows(2) {
            assert!(s.points[w[0]].cycles() > s.points[w[1]].cycles());
        }
        // Best-cycles point beats the smallest-capacity point.
        let best = s.best_cycles().unwrap();
        assert!(best.cycles() <= s.points[0].cycles());
    }

    #[test]
    fn bigger_scratchpads_never_hurt_cycles_on_the_front() {
        let p = blocked();
        let pf = Platform::embedded_default(1024);
        let s = sweep(
            &p,
            &pf,
            LayerId(1),
            &default_capacities(),
            &MhlaConfig::default(),
        );
        let front = s.pareto_energy();
        for w in front.windows(2) {
            assert!(s.points[w[0]].energy_pj() > s.points[w[1]].energy_pj());
        }
    }

    #[test]
    fn duplicate_capacities_are_deduped() {
        let p = blocked();
        let pf = Platform::embedded_default(1024);
        let s = sweep(
            &p,
            &pf,
            LayerId(1),
            &[256, 256, 512],
            &MhlaConfig::default(),
        );
        assert_eq!(s.points.len(), 2);
    }

    #[test]
    fn grid_covers_the_cartesian_product_in_lexicographic_order() {
        let p = blocked();
        let pf = Platform::three_level(4096, 512);
        let axes = [
            GridAxis::new(LayerId(1), vec![1024u64, 4096]),
            GridAxis::new(LayerId(2), vec![512u64, 128, 256]),
        ];
        let g = sweep_grid(&p, &pf, &axes, &MhlaConfig::default());
        assert_eq!(g.layers, vec![LayerId(1), LayerId(2)]);
        assert_eq!(g.points.len(), 6);
        let caps: Vec<Vec<u64>> = g.points.iter().map(|p| p.capacities.clone()).collect();
        assert_eq!(
            caps,
            vec![
                vec![1024, 128],
                vec![1024, 256],
                vec![1024, 512],
                vec![4096, 128],
                vec![4096, 256],
                vec![4096, 512],
            ],
            "axis capacities sorted, last axis fastest"
        );
    }

    #[test]
    fn grid_points_match_standalone_runs() {
        let p = blocked();
        let pf = Platform::three_level(4096, 512);
        let axes = [
            GridAxis::new(LayerId(1), vec![1024u64, 4096]),
            GridAxis::new(LayerId(2), vec![128u64, 512]),
        ];
        let g = sweep_grid(&p, &pf, &axes, &MhlaConfig::default());
        for point in &g.points {
            let standalone = pf.with_layer_capacities(&[
                (LayerId(1), point.capacities[0]),
                (LayerId(2), point.capacities[1]),
            ]);
            let cold = crate::Mhla::new(&p, &standalone, MhlaConfig::default()).run();
            assert_eq!(point.result, cold, "at {:?}", point.capacities);
        }
    }

    #[test]
    fn single_axis_grid_is_exactly_the_sweep() {
        let p = blocked();
        let pf = Platform::embedded_default(1024);
        let caps: Vec<u64> = vec![64, 128, 512, 2048];
        let s = sweep(&p, &pf, LayerId(1), &caps, &MhlaConfig::default());
        let g = sweep_grid(
            &p,
            &pf,
            &[GridAxis::new(LayerId(1), caps)],
            &MhlaConfig::default(),
        );
        assert_eq!(g.points.len(), s.points.len());
        for (gp, sp) in g.points.iter().zip(&s.points) {
            assert_eq!(gp.capacities, vec![sp.capacity]);
            assert_eq!(gp.result, sp.result);
        }
        assert_eq!(g.pareto_cycles(), s.pareto_cycles());
        assert_eq!(g.pareto_energy(), s.pareto_energy());
    }

    #[test]
    fn grid_pareto_surface_is_mutually_non_dominated() {
        let p = blocked();
        let pf = Platform::three_level(4096, 512);
        let axes = [
            GridAxis::new(LayerId(1), vec![512u64, 1024, 4096]),
            GridAxis::new(LayerId(2), vec![64u64, 128, 512]),
        ];
        let g = sweep_grid(&p, &pf, &axes, &MhlaConfig::default());
        let front = g.pareto_cycles();
        assert!(!front.is_empty());
        for &i in &front {
            for &j in &front {
                if i == j {
                    continue;
                }
                let dominated = g.points[j]
                    .capacities
                    .iter()
                    .zip(&g.points[i].capacities)
                    .all(|(cj, ci)| cj <= ci)
                    && g.points[j].cycles() <= g.points[i].cycles()
                    && (g.points[j].capacities != g.points[i].capacities
                        || g.points[j].cycles() < g.points[i].cycles());
                assert!(!dominated, "{i} dominated by {j} on the front");
            }
        }
        // The best-cycles point is always on the cycle front.
        let best = g.best_cycles().unwrap();
        assert!(front.iter().any(|&i| g.points[i].result == best.result));
    }

    #[test]
    fn grid_handles_degenerate_axis_lists() {
        let p = blocked();
        let pf = Platform::three_level(4096, 512);
        let empty = sweep_grid(&p, &pf, &[], &MhlaConfig::default());
        assert!(empty.points.is_empty());
        let empty_axis = sweep_grid(
            &p,
            &pf,
            &[
                GridAxis::new(LayerId(1), vec![1024u64]),
                GridAxis::new(LayerId(2), Vec::new()),
            ],
            &MhlaConfig::default(),
        );
        assert!(empty_axis.points.is_empty());
    }

    use mhla_ir::Program;
}
