//! Trade-off exploration over on-chip layer sizes.
//!
//! The paper's §1 claim — "performs a thorough trade-off exploration for
//! different memory layer sizes … able to find all the optimal trade-off
//! points" — maps to sweeps over the on-chip layer sizes:
//!
//! * [`sweep`] — the 1-D capacity sweep: one scratchpad layer resized over
//!   a range, both MHLA steps run at every size, Pareto-optimal
//!   (capacity, cycles) and (capacity, energy) points kept.
//! * [`sweep_grid`] — the N-dimensional generalization: every on-chip
//!   layer gets its own capacity axis ([`GridAxis`]) and the full
//!   Cartesian product is evaluated — the *joint* sizing of a multi-layer
//!   hierarchy (e.g. L1×L2 on [`Platform::three_level`]), whose
//!   interesting trade-offs single-axis sweeps cannot see. Pareto
//!   filtering generalizes to dominance over the capacity vector.
//!
//! Both run on a shared [`ExplorationContext`]: the reuse analysis,
//! program facts, TE caches and candidate-move space are computed once per
//! program; each point only pays for its search. Points are processed in
//! fixed-size chunks scheduled across threads with `rayon`, and within a
//! chunk each point warm-starts the greedy search from its predecessor
//! along the innermost axis.
//!
//! [`sweep_grid_pruned`] is the sub-exhaustive production path for large
//! grids: points that provably cannot contribute a Pareto point are
//! skipped *without evaluation* (see its documentation for the two prune
//! rules and the losslessness argument). The rules arm under all three
//! [`Objective`]s — the energy/weighted side rides on instrumented
//! per-run *gain bounds* ([`RunStats`]) — and the loop
//! executes in *frontier waves* whose cold evaluations run in parallel
//! while skip decisions commit in lexicographic order, so frontiers and
//! [`PruneStats`] are identical to the sequential point-by-point path;
//! `tests/prune_equivalence.rs` verifies the pruned frontier bit-for-bit
//! against the exhaustive one under every objective and both modes.
//!
//! [`sweep_cold`] keeps the frozen pre-optimization reference path:
//! strictly sequential, every point re-analyzed and searched from scratch.
//! The `tradeoff` bench and the equivalence tests compare the paths; their
//! Pareto fronts must be identical.
//!
//! # One engine, two search modes
//!
//! All three sweep families run through one shared engine (internal
//! `SweepEngine`): axis cleaning, the lexicographic
//! Cartesian point order, per-point platform construction and evaluation,
//! and the result assembly are written once; the families differ only in
//! their *scheduler* (warm-started chunks, wavefront levels, or prune
//! waves). The engine is parameterized by a [`SearchMode`]:
//!
//! * [`SearchMode::Cold`] — the frozen semantics every existing entry
//!   point defaults to: results are bit-identical to the pre-engine
//!   sweeps (and, for the pruned path, to standalone [`Mhla::run`]s).
//! * [`SearchMode::Improving`] — each point's search is a *portfolio*
//!   seeded from the committed results of its grid neighbors along every
//!   axis ([`SeedCache`]), with the cold leg always included: every
//!   point's outcome provably scores no worse than its cold counterpart
//!   under the configured objective, and the objective Pareto frontier
//!   ([`GridSweep::pareto_objective`]) dominates-or-equals the cold one
//!   ([`pareto::front_dominates`]). On 4-level stacks the warm portfolio
//!   can *strictly* beat the cold greedy search (first observed on
//!   `full_search_me`), which is exactly why the cold mode must stay
//!   frozen and this mode is opt-in.
//!
//! Pareto filtering is shared between [`Sweep`] and [`GridSweep`] through
//! [`pareto::front`] — the sort-based sweep that replaced the seed's
//! all-pairs dominance scan.

use std::cell::RefCell;
use std::collections::{BTreeMap, HashMap, HashSet};
use std::sync::atomic::{AtomicBool, AtomicU8, Ordering};
use std::sync::Arc;
use std::time::Instant;

use rayon::prelude::*;

use mhla_hierarchy::{
    energy::{sram_access_cycles, sram_write_pj},
    LayerId, Platform,
};
use mhla_ir::Program;

use crate::context::{ExplorationContext, FloorCache, SeedCache};
use crate::driver::{Mhla, MhlaResult, RunStats};
use crate::error::{self, MhlaError};
use crate::pareto;
use crate::types::{Assignment, MhlaConfig, Objective, SearchStrategy};
use crate::workspace::EvalWorkspace;

/// Why a budgeted sweep stopped early (see [`SweepStatus::Stopped`]).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum StopCause {
    /// [`ExploreBudget::max_evals`] committed evaluations were reached.
    /// The only *deterministic* stop: the committed prefix is a pure
    /// function of the inputs, independent of wall time and scheduling.
    MaxEvals,
    /// [`ExploreBudget::deadline`] passed.
    Deadline,
    /// [`ExploreBudget::cancel`] was raised.
    Cancelled,
}

/// How far a (possibly budgeted) sweep got.
///
/// `Stopped` carries everything needed to resume deterministically: the
/// first lexicographic grid index **not** decided yet. Every point before
/// `next_lex` is fully committed (evaluated, or — in the pruned sweep —
/// skip-finalized), so the partial result's Pareto accessors select a
/// *certified* frontier: provably the exact front of the decided prefix.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum SweepStatus {
    /// The whole grid was covered.
    #[default]
    Complete,
    /// The budget ran out (or the sweep was cancelled) first.
    Stopped {
        /// What stopped the sweep.
        cause: StopCause,
        /// First lexicographic grid index not yet decided — pass the run
        /// back to the matching `try_*_resume` entry point to continue
        /// from exactly here.
        next_lex: usize,
    },
}

impl SweepStatus {
    /// Whether the sweep covered the whole grid.
    pub fn is_complete(&self) -> bool {
        matches!(self, SweepStatus::Complete)
    }

    /// The resume cursor of a stopped sweep (`None` when complete).
    pub fn next_lex(&self) -> Option<usize> {
        match *self {
            SweepStatus::Complete => None,
            SweepStatus::Stopped { next_lex, .. } => Some(next_lex),
        }
    }
}

/// A work bound for the sweep schedulers, threaded through
/// [`SweepOptions::budget`] / [`PruneOptions::budget`]. All three limits
/// are optional and combine; the default is unlimited.
///
/// On exhaustion the sweep does **not** error: it stops at a
/// fully-committed lexicographic prefix and returns its result with
/// [`SweepStatus::Stopped`] — a certified partial frontier plus the
/// resume cursor. Callers that need an all-or-nothing answer use
/// [`GridSweepRun::require_complete`] /
/// [`PrunedGridSweep::require_complete`] to turn a stop into a typed
/// [`MhlaError`].
#[derive(Clone, Debug, Default)]
pub struct ExploreBudget {
    /// Maximum grid points *committed* in this call (speculatively
    /// evaluated but discarded wave members do not count). Deterministic:
    /// the same inputs stop at the same point on every machine.
    pub max_evals: Option<usize>,
    /// Hard wall-clock deadline. Checked between point evaluations; an
    /// in-flight evaluation is never aborted, so the sweep can overshoot
    /// by roughly one point (one wave, when parallel).
    pub deadline: Option<Instant>,
    /// Cooperative cancellation: raise the flag from another thread and
    /// the sweep stops at the next check, returning the committed prefix.
    pub cancel: Option<Arc<AtomicBool>>,
}

impl ExploreBudget {
    /// No limits (the default). `const`, so option presets can be built in
    /// `const` context and call sites stop hand-cloning default structs.
    pub const fn unlimited() -> Self {
        ExploreBudget {
            max_evals: None,
            deadline: None,
            cancel: None,
        }
    }

    /// A pure evaluation-count budget — the deterministic limit the
    /// resume tests replay against.
    pub fn max_evals(n: usize) -> Self {
        ExploreBudget {
            max_evals: Some(n),
            ..ExploreBudget::default()
        }
    }

    /// Whether no limit is set at all.
    pub fn is_unlimited(&self) -> bool {
        self.max_evals.is_none() && self.deadline.is_none() && self.cancel.is_none()
    }

    /// Whether the budget stops further evaluations after `committed`
    /// points. The deterministic cause is checked first so tests
    /// replaying a `max_evals` stop never race the clock.
    fn stop(&self, committed: usize) -> Option<StopCause> {
        if let Some(max) = self.max_evals {
            if committed >= max {
                return Some(StopCause::MaxEvals);
            }
        }
        self.stop_timed()
    }

    /// The wall-clock half of [`stop`](Self::stop) — what the parallel
    /// scheduler's tasks poll between points (`max_evals` is enforced
    /// there by deterministic truncation instead).
    fn stop_timed(&self) -> Option<StopCause> {
        if let Some(cancel) = &self.cancel {
            if cancel.load(Ordering::Relaxed) {
                return Some(StopCause::Cancelled);
            }
        }
        if let Some(deadline) = self.deadline {
            if Instant::now() >= deadline {
                return Some(StopCause::Deadline);
            }
        }
        None
    }

    /// Whether any wall-clock limit is set (the parallel scheduler only
    /// polls the clock when one is).
    fn is_timed(&self) -> bool {
        self.deadline.is_some() || self.cancel.is_some()
    }
}

impl PartialEq for ExploreBudget {
    /// Cancellation flags compare by identity ([`Arc::ptr_eq`]) — two
    /// budgets are interchangeable only when they observe the *same*
    /// flag.
    fn eq(&self, other: &Self) -> bool {
        self.max_evals == other.max_evals
            && self.deadline == other.deadline
            && match (&self.cancel, &other.cancel) {
                (None, None) => true,
                (Some(a), Some(b)) => Arc::ptr_eq(a, b),
                _ => false,
            }
    }
}

/// The stop cause a parallel scheduler's tasks agree on: the first task
/// to observe a deadline/cancellation records it here; everyone else
/// winds down. (`0` = none, `1` = deadline, `2` = cancelled.)
struct TripFlag(AtomicU8);

impl TripFlag {
    fn new() -> Self {
        TripFlag(AtomicU8::new(0))
    }

    fn tripped(&self) -> bool {
        self.0.load(Ordering::Relaxed) != 0
    }

    fn trip(&self, cause: StopCause) {
        let code = match cause {
            StopCause::Deadline => 1,
            StopCause::Cancelled => 2,
            // MaxEvals is enforced by deterministic truncation, never
            // through the trip flag.
            StopCause::MaxEvals => return,
        };
        let _ = self
            .0
            .compare_exchange(0, code, Ordering::Relaxed, Ordering::Relaxed);
    }

    fn cause(&self) -> Option<StopCause> {
        match self.0.load(Ordering::Relaxed) {
            1 => Some(StopCause::Deadline),
            2 => Some(StopCause::Cancelled),
            _ => None,
        }
    }
}

/// One point of the capacity sweep.
#[derive(Clone, PartialEq, Debug)]
pub struct SweepPoint {
    /// On-chip scratchpad capacity of this point, bytes.
    pub capacity: u64,
    /// The full MHLA result at this capacity.
    pub result: MhlaResult,
}

impl SweepPoint {
    /// Static MHLA+TE cycles at this point.
    pub fn cycles(&self) -> u64 {
        self.result.mhla_te_cycles()
    }

    /// Memory energy at this point, picojoule.
    pub fn energy_pj(&self) -> f64 {
        self.result.mhla_energy_pj()
    }
}

/// Result of [`sweep`]: all evaluated points in ascending capacity order.
#[derive(Clone, PartialEq, Debug)]
pub struct Sweep {
    /// Evaluated points, ascending capacity.
    pub points: Vec<SweepPoint>,
}

impl Sweep {
    /// Indices of the Pareto-optimal (capacity, cycles) points: no other
    /// point has both smaller-or-equal capacity and strictly fewer cycles.
    pub fn pareto_cycles(&self) -> Vec<usize> {
        surface_front(&self.points, |p| vec![p.capacity as f64, p.cycles() as f64])
    }

    /// Indices of the Pareto-optimal (capacity, energy) points.
    pub fn pareto_energy(&self) -> Vec<usize> {
        surface_front(&self.points, |p| vec![p.capacity as f64, p.energy_pj()])
    }

    /// The point with the fewest cycles (ties: smallest capacity).
    pub fn best_cycles(&self) -> Option<&SweepPoint> {
        surface_best(
            &self.points,
            |a, b| a.cycles().cmp(&b.cycles()),
            |p| (p.capacity, EMPTY),
        )
    }

    /// The point with the least energy (ties: smallest capacity).
    pub fn best_energy(&self) -> Option<&SweepPoint> {
        surface_best(
            &self.points,
            |a, b| a.energy_pj().total_cmp(&b.energy_pj()),
            |p| (p.capacity, EMPTY),
        )
    }
}

/// Empty lexicographic tie-break for 1-D sweep points (their capacities
/// are unique after dedup, so the total-capacity key already decides).
const EMPTY: &[u64] = &[];

/// The shared Pareto filter behind every `pareto_*` accessor of [`Sweep`]
/// and [`GridSweep`]: keep a point iff no other point has every projected
/// coordinate (capacities…, objective) smaller-or-equal without being the
/// exact same point — one implementation over the sort-based
/// [`pareto::front`], parameterized only by the coordinate projection.
fn surface_front<P>(points: &[P], coords: impl Fn(&P) -> Vec<f64>) -> Vec<usize> {
    let coords: Vec<Vec<f64>> = points.iter().map(coords).collect();
    pareto::front(&coords)
}

/// The shared selector behind every `best_*` accessor: the point winning
/// the objective comparison (a comparator, so cycle counts stay exact
/// `u64` comparisons while energies compare as `f64`), ties broken by the
/// (total capacity, lexicographic capacity vector) key — the first such
/// point wins, matching the pre-dedup per-type implementations.
fn surface_best<'p, P>(
    points: &'p [P],
    value: impl Fn(&P, &P) -> std::cmp::Ordering,
    tie: impl for<'a> Fn(&'a P) -> (u64, &'a [u64]),
) -> Option<&'p P> {
    points
        .iter()
        .min_by(|a, b| value(a, b).then_with(|| tie(a).cmp(&tie(b))))
}

/// Default capacity grid: powers of two from 128 B to 128 KiB.
pub fn default_capacities() -> Vec<u64> {
    (7..=17).map(|e| 1u64 << e).collect()
}

/// Default number of consecutive capacity points one parallel task
/// processes (the default of [`SweepOptions::chunk`]).
///
/// Within a chunk, points after the first warm-start from their
/// predecessor; chunks are independent, so this is also the granularity of
/// the `rayon` fan-out. Fixed (instead of `capacities / threads`) so sweep
/// results never depend on the machine's core count. Tunable at runtime
/// through [`SweepOptions::chunk`] (the `bench` binary reads
/// `MHLA_SWEEP_CHUNK` for the many-core tuning experiment).
pub const SWEEP_CHUNK: usize = 4;

/// How each point of a sweep seeds its search — the engine parameter the
/// unified sweep engine dispatches on.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum SearchMode {
    /// The frozen semantics every existing entry point defaults to:
    /// bit-identical to the pre-engine sweeps. The exhaustive scheduler
    /// runs warm-started chunks whose results are the classic warm/cold
    /// portfolio; the pruned scheduler evaluates every point cold
    /// (standalone-identical — the semantics its losslessness proof and
    /// the equivalence suites rely on).
    #[default]
    Cold,
    /// The *improving* mode: each point's search is a warm-start
    /// portfolio seeded from the committed results of its grid neighbors
    /// along every axis (the [`SeedCache`]) plus the lexicographically
    /// previous committed point when its assignment still fits
    /// ([`SeedOrigin::LexPredecessor`] — the seed that carries search
    /// state across outer-axis steps), with the cold leg always included
    /// and preferred on ties. Each point's outcome therefore provably
    /// scores no worse than its cold counterpart under the configured
    /// objective — frontiers are allowed to dominate, never to trail,
    /// the cold ones (`pareto::front_dominates` is the machine check;
    /// `tests/improving_sweep.rs` and the randomized-program proptests
    /// enforce it). Points run strictly sequentially in lexicographic
    /// order (a point's seeds are its committed predecessors), so
    /// results are deterministic and independent of every
    /// `parallel`/`chunk`/`wave` setting — those knobs only tune the
    /// cold schedulers. Warm seeds are a greedy-search construct;
    /// non-greedy strategies ignore them and this mode equals
    /// [`Cold`](SearchMode::Cold).
    Improving,
}

/// Where a winning warm seed came from (see [`GridSweepRun::winners`]).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SeedOrigin {
    /// The committed grid neighbor along this axis (an index into the
    /// sweep's axis list): the point with exactly that axis moved back to
    /// its previous capacity. Always feasible — capacities only grew.
    Axis(usize),
    /// The lexicographically previous committed point. At an
    /// innermost-axis reset this sits at a *larger* innermost capacity
    /// than the current point, so it is only offered when its assignment
    /// passes the point's capacity check.
    LexPredecessor,
}

/// Tuning knobs for [`sweep_with`] and [`sweep_grid_with`].
#[derive(Clone, PartialEq, Debug)]
pub struct SweepOptions {
    /// Warm-start each point (within a chunk) from its predecessor's
    /// assignment along the innermost axis. Applies to the greedy strategy
    /// only, in [`SearchMode::Cold`] (the improving mode has its own
    /// neighbor seeding and ignores this).
    pub warm_start: bool,
    /// Process chunks of capacities on a thread pool.
    pub parallel: bool,
    /// Points per sequential chunk along the innermost sweep axis
    /// (clamped to ≥ 1; default [`SWEEP_CHUNK`]).
    ///
    /// **Determinism guarantee:** the chunking is fixed by this value
    /// alone — never derived from the machine's core count — and each
    /// point's result is the warm/cold search *portfolio* (the cold
    /// search always runs; the warm result is kept only when strictly
    /// better). Sweep results are therefore identical for every
    /// `chunk`/`parallel`/`warm_start` combination and on any thread
    /// fan-out; only wall time changes. Larger chunks lengthen warm-start
    /// chains but reduce scheduling slack — tune per machine via the
    /// `bench` binary (`MHLA_SWEEP_CHUNK`), tracked in `BENCH_sweep.json`.
    /// (In [`SearchMode::Improving`] the scheduler is the wavefront, not
    /// the chunked chain; `chunk` is then irrelevant to results *and*
    /// scheduling, and `parallel` only fans out within a level.)
    pub chunk: usize,
    /// The search mode (default [`SearchMode::Cold`] — the frozen,
    /// bit-identical semantics).
    pub mode: SearchMode,
    /// The exploration budget (default unlimited). On exhaustion the
    /// sweep stops at a fully-committed lexicographic prefix and reports
    /// it through [`GridSweepRun::status`] — see [`ExploreBudget`].
    pub budget: ExploreBudget,
}

impl Default for SweepOptions {
    fn default() -> Self {
        SweepOptions {
            warm_start: true,
            parallel: true,
            chunk: SWEEP_CHUNK,
            mode: SearchMode::Cold,
            budget: ExploreBudget::default(),
        }
    }
}

impl SweepOptions {
    /// The default options under the given budget — the one-liner call
    /// sites reach for instead of hand-cloning a default struct (the PR 6
    /// budget made these options non-`Copy`).
    pub fn with_budget(budget: ExploreBudget) -> Self {
        SweepOptions {
            budget,
            ..SweepOptions::default()
        }
    }
}

/// Sweeps scratchpad capacities, resizing `layer` of `platform` to each of
/// `capacities` and running the full MHLA flow. Production path: shared
/// reuse analysis, warm starts, parallel chunks (see [`SweepOptions`]).
///
/// # Panics
///
/// Panics if `layer` is the off-chip layer (it cannot be resized).
pub fn sweep(
    program: &Program,
    platform: &Platform,
    layer: LayerId,
    capacities: &[u64],
    config: &MhlaConfig,
) -> Sweep {
    sweep_with(
        program,
        platform,
        layer,
        capacities,
        config,
        SweepOptions::default(),
    )
}

/// The pre-optimization reference sweep: strictly sequential, the reuse
/// analysis re-derived at every point, every candidate move re-priced with
/// the full `evaluate` oracle, no warm starts — the seed implementation,
/// frozen. Kept for validation and benchmarking; [`sweep`] must yield
/// identical Pareto fronts (see the equivalence tests).
pub fn sweep_cold(
    program: &Program,
    platform: &Platform,
    layer: LayerId,
    capacities: &[u64],
    config: &MhlaConfig,
) -> Sweep {
    let caps = clean_capacities(capacities);
    let points = caps
        .into_iter()
        .map(|capacity| {
            let pf = platform.with_layer_capacity(layer, capacity);
            let result = Mhla::new(program, &pf, config.clone()).run_reference();
            SweepPoint { capacity, result }
        })
        .collect();
    Sweep { points }
}

/// [`sweep`] with explicit [`SweepOptions`].
///
/// Implemented as the 1-axis degenerate case of [`sweep_grid_with`], so
/// the 1-D and N-D sweeps share one execution path: identical context
/// sharing, chunking and warm-start behavior by construction.
pub fn sweep_with(
    program: &Program,
    platform: &Platform,
    layer: LayerId,
    capacities: &[u64],
    config: &MhlaConfig,
    opts: SweepOptions,
) -> Sweep {
    match try_sweep_with(program, platform, layer, capacities, config, &opts) {
        Ok(run) => run.sweep,
        Err(e) => panic!("sweep_with: {e}"),
    }
}

/// Fallible [`sweep`]: validates the program, platform and configuration
/// up front and returns a typed [`MhlaError`] instead of panicking.
///
/// # Errors
///
/// [`MhlaError::InvalidProgram`] / [`InvalidOptions`](MhlaError::InvalidOptions) /
/// [`InvalidObjective`](MhlaError::InvalidObjective) on bad ingress,
/// [`MhlaError::InfeasiblePoint`] on an impossible sweep axis.
pub fn try_sweep(
    program: &Program,
    platform: &Platform,
    layer: LayerId,
    capacities: &[u64],
    config: &MhlaConfig,
) -> Result<Sweep, MhlaError> {
    try_sweep_with(
        program,
        platform,
        layer,
        capacities,
        config,
        &SweepOptions::default(),
    )
    .map(|run| run.sweep)
}

/// Result of [`try_sweep_with`]: the 1-D sweep plus how far it got (a
/// budgeted sweep can stop early — see [`SweepStatus`]).
#[derive(Clone, PartialEq, Debug)]
pub struct SweepRun {
    /// The evaluated points (a lexicographic — here: ascending-capacity —
    /// prefix of the full sweep when [`status`](Self::status) is
    /// [`SweepStatus::Stopped`]).
    pub sweep: Sweep,
    /// Whether the sweep covered every capacity.
    pub status: SweepStatus,
}

/// Fallible [`sweep_with`]: validated ingress, budget-aware result.
///
/// # Errors
///
/// As [`try_sweep`]. Budget exhaustion is *not* an error — it is
/// reported through [`SweepRun::status`].
pub fn try_sweep_with(
    program: &Program,
    platform: &Platform,
    layer: LayerId,
    capacities: &[u64],
    config: &MhlaConfig,
    opts: &SweepOptions,
) -> Result<SweepRun, MhlaError> {
    let axis = GridAxis {
        layer,
        capacities: capacities.to_vec(),
    };
    let run = try_sweep_grid_run(program, platform, &[axis], config, opts)?;
    Ok(SweepRun {
        sweep: Sweep {
            points: run
                .sweep
                .points
                .into_iter()
                .map(|p| SweepPoint {
                    capacity: p.capacities[0],
                    result: p.result,
                })
                .collect(),
        },
        status: run.status,
    })
}

fn clean_capacities(capacities: &[u64]) -> Vec<u64> {
    let mut caps: Vec<u64> = capacities.to_vec();
    caps.sort_unstable();
    caps.dedup();
    caps
}

/// One axis of a layer-size grid sweep: the on-chip layer to resize and
/// the capacities to visit on it (sorted and deduped before use).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct GridAxis {
    /// The on-chip layer this axis resizes.
    pub layer: LayerId,
    /// Capacities to visit, bytes.
    pub capacities: Vec<u64>,
}

impl GridAxis {
    /// Builds an axis.
    pub fn new(layer: LayerId, capacities: impl Into<Vec<u64>>) -> Self {
        GridAxis {
            layer,
            capacities: capacities.into(),
        }
    }
}

/// One point of a grid sweep: a capacity per axis plus the full MHLA
/// result on the platform resized to those capacities.
#[derive(Clone, PartialEq, Debug)]
pub struct GridPoint {
    /// Capacity per axis, parallel to [`GridSweep::layers`], bytes.
    pub capacities: Vec<u64>,
    /// The full MHLA result at this capacity vector.
    pub result: MhlaResult,
}

impl GridPoint {
    /// Static MHLA+TE cycles at this point.
    pub fn cycles(&self) -> u64 {
        self.result.mhla_te_cycles()
    }

    /// Memory energy at this point, picojoule.
    pub fn energy_pj(&self) -> f64 {
        self.result.mhla_energy_pj()
    }

    /// Total on-chip bytes of this point's capacity vector.
    pub fn total_capacity(&self) -> u64 {
        self.capacities.iter().sum()
    }

    /// The step-1 objective score of this point ([`Objective::score`] of
    /// the assignment cost) — the quantity the search minimizes, and the
    /// one [`SearchMode::Improving`] provably never worsens against the
    /// cold search.
    pub fn objective_score(&self, objective: &Objective) -> f64 {
        objective.score(&self.result.assignment_cost)
    }
}

/// Result of [`sweep_grid`]: every point of the capacity grid, in
/// lexicographic order of the capacity vector (the last axis varies
/// fastest).
#[derive(Clone, PartialEq, Debug)]
pub struct GridSweep {
    /// The resized layer per axis, in axis order.
    pub layers: Vec<LayerId>,
    /// Evaluated points, lexicographic by capacity vector.
    pub points: Vec<GridPoint>,
}

impl GridSweep {
    /// Indices of the Pareto surface over (capacity vector, cycles): a
    /// point survives iff no other point dominates it — capacities all ≤,
    /// cycles ≤, and at least one strictly smaller. On a 1-axis grid this
    /// is exactly [`Sweep::pareto_cycles`]. (Capacity vectors in a grid
    /// are unique, so the 1-axis case degenerates to "keep iff the
    /// objective strictly improves on everything at smaller capacity" —
    /// asserted by the grid equivalence tests. `pareto::front_quadratic`
    /// keeps the seed's all-pairs scan as the test oracle.)
    pub fn pareto_cycles(&self) -> Vec<usize> {
        surface_front(&self.points, |p| grid_coords(p, p.cycles() as f64))
    }

    /// Indices of the Pareto surface over (capacity vector, energy).
    pub fn pareto_energy(&self) -> Vec<usize> {
        surface_front(&self.points, |p| grid_coords(p, p.energy_pj()))
    }

    /// Indices of the Pareto surface over (capacity vector, objective
    /// score) — the surface [`SearchMode::Improving`]'s dominance
    /// guarantee is stated on: the *optimized* step-1 objective
    /// ([`GridPoint::objective_score`]), not the TE'd cycle estimate
    /// (Time Extensions are a separate heuristic that a better step-1
    /// score does not bound).
    pub fn pareto_objective(&self, objective: &Objective) -> Vec<usize> {
        surface_front(&self.points, |p| {
            grid_coords(p, p.objective_score(objective))
        })
    }

    /// The point with the fewest cycles (ties: smallest total capacity,
    /// then lexicographically smallest vector).
    pub fn best_cycles(&self) -> Option<&GridPoint> {
        surface_best(&self.points, |a, b| a.cycles().cmp(&b.cycles()), grid_tie)
    }

    /// The point with the least energy (ties as
    /// [`best_cycles`](Self::best_cycles)).
    pub fn best_energy(&self) -> Option<&GridPoint> {
        surface_best(
            &self.points,
            |a, b| a.energy_pj().total_cmp(&b.energy_pj()),
            grid_tie,
        )
    }
}

/// A grid point's (capacities…, objective) projection for [`surface_front`].
fn grid_coords(p: &GridPoint, objective: f64) -> Vec<f64> {
    let mut c: Vec<f64> = p.capacities.iter().map(|&c| c as f64).collect();
    c.push(objective);
    c
}

/// A grid point's tie-break key for [`surface_best`].
fn grid_tie(p: &GridPoint) -> (u64, &[u64]) {
    (p.total_capacity(), &p.capacities)
}

/// Cartesian product of the outer axes, lexicographic. An empty axis list
/// yields one empty prefix (the 1-axis degenerate case).
fn cartesian(axes: &[Vec<u64>]) -> Vec<Vec<u64>> {
    let mut out = vec![Vec::new()];
    for axis in axes {
        out = out
            .iter()
            .flat_map(|prefix| {
                axis.iter().map(move |&c| {
                    let mut p = prefix.clone();
                    p.push(c);
                    p
                })
            })
            .collect();
    }
    out
}

/// Sweeps an N-dimensional layer-size grid: for every point of the
/// Cartesian product of the axes' capacities, resizes the named layers of
/// `platform` and runs the full MHLA flow — the *joint* trade-off
/// exploration of a multi-layer hierarchy (e.g. L1×L2 on
/// [`Platform::three_level`]).
///
/// Production path: one shared [`ExplorationContext`] (reuse analysis,
/// program facts, TE caches, move space computed once), the innermost
/// axis processed in warm-started chunks, chunks scheduled across threads
/// (see [`SweepOptions`]). Each point's result is bit-identical to a cold
/// standalone [`Mhla::run`] on the same platform (the portfolio search
/// prefers the cold result on ties), and a 1-axis grid is exactly
/// [`sweep`] — both asserted by the equivalence tests.
///
/// # Panics
///
/// Panics if any axis names the off-chip layer or a layer out of range,
/// or if any capacity is zero.
pub fn sweep_grid(
    program: &Program,
    platform: &Platform,
    axes: &[GridAxis],
    config: &MhlaConfig,
) -> GridSweep {
    sweep_grid_with(program, platform, axes, config, SweepOptions::default())
}

/// [`sweep_grid`] with explicit [`SweepOptions`].
pub fn sweep_grid_with(
    program: &Program,
    platform: &Platform,
    axes: &[GridAxis],
    config: &MhlaConfig,
    opts: SweepOptions,
) -> GridSweep {
    sweep_grid_run(program, platform, axes, config, opts).sweep
}

/// Fallible [`sweep_grid`]: validated ingress, typed errors.
///
/// # Errors
///
/// As [`try_sweep`].
pub fn try_sweep_grid(
    program: &Program,
    platform: &Platform,
    axes: &[GridAxis],
    config: &MhlaConfig,
) -> Result<GridSweep, MhlaError> {
    try_sweep_grid_run(program, platform, axes, config, &SweepOptions::default())
        .map(|run| run.sweep)
}

/// Result of [`sweep_grid_run`]: the grid sweep plus the engine's
/// per-mode bookkeeping — the data the `grid4` bench's mode columns and
/// the improving-vs-cold comparisons are built from.
#[derive(Clone, PartialEq, Debug)]
pub struct GridSweepRun {
    /// The evaluated grid (identical to what [`sweep_grid_with`] returns).
    pub sweep: GridSweep,
    /// Greedy search legs executed across all points (the cold leg plus
    /// one per distinct warm seed per point); `0` under non-greedy
    /// strategies, which report no leg counts.
    pub evals: usize,
    /// Points whose committed result came from a warm seed instead of the
    /// cold leg — strict improvements over the cold search by
    /// construction (the portfolio keeps cold on ties).
    pub seed_wins: usize,
    /// Per point (lexicographic order): where the winning seed came from
    /// ([`SeedOrigin`]), `None` where the cold leg won. In
    /// [`SearchMode::Cold`] with warm-started chunks, a warm-chain
    /// override is reported as [`SeedOrigin::Axis`] of the innermost axis
    /// (the chain dimension).
    pub winners: Vec<Option<SeedOrigin>>,
    /// Points of the full Cartesian product (what a complete run
    /// evaluates).
    pub candidates: usize,
    /// How far the sweep got. Always [`SweepStatus::Complete`] under an
    /// unlimited [`SweepOptions::budget`]; when `Stopped`, the points are
    /// the fully-committed lexicographic prefix `order[..next_lex]` —
    /// the sweep's Pareto accessors then select the *certified* partial
    /// frontier of exactly that prefix, and
    /// [`try_sweep_grid_resume`] continues from `next_lex`
    /// deterministically.
    pub status: SweepStatus,
}

impl GridSweepRun {
    /// The run if it completed, a typed error if it was interrupted —
    /// for callers that need an all-or-nothing answer.
    ///
    /// # Errors
    ///
    /// [`MhlaError::BudgetExhausted`] / [`MhlaError::Cancelled`].
    pub fn require_complete(self) -> Result<Self, MhlaError> {
        match self.status {
            SweepStatus::Complete => Ok(self),
            SweepStatus::Stopped {
                cause: StopCause::Cancelled,
                ..
            } => Err(MhlaError::Cancelled {
                committed: self.sweep.points.len(),
                total: self.candidates,
            }),
            SweepStatus::Stopped { cause, .. } => Err(MhlaError::BudgetExhausted {
                cause,
                committed: self.sweep.points.len(),
                total: self.candidates,
            }),
        }
    }
}

/// [`sweep_grid_with`], additionally reporting which search legs ran and
/// which seeds won (see [`GridSweepRun`]).
pub fn sweep_grid_run(
    program: &Program,
    platform: &Platform,
    axes: &[GridAxis],
    config: &MhlaConfig,
    opts: SweepOptions,
) -> GridSweepRun {
    match try_sweep_grid_run(program, platform, axes, config, &opts) {
        Ok(run) => run,
        Err(e) => panic!("sweep_grid_run: {e}"),
    }
}

/// Fallible [`sweep_grid_run`]: validates the program
/// ([`Program::validate`]), the platform, the configuration and the axes
/// up front, then runs the budget-aware scheduler for the selected
/// [`SearchMode`].
///
/// # Errors
///
/// As [`try_sweep`]. Budget exhaustion is *not* an error — the run comes
/// back `Ok` with [`SweepStatus::Stopped`] and a certified partial
/// frontier (see [`GridSweepRun::status`]); use
/// [`GridSweepRun::require_complete`] to promote a stop into a typed
/// error.
pub fn try_sweep_grid_run(
    program: &Program,
    platform: &Platform,
    axes: &[GridAxis],
    config: &MhlaConfig,
    opts: &SweepOptions,
) -> Result<GridSweepRun, MhlaError> {
    error::validate_run_ingress(program, platform, config)?;
    error::validate_axes(platform, axes)?;
    // Everything capacity-independent — reuse analysis, program facts, TE
    // caches, candidate moves — is computed once here and borrowed by
    // every point.
    let ctx = ExplorationContext::new(program, platform, config.clone());
    run_in(&ctx, platform, axes, opts)
}

/// [`try_sweep_grid_run`] over a caller-provided [`ExplorationContext`] —
/// the entry point for callers that serve many requests against the same
/// program (the `mhla serve` batch server): the context's reuse analysis,
/// program facts, TE caches and move space are paid for once and reused
/// across calls, while each call still validates its own ingress and runs
/// under its own [`SweepOptions::budget`].
///
/// The context must have been built against the same `platform`
/// layer-stack *shape* the axes address (capacities are free to differ —
/// the sweep resizes them per point; context construction only reads the
/// stack shape). Results are bit-identical to [`try_sweep_grid_run`] with
/// the context's program and config — `tests/serve_equivalence.rs` pins
/// this.
///
/// # Errors
///
/// As [`try_sweep_grid_run`].
pub fn try_sweep_grid_run_in(
    ctx: &ExplorationContext<'_>,
    platform: &Platform,
    axes: &[GridAxis],
    opts: &SweepOptions,
) -> Result<GridSweepRun, MhlaError> {
    error::validate_run_ingress(ctx.program(), platform, ctx.config())?;
    error::validate_axes(platform, axes)?;
    run_in(ctx, platform, axes, opts)
}

/// The shared tail of [`try_sweep_grid_run`] / [`try_sweep_grid_run_in`]:
/// axes already validated, context in hand — clean the axes, shortcut the
/// empty grid, run the mode's scheduler.
fn run_in(
    ctx: &ExplorationContext<'_>,
    platform: &Platform,
    axes: &[GridAxis],
    opts: &SweepOptions,
) -> Result<GridSweepRun, MhlaError> {
    let layers: Vec<LayerId> = axes.iter().map(|a| a.layer).collect();
    let axis_caps: Vec<Vec<u64>> = axes
        .iter()
        .map(|a| clean_capacities(&a.capacities))
        .collect();
    if axis_caps.is_empty() || axis_caps.iter().any(Vec::is_empty) {
        return Ok(GridSweepRun {
            sweep: GridSweep {
                layers,
                points: Vec::new(),
            },
            evals: 0,
            seed_wins: 0,
            winners: Vec::new(),
            candidates: 0,
            status: SweepStatus::Complete,
        });
    }
    let engine = SweepEngine::new(ctx, platform, &layers, &axis_caps);
    Ok(match opts.mode {
        SearchMode::Cold => engine.run_chunked(opts, 0),
        SearchMode::Improving => engine.run_lex(&opts.budget, 0, &[]),
    })
}

/// Resumes a stopped [`try_sweep_grid_run`] from its recorded cursor and
/// returns the *merged* run (prior points plus the continuation), again
/// budget-aware: `opts.budget` bounds the continuation, so repeated
/// resumes cover the grid in installments.
///
/// Must be called with the same program/platform/axes/config/options the
/// prior run used (checked where cheaply possible). Resuming a
/// [`SweepStatus::Complete`] run returns it unchanged.
///
/// In [`SearchMode::Improving`] the continuation replays the committed
/// seed state, so the merged run — including its
/// [`evals`](GridSweepRun::evals)/[`winners`](GridSweepRun::winners)
/// bookkeeping — is bit-identical to the uninterrupted run. In
/// [`SearchMode::Cold`] the merged *points* (and therefore all
/// frontiers) are bit-identical, but warm chains restart at the resume
/// boundary, so the leg/winner bookkeeping of the boundary chunk may
/// differ from an uninterrupted run's.
///
/// # Errors
///
/// As [`try_sweep`], plus [`MhlaError::InvalidOptions`] when `prior`
/// does not match the given axes (different layers, or points that are
/// not the expected lexicographic prefix).
pub fn try_sweep_grid_resume(
    program: &Program,
    platform: &Platform,
    axes: &[GridAxis],
    config: &MhlaConfig,
    opts: &SweepOptions,
    prior: &GridSweepRun,
) -> Result<GridSweepRun, MhlaError> {
    error::validate_run_ingress(program, platform, config)?;
    error::validate_axes(platform, axes)?;
    let start = match prior.status {
        SweepStatus::Complete => return Ok(prior.clone()),
        SweepStatus::Stopped { next_lex, .. } => next_lex,
    };
    let layers: Vec<LayerId> = axes.iter().map(|a| a.layer).collect();
    let axis_caps: Vec<Vec<u64>> = axes
        .iter()
        .map(|a| clean_capacities(&a.capacities))
        .collect();
    let ctx = ExplorationContext::new(program, platform, config.clone());
    let engine = SweepEngine::new(&ctx, platform, &layers, &axis_caps);
    check_resume_prefix(
        &layers,
        &engine.order,
        &prior.sweep.layers,
        prior.sweep.points.iter().map(|p| p.capacities.as_slice()),
        prior.sweep.points.len(),
        start,
    )?;
    let cont = match opts.mode {
        SearchMode::Cold => engine.run_chunked(opts, start),
        SearchMode::Improving => engine.run_lex(&opts.budget, start, &prior.sweep.points),
    };
    let mut points = prior.sweep.points.clone();
    points.extend(cont.sweep.points);
    let mut winners = prior.winners.clone();
    winners.extend(cont.winners);
    Ok(GridSweepRun {
        sweep: GridSweep { layers, points },
        evals: prior.evals + cont.evals,
        seed_wins: prior.seed_wins + cont.seed_wins,
        winners,
        candidates: cont.candidates,
        status: cont.status,
    })
}

/// The shared sanity check of the resume entry points: the prior run
/// must have been produced on the same grid (same layers) and its points
/// must sit where the recorded cursor says they do.
fn check_resume_prefix<'p>(
    layers: &[LayerId],
    order: &[Vec<u64>],
    prior_layers: &[LayerId],
    prior_points: impl Iterator<Item = &'p [u64]>,
    prior_count: usize,
    next_lex: usize,
) -> Result<(), MhlaError> {
    if prior_layers != layers {
        return Err(MhlaError::InvalidOptions {
            what: "resume: the prior run swept different layers".into(),
        });
    }
    if next_lex > order.len() || prior_count > next_lex {
        return Err(MhlaError::InvalidOptions {
            what: format!(
                "resume: cursor {next_lex} / {} points do not fit a {}-point grid",
                prior_count,
                order.len()
            ),
        });
    }
    // The evaluated points are a lexicographic subsequence of the decided
    // prefix (the pruned sweep skips some of it), so one merge walk
    // verifies membership in linear time.
    let mut cursor = order[..next_lex].iter();
    for caps in prior_points {
        if !cursor.any(|o| o == caps) {
            return Err(MhlaError::InvalidOptions {
                what: "resume: a prior point is not on the grid's decided prefix".into(),
            });
        }
    }
    Ok(())
}

/// The shared sweep engine: one implementation of axis handling, the
/// lexicographic Cartesian point order, per-point platform construction
/// and search evaluation, and result assembly — used by all three sweep
/// families ([`sweep`]/[`sweep_grid_with`] through the chunked or
/// wavefront scheduler, [`sweep_grid_pruned_with`] through the prune-wave
/// scheduler). The schedulers differ in *when* points run and what seeds
/// they see; everything a point *is* lives here.
struct SweepEngine<'e> {
    ctx: &'e ExplorationContext<'e>,
    platform: &'e Platform,
    layers: &'e [LayerId],
    axis_caps: &'e [Vec<u64>],
    /// The full Cartesian product, lexicographic (last axis fastest).
    order: Vec<Vec<u64>>,
}

/// Per-thread evaluation scratch of the sweep engines: one working
/// [`Platform`] resized *in place* per grid point (instead of a fresh
/// platform build per point) and one [`EvalWorkspace`] reused across
/// every point the thread evaluates. Under the vendored single-thread
/// `rayon` (and in `mhla serve`'s persistent worker pool) a thread lives
/// for the whole sweep/session, so steady-state evaluation reuses every
/// buffer here.
///
/// The working platform's layer *names* go stale (in-place resizing
/// skips the allocating rename) — by design: nothing in the evaluation
/// path reads them, and sweep results carry capacities, not platforms.
/// The numeric fields are re-derived from the same scaling laws as
/// [`Platform::with_layer_capacities`], so results are bit-identical
/// (pinned by the hierarchy crate's resize tests and the sweep
/// equivalence suites).
struct EngineScratch {
    /// `(base, work, axes)` of the engine last evaluated on this thread:
    /// the pristine platform the working copy was cloned from, the
    /// working copy itself, and the axis layers the engine resizes.
    /// Rebuilt (rarely) when a different engine shows up on the thread;
    /// the workspace below survives such switches.
    platform: Option<(Platform, Platform, Vec<LayerId>)>,
    /// The thread's evaluation workspace.
    ws: EvalWorkspace,
}

impl EngineScratch {
    /// The working platform resized, in place, to `caps` on the engine's
    /// axis layers, plus the workspace — the per-point borrow of the
    /// sweep hot path. Every point sets *all* axis capacities, so values
    /// left by the previous point are fully overwritten.
    fn point<'s>(
        &'s mut self,
        engine: &SweepEngine<'_>,
        caps: &[u64],
    ) -> (&'s Platform, &'s mut EvalWorkspace) {
        let stale = match &self.platform {
            Some((base, _, axes)) => base != engine.platform || axes != engine.layers,
            None => true,
        };
        if stale {
            self.platform = Some((
                engine.platform.clone(),
                engine.platform.clone(),
                engine.layers.to_vec(),
            ));
        }
        // Internal invariant, not user-reachable: the branch above fills
        // the slot before this read.
        #[allow(clippy::expect_used)]
        let (_, work, axes) = self.platform.as_mut().expect("platform prepared above");
        for (&layer, &cap) in axes.iter().zip(caps) {
            work.set_layer_capacity(layer, cap);
        }
        (work, &mut self.ws)
    }
}

thread_local! {
    /// One [`EngineScratch`] per evaluation thread. The vendored `rayon`
    /// runs inline on the caller thread in single-thread mode (full
    /// cross-point reuse) and spawns scoped threads per parallel call
    /// (per-chunk reuse); the serve worker pool's threads persist across
    /// requests (cross-request reuse).
    static ENGINE_SCRATCH: RefCell<EngineScratch> = RefCell::new(EngineScratch {
        platform: None,
        ws: EvalWorkspace::new(),
    });
}

impl<'e> SweepEngine<'e> {
    /// Builds the engine over cleaned (sorted, deduped, non-empty) axes.
    fn new(
        ctx: &'e ExplorationContext<'e>,
        platform: &'e Platform,
        layers: &'e [LayerId],
        axis_caps: &'e [Vec<u64>],
    ) -> Self {
        let order = cartesian(axis_caps);
        SweepEngine {
            ctx,
            platform,
            layers,
            axis_caps,
            order,
        }
    }

    /// One point's search with an optional single warm seed — the cold
    /// schedulers' evaluation (the chunked chain passes its predecessor,
    /// the prune waves pass `None`). Runs on the thread's
    /// [`EngineScratch`]: in-place platform resize, reused workspace.
    fn evaluate(&self, caps: &[u64], warm: Option<&Assignment>) -> (MhlaResult, RunStats) {
        ENGINE_SCRATCH.with(|cell| {
            let scratch = &mut *cell.borrow_mut();
            let (pf, ws) = scratch.point(self, caps);
            Mhla::with_context(self.ctx, pf).run_with_stats_in(warm, Some(self.ctx.moves()), ws)
        })
    }

    /// One point's improving-mode search: the seeded portfolio over the
    /// seeds gathered from `cache` (axis neighbors plus the gated lex
    /// predecessor `prev`). Returns the result, the run stats, and the
    /// origin of the winning seed (if any). Runs on the thread's
    /// [`EngineScratch`], like [`Self::evaluate`].
    fn evaluate_improving(
        &self,
        caps: &[u64],
        cache: &SeedCache,
        prev: Option<&[u64]>,
    ) -> (MhlaResult, RunStats, Option<SeedOrigin>) {
        ENGINE_SCRATCH.with(|cell| {
            let scratch = &mut *cell.borrow_mut();
            let (pf, ws) = scratch.point(self, caps);
            let seeds = self.gather_seeds(pf, caps, cache, prev);
            let refs: Vec<&Assignment> = seeds.iter().map(|&(_, a)| a).collect();
            let (result, stats) = Mhla::with_context(self.ctx, pf).run_with_seeds_in(
                &refs,
                Some(self.ctx.moves()),
                ws,
            );
            let winner = stats.winning_seed.map(|k| seeds[k].0);
            (result, stats, winner)
        })
    }

    /// One point's search seeded with an explicit assignment list — the
    /// refinement corner branch, whose seeds come from parent corners
    /// rather than the grid seed cache. Runs on the thread's
    /// [`EngineScratch`], like [`Self::evaluate`].
    fn evaluate_with_seed_refs(
        &self,
        caps: &[u64],
        refs: &[&Assignment],
    ) -> (MhlaResult, RunStats) {
        ENGINE_SCRATCH.with(|cell| {
            let scratch = &mut *cell.borrow_mut();
            let (pf, ws) = scratch.point(self, caps);
            Mhla::with_context(self.ctx, pf).run_with_seeds_in(refs, Some(self.ctx.moves()), ws)
        })
    }

    /// Gathers one point's improving-mode seed list: the committed axis
    /// neighbors (feasible by monotonicity — capacities only grew) plus
    /// the lexicographically previous committed point (`prev`), gated by
    /// a capacity check when it is not componentwise smaller (an
    /// innermost-axis reset leaves it at a larger innermost capacity).
    /// Seeds whose assignment duplicates an earlier one cost no extra
    /// search leg (the portfolio dedups), so the occasional overlap
    /// between the two kinds is free.
    fn gather_seeds<'c>(
        &self,
        pf: &Platform,
        caps: &[u64],
        cache: &'c SeedCache,
        prev: Option<&[u64]>,
    ) -> Vec<(SeedOrigin, &'c Assignment)> {
        let mut seeds: Vec<(SeedOrigin, &Assignment)> = cache
            .neighbor_seeds(caps, self.axis_caps)
            .into_iter()
            .map(|(axis, a)| (SeedOrigin::Axis(axis), a))
            .collect();
        if let Some(prev_caps) = prev {
            if let Some(seed) = cache.get(prev_caps) {
                let feasible = prev_caps.iter().zip(caps).all(|(a, b)| a <= b)
                    || self
                        .ctx
                        .cost_model(pf)
                        .check_capacity(seed, &std::collections::HashMap::new())
                        .is_ok();
                if feasible {
                    seeds.push((SeedOrigin::LexPredecessor, seed));
                }
            }
        }
        seeds
    }

    /// One warm-chain chunk of [`Self::run_chunked`]: the points
    /// `base..base+caps.len()` of the grid under a fixed `prefix` of the
    /// outer axes, clipped to `span` and the trip flag. The whole chunk
    /// runs under a single borrow of the thread's [`EngineScratch`] —
    /// the capacity buffer is reused across points and the warm seed is
    /// borrowed from the previous point's result instead of cloned.
    /// Identical decisions to the per-point path: same clipping, same
    /// warm chain, same trip polling between points.
    fn eval_batch(
        &self,
        base: usize,
        prefix: &[u64],
        caps: &[u64],
        opts: &SweepOptions,
        span: std::ops::Range<usize>,
        trip: &TripFlag,
    ) -> Vec<(usize, GridPoint, usize, Option<SeedOrigin>)> {
        let budget = &opts.budget;
        let timed = budget.is_timed();
        // A warm-chain override is attributed to the chain's axis.
        let chain_axis = self.axis_caps.len() - 1;
        ENGINE_SCRATCH.with(|cell| {
            let scratch = &mut *cell.borrow_mut();
            let mut out: Vec<(usize, GridPoint, usize, Option<SeedOrigin>)> =
                Vec::with_capacity(caps.len());
            let mut capacities: Vec<u64> = Vec::with_capacity(prefix.len() + 1);
            for (k, &cap) in caps.iter().enumerate() {
                let idx = base + k;
                if idx < span.start {
                    continue; // already committed by the prior run
                }
                if idx >= span.end || (timed && trip.tripped()) {
                    break;
                }
                capacities.clear();
                capacities.extend_from_slice(prefix);
                capacities.push(cap);
                let (pf, ws) = scratch.point(self, &capacities);
                let warm = if opts.warm_start {
                    out.last().map(|(_, p, _, _)| &p.result.assignment)
                } else {
                    None
                };
                let (result, stats) = Mhla::with_context(self.ctx, pf).run_with_stats_in(
                    warm,
                    Some(self.ctx.moves()),
                    ws,
                );
                let winner = stats.winning_seed.map(|_| SeedOrigin::Axis(chain_axis));
                out.push((
                    idx,
                    GridPoint {
                        capacities: capacities.clone(),
                        result,
                    },
                    stats.search_legs,
                    winner,
                ));
                if timed {
                    if let Some(cause) = budget.stop_timed() {
                        trip.trip(cause);
                        break;
                    }
                }
            }
            out
        })
    }

    /// An empty run over this engine's grid with the given status — what
    /// the schedulers return when the budget stops them before the first
    /// point.
    fn empty_run(&self, status: SweepStatus) -> GridSweepRun {
        GridSweepRun {
            sweep: GridSweep {
                layers: self.layers.to_vec(),
                points: Vec::new(),
            },
            evals: 0,
            seed_wins: 0,
            winners: Vec::new(),
            candidates: self.order.len(),
            status,
        }
    }

    /// The cold exhaustive scheduler: the last axis is the warm-start
    /// dimension — a task is one chunk of it under one fixed prefix of
    /// the outer axes. Tasks are independent, so their parallel schedule
    /// cannot affect results. Bit-identical to the pre-engine
    /// `sweep_grid_with` by construction.
    ///
    /// Covers the lexicographic range from `start` (0 on a fresh run, the
    /// resume cursor on a continuation) and returns only the new points.
    /// `max_evals` is enforced by deterministic truncation of the range;
    /// deadline/cancellation by a shared trip flag the tasks poll between
    /// points — either way only the longest committed lexicographic run
    /// from `start` is returned, so the result is always a certified
    /// prefix. Skipping and re-chunking never change point *results*
    /// (each is the warm/cold portfolio, chunk-invariant by the
    /// determinism guarantee of [`SweepOptions::chunk`]); only the
    /// leg/winner bookkeeping of a resume's boundary chunk can differ
    /// from an uninterrupted run's.
    fn run_chunked(&self, opts: &SweepOptions, start: usize) -> GridSweepRun {
        let total = self.order.len();
        let budget = &opts.budget;
        if start >= total {
            return self.empty_run(SweepStatus::Complete);
        }
        // Preset stops: an exhausted eval budget, a raised flag, a past
        // deadline — return the empty continuation without evaluating.
        if let Some(cause) = budget.stop(0) {
            return self.empty_run(SweepStatus::Stopped {
                cause,
                next_lex: start,
            });
        }
        let end = budget
            .max_evals
            .map_or(total, |m| total.min(start.saturating_add(m)));

        let (outer, innermost) = self.axis_caps.split_at(self.axis_caps.len() - 1);
        let innermost = &innermost[0];
        let n_in = innermost.len();
        let prefixes = cartesian(outer);
        let chunk = opts.chunk.max(1).min(n_in);
        let tasks: Vec<(usize, &[u64], &[u64])> = prefixes
            .iter()
            .enumerate()
            .flat_map(|(pi, p)| {
                innermost
                    .chunks(chunk)
                    .enumerate()
                    .map(move |(ci, c)| (pi * n_in + ci * chunk, p.as_slice(), c))
            })
            .filter(|&(base, _, c)| base + c.len() > start && base < end)
            .collect();
        let trip = TripFlag::new();

        let run_task =
            |task: &(usize, &[u64], &[u64])| -> Vec<(usize, GridPoint, usize, Option<SeedOrigin>)> {
                let &(base, prefix, caps) = task;
                self.eval_batch(base, prefix, caps, opts, start..end, &trip)
            };

        type TaskPoint = (usize, GridPoint, usize, Option<SeedOrigin>);
        let per_task: Vec<Vec<TaskPoint>> = if opts.parallel {
            tasks.par_iter().map(run_task).collect()
        } else {
            tasks.iter().map(run_task).collect()
        };
        // Commit the longest contiguous lexicographic run from `start`;
        // anything a tripped task left beyond a gap is discarded (only
        // deadline/cancel trips can create gaps — `max_evals` truncation
        // is exact).
        let mut sweep = GridSweep {
            layers: self.layers.to_vec(),
            points: Vec::with_capacity(end - start),
        };
        let (mut evals, mut seed_wins) = (0usize, 0usize);
        let mut winners = Vec::with_capacity(end - start);
        let mut next_lex = start;
        'commit: for task_points in per_task {
            for (idx, point, legs, winner) in task_points {
                if idx != next_lex {
                    break 'commit;
                }
                evals += legs;
                seed_wins += usize::from(winner.is_some());
                winners.push(winner);
                sweep.points.push(point);
                next_lex += 1;
            }
        }
        let status = if next_lex >= total {
            SweepStatus::Complete
        } else if next_lex >= end {
            SweepStatus::Stopped {
                cause: StopCause::MaxEvals,
                next_lex,
            }
        } else {
            // Short of the range end: a task tripped on the clock or the
            // flag (the flag records the first observed cause).
            SweepStatus::Stopped {
                cause: trip.cause().unwrap_or(StopCause::Deadline),
                next_lex,
            }
        };
        GridSweepRun {
            sweep,
            evals,
            seed_wins,
            winners,
            candidates: total,
            status,
        }
    }

    /// The improving scheduler: strictly sequential in lexicographic
    /// order, each point's portfolio seeded from the committed results
    /// of its predecessors ([`gather_seeds`](Self::gather_seeds)). The
    /// lex-predecessor seed is what carries search state across
    /// outer-axis steps — the warm-start effect first observed in PR 3's
    /// prototype (strict improvements over the cold search on 4-level
    /// stacks) that this mode makes a first-class, dominance-guaranteed
    /// semantics.
    /// Covers the lexicographic range from `start`, replaying the seed
    /// state of the committed `prior` points first, and returns only the
    /// new points. Because this scheduler is strictly sequential, a
    /// resumed run re-enters exactly the state the uninterrupted run had
    /// at `start` — the merged result (points *and* bookkeeping) is
    /// bit-identical to the uninterrupted one.
    fn run_lex(&self, budget: &ExploreBudget, start: usize, prior: &[GridPoint]) -> GridSweepRun {
        let mut cache = SeedCache::new();
        for p in prior {
            cache.commit(&p.capacities, p.result.assignment.clone());
        }
        let mut prev: Option<Vec<u64>> = prior.last().map(|p| p.capacities.clone());
        let mut points = Vec::with_capacity(self.order.len() - start.min(self.order.len()));
        let mut winners = Vec::with_capacity(points.capacity());
        let (mut evals, mut seed_wins) = (0usize, 0usize);
        let mut status = SweepStatus::Complete;
        for (i, caps) in self.order.iter().enumerate().skip(start) {
            if let Some(cause) = budget.stop(points.len()) {
                status = SweepStatus::Stopped { cause, next_lex: i };
                break;
            }
            let (result, stats, winner) = self.evaluate_improving(caps, &cache, prev.as_deref());
            evals += stats.search_legs;
            seed_wins += usize::from(winner.is_some());
            winners.push(winner);
            cache.commit(caps, result.assignment.clone());
            prev = Some(caps.clone());
            points.push(GridPoint {
                capacities: caps.clone(),
                result,
            });
        }
        GridSweepRun {
            sweep: GridSweep {
                layers: self.layers.to_vec(),
                points,
            },
            evals,
            seed_wins,
            winners,
            candidates: self.order.len(),
            status,
        }
    }
}

/// Bookkeeping of one [`sweep_grid_pruned`] run.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct PruneStats {
    /// Points of the full Cartesian product.
    pub candidates: usize,
    /// Points actually evaluated (searched).
    pub evaluated: usize,
    /// Points skipped by the saturation rule.
    pub skipped_saturated: usize,
    /// Points skipped by the cost-floor rule.
    pub skipped_floor: usize,
}

impl PruneStats {
    /// Points skipped without evaluation.
    pub fn skipped(&self) -> usize {
        self.skipped_saturated + self.skipped_floor
    }

    /// Fraction of the Cartesian product skipped (0 on an empty grid).
    pub fn skip_ratio(&self) -> f64 {
        self.skipped() as f64 / self.candidates.max(1) as f64
    }
}

/// Result of [`sweep_grid_pruned`]: the evaluated subset of the grid (in
/// lexicographic order, like [`GridSweep`]) plus the prune bookkeeping.
#[derive(Clone, PartialEq, Debug)]
pub struct PrunedGridSweep {
    /// The evaluated points. Skipped points are absent, but the Pareto
    /// surfaces ([`GridSweep::pareto_cycles`] / `pareto_energy`) are
    /// point-for-point those of the exhaustive grid.
    pub sweep: GridSweep,
    /// How many points were evaluated vs skipped, and why. Identical for
    /// every [`PruneOptions`] — the wave structure changes wall time only.
    pub stats: PruneStats,
    /// Dominance waves executed (each wave's cold evaluations run
    /// concurrently under the parallel mode; a sequential run with
    /// `wave == 1` degenerates to one wave per evaluated point).
    pub waves: usize,
    /// Wave members evaluated speculatively whose results were discarded
    /// at commit time because an earlier member of the same wave enabled a
    /// skip — the (bounded) price of evaluating a wave before committing
    /// it. Always `0` when `wave == 1`.
    pub speculative_evals: usize,
    /// Greedy search legs executed across all evaluated points (including
    /// discarded speculative ones). In [`SearchMode::Cold`] every
    /// evaluation is exactly one cold leg; in [`SearchMode::Improving`]
    /// each point adds one leg per distinct committed neighbor seed.
    pub search_legs: usize,
    /// Points whose committed result came from a warm seed instead of the
    /// cold leg — always `0` in [`SearchMode::Cold`].
    pub seed_wins: usize,
    /// How far the sweep got. When `Stopped`, every point before
    /// `next_lex` is *decided* — evaluated or skip-finalized against
    /// committed evaluations inside the prefix — so the losslessness
    /// argument applies to the prefix verbatim: the result's Pareto
    /// accessors select the certified frontier of the decided prefix,
    /// and [`try_sweep_grid_pruned_resume`] continues deterministically.
    pub status: SweepStatus,
    /// Resume state of a stopped run (empty when
    /// [`status`](Self::status) is [`SweepStatus::Complete`], so
    /// resumed-to-complete runs compare equal to uninterrupted ones).
    checkpoint: PruneCheckpoint,
}

impl PrunedGridSweep {
    /// The run if it completed, a typed error if it was interrupted —
    /// for callers that need an all-or-nothing answer.
    ///
    /// # Errors
    ///
    /// [`MhlaError::BudgetExhausted`] / [`MhlaError::Cancelled`].
    pub fn require_complete(self) -> Result<Self, MhlaError> {
        match self.status {
            SweepStatus::Complete => Ok(self),
            SweepStatus::Stopped {
                cause: StopCause::Cancelled,
                ..
            } => Err(MhlaError::Cancelled {
                committed: self.stats.evaluated,
                total: self.stats.candidates,
            }),
            SweepStatus::Stopped { cause, .. } => Err(MhlaError::BudgetExhausted {
                cause,
                committed: self.stats.evaluated,
                total: self.stats.candidates,
            }),
        }
    }
}

/// What a stopped pruned sweep carries to resume exactly: the rule-1
/// replay candidates of its committed evaluations (everything else —
/// incumbents, seeds, floors — is rebuilt from the points).
#[derive(Clone, PartialEq, Debug, Default)]
struct PruneCheckpoint {
    replayable: Vec<Replayable>,
}

/// Default number of points one dominance wave of
/// [`sweep_grid_pruned_with`] may evaluate concurrently (the default of
/// [`PruneOptions::wave`]). Fixed — never derived from the machine's core
/// count — so wave boundaries, and thus the speculation bookkeeping, are
/// machine-independent (skip decisions and frontiers are invariant under
/// the wave size anyway; see [`PruneOptions`]).
pub const PRUNE_WAVE: usize = 16;

/// Tuning knobs for [`sweep_grid_pruned_with`].
#[derive(Clone, PartialEq, Debug)]
pub struct PruneOptions {
    /// Evaluate each wave's points on the `rayon` thread pool. Skip
    /// decisions commit in lexicographic order either way, so results,
    /// frontiers and [`PruneStats`] are identical with and without
    /// parallelism — only wall time changes.
    pub parallel: bool,
    /// Maximum points per dominance wave (clamped to ≥ 1; default
    /// [`PRUNE_WAVE`]). `wave == 1` is exactly the sequential
    /// point-by-point loop. Larger waves expose more parallelism but can
    /// evaluate a few points speculatively
    /// ([`PrunedGridSweep::speculative_evals`]).
    pub wave: usize,
    /// The search mode (default [`SearchMode::Cold`] — every evaluated
    /// point runs cold and standalone-identical, the canonical
    /// losslessness semantics). In [`SearchMode::Improving`] each
    /// evaluated point runs the neighbor-seeded portfolio instead; the
    /// engine then forces `wave == 1` (a wave member's innermost-axis
    /// seed is the member before it, so waves would change seed
    /// visibility) and the prune hooks switch to their mode-aware forms —
    /// see [`sweep_grid_pruned`]'s *Improving mode* section.
    pub mode: SearchMode,
    /// The exploration budget (default unlimited): `max_evals` bounds
    /// *committed* evaluations — prune skips are free, discarded
    /// speculative wave members do not count — and the stop lands on a
    /// fully-decided lexicographic prefix, so the partial frontier stays
    /// certified (see [`PrunedGridSweep::status`]). Like every other
    /// prune result property, the stop point is identical for every
    /// `wave`/`parallel` setting.
    pub budget: ExploreBudget,
}

impl Default for PruneOptions {
    fn default() -> Self {
        PruneOptions {
            parallel: true,
            wave: PRUNE_WAVE,
            mode: SearchMode::Cold,
            budget: ExploreBudget::default(),
        }
    }
}

impl PruneOptions {
    /// The default options under the given budget.
    pub fn with_budget(budget: ExploreBudget) -> Self {
        PruneOptions {
            budget,
            ..PruneOptions::default()
        }
    }

    /// The default options with parallelism toggled.
    pub fn with_parallel(parallel: bool) -> Self {
        PruneOptions {
            parallel,
            ..PruneOptions::default()
        }
    }

    /// This option set with its budget replaced.
    pub fn budget(mut self, budget: ExploreBudget) -> Self {
        self.budget = budget;
        self
    }
}

/// `q ≤ p` in every coordinate without being the same vector.
fn caps_dominate(q: &[u64], p: &[u64]) -> bool {
    q != p && q.iter().zip(p).all(|(a, b)| a <= b)
}

/// The score-perturbation budget the growth from capacity `from` to
/// capacity `to` spends at one scratchpad layer: its *write-energy* delta
/// — the unit the gain-bound sensitivities are expressed in (reads scale
/// as `δw / 1.2` and bursts as `δw` exactly, both folded into
/// [`ArrayContribution::energy_sensitivity`](crate::ArrayContribution)).
/// Zero inside the sub-reference clamp region, where growth leaves the
/// whole cost model bit-identical.
fn scratchpad_energy_delta_pj(from: u64, to: u64) -> f64 {
    (sram_write_pj(to) - sram_write_pj(from)).max(0.0)
}

/// Every evaluated point: capacities and reported (cycles, energy) — the
/// incumbents of the cost-floor rule — plus the committed objective score
/// (the incumbent of the improving mode's score-floor rule).
struct Evaluated {
    capacities: Vec<u64>,
    cycles: u64,
    energy_pj: f64,
    score: f64,
}

/// The objective's lower bound implied by a cost floor — the improving
/// mode's floor-rule comparand. `None` when the objective's weights are
/// not all non-negative (a negative weight inverts the bound direction,
/// so no sound floor exists and the rule disarms).
fn floor_objective_score(objective: &Objective, floor: &crate::cost::CostFloor) -> Option<f64> {
    match *objective {
        Objective::Cycles => Some(floor.cycles as f64),
        Objective::Energy => Some(floor.energy_pj),
        Objective::Weighted {
            energy_weight,
            cycle_weight,
        } => (energy_weight >= 0.0 && cycle_weight >= 0.0)
            .then_some(energy_weight * floor.energy_pj + cycle_weight * floor.cycles as f64),
    }
}

/// Rule-1 dominator candidates: evaluated points with at least one
/// *growable* axis (per-axis, precomputed from the run's constrained-layer
/// mask) plus the run's recorded gain-bound data. Points whose run was
/// bound on every axis can never justify a skip and never enter this
/// list, which keeps the per-candidate scan short — on fully
/// capacity-bound apps it is empty. (Both scans are still linear in their
/// list; a spatial index over the capacity lattice would be the next step
/// for 10⁵+ grids.)
#[derive(Clone, PartialEq, Debug)]
struct Replayable {
    capacities: Vec<u64>,
    growable: Vec<bool>,
    stats: RunStats,
}

impl Replayable {
    /// Whether this evaluated run provably replays (and therefore
    /// dominates on both surfaces) at the grown point `caps`: capacity
    /// dominance, growth confined to never-binding axes inside one
    /// scratchpad latency class, and the per-layer write-energy deltas
    /// within the run's recorded gain-bound budget
    /// ([`RunStats::allows_energy_growth`]).
    fn replays_at(&self, caps: &[u64], layers: &[LayerId], energy_weight: f64) -> bool {
        if !caps_dominate(&self.capacities, caps) {
            return false;
        }
        for ((&qc, &pc), &growable) in self.capacities.iter().zip(caps).zip(&self.growable) {
            if qc == pc {
                continue;
            }
            if !growable || sram_access_cycles(qc) != sram_access_cycles(pc) {
                return false;
            }
        }
        self.stats.allows_energy_growth(
            self.capacities
                .iter()
                .zip(caps)
                .enumerate()
                .filter(|(_, (qc, pc))| qc != pc)
                .map(|(axis, (&qc, &pc))| (layers[axis], scratchpad_energy_delta_pj(qc, pc))),
            energy_weight,
        )
    }
}

/// Why a candidate point was skipped without evaluation.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum SkipRule {
    Saturated,
    Floor,
}

impl PruneStats {
    fn record(&mut self, rule: SkipRule) {
        match rule {
            SkipRule::Saturated => self.skipped_saturated += 1,
            SkipRule::Floor => self.skipped_floor += 1,
        }
    }
}

/// The sub-exhaustive grid sweep: like [`sweep_grid`], but capacity
/// vectors that provably cannot contribute a Pareto point are skipped
/// *without running the search*. Lossless: every skipped point is
/// dominated on both the cycles and the energy surface by an evaluated
/// point, so [`GridSweep::pareto_cycles`] / `pareto_energy` of the result
/// select exactly the frontier of the exhaustive grid
/// (`tests/prune_equivalence.rs` asserts this bit-for-bit on all nine
/// applications, under all three objectives).
///
/// Every evaluated point runs *cold* (no warm start), so each result is
/// bit-identical to a standalone [`Mhla::run`] on the same platform — the
/// canonical semantics the losslessness proof and the equivalence harness
/// build on. Two prune rules apply, both conservative:
///
/// 1. **Per-layer saturation with gain bounds.** Capacities enter the
///    greedy search three ways: *feasibility* (monotone — anything that
///    fits keeps fitting as layers grow), *per-access cycles* (constant
///    inside one scratchpad latency class), and *per-access energies*
///    (the clamped √-capacity scaling law). Each evaluated run records
///    which layers actually *bound* it ([`RunStats`]):
///    the first-overflow layer of every failed greedy probe, every layer
///    at which TE rejected an extension, every layer that turned an array
///    away during direct placement — plus the run's minimum *decision
///    margin* per energy-sensitive operation
///    ([`RunStats::gain_margin_rates`](crate::RunStats::gain_margin_rates)),
///    an instrumented gain bound derived from the cost model's cached
///    access and transfer-volume totals. If point `p` differs from an
///    evaluated point `q ≤ p` only on layers that never bound `q`'s run,
///    each staying inside its latency class, and the summed per-layer
///    energy deltas (times the objective's energy weight) stay strictly
///    below `q`'s margin, the run at `p` replays `q`'s decision for
///    decision — failed probes still fail, successful ones still
///    succeed, no gain comparison can flip — yielding the same
///    assignment and TE schedule, hence *equal cycles* and, because
///    per-access energies are monotone in capacity, *no lower energy*.
///    `p` is dominated by `q` on both surfaces and is skipped. Under the
///    cycles objective the energy weight is zero and the margin test is
///    vacuous (the classic rule); under the energy/weighted objectives it
///    arms wherever the margins allow — always for growth inside the
///    sub-reference energy-clamp region (zero delta), and beyond it
///    whenever no decision of `q`'s run sat close to a tie.
/// 2. **Cost floor.** [`CostModel::cost_floor`](crate::CostModel::cost_floor)
///    bounds any assignment's cycles and energy from below using only the
///    point's layer parameters. If some evaluated point with
///    componentwise-smaller capacities already meets the floor on cycles
///    *and* some evaluated point does so on energy, the point cannot beat
///    either incumbent and is skipped.
///
/// Both rules only ever skip points dominated by an *evaluated* point, so
/// dominance transitivity keeps every surface intact (anything a skipped
/// point would dominate is already dominated by its dominator). When the
/// preconditions of rule 1 do not hold (a non-greedy strategy, or margins
/// too tight for the requested growth), the rule disarms itself and the
/// sweep degrades towards exhaustive — never towards a wrong frontier.
///
/// # Frontier waves
///
/// The loop runs in *dominance waves* ([`PruneOptions`]): each wave
/// collects, in lexicographic order, a run of consecutive points that are
/// not skippable given the committed evaluations (stopping at the wave
/// cap and at the first skippable point), evaluates the wave's cold
/// searches — in parallel under `rayon` when [`PruneOptions::parallel`]
/// is set — and then commits the results in lexicographic order,
/// re-applying the skip rules as it goes: a member whose skip was enabled
/// by an earlier member of the same wave is recorded as skipped and its
/// speculative evaluation discarded. Because a point is only
/// skip-*finalized* when every lexicographically earlier point has been
/// committed, each decision sees exactly the evaluated set the sequential
/// point-by-point loop would have seen: skip decisions, [`PruneStats`],
/// evaluated points and both frontiers are **identical for every wave
/// size and thread fan-out** — only wall time (and the
/// [`PrunedGridSweep::speculative_evals`] bookkeeping) changes. This is
/// the default path; use [`sweep_grid_pruned_with`] to tune.
///
/// # Improving mode
///
/// Under [`SearchMode::Improving`] ([`PruneOptions::mode`]) every
/// evaluated point runs the neighbor-seeded portfolio instead of the cold
/// search, and the guarantee changes shape: results are no longer
/// standalone-identical, but every committed point scores no worse than
/// its cold counterpart under the configured objective, and the
/// *objective* Pareto frontier ([`GridSweep::pareto_objective`])
/// dominates-or-equals the cold exhaustive one. The prune hooks are
/// mode-aware to keep that sound:
///
/// * the saturation rule only ever replays *cold-kept* runs (a seed win
///   clears [`RunStats::cold_result_kept`], so such points never enter
///   the replay set) — a skipped point's cold counterpart is then
///   dominated on the objective surface by its dominator exactly as in
///   cold mode;
/// * the cost-floor rule compares committed objective *scores* against
///   the floor's objective lower bound instead of the two raw surfaces
///   (the raw-surface rule bounds the cycle/energy surfaces, not the
///   score surface the improving guarantee is stated on), and disarms
///   for objectives with a negative weight (no sound floor exists).
///
/// The engine forces `wave == 1` in this mode (see
/// [`PruneOptions::mode`]), so improving pruned sweeps run sequentially.
///
/// # Panics
///
/// Panics if any axis names the off-chip layer or a layer out of range,
/// or if any capacity is zero.
pub fn sweep_grid_pruned(
    program: &Program,
    platform: &Platform,
    axes: &[GridAxis],
    config: &MhlaConfig,
) -> PrunedGridSweep {
    sweep_grid_pruned_with(program, platform, axes, config, PruneOptions::default())
}

/// [`sweep_grid_pruned`] with explicit [`PruneOptions`].
pub fn sweep_grid_pruned_with(
    program: &Program,
    platform: &Platform,
    axes: &[GridAxis],
    config: &MhlaConfig,
    opts: PruneOptions,
) -> PrunedGridSweep {
    match try_sweep_grid_pruned_with(program, platform, axes, config, &opts) {
        Ok(run) => run,
        Err(e) => panic!("sweep_grid_pruned_with: {e}"),
    }
}

/// Fallible [`sweep_grid_pruned`]: validated ingress, typed errors.
///
/// # Errors
///
/// As [`try_sweep`].
pub fn try_sweep_grid_pruned(
    program: &Program,
    platform: &Platform,
    axes: &[GridAxis],
    config: &MhlaConfig,
) -> Result<PrunedGridSweep, MhlaError> {
    try_sweep_grid_pruned_with(program, platform, axes, config, &PruneOptions::default())
}

/// Fallible [`sweep_grid_pruned_with`]: validates the program, platform,
/// configuration and axes up front, then runs the budget-aware prune-wave
/// scheduler.
///
/// # Errors
///
/// As [`try_sweep`]. Budget exhaustion is *not* an error — the run comes
/// back `Ok` with [`SweepStatus::Stopped`] and a certified partial
/// frontier (see [`PrunedGridSweep::status`]); use
/// [`PrunedGridSweep::require_complete`] to promote a stop into a typed
/// error.
pub fn try_sweep_grid_pruned_with(
    program: &Program,
    platform: &Platform,
    axes: &[GridAxis],
    config: &MhlaConfig,
    opts: &PruneOptions,
) -> Result<PrunedGridSweep, MhlaError> {
    error::validate_run_ingress(program, platform, config)?;
    error::validate_axes(platform, axes)?;
    let layers: Vec<LayerId> = axes.iter().map(|a| a.layer).collect();
    let axis_caps: Vec<Vec<u64>> = axes
        .iter()
        .map(|a| clean_capacities(&a.capacities))
        .collect();
    if axis_caps.is_empty() || axis_caps.iter().any(Vec::is_empty) {
        return Ok(PrunedGridSweep {
            sweep: GridSweep {
                layers,
                points: Vec::new(),
            },
            stats: PruneStats::default(),
            waves: 0,
            speculative_evals: 0,
            search_legs: 0,
            seed_wins: 0,
            status: SweepStatus::Complete,
            checkpoint: PruneCheckpoint::default(),
        });
    }

    let ctx = ExplorationContext::new(program, platform, config.clone());
    let engine = SweepEngine::new(&ctx, platform, &layers, &axis_caps);
    Ok(engine.run_pruned(opts, None))
}

/// Resumes a stopped [`try_sweep_grid_pruned_with`] from its recorded
/// cursor and returns the *merged* run, again budget-aware. Must be
/// called with the same program/platform/axes/config/options the prior
/// run used (checked where cheaply possible); resuming a complete run
/// returns it unchanged.
///
/// The merged run's points, [`PruneStats`], status and frontiers are
/// bit-identical to the uninterrupted run's (the stop lands on a decided
/// prefix and the continuation replays the committed state); only the
/// wave bookkeeping ([`PrunedGridSweep::waves`],
/// [`speculative_evals`](PrunedGridSweep::speculative_evals), and in
/// parallel cold mode [`search_legs`](PrunedGridSweep::search_legs))
/// reflects the actual two-installment schedule.
///
/// # Errors
///
/// As [`try_sweep`], plus [`MhlaError::InvalidOptions`] when `prior`
/// does not match the given axes.
pub fn try_sweep_grid_pruned_resume(
    program: &Program,
    platform: &Platform,
    axes: &[GridAxis],
    config: &MhlaConfig,
    opts: &PruneOptions,
    prior: &PrunedGridSweep,
) -> Result<PrunedGridSweep, MhlaError> {
    error::validate_run_ingress(program, platform, config)?;
    error::validate_axes(platform, axes)?;
    let next_lex = match prior.status {
        SweepStatus::Complete => return Ok(prior.clone()),
        SweepStatus::Stopped { next_lex, .. } => next_lex,
    };
    let layers: Vec<LayerId> = axes.iter().map(|a| a.layer).collect();
    let axis_caps: Vec<Vec<u64>> = axes
        .iter()
        .map(|a| clean_capacities(&a.capacities))
        .collect();
    let ctx = ExplorationContext::new(program, platform, config.clone());
    let engine = SweepEngine::new(&ctx, platform, &layers, &axis_caps);
    check_resume_prefix(
        &layers,
        &engine.order,
        &prior.sweep.layers,
        prior.sweep.points.iter().map(|p| p.capacities.as_slice()),
        prior.sweep.points.len(),
        next_lex,
    )?;
    if prior.stats.candidates != engine.order.len()
        || prior.stats.evaluated != prior.sweep.points.len()
    {
        return Err(MhlaError::InvalidOptions {
            what: "resume: the prior run's bookkeeping does not match this grid".into(),
        });
    }
    Ok(engine.run_pruned(opts, Some(prior)))
}

impl<'e> SweepEngine<'e> {
    /// The prune-wave scheduler (the body of [`sweep_grid_pruned_with`]):
    /// dominance waves over the lexicographic order, with skip decisions
    /// committed sequentially and the prune hooks dispatched on the
    /// [`SearchMode`].
    ///
    /// With a `prior` run (a continuation), the committed state —
    /// incumbents, replay candidates, improving seeds, the cursor and
    /// the skip bookkeeping — is rebuilt first and the scan restarts at
    /// the recorded cursor; the merged result is returned. The budget
    /// bounds the *continuation's* committed evaluations.
    fn run_pruned(&self, opts: &PruneOptions, prior: Option<&PrunedGridSweep>) -> PrunedGridSweep {
        let config = self.ctx.config();
        let order = &self.order;
        let layers = self.layers;
        let budget = &opts.budget;

        // The saturation rule needs the instrumented greedy search (the
        // only strategy recording constraint masks and decision margins).
        // The objective no longer disarms it: the energy weight below
        // scales the gain-bound test, which is vacuous for cycles
        // (weight 0) and margin-guarded otherwise.
        let saturation_armed = config.strategy == SearchStrategy::Greedy;
        // The signed energy weight: zero makes the gain landscape exactly
        // capacity-independent (the classic cycles-only rule falls out as
        // the degenerate case); a negative weight makes
        // `RunStats::allows_energy_growth` refuse every nonzero
        // perturbation (the one-sided margin rates do not cover that
        // direction), leaving only bit-identical zero-delta replays.
        let energy_weight = config.objective.energy_weight();
        let improving = opts.mode == SearchMode::Improving;
        // Improving commits must be strictly sequential: a wave member's
        // innermost-axis seed is the member before it.
        let wave_cap = if improving { 1 } else { opts.wave.max(1) };

        // A continuation rebuilds the committed state from the prior run:
        // incumbents and improving seeds from its points, replay
        // candidates from its checkpoint, counters carried forward.
        let mut stats = prior.map_or(
            PruneStats {
                candidates: order.len(),
                ..PruneStats::default()
            },
            |p| p.stats,
        );
        let mut replayable: Vec<Replayable> =
            prior.map_or_else(Vec::new, |p| p.checkpoint.replayable.clone());
        let mut points: Vec<GridPoint> = prior.map_or_else(Vec::new, |p| p.sweep.points.clone());
        let mut seen: Vec<Evaluated> = points
            .iter()
            .map(|p| Evaluated {
                capacities: p.capacities.clone(),
                cycles: p.cycles(),
                energy_pj: p.energy_pj(),
                score: config.objective.score(&p.result.assignment_cost),
            })
            .collect();
        let mut waves = prior.map_or(0usize, |p| p.waves);
        let mut speculative_evals = prior.map_or(0usize, |p| p.speculative_evals);
        let mut search_legs = prior.map_or(0usize, |p| p.search_legs);
        let mut seed_wins = prior.map_or(0usize, |p| p.seed_wins);
        let mut seeds = SeedCache::new();
        let mut last_committed: Option<Vec<u64>> = None;
        if opts.mode == SearchMode::Improving {
            for p in &points {
                seeds.commit(&p.capacities, p.result.assignment.clone());
            }
            last_committed = points.last().map(|p| p.capacities.clone());
        }
        let start = prior.and_then(|p| p.status.next_lex()).unwrap_or(0);
        // Committed evaluations are what the budget counts; the prior
        // run's are already paid for.
        let base_evaluated = stats.evaluated;

        // Per-candidate cost floors, memoized: a point's floor depends
        // only on its capacities, but its skip rules can run several
        // times (wave re-examinations, the commit re-check). The probe
        // pre-folds every capacity-invariant input (access totals, CPU
        // overhead, fixed-layer minima), so a memo miss is a handful of
        // arithmetic ops — no resized platform, no cost model, no
        // allocation — and bit-identical to the model's floor on the
        // resized platform ([`FloorProbe`](crate::cost::FloorProbe)).
        let floor_probe = self.ctx.floor_probe(self.platform, layers);
        let mut floors: Vec<Option<crate::cost::CostFloor>> = vec![None; order.len()];
        // The skip rules against the *committed* evaluations. Rule 1
        // first, rule 2 second (the bookkeeping attributes a skip to the
        // first rule that fires); the cold rule-2 energy scan only runs
        // once the cycles scan has found a dominator — a miss on either
        // side keeps the point.
        let skip_rule = |i: usize,
                         seen: &[Evaluated],
                         replayable: &[Replayable],
                         floors: &mut [Option<crate::cost::CostFloor>]| {
            let caps: &[u64] = &order[i];
            if saturation_armed
                && replayable
                    .iter()
                    .any(|q| q.replays_at(caps, layers, energy_weight))
            {
                return Some(SkipRule::Saturated);
            }
            let floor = *floors[i].get_or_insert_with(|| floor_probe.floor_at(caps));
            let floor_dominated = if improving {
                // Mode-aware rule 2: the improving guarantee lives on the
                // objective-score surface, so the incumbents must beat
                // the floor's score bound there.
                match floor_objective_score(&config.objective, &floor) {
                    Some(floor_score) => seen
                        .iter()
                        .any(|q| caps_dominate(&q.capacities, caps) && q.score <= floor_score),
                    None => false,
                }
            } else {
                seen.iter()
                    .any(|q| caps_dominate(&q.capacities, caps) && q.cycles <= floor.cycles)
                    && seen.iter().any(|q| {
                        caps_dominate(&q.capacities, caps) && q.energy_pj <= floor.energy_pj
                    })
            };
            floor_dominated.then_some(SkipRule::Floor)
        };

        let mut next = start;
        let mut status = SweepStatus::Complete;
        'waves: while next < order.len() {
            // --- Wave selection: walk the lexicographic order from the
            // cursor. While the wave is empty, every earlier point has
            // been committed, so a skip decision here sees exactly the
            // sequential loop's evaluated set and is final. Once a member
            // is selected, later skips can no longer be finalized (the
            // member's own result is pending) — the wave stops there and
            // the point is re-examined next wave. Points merely
            // capacity-dominated by a pending member do join the wave; if
            // the member's commit turns out to enable their skip, the
            // commit pass below discards their evaluation as speculative
            // (measured: a handful per app on the default grid).
            let mut wave: Vec<usize> = Vec::new();
            while next < order.len() && wave.len() < wave_cap {
                match skip_rule(next, &seen, &replayable, &mut floors) {
                    Some(rule) => {
                        if !wave.is_empty() {
                            break;
                        }
                        stats.record(rule);
                        next += 1;
                    }
                    None => {
                        // The budget gates evaluations only — skips stay
                        // free, before and after exhaustion. A stop is
                        // *final* only on an empty wave, where the exact
                        // committed count is known and every earlier
                        // point is decided: the stop point is therefore
                        // wave-invariant (pending members over-count by
                        // at most their eventual speculative discards,
                        // which merely pauses selection one round).
                        if let Some(cause) =
                            budget.stop(stats.evaluated - base_evaluated + wave.len())
                        {
                            if wave.is_empty() {
                                status = SweepStatus::Stopped {
                                    cause,
                                    next_lex: next,
                                };
                                break 'waves;
                            }
                            break;
                        }
                        wave.push(next);
                        next += 1;
                    }
                }
            }
            if wave.is_empty() {
                continue; // the scan consumed pure skips up to the end
            }
            waves += 1;

            // --- Evaluations of the wave, order-preserving: cold (and
            // parallelizable — skip decisions commit below either way) in
            // cold mode, seeded in improving mode (wave size 1, so every
            // seed is committed; the lex-predecessor seed is the last
            // *committed* point — skipped points have no result to seed
            // from).
            let runs: Vec<(MhlaResult, RunStats, Option<SeedOrigin>)> = if improving {
                wave.iter()
                    .map(|&i| self.evaluate_improving(&order[i], &seeds, last_committed.as_deref()))
                    .collect()
            } else if opts.parallel && wave.len() > 1 {
                wave.par_iter()
                    .map(|&i| {
                        let (result, run) = self.evaluate(&order[i], None);
                        (result, run, None)
                    })
                    .collect()
            } else {
                wave.iter()
                    .map(|&i| {
                        let (result, run) = self.evaluate(&order[i], None);
                        (result, run, None)
                    })
                    .collect()
            };

            // --- Deterministic commit in lexicographic order. A member
            // whose skip rules now fire (an earlier member's commit
            // enabled them) is recorded as skipped and its speculative
            // result discarded — exactly the sequential decision, since
            // at this position every earlier point is committed.
            let mut committed_in_wave = false;
            for (&i, (result, run, winner)) in wave.iter().zip(runs) {
                search_legs += run.search_legs;
                let capacities = order[i].clone();
                if committed_in_wave {
                    if let Some(rule) = skip_rule(i, &seen, &replayable, &mut floors) {
                        stats.record(rule);
                        speculative_evals += 1;
                        continue;
                    }
                }
                if saturation_armed {
                    let growable: Vec<bool> =
                        layers.iter().map(|&l| run.allows_growth_of(l)).collect();
                    if growable.iter().any(|&g| g) {
                        replayable.push(Replayable {
                            capacities: capacities.clone(),
                            growable,
                            stats: run,
                        });
                    }
                }
                seed_wins += usize::from(winner.is_some());
                if improving {
                    seeds.commit(&capacities, result.assignment.clone());
                    last_committed = Some(capacities.clone());
                }
                seen.push(Evaluated {
                    capacities: capacities.clone(),
                    cycles: result.mhla_te_cycles(),
                    energy_pj: result.mhla_energy_pj(),
                    score: config.objective.score(&result.assignment_cost),
                });
                stats.evaluated += 1;
                points.push(GridPoint { capacities, result });
                committed_in_wave = true;
            }
        }

        // Only a stopped run needs resume state; leaving it empty on
        // completion keeps resumed-to-complete runs `PartialEq`-equal to
        // uninterrupted ones.
        let checkpoint = match status {
            SweepStatus::Complete => PruneCheckpoint::default(),
            SweepStatus::Stopped { .. } => PruneCheckpoint { replayable },
        };
        PrunedGridSweep {
            sweep: GridSweep {
                layers: layers.to_vec(),
                points,
            },
            stats,
            waves,
            speculative_evals,
            search_legs,
            seed_wins,
            status,
            checkpoint,
        }
    }
}

/// Default per-axis subdivision depth of [`sweep_grid_refined`]: each
/// coarse axis interval gains up to `2^REFINE_DEPTH - 1` interior points,
/// so the default three-axis grid4 lattice virtualizes 10⁵+ points.
pub const REFINE_DEPTH: usize = 4;

/// Lex-chunk size of the refinement batch scheduler: certification is
/// re-decided against the committed state at every chunk boundary, so
/// commits early in a wave certify corners later in it. A constant (not
/// a core-count function) — chunk boundaries are part of the
/// deterministic schedule that makes parallel, sequential and resumed
/// runs bit-identical.
pub const REFINE_CERT_CHUNK: usize = 32;

/// Tuning knobs for [`sweep_grid_refined_with`].
#[derive(Clone, PartialEq, Debug)]
pub struct RefineOptions {
    /// Per-axis subdivision depth (1..=16, validated; default
    /// [`REFINE_DEPTH`]). Depth `d` refines each adjacent coarse pair
    /// `(lo, hi)` with up to `2^d - 1` interior midpoints (integer
    /// midpoints; exhausted ranges stop early), defining the *virtual
    /// fine lattice* the result's frontier is certified against.
    pub depth: usize,
    /// Evaluate each corner batch on the `rayon` thread pool (cold mode
    /// only — improving mode is strictly sequential). Cell decisions and
    /// commits are ordered either way, so results are identical with and
    /// without parallelism.
    pub parallel: bool,
    /// The search mode (default [`SearchMode::Cold`], the canonical
    /// exhaustive-equivalence semantics). Under [`SearchMode::Improving`]
    /// each evaluated corner runs the seeded portfolio — phase-0 points
    /// seed like the improving grid sweep, refined corners seed from
    /// their parent cell's committed corner assignments — and the
    /// guarantee weakens to objective-surface dominance, exactly as in
    /// the pruned sweep's improving mode.
    pub mode: SearchMode,
    /// The exploration budget (default unlimited): `max_evals` bounds
    /// *fresh* searches in this call — points replayed from a resumed
    /// prior run are free — and the stop lands on a committed batch
    /// prefix, resumable via [`try_sweep_grid_refined_resume`].
    pub budget: ExploreBudget,
}

impl Default for RefineOptions {
    fn default() -> Self {
        RefineOptions {
            depth: REFINE_DEPTH,
            parallel: true,
            mode: SearchMode::Cold,
            budget: ExploreBudget::default(),
        }
    }
}

impl RefineOptions {
    /// The default options under the given budget.
    pub fn with_budget(budget: ExploreBudget) -> Self {
        RefineOptions {
            budget,
            ..RefineOptions::default()
        }
    }

    /// The default options with parallelism toggled.
    pub fn with_parallel(parallel: bool) -> Self {
        RefineOptions {
            parallel,
            ..RefineOptions::default()
        }
    }

    /// This option set with its subdivision depth replaced.
    pub fn depth(mut self, depth: usize) -> Self {
        self.depth = depth;
        self
    }

    /// This option set with its budget replaced.
    pub fn budget(mut self, budget: ExploreBudget) -> Self {
        self.budget = budget;
        self
    }
}

/// Bookkeeping of one [`sweep_grid_refined`] run.
#[derive(Clone, Copy, PartialEq, Debug, Default)]
pub struct RefineStats {
    /// Points of the coarse (phase-0) lattice — all evaluated.
    pub coarse_points: usize,
    /// Points of the virtual fine lattice the frontier is certified
    /// against (the Cartesian product of the refined axes — never
    /// materialized).
    pub virtual_points: u64,
    /// Points committed (evaluated or replayed from a resumed prior run).
    pub evaluated: usize,
    /// Cells subdivided into children.
    pub cells_opened: usize,
    /// Cells closed by the cost-floor certificate: the floor at the
    /// cell's minimal corner is dominated by committed points on both
    /// surfaces (one, the objective score, in improving mode).
    pub cells_closed_floor: usize,
    /// Cells closed by the saturation certificate: a committed run's
    /// constraint masks and rejection floors prove every interior point
    /// replays it.
    pub cells_closed_mask: usize,
    /// Cells at maximal depth (or with no splittable axis): their box
    /// contains only corners, all evaluated or certified.
    pub cells_leaf: usize,
    /// Pending corners certified dominated by the point-level skip rules
    /// (a committed run's saturation mask with rejection floors, or the
    /// corner's cost floor) and therefore never searched — the per-point
    /// complement of the cell-level certificates.
    pub corners_certified: usize,
}

impl RefineStats {
    /// Committed points as a fraction of the virtual fine lattice (0 on
    /// an empty grid).
    pub fn eval_ratio(&self) -> f64 {
        self.evaluated as f64 / self.virtual_points.max(1) as f64
    }
}

/// Result of [`sweep_grid_refined`]: the committed points (sorted
/// lexicographically, like [`GridSweep`]) plus the refinement
/// bookkeeping. The Pareto accessors select, point for point, the
/// frontier of the exhaustive *virtual fine lattice*
/// (`tests/refine_equivalence.rs` asserts this bit-for-bit).
#[derive(Clone, PartialEq, Debug)]
pub struct RefinedGridSweep {
    /// The committed points, lexicographic on capacities.
    pub sweep: GridSweep,
    /// How many cells were opened vs closed, and the eval/virtual ratio.
    pub stats: RefineStats,
    /// Refinement waves executed (one classification pass plus one
    /// corner batch per wave).
    pub waves: usize,
    /// Greedy search legs executed across fresh evaluations.
    pub search_legs: usize,
    /// Points whose committed result came from a warm seed — always `0`
    /// in [`SearchMode::Cold`].
    pub seed_wins: usize,
    /// How far the refinement got. When `Stopped`, `next_lex` is the
    /// *committed point count* (not a grid index — the fine lattice is
    /// never materialized); every committed point is final and
    /// [`try_sweep_grid_refined_resume`] continues deterministically.
    pub status: SweepStatus,
    /// Resume state of a stopped run: the per-point [`RunStats`],
    /// aligned with `sweep.points`. Empty when complete, so
    /// resumed-to-complete runs compare equal to uninterrupted ones.
    checkpoint: RefineCheckpoint,
}

impl RefinedGridSweep {
    /// The run if it completed, a typed error if it was interrupted —
    /// for callers that need an all-or-nothing answer.
    ///
    /// # Errors
    ///
    /// [`MhlaError::BudgetExhausted`] / [`MhlaError::Cancelled`].
    pub fn require_complete(self) -> Result<Self, MhlaError> {
        let total = usize::try_from(self.stats.virtual_points).unwrap_or(usize::MAX);
        match self.status {
            SweepStatus::Complete => Ok(self),
            SweepStatus::Stopped {
                cause: StopCause::Cancelled,
                ..
            } => Err(MhlaError::Cancelled {
                committed: self.stats.evaluated,
                total,
            }),
            SweepStatus::Stopped { cause, .. } => Err(MhlaError::BudgetExhausted {
                cause,
                committed: self.stats.evaluated,
                total,
            }),
        }
    }
}

/// What a stopped refinement carries to resume exactly: each committed
/// point's [`RunStats`] (the saturation certificates need the constraint
/// masks and rejection floors; everything else is rebuilt by re-running
/// the deterministic scheduler with the committed points replayed).
#[derive(Clone, PartialEq, Debug, Default)]
struct RefineCheckpoint {
    run_stats: Vec<RunStats>,
}

/// The refined (virtual fine) axis for one coarse axis: every coarse
/// point plus up to `2^depth - 1` integer midpoints per adjacent pair,
/// sorted ascending and deduplicated by construction. `coarse` must be
/// sorted and deduplicated (as the sweep entry points' capacity
/// cleaning leaves it).
pub fn refine_axis(coarse: &[u64], depth: usize) -> Vec<u64> {
    let mut out = Vec::new();
    for (k, &hi) in coarse.iter().enumerate() {
        if k > 0 {
            refine_pair(coarse[k - 1], hi, depth, &mut out);
        }
        out.push(hi);
    }
    out
}

/// In-order midpoint recursion of [`refine_axis`]: emits the interior
/// points of `(lo, hi)` in ascending order, stopping where integer
/// midpoints are exhausted (`hi - lo < 2`).
fn refine_pair(lo: u64, hi: u64, depth: usize, out: &mut Vec<u64>) {
    if depth == 0 {
        return;
    }
    let mid = lo + (hi - lo) / 2;
    if mid == lo || mid == hi {
        return;
    }
    refine_pair(lo, mid, depth - 1, out);
    out.push(mid);
    refine_pair(mid, hi, depth - 1, out);
}

/// One axis-aligned box of the refinement: the capacity window
/// `[lo, hi]` per axis (degenerate `lo == hi` on single-point axes) at a
/// subdivision depth. Invariant: when a cell is classified, all its
/// corners are committed.
#[derive(Clone, PartialEq, Debug)]
struct RefineCell {
    lo: Vec<u64>,
    hi: Vec<u64>,
    depth: usize,
}

/// The Cartesian expansion shared by cell corners, cell splits and the
/// initial cell grid: one `(lo, hi)` segment list per axis in, the boxes
/// of their product out.
fn expand_segments(segments: &[Vec<(u64, u64)>], depth: usize) -> Vec<RefineCell> {
    let mut cells = vec![RefineCell {
        lo: Vec::new(),
        hi: Vec::new(),
        depth,
    }];
    for seg in segments {
        let mut next = Vec::with_capacity(cells.len() * seg.len());
        for cell in &cells {
            for &(l, h) in seg {
                let mut child = cell.clone();
                child.lo.push(l);
                child.hi.push(h);
                next.push(child);
            }
        }
        cells = next;
    }
    cells
}

impl RefineCell {
    /// The cell's corner points (deduplicated on degenerate axes).
    fn corners(&self) -> Vec<Vec<u64>> {
        let axes: Vec<Vec<u64>> = self
            .lo
            .iter()
            .zip(&self.hi)
            .map(|(&l, &h)| if l == h { vec![l] } else { vec![l, h] })
            .collect();
        cartesian(&axes)
    }

    /// The cell split at every splittable axis's integer midpoint, or
    /// `None` when it is a leaf: at maximal depth, or with no axis left
    /// to split (then the box contains only corners — all evaluated).
    fn split(&self, max_depth: usize) -> Option<Vec<RefineCell>> {
        if self.depth >= max_depth {
            return None;
        }
        let segments: Vec<Vec<(u64, u64)>> = self
            .lo
            .iter()
            .zip(&self.hi)
            .map(|(&l, &h)| {
                let mid = l + (h - l) / 2;
                if mid == l || mid == h {
                    vec![(l, h)]
                } else {
                    vec![(l, mid), (mid, h)]
                }
            })
            .collect();
        if segments.iter().all(|s| s.len() == 1) {
            return None;
        }
        Some(expand_segments(&segments, self.depth + 1))
    }
}

/// The depth-0 cells: one box per Cartesian combination of adjacent
/// coarse windows (single-point axes contribute a degenerate window, so
/// the other axes still refine).
fn initial_cells(coarse_axes: &[Vec<u64>]) -> Vec<RefineCell> {
    let windows: Vec<Vec<(u64, u64)>> = coarse_axes
        .iter()
        .map(|axis| {
            if axis.len() == 1 {
                vec![(axis[0], axis[0])]
            } else {
                axis.windows(2).map(|w| (w[0], w[1])).collect()
            }
        })
        .collect();
    expand_segments(&windows, 0)
}

/// Where a refinement batch's improving-mode seeds come from: the
/// committed grid neighbors (phase 0 — the coarse lattice behaves like
/// the improving grid sweep) or the generating parent cell's committed
/// corner assignments (refined corners).
enum RefineSeeds<'m> {
    Grid,
    Corners(&'m BTreeMap<Vec<u64>, Vec<Vec<u64>>>),
}

/// The mutable committed state of one refinement run, threaded through
/// the batches. `points`/`run_stats` stay aligned index for index; the
/// lexicographic sort happens once at assembly.
struct RefineState {
    /// Committed results of a resumed prior run, replayed for free.
    replay: HashMap<Vec<u64>, (MhlaResult, RunStats)>,
    /// Improving-mode committed assignments.
    seeds: SeedCache,
    /// Improving-mode lex-predecessor pointer (phase 0 only).
    last_committed: Option<Vec<u64>>,
    /// Floor-certificate incumbents.
    evaluated: Vec<Evaluated>,
    /// Saturation-certificate candidates: committed cold-kept tracked
    /// runs (their constraint masks and rejection floors).
    masks: Vec<(Vec<u64>, RunStats)>,
    points: Vec<GridPoint>,
    run_stats: Vec<RunStats>,
    /// Committed capacity vectors (corner dedup across cells).
    seen: HashSet<Vec<u64>>,
    /// Corners certified dominated by the point-level skip rules —
    /// decided without a search, never committed. Certification only
    /// depends on committed state, which only grows, so membership is
    /// permanent.
    covered: HashSet<Vec<u64>>,
    /// Fresh searches this call — what the budget counts.
    fresh: usize,
    seed_wins: usize,
    search_legs: usize,
}

impl RefineState {
    #[allow(clippy::too_many_arguments)]
    fn commit(
        &mut self,
        caps: &[u64],
        result: MhlaResult,
        run: RunStats,
        seed_win: bool,
        fresh: bool,
        improving: bool,
        saturation_armed: bool,
        objective: &Objective,
    ) {
        if fresh {
            self.search_legs += run.search_legs;
            self.seed_wins += usize::from(seed_win);
        }
        if saturation_armed && run.tracked && run.cold_result_kept {
            self.masks.push((caps.to_vec(), run.clone()));
        }
        if improving {
            self.seeds.commit(caps, result.assignment.clone());
            self.last_committed = Some(caps.to_vec());
        }
        self.evaluated.push(Evaluated {
            capacities: caps.to_vec(),
            cycles: result.mhla_te_cycles(),
            energy_pj: result.mhla_energy_pj(),
            score: objective.score(&result.assignment_cost),
        });
        self.seen.insert(caps.to_vec());
        self.run_stats.push(run);
        self.points.push(GridPoint {
            capacities: caps.to_vec(),
            result,
        });
    }
}

/// Whether a committed run's saturation certificate covers the whole
/// cell: its capacities are componentwise ≤ the cell's minimal corner
/// and growth to the maximal corner is provably replayable on every
/// changed axis — growable (by constraint mask, or bounded below the
/// recorded rejection floor), inside one scratchpad latency class, and
/// within the run's energy gain margins. By monotonicity (latency
/// classes and write-energy deltas are monotone in capacity; the
/// rejection floors bound from below) the same holds at every interior
/// point of the box, so all of them replay the run's result and are
/// dominated by its committed point.
fn mask_covers(
    cell: &RefineCell,
    masks: &[(Vec<u64>, RunStats)],
    layers: &[LayerId],
    energy_weight: f64,
) -> bool {
    masks.iter().any(|(qcaps, run)| {
        qcaps.iter().zip(&cell.lo).all(|(q, l)| q <= l)
            && replay_grows_to(qcaps, run, &cell.hi, layers, energy_weight)
    })
}

/// The growth half of the saturation certificates: whether the committed
/// (tracked, cold-kept) run at `qcaps` provably replays when every axis
/// grows to `to` — each changed axis growable
/// ([`RunStats::allows_growth_to`], which extends the constraint masks
/// with the recorded per-layer rejection floors) inside one scratchpad
/// latency class, and the summed write-energy deltas within the run's
/// gain margins. All three conditions are monotone in the target
/// capacities, so a pass at `to` extends to every point between `qcaps`
/// and `to`.
fn replay_grows_to(
    qcaps: &[u64],
    run: &RunStats,
    to: &[u64],
    layers: &[LayerId],
    energy_weight: f64,
) -> bool {
    qcaps.iter().zip(to).enumerate().all(|(a, (&q, &t))| {
        q == t
            || (run.allows_growth_to(layers[a], t)
                && sram_access_cycles(q) == sram_access_cycles(t))
    }) && run.allows_energy_growth(
        qcaps
            .iter()
            .zip(to)
            .enumerate()
            .filter(|(_, (q, t))| q != t)
            .map(|(a, (&q, &t))| (layers[a], scratchpad_energy_delta_pj(q, t))),
        energy_weight,
    )
}

impl<'e> SweepEngine<'e> {
    /// The point-level certification of one pending corner against the
    /// committed state — exactly [`sweep_grid_pruned`]'s two skip rules
    /// (saturation first, cost floor second), with the saturation rule
    /// extended by the per-layer rejection floors
    /// ([`replay_grows_to`]). A certified corner is dominated on both
    /// result surfaces (the objective-score surface in improving mode)
    /// by a committed point and needs no search.
    fn point_certified(
        &self,
        caps: &[u64],
        st: &RefineState,
        floor_cache: &mut FloorCache,
        saturation_armed: bool,
        energy_weight: f64,
        improving: bool,
    ) -> bool {
        if saturation_armed
            && st.masks.iter().any(|(q, run)| {
                caps_dominate(q, caps) && replay_grows_to(q, run, caps, self.layers, energy_weight)
            })
        {
            return true;
        }
        let floor = floor_cache.floor_at(caps);
        if improving {
            match floor_objective_score(&self.ctx.config().objective, &floor) {
                Some(floor_score) => st
                    .evaluated
                    .iter()
                    .any(|q| caps_dominate(&q.capacities, caps) && q.score <= floor_score),
                None => false,
            }
        } else {
            st.evaluated
                .iter()
                .any(|q| caps_dominate(&q.capacities, caps) && q.cycles <= floor.cycles)
                && st
                    .evaluated
                    .iter()
                    .any(|q| caps_dominate(&q.capacities, caps) && q.energy_pj <= floor.energy_pj)
        }
    }

    /// Evaluates one lex-ordered batch of refinement points, committing
    /// in batch order. Returns `Some(cause)` when the budget stopped the
    /// batch mid-way — everything committed so far is final, the rest of
    /// the batch is undecided.
    ///
    /// Replayed points (from a resumed prior run) are free, and so are
    /// corners certified by the point-level skip rules. The batch is
    /// processed in fixed [`REFINE_CERT_CHUNK`]-point lex chunks:
    /// certification is decided against the state committed *before the
    /// chunk*, so commits in one chunk certify points in the next —
    /// and, because the chunk boundaries are a constant, the decisions
    /// are identical for every parallel/sequential schedule and across
    /// resumes. The budget counts fresh searches only. Cold parallel
    /// chunks enforce `max_evals` by deterministic truncation and poll
    /// the wall clock through a [`TripFlag`], mirroring the pruned
    /// sweep's chunked scheduler; commits stop at the first uncommitted
    /// gap so the committed set is always a lex prefix of the batch's
    /// searched points.
    #[allow(clippy::too_many_lines, clippy::too_many_arguments)]
    fn refine_eval_batch(
        &self,
        batch: &[Vec<u64>],
        seeds_from: &RefineSeeds<'_>,
        opts: &RefineOptions,
        saturation_armed: bool,
        energy_weight: f64,
        floor_cache: &mut FloorCache,
        st: &mut RefineState,
    ) -> Option<StopCause> {
        for chunk in batch.chunks(REFINE_CERT_CHUNK) {
            if let Some(cause) = self.refine_eval_chunk(
                chunk,
                seeds_from,
                opts,
                saturation_armed,
                energy_weight,
                floor_cache,
                st,
            ) {
                return Some(cause);
            }
        }
        None
    }

    /// One fixed-size chunk of [`refine_eval_batch`]: certification
    /// against the chunk-start state, then evaluation and in-order
    /// commits.
    #[allow(clippy::too_many_lines, clippy::too_many_arguments)]
    fn refine_eval_chunk(
        &self,
        batch: &[Vec<u64>],
        seeds_from: &RefineSeeds<'_>,
        opts: &RefineOptions,
        saturation_armed: bool,
        energy_weight: f64,
        floor_cache: &mut FloorCache,
        st: &mut RefineState,
    ) -> Option<StopCause> {
        let objective = &self.ctx.config().objective;
        let improving = opts.mode == SearchMode::Improving;
        let budget = &opts.budget;

        // Certification pass, upfront against the chunk-start state: a
        // certified corner is skipped below exactly where a prune skip
        // would be, for free. Replays win over certification — a point
        // the prior run committed must commit again.
        let mut certified = vec![false; batch.len()];
        for (i, caps) in batch.iter().enumerate() {
            if st.replay.contains_key(caps) {
                continue;
            }
            if self.point_certified(
                caps,
                st,
                floor_cache,
                saturation_armed,
                energy_weight,
                improving,
            ) {
                certified[i] = true;
            }
        }
        for (i, caps) in batch.iter().enumerate() {
            if certified[i] {
                st.covered.insert(caps.clone());
            }
        }

        if improving || !opts.parallel {
            for (i, caps) in batch.iter().enumerate() {
                if certified[i] {
                    continue;
                }
                if let Some((result, run)) = st.replay.get(caps) {
                    let (result, run) = (result.clone(), run.clone());
                    st.commit(
                        caps,
                        result,
                        run,
                        false,
                        false,
                        improving,
                        saturation_armed,
                        objective,
                    );
                    continue;
                }
                if let Some(cause) = budget.stop(st.fresh) {
                    return Some(cause);
                }
                let (result, run, seed_win) = if improving {
                    match seeds_from {
                        RefineSeeds::Grid => {
                            let (result, run, winner) = self.evaluate_improving(
                                caps,
                                &st.seeds,
                                st.last_committed.as_deref(),
                            );
                            (result, run, winner.is_some())
                        }
                        RefineSeeds::Corners(parents) => {
                            let (result, run) = {
                                let corners =
                                    parents.get(caps).map(Vec::as_slice).unwrap_or_default();
                                let refs = st.seeds.corner_seeds(corners, caps);
                                self.evaluate_with_seed_refs(caps, &refs)
                            };
                            let seed_win = run.winning_seed.is_some();
                            (result, run, seed_win)
                        }
                    }
                } else {
                    let (result, run) = self.evaluate(caps, None);
                    (result, run, false)
                };
                st.fresh += 1;
                st.commit(
                    caps,
                    result,
                    run,
                    seed_win,
                    true,
                    improving,
                    saturation_armed,
                    objective,
                );
            }
            return None;
        }

        // Cold parallel: fresh evaluations truncated to the remaining
        // deterministic allowance, wall-clock limits through the trip
        // flag.
        let fresh_idx: Vec<usize> = batch
            .iter()
            .enumerate()
            .filter(|&(i, caps)| !certified[i] && !st.replay.contains_key(caps))
            .map(|(i, _)| i)
            .collect();
        let allowed = budget.max_evals.map_or(fresh_idx.len(), |m| {
            fresh_idx.len().min(m.saturating_sub(st.fresh))
        });
        let timed = budget.is_timed();
        let trip = TripFlag::new();
        let evaluated: Vec<(usize, Option<(MhlaResult, RunStats)>)> = fresh_idx[..allowed]
            .par_iter()
            .map(|&i| {
                if timed {
                    if trip.tripped() {
                        return (i, None);
                    }
                    if let Some(cause) = budget.stop_timed() {
                        trip.trip(cause);
                        return (i, None);
                    }
                }
                let (result, run) = self.evaluate(&batch[i], None);
                (i, Some((result, run)))
            })
            .collect();
        let mut results: HashMap<usize, Option<(MhlaResult, RunStats)>> =
            evaluated.into_iter().collect();
        for (i, caps) in batch.iter().enumerate() {
            if certified[i] {
                continue;
            }
            if let Some((result, run)) = st.replay.get(caps) {
                let (result, run) = (result.clone(), run.clone());
                st.commit(
                    caps,
                    result,
                    run,
                    false,
                    false,
                    improving,
                    saturation_armed,
                    objective,
                );
                continue;
            }
            match results.remove(&i) {
                Some(Some((result, run))) => {
                    st.fresh += 1;
                    st.commit(
                        caps,
                        result,
                        run,
                        false,
                        true,
                        improving,
                        saturation_armed,
                        objective,
                    );
                }
                Some(None) => return Some(trip.cause().unwrap_or(StopCause::Deadline)),
                None => return Some(StopCause::MaxEvals),
            }
        }
        None
    }

    /// The adaptive refinement scheduler (the body of
    /// [`sweep_grid_refined_with`]): phase 0 evaluates the coarse
    /// lattice, then refinement waves classify every open cell against
    /// the state committed *before* the wave — saturation certificate
    /// first, cost-floor certificate second, split third — and evaluate
    /// the new child corners as one lex-sorted batch.
    ///
    /// The engine's `axis_caps` are the *fine* axes (improving-mode
    /// neighbor seeds resolve on them); `coarse_axes` are the caller's
    /// cleaned coarse axes. `self.order` is unused — the fine lattice is
    /// never materialized.
    ///
    /// With a `prior` run, its committed points replay for free at the
    /// positions the uninterrupted schedule evaluated them, so the
    /// continuation re-derives the identical state and the merged result
    /// is bit-identical to the uninterrupted run's.
    fn run_refined(
        &self,
        coarse_axes: &[Vec<u64>],
        opts: &RefineOptions,
        prior: Option<&RefinedGridSweep>,
    ) -> RefinedGridSweep {
        let config = self.ctx.config();
        let layers = self.layers;
        let improving = opts.mode == SearchMode::Improving;
        let saturation_armed = config.strategy == SearchStrategy::Greedy;
        let energy_weight = config.objective.energy_weight();

        let mut st = RefineState {
            replay: HashMap::new(),
            seeds: SeedCache::new(),
            last_committed: None,
            evaluated: Vec::new(),
            masks: Vec::new(),
            points: Vec::new(),
            run_stats: Vec::new(),
            seen: HashSet::new(),
            covered: HashSet::new(),
            fresh: 0,
            seed_wins: prior.map_or(0, |p| p.seed_wins),
            search_legs: prior.map_or(0, |p| p.search_legs),
        };
        if let Some(p) = prior {
            for (pt, run) in p.sweep.points.iter().zip(&p.checkpoint.run_stats) {
                st.replay
                    .insert(pt.capacities.clone(), (pt.result.clone(), run.clone()));
            }
        }

        let mut stats = RefineStats {
            virtual_points: self
                .axis_caps
                .iter()
                .map(|a| a.len() as u64)
                .fold(1u64, u64::saturating_mul),
            ..RefineStats::default()
        };
        let mut waves = 0usize;

        let mut floor_cache = FloorCache::new(self.ctx.floor_probe(self.platform, layers));

        // Phase 0: the coarse lattice, in lexicographic order.
        let coarse = cartesian(coarse_axes);
        stats.coarse_points = coarse.len();
        if let Some(cause) = self.refine_eval_batch(
            &coarse,
            &RefineSeeds::Grid,
            opts,
            saturation_armed,
            energy_weight,
            &mut floor_cache,
            &mut st,
        ) {
            let next_lex = st.points.len();
            return self.assemble_refined(
                st,
                stats,
                waves,
                SweepStatus::Stopped { cause, next_lex },
            );
        }

        let mut open = initial_cells(coarse_axes);
        let mut status = SweepStatus::Complete;
        while !open.is_empty() {
            waves += 1;
            // The floor-certificate incumbent surfaces, built once per
            // wave (no commits happen during classification): committed
            // points as `(capacities..., value)` rows, probed with the
            // cell's minimal corner and its floor. A row at the corner
            // itself is fine — certified interior points are never
            // committed, so the dominator is always a distinct point.
            let row = |q: &Evaluated, value: f64| -> Vec<f64> {
                let mut r: Vec<f64> = q.capacities.iter().map(|&c| c as f64).collect();
                r.push(value);
                r
            };
            let (cycles_rows, energy_rows, score_rows) = if improving {
                let scores: Vec<Vec<f64>> = st.evaluated.iter().map(|q| row(q, q.score)).collect();
                (Vec::new(), Vec::new(), scores)
            } else {
                (
                    st.evaluated
                        .iter()
                        .map(|q| row(q, q.cycles as f64))
                        .collect(),
                    st.evaluated.iter().map(|q| row(q, q.energy_pj)).collect(),
                    Vec::new(),
                )
            };
            let mut next_open: Vec<RefineCell> = Vec::new();
            let mut pending: BTreeMap<Vec<u64>, Vec<Vec<u64>>> = BTreeMap::new();
            for cell in &open {
                if saturation_armed && mask_covers(cell, &st.masks, layers, energy_weight) {
                    stats.cells_closed_mask += 1;
                    continue;
                }
                let floor = floor_cache.floor_at(&cell.lo);
                let mut probe: Vec<f64> = cell.lo.iter().map(|&c| c as f64).collect();
                let floor_dominated = if improving {
                    match floor_objective_score(&config.objective, &floor) {
                        Some(floor_score) => {
                            probe.push(floor_score);
                            pareto::covers(&score_rows, &probe)
                        }
                        None => false,
                    }
                } else {
                    probe.push(floor.cycles as f64);
                    let cycles_met = pareto::covers(&cycles_rows, &probe);
                    if let Some(last) = probe.last_mut() {
                        *last = floor.energy_pj;
                    }
                    cycles_met && pareto::covers(&energy_rows, &probe)
                };
                if floor_dominated {
                    stats.cells_closed_floor += 1;
                    continue;
                }
                match cell.split(opts.depth) {
                    Some(children) => {
                        stats.cells_opened += 1;
                        for child in children {
                            for corner in child.corners() {
                                if !st.seen.contains(&corner) && !st.covered.contains(&corner) {
                                    pending.entry(corner).or_insert_with(|| cell.corners());
                                }
                            }
                            next_open.push(child);
                        }
                    }
                    None => stats.cells_leaf += 1,
                }
            }
            let batch: Vec<Vec<u64>> = pending.keys().cloned().collect();
            if let Some(cause) = self.refine_eval_batch(
                &batch,
                &RefineSeeds::Corners(&pending),
                opts,
                saturation_armed,
                energy_weight,
                &mut floor_cache,
                &mut st,
            ) {
                let next_lex = st.points.len();
                status = SweepStatus::Stopped { cause, next_lex };
                break;
            }
            open = next_open;
        }
        self.assemble_refined(st, stats, waves, status)
    }

    /// Final assembly: points (and their aligned [`RunStats`]) sorted
    /// lexicographically so the result — like every grid sweep — is
    /// independent of the commit schedule, checkpoint kept only on a
    /// stop.
    fn assemble_refined(
        &self,
        st: RefineState,
        mut stats: RefineStats,
        waves: usize,
        status: SweepStatus,
    ) -> RefinedGridSweep {
        stats.evaluated = st.points.len();
        stats.corners_certified = st.covered.len();
        let mut zipped: Vec<(GridPoint, RunStats)> =
            st.points.into_iter().zip(st.run_stats).collect();
        zipped.sort_by(|a, b| a.0.capacities.cmp(&b.0.capacities));
        let (points, run_stats): (Vec<GridPoint>, Vec<RunStats>) = zipped.into_iter().unzip();
        let checkpoint = match status {
            SweepStatus::Complete => RefineCheckpoint::default(),
            SweepStatus::Stopped { .. } => RefineCheckpoint { run_stats },
        };
        RefinedGridSweep {
            sweep: GridSweep {
                layers: self.layers.to_vec(),
                points,
            },
            stats,
            waves,
            search_legs: st.search_legs,
            seed_wins: st.seed_wins,
            status,
            checkpoint,
        }
    }
}

/// The adaptive frontier-driven refinement sweep: evaluates the coarse
/// grid, then recursively subdivides only the capacity cells that can
/// still change the Pareto front, until the virtual fine lattice
/// (`2^`[`REFINE_DEPTH`] interior points per coarse interval per axis)
/// is reached or closed. A cell is closed without subdivision only under
/// a certificate — mirroring [`sweep_grid_pruned`]'s two skip rules,
/// lifted from points to boxes:
///
/// 1. **Saturation certificate.** A committed cold-kept run at
///    `q ≤ cell.lo` whose constraint masks and per-layer rejection
///    floors ([`RunStats::allows_growth_to`]) prove growth to `cell.hi`
///    replays it — every changed axis growable, inside one scratchpad
///    latency class, within the energy gain margins. Monotonicity
///    extends the proof to every interior point of the box.
/// 2. **Cost-floor certificate.** The cost floor at the cell's minimal
///    corner (monotone in capacity, so a lower bound for the whole box)
///    is already dominated by committed points on both the cycles and
///    the energy surface ([`pareto::covers`]).
///
/// Both certificates only ever close boxes whose every unevaluated point
/// is dominated by a *committed* point, so — by the same transitivity
/// argument as the pruned sweep — the result's Pareto accessors select,
/// bit for bit, the frontier of the exhaustive virtual fine lattice
/// (`tests/refine_equivalence.rs`), at a small fraction of its
/// evaluations ([`RefineStats::eval_ratio`]).
///
/// # Panics
///
/// Panics if any axis names the off-chip layer or a layer out of range,
/// or if any capacity is zero.
pub fn sweep_grid_refined(
    program: &Program,
    platform: &Platform,
    axes: &[GridAxis],
    config: &MhlaConfig,
) -> RefinedGridSweep {
    sweep_grid_refined_with(program, platform, axes, config, RefineOptions::default())
}

/// [`sweep_grid_refined`] with explicit [`RefineOptions`].
pub fn sweep_grid_refined_with(
    program: &Program,
    platform: &Platform,
    axes: &[GridAxis],
    config: &MhlaConfig,
    opts: RefineOptions,
) -> RefinedGridSweep {
    match try_sweep_grid_refined_with(program, platform, axes, config, &opts) {
        Ok(run) => run,
        Err(e) => panic!("sweep_grid_refined_with: {e}"),
    }
}

/// Fallible [`sweep_grid_refined`]: validated ingress, typed errors.
///
/// # Errors
///
/// As [`try_sweep`].
pub fn try_sweep_grid_refined(
    program: &Program,
    platform: &Platform,
    axes: &[GridAxis],
    config: &MhlaConfig,
) -> Result<RefinedGridSweep, MhlaError> {
    try_sweep_grid_refined_with(program, platform, axes, config, &RefineOptions::default())
}

/// Fallible [`sweep_grid_refined_with`]: validates the program,
/// platform, configuration, axes and refinement options up front, then
/// runs the budget-aware refinement scheduler.
///
/// # Errors
///
/// As [`try_sweep`], plus [`MhlaError::InvalidOptions`] for an
/// out-of-range subdivision depth or duplicate axis layers. Budget
/// exhaustion is *not* an error — the run comes back `Ok` with
/// [`SweepStatus::Stopped`]; use [`RefinedGridSweep::require_complete`]
/// to promote a stop into a typed error.
pub fn try_sweep_grid_refined_with(
    program: &Program,
    platform: &Platform,
    axes: &[GridAxis],
    config: &MhlaConfig,
    opts: &RefineOptions,
) -> Result<RefinedGridSweep, MhlaError> {
    error::validate_run_ingress(program, platform, config)?;
    error::validate_axes(platform, axes)?;
    error::validate_refine_options(axes, opts)?;
    let layers: Vec<LayerId> = axes.iter().map(|a| a.layer).collect();
    let coarse: Vec<Vec<u64>> = axes
        .iter()
        .map(|a| clean_capacities(&a.capacities))
        .collect();
    if coarse.is_empty() || coarse.iter().any(Vec::is_empty) {
        return Ok(RefinedGridSweep {
            sweep: GridSweep {
                layers,
                points: Vec::new(),
            },
            stats: RefineStats::default(),
            waves: 0,
            search_legs: 0,
            seed_wins: 0,
            status: SweepStatus::Complete,
            checkpoint: RefineCheckpoint::default(),
        });
    }
    let fine: Vec<Vec<u64>> = coarse.iter().map(|a| refine_axis(a, opts.depth)).collect();
    let ctx = ExplorationContext::new(program, platform, config.clone());
    // Built literally, not through `SweepEngine::new`: the fine lattice's
    // Cartesian product is deliberately never materialized (it is the
    // *virtual* lattice — at depth 16 it would not fit in memory).
    let engine = SweepEngine {
        ctx: &ctx,
        platform,
        layers: &layers,
        axis_caps: &fine,
        order: Vec::new(),
    };
    Ok(engine.run_refined(&coarse, opts, None))
}

/// Resumes a stopped [`try_sweep_grid_refined_with`] and returns the
/// *merged* run, again budget-aware. Must be called with the same
/// program/platform/axes/config/options the prior run used (checked
/// where cheaply possible); resuming a complete run returns it
/// unchanged.
///
/// The deterministic scheduler re-runs from the start with the prior
/// run's committed points replayed for free (the budget counts fresh
/// searches only), so the merged result — points, certificates, stats
/// and frontiers — is bit-identical to the uninterrupted run's.
///
/// # Errors
///
/// As [`try_sweep_grid_refined_with`], plus
/// [`MhlaError::InvalidOptions`] when `prior` does not match the given
/// axes and depth.
pub fn try_sweep_grid_refined_resume(
    program: &Program,
    platform: &Platform,
    axes: &[GridAxis],
    config: &MhlaConfig,
    opts: &RefineOptions,
    prior: &RefinedGridSweep,
) -> Result<RefinedGridSweep, MhlaError> {
    error::validate_run_ingress(program, platform, config)?;
    error::validate_axes(platform, axes)?;
    error::validate_refine_options(axes, opts)?;
    let next_lex = match prior.status {
        SweepStatus::Complete => return Ok(prior.clone()),
        SweepStatus::Stopped { next_lex, .. } => next_lex,
    };
    let layers: Vec<LayerId> = axes.iter().map(|a| a.layer).collect();
    if prior.sweep.layers != layers {
        return Err(MhlaError::InvalidOptions {
            what: "resume: the prior run's axis layers do not match".into(),
        });
    }
    if next_lex != prior.sweep.points.len()
        || prior.checkpoint.run_stats.len() != prior.sweep.points.len()
    {
        return Err(MhlaError::InvalidOptions {
            what: "resume: the prior run's bookkeeping does not match its points".into(),
        });
    }
    let coarse: Vec<Vec<u64>> = axes
        .iter()
        .map(|a| clean_capacities(&a.capacities))
        .collect();
    let fine: Vec<Vec<u64>> = coarse.iter().map(|a| refine_axis(a, opts.depth)).collect();
    for p in &prior.sweep.points {
        let on_lattice = p.capacities.len() == fine.len()
            && p.capacities
                .iter()
                .zip(&fine)
                .all(|(c, axis)| axis.binary_search(c).is_ok());
        if !on_lattice {
            return Err(MhlaError::InvalidOptions {
                what: "resume: a prior point is off this refinement lattice".into(),
            });
        }
    }
    let ctx = ExplorationContext::new(program, platform, config.clone());
    let engine = SweepEngine {
        ctx: &ctx,
        platform,
        layers: &layers,
        axis_caps: &fine,
        order: Vec::new(),
    };
    Ok(engine.run_refined(&coarse, opts, Some(prior)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mhla_ir::{ElemType, ProgramBuilder};

    fn blocked() -> Program {
        let mut b = ProgramBuilder::new("blocked");
        let data = b.array("data", &[4096], ElemType::U8);
        let lb = b.begin_loop("blk", 0, 16, 1);
        let lr = b.begin_loop("rep", 0, 8, 1);
        let li = b.begin_loop("i", 0, 256, 1);
        let (blk, i) = (b.var(lb), b.var(li));
        b.stmt("use")
            .read(data, vec![blk * 256 + i])
            .compute_cycles(2)
            .finish();
        b.end_loop();
        b.end_loop();
        b.end_loop();
        let _ = lr;
        b.finish()
    }

    #[test]
    fn sweep_is_monotone_enough_and_pareto_is_sane() {
        let p = blocked();
        let pf = Platform::embedded_default(1024);
        let caps: Vec<u64> = vec![32, 64, 128, 256, 512, 1024, 4096];
        let s = sweep(&p, &pf, LayerId(1), &caps, &MhlaConfig::default());
        assert_eq!(s.points.len(), caps.len());
        // Capacities ascend.
        for w in s.points.windows(2) {
            assert!(w[0].capacity < w[1].capacity);
        }
        // The Pareto front is non-empty, ascending in capacity and strictly
        // descending in cycles.
        let front = s.pareto_cycles();
        assert!(!front.is_empty());
        for w in front.windows(2) {
            assert!(s.points[w[0]].cycles() > s.points[w[1]].cycles());
        }
        // Best-cycles point beats the smallest-capacity point.
        let best = s.best_cycles().unwrap();
        assert!(best.cycles() <= s.points[0].cycles());
    }

    #[test]
    fn bigger_scratchpads_never_hurt_cycles_on_the_front() {
        let p = blocked();
        let pf = Platform::embedded_default(1024);
        let s = sweep(
            &p,
            &pf,
            LayerId(1),
            &default_capacities(),
            &MhlaConfig::default(),
        );
        let front = s.pareto_energy();
        for w in front.windows(2) {
            assert!(s.points[w[0]].energy_pj() > s.points[w[1]].energy_pj());
        }
    }

    #[test]
    fn duplicate_capacities_are_deduped() {
        let p = blocked();
        let pf = Platform::embedded_default(1024);
        let s = sweep(
            &p,
            &pf,
            LayerId(1),
            &[256, 256, 512],
            &MhlaConfig::default(),
        );
        assert_eq!(s.points.len(), 2);
    }

    #[test]
    fn grid_covers_the_cartesian_product_in_lexicographic_order() {
        let p = blocked();
        let pf = Platform::three_level(4096, 512);
        let axes = [
            GridAxis::new(LayerId(1), vec![1024u64, 4096]),
            GridAxis::new(LayerId(2), vec![512u64, 128, 256]),
        ];
        let g = sweep_grid(&p, &pf, &axes, &MhlaConfig::default());
        assert_eq!(g.layers, vec![LayerId(1), LayerId(2)]);
        assert_eq!(g.points.len(), 6);
        let caps: Vec<Vec<u64>> = g.points.iter().map(|p| p.capacities.clone()).collect();
        assert_eq!(
            caps,
            vec![
                vec![1024, 128],
                vec![1024, 256],
                vec![1024, 512],
                vec![4096, 128],
                vec![4096, 256],
                vec![4096, 512],
            ],
            "axis capacities sorted, last axis fastest"
        );
    }

    #[test]
    fn grid_points_match_standalone_runs() {
        let p = blocked();
        let pf = Platform::three_level(4096, 512);
        let axes = [
            GridAxis::new(LayerId(1), vec![1024u64, 4096]),
            GridAxis::new(LayerId(2), vec![128u64, 512]),
        ];
        let g = sweep_grid(&p, &pf, &axes, &MhlaConfig::default());
        for point in &g.points {
            let standalone = pf.with_layer_capacities(&[
                (LayerId(1), point.capacities[0]),
                (LayerId(2), point.capacities[1]),
            ]);
            let cold = crate::Mhla::new(&p, &standalone, MhlaConfig::default()).run();
            assert_eq!(point.result, cold, "at {:?}", point.capacities);
        }
    }

    #[test]
    fn single_axis_grid_is_exactly_the_sweep() {
        let p = blocked();
        let pf = Platform::embedded_default(1024);
        let caps: Vec<u64> = vec![64, 128, 512, 2048];
        let s = sweep(&p, &pf, LayerId(1), &caps, &MhlaConfig::default());
        let g = sweep_grid(
            &p,
            &pf,
            &[GridAxis::new(LayerId(1), caps)],
            &MhlaConfig::default(),
        );
        assert_eq!(g.points.len(), s.points.len());
        for (gp, sp) in g.points.iter().zip(&s.points) {
            assert_eq!(gp.capacities, vec![sp.capacity]);
            assert_eq!(gp.result, sp.result);
        }
        assert_eq!(g.pareto_cycles(), s.pareto_cycles());
        assert_eq!(g.pareto_energy(), s.pareto_energy());
    }

    #[test]
    fn grid_pareto_surface_is_mutually_non_dominated() {
        let p = blocked();
        let pf = Platform::three_level(4096, 512);
        let axes = [
            GridAxis::new(LayerId(1), vec![512u64, 1024, 4096]),
            GridAxis::new(LayerId(2), vec![64u64, 128, 512]),
        ];
        let g = sweep_grid(&p, &pf, &axes, &MhlaConfig::default());
        let front = g.pareto_cycles();
        assert!(!front.is_empty());
        for &i in &front {
            for &j in &front {
                if i == j {
                    continue;
                }
                let dominated = g.points[j]
                    .capacities
                    .iter()
                    .zip(&g.points[i].capacities)
                    .all(|(cj, ci)| cj <= ci)
                    && g.points[j].cycles() <= g.points[i].cycles()
                    && (g.points[j].capacities != g.points[i].capacities
                        || g.points[j].cycles() < g.points[i].cycles());
                assert!(!dominated, "{i} dominated by {j} on the front");
            }
        }
        // The best-cycles point is always on the cycle front.
        let best = g.best_cycles().unwrap();
        assert!(front.iter().any(|&i| g.points[i].result == best.result));
    }

    #[test]
    fn skip_ratio_is_zero_not_nan_on_an_empty_grid() {
        let empty = PruneStats::default();
        assert_eq!(empty.candidates, 0);
        assert_eq!(empty.skip_ratio(), 0.0);
        assert!(!empty.skip_ratio().is_nan());
        // And the ordinary case still divides by the real candidate count.
        let some = PruneStats {
            candidates: 10,
            evaluated: 6,
            skipped_saturated: 3,
            skipped_floor: 1,
        };
        assert_eq!(some.skip_ratio(), 0.4);
    }

    #[test]
    fn improving_grid_covers_every_point_and_never_scores_worse() {
        let p = blocked();
        let pf = Platform::three_level(4096, 512);
        let axes = [
            GridAxis::new(LayerId(1), vec![512u64, 1024, 4096]),
            GridAxis::new(LayerId(2), vec![64u64, 256, 512]),
        ];
        let config = MhlaConfig::default();
        let cold = sweep_grid_with(
            &p,
            &pf,
            &axes,
            &config,
            SweepOptions {
                warm_start: false,
                ..SweepOptions::default()
            },
        );
        let run = sweep_grid_run(
            &p,
            &pf,
            &axes,
            &config,
            SweepOptions {
                mode: SearchMode::Improving,
                ..SweepOptions::default()
            },
        );
        assert_eq!(run.sweep.points.len(), cold.points.len());
        assert_eq!(run.winners.len(), cold.points.len());
        assert!(run.evals >= cold.points.len(), "cold leg runs everywhere");
        for (i, (imp, base)) in run.sweep.points.iter().zip(&cold.points).enumerate() {
            assert_eq!(imp.capacities, base.capacities, "lexicographic order");
            assert!(
                imp.objective_score(&config.objective) <= base.objective_score(&config.objective),
                "point {i} regressed"
            );
            if run.winners[i].is_none() {
                assert_eq!(imp.result, base.result, "cold-kept point {i} must be cold");
            }
        }
        assert_eq!(
            run.seed_wins,
            run.winners.iter().filter(|w| w.is_some()).count()
        );
    }

    #[test]
    fn improving_mode_is_deterministic_across_scheduling_options() {
        let p = blocked();
        let pf = Platform::three_level(4096, 512);
        let axes = [
            GridAxis::new(LayerId(1), vec![512u64, 1024, 4096]),
            GridAxis::new(LayerId(2), vec![64u64, 256, 512]),
        ];
        let config = MhlaConfig::default();
        let reference = sweep_grid_run(
            &p,
            &pf,
            &axes,
            &config,
            SweepOptions {
                mode: SearchMode::Improving,
                ..SweepOptions::default()
            },
        );
        for parallel in [false, true] {
            for chunk in [1usize, 2, 64] {
                let other = sweep_grid_run(
                    &p,
                    &pf,
                    &axes,
                    &config,
                    SweepOptions {
                        mode: SearchMode::Improving,
                        parallel,
                        chunk,
                        ..SweepOptions::default()
                    },
                );
                assert_eq!(reference, other, "parallel={parallel} chunk={chunk}");
            }
        }
    }

    #[test]
    fn grid_handles_degenerate_axis_lists() {
        let p = blocked();
        let pf = Platform::three_level(4096, 512);
        let empty = sweep_grid(&p, &pf, &[], &MhlaConfig::default());
        assert!(empty.points.is_empty());
        let empty_axis = sweep_grid(
            &p,
            &pf,
            &[
                GridAxis::new(LayerId(1), vec![1024u64]),
                GridAxis::new(LayerId(2), Vec::new()),
            ],
            &MhlaConfig::default(),
        );
        assert!(empty_axis.points.is_empty());
    }

    #[test]
    fn refine_axis_emits_sorted_integer_midpoints() {
        assert_eq!(refine_axis(&[8, 16], 1), vec![8, 12, 16]);
        assert_eq!(refine_axis(&[8, 16], 2), vec![8, 10, 12, 14, 16]);
        // Depth 0 is the coarse axis itself; exhausted integer ranges
        // stop early instead of repeating points.
        assert_eq!(refine_axis(&[8, 16], 0), vec![8, 16]);
        assert_eq!(refine_axis(&[7, 8], 8), vec![7, 8]);
        assert_eq!(refine_axis(&[4], 3), vec![4]);
        // Multi-interval axes refine each adjacent pair independently.
        assert_eq!(refine_axis(&[4, 8, 10], 1), vec![4, 6, 8, 9, 10]);
        // Deep refinement saturates at the full integer range.
        assert_eq!(refine_axis(&[1, 9], 16), (1..=9).collect::<Vec<u64>>());
    }

    #[test]
    fn floor_probe_matches_the_cost_model_floor_bit_for_bit() {
        let p = blocked();
        let pf = Platform::three_level(4096, 512);
        let layers = [LayerId(1), LayerId(2)];
        let config = MhlaConfig::default();
        let ctx = ExplorationContext::new(&p, &pf, config);
        let probe = ctx.floor_probe(&pf, &layers);
        for caps in cartesian(&[vec![256, 1024, 40960, 524288], vec![128, 2048, 300000]]) {
            let resized = pf.with_layer_capacities(&[(LayerId(1), caps[0]), (LayerId(2), caps[1])]);
            assert_eq!(
                probe.floor_at(&caps),
                ctx.cost_model(&resized).cost_floor(),
                "at {caps:?}"
            );
        }
    }

    /// A deliberately tight two-level setup where the cost-floor rule
    /// provably fires — why it never does on the default grid4 bench:
    /// the floor ignores transfer costs, so a committed point beats a
    /// grown point's floor only when its DMA energy is amortized below
    /// the floor's per-access energy growth, *and* the saturation rule
    /// (checked first) must fail. Here the array fits at the smaller
    /// capacity, heavy reuse (128×) amortizes the one burst copy below
    /// the √-capacity access-energy growth, and the larger capacity
    /// crosses the 32 KiB scratchpad latency boundary, so saturation is
    /// disarmed (different latency class) while the grown point's floor
    /// — per-access cycles and energies strictly above the committed
    /// point's achieved cost — certifies the skip on both surfaces. On
    /// the bench apps the reuse never clears the DMA amortization bar
    /// inside a latency class, so saturation always wins first.
    #[test]
    fn floor_rule_fires_across_a_latency_class_boundary() {
        let mut b = ProgramBuilder::new("reuse-heavy");
        let data = b.array("data", &[4096], ElemType::U8);
        let lb = b.begin_loop("blk", 0, 16, 1);
        let _lr = b.begin_loop("rep", 0, 128, 1);
        let li = b.begin_loop("i", 0, 256, 1);
        let (blk, i) = (b.var(lb), b.var(li));
        b.stmt("use")
            .read(data, vec![blk * 256 + i])
            .compute_cycles(2)
            .finish();
        b.end_loop();
        b.end_loop();
        b.end_loop();
        let p = b.finish();
        let pf = Platform::embedded_default(16384);
        let axes = [GridAxis::new(LayerId(1), vec![16384u64, 65536])];
        let run = sweep_grid_pruned(&p, &pf, &axes, &MhlaConfig::default());
        assert_eq!(run.stats.evaluated, 1, "only the tight point runs");
        assert_eq!(run.stats.skipped_floor, 1, "the grown point is floored");
        assert_eq!(run.stats.skipped_saturated, 0, "saturation is disarmed");
    }

    #[test]
    fn refined_small_grid_matches_the_exhaustive_fine_lattice() {
        let p = blocked();
        let pf = Platform::three_level(4096, 512);
        let axes = [
            GridAxis::new(LayerId(1), vec![1024u64, 4096]),
            GridAxis::new(LayerId(2), vec![128u64, 512]),
        ];
        let config = MhlaConfig::default();
        let opts = RefineOptions::default().depth(2);
        let refined = sweep_grid_refined_with(&p, &pf, &axes, &config, opts.clone());
        assert!(refined.status.is_complete());
        let fine_axes: Vec<GridAxis> = axes
            .iter()
            .map(|a| GridAxis::new(a.layer, refine_axis(&a.capacities, opts.depth)))
            .collect();
        let exhaustive = sweep_grid(&p, &pf, &fine_axes, &config);
        assert_eq!(refined.stats.virtual_points, exhaustive.points.len() as u64);
        assert!(refined.stats.evaluated <= exhaustive.points.len());
        let frontier = |g: &GridSweep, idx: Vec<usize>| -> Vec<GridPoint> {
            idx.into_iter().map(|i| g.points[i].clone()).collect()
        };
        assert_eq!(
            frontier(&refined.sweep, refined.sweep.pareto_cycles()),
            frontier(&exhaustive, exhaustive.pareto_cycles()),
            "cycles frontier"
        );
        assert_eq!(
            frontier(&refined.sweep, refined.sweep.pareto_energy()),
            frontier(&exhaustive, exhaustive.pareto_energy()),
            "energy frontier"
        );
    }

    #[test]
    fn refined_budget_stop_resumes_bit_identically() {
        let p = blocked();
        let pf = Platform::three_level(4096, 512);
        let axes = [
            GridAxis::new(LayerId(1), vec![1024u64, 4096]),
            GridAxis::new(LayerId(2), vec![128u64, 512]),
        ];
        let config = MhlaConfig::default();
        let base = RefineOptions::default().depth(1);
        let uninterrupted = sweep_grid_refined_with(&p, &pf, &axes, &config, base.clone());
        assert!(uninterrupted.status.is_complete());
        for max in [1usize, 3, 5] {
            let stopped = sweep_grid_refined_with(
                &p,
                &pf,
                &axes,
                &config,
                base.clone().budget(ExploreBudget::max_evals(max)),
            );
            assert_eq!(
                stopped.status.next_lex(),
                Some(stopped.sweep.points.len()),
                "max={max}: the cursor is the committed point count"
            );
            let resumed = try_sweep_grid_refined_resume(&p, &pf, &axes, &config, &base, &stopped)
                .expect("resume");
            assert_eq!(resumed, uninterrupted, "max={max}");
        }
    }

    #[test]
    fn refined_improving_front_dominates_the_cold_front() {
        let p = blocked();
        let pf = Platform::three_level(4096, 512);
        let axes = [
            GridAxis::new(LayerId(1), vec![1024u64, 4096]),
            GridAxis::new(LayerId(2), vec![128u64, 512]),
        ];
        let config = MhlaConfig::default();
        let opts = RefineOptions {
            depth: 1,
            mode: SearchMode::Improving,
            ..RefineOptions::default()
        };
        let improving = sweep_grid_refined_with(&p, &pf, &axes, &config, opts.clone());
        assert!(improving.status.is_complete());
        let cold =
            sweep_grid_refined_with(&p, &pf, &axes, &config, RefineOptions::default().depth(1));
        let surface = |run: &RefinedGridSweep| -> Vec<Vec<f64>> {
            run.sweep
                .pareto_objective(&config.objective)
                .into_iter()
                .map(|i| {
                    let pt = &run.sweep.points[i];
                    grid_coords(pt, pt.objective_score(&config.objective))
                })
                .collect()
        };
        assert!(
            pareto::front_dominates(&surface(&improving), &surface(&cold)),
            "the improving refined front dominates-or-equals the cold one"
        );
    }

    #[test]
    fn refined_rejects_bad_options() {
        let p = blocked();
        let pf = Platform::three_level(4096, 512);
        let axes = [GridAxis::new(LayerId(1), vec![1024u64, 4096])];
        let config = MhlaConfig::default();
        for depth in [0usize, 17] {
            assert!(matches!(
                try_sweep_grid_refined_with(
                    &p,
                    &pf,
                    &axes,
                    &config,
                    &RefineOptions::default().depth(depth),
                ),
                Err(MhlaError::InvalidOptions { .. })
            ));
        }
        let dup = [
            GridAxis::new(LayerId(1), vec![1024u64]),
            GridAxis::new(LayerId(1), vec![4096u64]),
        ];
        assert!(matches!(
            try_sweep_grid_refined_with(&p, &pf, &dup, &config, &RefineOptions::default()),
            Err(MhlaError::InvalidOptions { .. })
        ));
    }

    #[test]
    fn refined_handles_degenerate_axis_lists() {
        let p = blocked();
        let pf = Platform::three_level(4096, 512);
        let empty = sweep_grid_refined(&p, &pf, &[], &MhlaConfig::default());
        assert!(empty.sweep.points.is_empty());
        assert!(empty.status.is_complete());
        // A single-point axis cannot refine but still sweeps cleanly
        // alongside a refining one.
        let single = sweep_grid_refined_with(
            &p,
            &pf,
            &[
                GridAxis::new(LayerId(1), vec![4096u64]),
                GridAxis::new(LayerId(2), vec![128u64, 512]),
            ],
            &MhlaConfig::default(),
            RefineOptions::default().depth(1),
        );
        assert!(single.status.is_complete());
        assert!(single
            .sweep
            .points
            .iter()
            .all(|pt| pt.capacities[0] == 4096));
        assert!(single.stats.virtual_points >= 3);
    }

    use mhla_ir::Program;
}
