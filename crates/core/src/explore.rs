//! Trade-off exploration over on-chip layer sizes.
//!
//! The paper's §1 claim — "performs a thorough trade-off exploration for
//! different memory layer sizes … able to find all the optimal trade-off
//! points" — maps to sweeps over the on-chip layer sizes:
//!
//! * [`sweep`] — the 1-D capacity sweep: one scratchpad layer resized over
//!   a range, both MHLA steps run at every size, Pareto-optimal
//!   (capacity, cycles) and (capacity, energy) points kept.
//! * [`sweep_grid`] — the N-dimensional generalization: every on-chip
//!   layer gets its own capacity axis ([`GridAxis`]) and the full
//!   Cartesian product is evaluated — the *joint* sizing of a multi-layer
//!   hierarchy (e.g. L1×L2 on [`Platform::three_level`]), whose
//!   interesting trade-offs single-axis sweeps cannot see. Pareto
//!   filtering generalizes to dominance over the capacity vector.
//!
//! Both run on a shared [`ExplorationContext`]: the reuse analysis,
//! program facts, TE caches and candidate-move space are computed once per
//! program; each point only pays for its search. Points are processed in
//! fixed-size chunks scheduled across threads with `rayon`, and within a
//! chunk each point warm-starts the greedy search from its predecessor
//! along the innermost axis.
//!
//! [`sweep_grid_pruned`] is the sub-exhaustive production path for large
//! grids: points that provably cannot contribute a Pareto point are
//! skipped *without evaluation* (see its documentation for the two prune
//! rules and the losslessness argument). The rules arm under all three
//! [`Objective`](crate::Objective)s — the energy/weighted side rides on instrumented
//! per-run *gain bounds* ([`RunStats`]) — and the loop
//! executes in *frontier waves* whose cold evaluations run in parallel
//! while skip decisions commit in lexicographic order, so frontiers and
//! [`PruneStats`] are identical to the sequential point-by-point path;
//! `tests/prune_equivalence.rs` verifies the pruned frontier bit-for-bit
//! against the exhaustive one under every objective and both modes.
//!
//! [`sweep_cold`] keeps the frozen pre-optimization reference path:
//! strictly sequential, every point re-analyzed and searched from scratch.
//! The `tradeoff` bench and the equivalence tests compare the paths; their
//! Pareto fronts must be identical.
//!
//! Pareto filtering is shared between [`Sweep`] and [`GridSweep`] through
//! [`pareto::front`] — the sort-based sweep that replaced the seed's
//! all-pairs dominance scan.

use rayon::prelude::*;

use mhla_hierarchy::{
    energy::{sram_access_cycles, sram_write_pj},
    LayerId, Platform,
};
use mhla_ir::Program;

use crate::context::ExplorationContext;
use crate::driver::{Mhla, MhlaResult, RunStats};
use crate::pareto;
use crate::types::{Assignment, MhlaConfig, SearchStrategy};

/// One point of the capacity sweep.
#[derive(Clone, PartialEq, Debug)]
pub struct SweepPoint {
    /// On-chip scratchpad capacity of this point, bytes.
    pub capacity: u64,
    /// The full MHLA result at this capacity.
    pub result: MhlaResult,
}

impl SweepPoint {
    /// Static MHLA+TE cycles at this point.
    pub fn cycles(&self) -> u64 {
        self.result.mhla_te_cycles()
    }

    /// Memory energy at this point, picojoule.
    pub fn energy_pj(&self) -> f64 {
        self.result.mhla_energy_pj()
    }
}

/// Result of [`sweep`]: all evaluated points in ascending capacity order.
#[derive(Clone, PartialEq, Debug)]
pub struct Sweep {
    /// Evaluated points, ascending capacity.
    pub points: Vec<SweepPoint>,
}

impl Sweep {
    /// Indices of the Pareto-optimal (capacity, cycles) points: no other
    /// point has both smaller-or-equal capacity and strictly fewer cycles.
    pub fn pareto_cycles(&self) -> Vec<usize> {
        pareto_indices(&self.points, |p| p.cycles() as f64)
    }

    /// Indices of the Pareto-optimal (capacity, energy) points.
    pub fn pareto_energy(&self) -> Vec<usize> {
        pareto_indices(&self.points, |p| p.energy_pj())
    }

    /// The point with the fewest cycles (ties: smallest capacity).
    pub fn best_cycles(&self) -> Option<&SweepPoint> {
        self.points
            .iter()
            .min_by(|a, b| (a.cycles(), a.capacity).cmp(&(b.cycles(), b.capacity)))
    }

    /// The point with the least energy (ties: smallest capacity).
    pub fn best_energy(&self) -> Option<&SweepPoint> {
        self.points.iter().min_by(|a, b| {
            (a.energy_pj(), a.capacity)
                .partial_cmp(&(b.energy_pj(), b.capacity))
                .unwrap_or(std::cmp::Ordering::Equal)
        })
    }
}

/// Pareto filter over (capacity, objective): keep a point iff no other
/// point has smaller-or-equal capacity and objective without being the
/// exact same point. Shared with the grid sweep through the sort-based
/// [`pareto::front`].
fn pareto_indices(points: &[SweepPoint], objective: impl Fn(&SweepPoint) -> f64) -> Vec<usize> {
    let coords: Vec<Vec<f64>> = points
        .iter()
        .map(|p| vec![p.capacity as f64, objective(p)])
        .collect();
    pareto::front(&coords)
}

/// Default capacity grid: powers of two from 128 B to 128 KiB.
pub fn default_capacities() -> Vec<u64> {
    (7..=17).map(|e| 1u64 << e).collect()
}

/// Default number of consecutive capacity points one parallel task
/// processes (the default of [`SweepOptions::chunk`]).
///
/// Within a chunk, points after the first warm-start from their
/// predecessor; chunks are independent, so this is also the granularity of
/// the `rayon` fan-out. Fixed (instead of `capacities / threads`) so sweep
/// results never depend on the machine's core count. Tunable at runtime
/// through [`SweepOptions::chunk`] (the `bench` binary reads
/// `MHLA_SWEEP_CHUNK` for the many-core tuning experiment).
pub const SWEEP_CHUNK: usize = 4;

/// Tuning knobs for [`sweep_with`] and [`sweep_grid_with`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct SweepOptions {
    /// Warm-start each point (within a chunk) from its predecessor's
    /// assignment along the innermost axis. Applies to the greedy strategy
    /// only.
    pub warm_start: bool,
    /// Process chunks of capacities on a thread pool.
    pub parallel: bool,
    /// Points per sequential chunk along the innermost sweep axis
    /// (clamped to ≥ 1; default [`SWEEP_CHUNK`]).
    ///
    /// **Determinism guarantee:** the chunking is fixed by this value
    /// alone — never derived from the machine's core count — and each
    /// point's result is the warm/cold search *portfolio* (the cold
    /// search always runs; the warm result is kept only when strictly
    /// better). Sweep results are therefore identical for every
    /// `chunk`/`parallel`/`warm_start` combination and on any thread
    /// fan-out; only wall time changes. Larger chunks lengthen warm-start
    /// chains but reduce scheduling slack — tune per machine via the
    /// `bench` binary (`MHLA_SWEEP_CHUNK`), tracked in `BENCH_sweep.json`.
    pub chunk: usize,
}

impl Default for SweepOptions {
    fn default() -> Self {
        SweepOptions {
            warm_start: true,
            parallel: true,
            chunk: SWEEP_CHUNK,
        }
    }
}

/// Sweeps scratchpad capacities, resizing `layer` of `platform` to each of
/// `capacities` and running the full MHLA flow. Production path: shared
/// reuse analysis, warm starts, parallel chunks (see [`SweepOptions`]).
///
/// # Panics
///
/// Panics if `layer` is the off-chip layer (it cannot be resized).
pub fn sweep(
    program: &Program,
    platform: &Platform,
    layer: LayerId,
    capacities: &[u64],
    config: &MhlaConfig,
) -> Sweep {
    sweep_with(
        program,
        platform,
        layer,
        capacities,
        config,
        SweepOptions::default(),
    )
}

/// The pre-optimization reference sweep: strictly sequential, the reuse
/// analysis re-derived at every point, every candidate move re-priced with
/// the full `evaluate` oracle, no warm starts — the seed implementation,
/// frozen. Kept for validation and benchmarking; [`sweep`] must yield
/// identical Pareto fronts (see the equivalence tests).
pub fn sweep_cold(
    program: &Program,
    platform: &Platform,
    layer: LayerId,
    capacities: &[u64],
    config: &MhlaConfig,
) -> Sweep {
    let caps = clean_capacities(capacities);
    let points = caps
        .into_iter()
        .map(|capacity| {
            let pf = platform.with_layer_capacity(layer, capacity);
            let result = Mhla::new(program, &pf, config.clone()).run_reference();
            SweepPoint { capacity, result }
        })
        .collect();
    Sweep { points }
}

/// [`sweep`] with explicit [`SweepOptions`].
///
/// Implemented as the 1-axis degenerate case of [`sweep_grid_with`], so
/// the 1-D and N-D sweeps share one execution path: identical context
/// sharing, chunking and warm-start behavior by construction.
pub fn sweep_with(
    program: &Program,
    platform: &Platform,
    layer: LayerId,
    capacities: &[u64],
    config: &MhlaConfig,
    opts: SweepOptions,
) -> Sweep {
    let axis = GridAxis {
        layer,
        capacities: capacities.to_vec(),
    };
    let grid = sweep_grid_with(program, platform, &[axis], config, opts);
    Sweep {
        points: grid
            .points
            .into_iter()
            .map(|p| SweepPoint {
                capacity: p.capacities[0],
                result: p.result,
            })
            .collect(),
    }
}

fn clean_capacities(capacities: &[u64]) -> Vec<u64> {
    let mut caps: Vec<u64> = capacities.to_vec();
    caps.sort_unstable();
    caps.dedup();
    caps
}

/// One axis of a layer-size grid sweep: the on-chip layer to resize and
/// the capacities to visit on it (sorted and deduped before use).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct GridAxis {
    /// The on-chip layer this axis resizes.
    pub layer: LayerId,
    /// Capacities to visit, bytes.
    pub capacities: Vec<u64>,
}

impl GridAxis {
    /// Builds an axis.
    pub fn new(layer: LayerId, capacities: impl Into<Vec<u64>>) -> Self {
        GridAxis {
            layer,
            capacities: capacities.into(),
        }
    }
}

/// One point of a grid sweep: a capacity per axis plus the full MHLA
/// result on the platform resized to those capacities.
#[derive(Clone, PartialEq, Debug)]
pub struct GridPoint {
    /// Capacity per axis, parallel to [`GridSweep::layers`], bytes.
    pub capacities: Vec<u64>,
    /// The full MHLA result at this capacity vector.
    pub result: MhlaResult,
}

impl GridPoint {
    /// Static MHLA+TE cycles at this point.
    pub fn cycles(&self) -> u64 {
        self.result.mhla_te_cycles()
    }

    /// Memory energy at this point, picojoule.
    pub fn energy_pj(&self) -> f64 {
        self.result.mhla_energy_pj()
    }

    /// Total on-chip bytes of this point's capacity vector.
    pub fn total_capacity(&self) -> u64 {
        self.capacities.iter().sum()
    }
}

/// Result of [`sweep_grid`]: every point of the capacity grid, in
/// lexicographic order of the capacity vector (the last axis varies
/// fastest).
#[derive(Clone, PartialEq, Debug)]
pub struct GridSweep {
    /// The resized layer per axis, in axis order.
    pub layers: Vec<LayerId>,
    /// Evaluated points, lexicographic by capacity vector.
    pub points: Vec<GridPoint>,
}

impl GridSweep {
    /// Indices of the Pareto surface over (capacity vector, cycles): a
    /// point survives iff no other point dominates it — capacities all ≤,
    /// cycles ≤, and at least one strictly smaller. On a 1-axis grid this
    /// is exactly [`Sweep::pareto_cycles`].
    pub fn pareto_cycles(&self) -> Vec<usize> {
        dominance_front(&self.points, |p| p.cycles() as f64)
    }

    /// Indices of the Pareto surface over (capacity vector, energy).
    pub fn pareto_energy(&self) -> Vec<usize> {
        dominance_front(&self.points, |p| p.energy_pj())
    }

    /// The point with the fewest cycles (ties: smallest total capacity,
    /// then lexicographically smallest vector).
    pub fn best_cycles(&self) -> Option<&GridPoint> {
        self.points.iter().min_by(|a, b| {
            (a.cycles(), a.total_capacity(), &a.capacities).cmp(&(
                b.cycles(),
                b.total_capacity(),
                &b.capacities,
            ))
        })
    }

    /// The point with the least energy (ties as
    /// [`best_cycles`](Self::best_cycles)).
    pub fn best_energy(&self) -> Option<&GridPoint> {
        self.points.iter().min_by(|a, b| {
            (a.energy_pj(), a.total_capacity())
                .partial_cmp(&(b.energy_pj(), b.total_capacity()))
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.capacities.cmp(&b.capacities))
        })
    }
}

/// The multi-dimensional Pareto filter: point `i` survives iff no point
/// `j` has every capacity ≤ `i`'s, objective ≤ `i`'s, and is not the
/// exact same `(capacities, objective)` point.
///
/// Capacity vectors in a grid are unique, so for the 1-axis case (points
/// in ascending capacity order) this degenerates to "keep iff the
/// objective strictly improves on everything at smaller capacity" — the
/// exact filter of [`Sweep::pareto_cycles`] (asserted by the grid
/// equivalence tests). Implemented with the sort-based
/// [`pareto::front`]; `pareto::front_quadratic` keeps the seed's all-pairs
/// scan as the test oracle.
fn dominance_front(points: &[GridPoint], objective: impl Fn(&GridPoint) -> f64) -> Vec<usize> {
    let coords: Vec<Vec<f64>> = points
        .iter()
        .map(|p| {
            let mut c: Vec<f64> = p.capacities.iter().map(|&c| c as f64).collect();
            c.push(objective(p));
            c
        })
        .collect();
    pareto::front(&coords)
}

/// Cartesian product of the outer axes, lexicographic. An empty axis list
/// yields one empty prefix (the 1-axis degenerate case).
fn cartesian(axes: &[Vec<u64>]) -> Vec<Vec<u64>> {
    let mut out = vec![Vec::new()];
    for axis in axes {
        out = out
            .iter()
            .flat_map(|prefix| {
                axis.iter().map(move |&c| {
                    let mut p = prefix.clone();
                    p.push(c);
                    p
                })
            })
            .collect();
    }
    out
}

/// Sweeps an N-dimensional layer-size grid: for every point of the
/// Cartesian product of the axes' capacities, resizes the named layers of
/// `platform` and runs the full MHLA flow — the *joint* trade-off
/// exploration of a multi-layer hierarchy (e.g. L1×L2 on
/// [`Platform::three_level`]).
///
/// Production path: one shared [`ExplorationContext`] (reuse analysis,
/// program facts, TE caches, move space computed once), the innermost
/// axis processed in warm-started chunks, chunks scheduled across threads
/// (see [`SweepOptions`]). Each point's result is bit-identical to a cold
/// standalone [`Mhla::run`] on the same platform (the portfolio search
/// prefers the cold result on ties), and a 1-axis grid is exactly
/// [`sweep`] — both asserted by the equivalence tests.
///
/// # Panics
///
/// Panics if any axis names the off-chip layer or a layer out of range,
/// or if any capacity is zero.
pub fn sweep_grid(
    program: &Program,
    platform: &Platform,
    axes: &[GridAxis],
    config: &MhlaConfig,
) -> GridSweep {
    sweep_grid_with(program, platform, axes, config, SweepOptions::default())
}

/// [`sweep_grid`] with explicit [`SweepOptions`].
pub fn sweep_grid_with(
    program: &Program,
    platform: &Platform,
    axes: &[GridAxis],
    config: &MhlaConfig,
    opts: SweepOptions,
) -> GridSweep {
    let layers: Vec<LayerId> = axes.iter().map(|a| a.layer).collect();
    let axis_caps: Vec<Vec<u64>> = axes
        .iter()
        .map(|a| clean_capacities(&a.capacities))
        .collect();
    if axis_caps.is_empty() || axis_caps.iter().any(Vec::is_empty) {
        return GridSweep {
            layers,
            points: Vec::new(),
        };
    }

    // Everything capacity-independent — reuse analysis, program facts, TE
    // caches, candidate moves — is computed once here and borrowed by
    // every point.
    let ctx = ExplorationContext::new(program, platform, config.clone());

    // The last axis is the warm-start dimension: a task is one chunk of
    // it under one fixed prefix of the outer axes. Tasks are independent,
    // so their parallel schedule cannot affect results.
    let (outer, innermost) = axis_caps.split_at(axis_caps.len() - 1);
    let innermost = &innermost[0];
    let prefixes = cartesian(outer);
    let chunk = opts.chunk.max(1).min(innermost.len());
    let tasks: Vec<(&[u64], &[u64])> = prefixes
        .iter()
        .flat_map(|p| innermost.chunks(chunk).map(move |c| (p.as_slice(), c)))
        .collect();

    let run_task = |task: &(&[u64], &[u64])| -> Vec<GridPoint> {
        let (prefix, caps) = *task;
        let mut warm: Option<Assignment> = None;
        caps.iter()
            .map(|&cap| {
                let mut capacities = prefix.to_vec();
                capacities.push(cap);
                let sizes: Vec<(LayerId, u64)> = layers
                    .iter()
                    .copied()
                    .zip(capacities.iter().copied())
                    .collect();
                let pf = platform.with_layer_capacities(&sizes);
                let mhla = Mhla::with_context(&ctx, &pf);
                let result = mhla.run_with(
                    if opts.warm_start { warm.as_ref() } else { None },
                    Some(ctx.moves()),
                );
                if opts.warm_start {
                    warm = Some(result.assignment.clone());
                }
                GridPoint { capacities, result }
            })
            .collect()
    };

    let per_task: Vec<Vec<GridPoint>> = if opts.parallel {
        tasks.par_iter().map(run_task).collect()
    } else {
        tasks.iter().map(run_task).collect()
    };
    GridSweep {
        layers,
        points: per_task.into_iter().flatten().collect(),
    }
}

/// Bookkeeping of one [`sweep_grid_pruned`] run.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct PruneStats {
    /// Points of the full Cartesian product.
    pub candidates: usize,
    /// Points actually evaluated (searched).
    pub evaluated: usize,
    /// Points skipped by the saturation rule.
    pub skipped_saturated: usize,
    /// Points skipped by the cost-floor rule.
    pub skipped_floor: usize,
}

impl PruneStats {
    /// Points skipped without evaluation.
    pub fn skipped(&self) -> usize {
        self.skipped_saturated + self.skipped_floor
    }

    /// Fraction of the Cartesian product skipped (0 on an empty grid).
    pub fn skip_ratio(&self) -> f64 {
        self.skipped() as f64 / self.candidates.max(1) as f64
    }
}

/// Result of [`sweep_grid_pruned`]: the evaluated subset of the grid (in
/// lexicographic order, like [`GridSweep`]) plus the prune bookkeeping.
#[derive(Clone, PartialEq, Debug)]
pub struct PrunedGridSweep {
    /// The evaluated points. Skipped points are absent, but the Pareto
    /// surfaces ([`GridSweep::pareto_cycles`] / `pareto_energy`) are
    /// point-for-point those of the exhaustive grid.
    pub sweep: GridSweep,
    /// How many points were evaluated vs skipped, and why. Identical for
    /// every [`PruneOptions`] — the wave structure changes wall time only.
    pub stats: PruneStats,
    /// Dominance waves executed (each wave's cold evaluations run
    /// concurrently under the parallel mode; a sequential run with
    /// `wave == 1` degenerates to one wave per evaluated point).
    pub waves: usize,
    /// Wave members evaluated speculatively whose results were discarded
    /// at commit time because an earlier member of the same wave enabled a
    /// skip — the (bounded) price of evaluating a wave before committing
    /// it. Always `0` when `wave == 1`.
    pub speculative_evals: usize,
}

/// Default number of points one dominance wave of
/// [`sweep_grid_pruned_with`] may evaluate concurrently (the default of
/// [`PruneOptions::wave`]). Fixed — never derived from the machine's core
/// count — so wave boundaries, and thus the speculation bookkeeping, are
/// machine-independent (skip decisions and frontiers are invariant under
/// the wave size anyway; see [`PruneOptions`]).
pub const PRUNE_WAVE: usize = 16;

/// Tuning knobs for [`sweep_grid_pruned_with`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct PruneOptions {
    /// Evaluate each wave's points on the `rayon` thread pool. Skip
    /// decisions commit in lexicographic order either way, so results,
    /// frontiers and [`PruneStats`] are identical with and without
    /// parallelism — only wall time changes.
    pub parallel: bool,
    /// Maximum points per dominance wave (clamped to ≥ 1; default
    /// [`PRUNE_WAVE`]). `wave == 1` is exactly the sequential
    /// point-by-point loop. Larger waves expose more parallelism but can
    /// evaluate a few points speculatively
    /// ([`PrunedGridSweep::speculative_evals`]).
    pub wave: usize,
}

impl Default for PruneOptions {
    fn default() -> Self {
        PruneOptions {
            parallel: true,
            wave: PRUNE_WAVE,
        }
    }
}

/// `q ≤ p` in every coordinate without being the same vector.
fn caps_dominate(q: &[u64], p: &[u64]) -> bool {
    q != p && q.iter().zip(p).all(|(a, b)| a <= b)
}

/// The score-perturbation budget the growth from capacity `from` to
/// capacity `to` spends at one scratchpad layer: its *write-energy* delta
/// — the unit the gain-bound sensitivities are expressed in (reads scale
/// as `δw / 1.2` and bursts as `δw` exactly, both folded into
/// [`ArrayContribution::energy_sensitivity`](crate::ArrayContribution)).
/// Zero inside the sub-reference clamp region, where growth leaves the
/// whole cost model bit-identical.
fn scratchpad_energy_delta_pj(from: u64, to: u64) -> f64 {
    (sram_write_pj(to) - sram_write_pj(from)).max(0.0)
}

/// Every evaluated point: capacities and reported (cycles, energy) — the
/// incumbents of the cost-floor rule.
struct Evaluated {
    capacities: Vec<u64>,
    cycles: u64,
    energy_pj: f64,
}

/// Rule-1 dominator candidates: evaluated points with at least one
/// *growable* axis (per-axis, precomputed from the run's constrained-layer
/// mask) plus the run's recorded gain-bound data. Points whose run was
/// bound on every axis can never justify a skip and never enter this
/// list, which keeps the per-candidate scan short — on fully
/// capacity-bound apps it is empty. (Both scans are still linear in their
/// list; a spatial index over the capacity lattice would be the next step
/// for 10⁵+ grids.)
struct Replayable {
    capacities: Vec<u64>,
    growable: Vec<bool>,
    stats: RunStats,
}

impl Replayable {
    /// Whether this evaluated run provably replays (and therefore
    /// dominates on both surfaces) at the grown point `caps`: capacity
    /// dominance, growth confined to never-binding axes inside one
    /// scratchpad latency class, and the per-layer write-energy deltas
    /// within the run's recorded gain-bound budget
    /// ([`RunStats::allows_energy_growth`]).
    fn replays_at(&self, caps: &[u64], layers: &[LayerId], energy_weight: f64) -> bool {
        if !caps_dominate(&self.capacities, caps) {
            return false;
        }
        for ((&qc, &pc), &growable) in self.capacities.iter().zip(caps).zip(&self.growable) {
            if qc == pc {
                continue;
            }
            if !growable || sram_access_cycles(qc) != sram_access_cycles(pc) {
                return false;
            }
        }
        self.stats.allows_energy_growth(
            self.capacities
                .iter()
                .zip(caps)
                .enumerate()
                .filter(|(_, (qc, pc))| qc != pc)
                .map(|(axis, (&qc, &pc))| (layers[axis], scratchpad_energy_delta_pj(qc, pc))),
            energy_weight,
        )
    }
}

/// Why a candidate point was skipped without evaluation.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum SkipRule {
    Saturated,
    Floor,
}

impl PruneStats {
    fn record(&mut self, rule: SkipRule) {
        match rule {
            SkipRule::Saturated => self.skipped_saturated += 1,
            SkipRule::Floor => self.skipped_floor += 1,
        }
    }
}

/// The sub-exhaustive grid sweep: like [`sweep_grid`], but capacity
/// vectors that provably cannot contribute a Pareto point are skipped
/// *without running the search*. Lossless: every skipped point is
/// dominated on both the cycles and the energy surface by an evaluated
/// point, so [`GridSweep::pareto_cycles`] / `pareto_energy` of the result
/// select exactly the frontier of the exhaustive grid
/// (`tests/prune_equivalence.rs` asserts this bit-for-bit on all nine
/// applications, under all three objectives).
///
/// Every evaluated point runs *cold* (no warm start), so each result is
/// bit-identical to a standalone [`Mhla::run`] on the same platform — the
/// canonical semantics the losslessness proof and the equivalence harness
/// build on. Two prune rules apply, both conservative:
///
/// 1. **Per-layer saturation with gain bounds.** Capacities enter the
///    greedy search three ways: *feasibility* (monotone — anything that
///    fits keeps fitting as layers grow), *per-access cycles* (constant
///    inside one scratchpad latency class), and *per-access energies*
///    (the clamped √-capacity scaling law). Each evaluated run records
///    which layers actually *bound* it ([`RunStats`]):
///    the first-overflow layer of every failed greedy probe, every layer
///    at which TE rejected an extension, every layer that turned an array
///    away during direct placement — plus the run's minimum *decision
///    margin* per energy-sensitive operation
///    ([`RunStats::gain_margin_rates`](crate::RunStats::gain_margin_rates)),
///    an instrumented gain bound derived from the cost model's cached
///    access and transfer-volume totals. If point `p` differs from an
///    evaluated point `q ≤ p` only on layers that never bound `q`'s run,
///    each staying inside its latency class, and the summed per-layer
///    energy deltas (times the objective's energy weight) stay strictly
///    below `q`'s margin, the run at `p` replays `q`'s decision for
///    decision — failed probes still fail, successful ones still
///    succeed, no gain comparison can flip — yielding the same
///    assignment and TE schedule, hence *equal cycles* and, because
///    per-access energies are monotone in capacity, *no lower energy*.
///    `p` is dominated by `q` on both surfaces and is skipped. Under the
///    cycles objective the energy weight is zero and the margin test is
///    vacuous (the classic rule); under the energy/weighted objectives it
///    arms wherever the margins allow — always for growth inside the
///    sub-reference energy-clamp region (zero delta), and beyond it
///    whenever no decision of `q`'s run sat close to a tie.
/// 2. **Cost floor.** [`CostModel::cost_floor`](crate::CostModel::cost_floor)
///    bounds any assignment's cycles and energy from below using only the
///    point's layer parameters. If some evaluated point with
///    componentwise-smaller capacities already meets the floor on cycles
///    *and* some evaluated point does so on energy, the point cannot beat
///    either incumbent and is skipped.
///
/// Both rules only ever skip points dominated by an *evaluated* point, so
/// dominance transitivity keeps every surface intact (anything a skipped
/// point would dominate is already dominated by its dominator). When the
/// preconditions of rule 1 do not hold (a non-greedy strategy, or margins
/// too tight for the requested growth), the rule disarms itself and the
/// sweep degrades towards exhaustive — never towards a wrong frontier.
///
/// # Frontier waves
///
/// The loop runs in *dominance waves* ([`PruneOptions`]): each wave
/// collects, in lexicographic order, a run of consecutive points that are
/// not skippable given the committed evaluations (stopping at the wave
/// cap and at the first skippable point), evaluates the wave's cold
/// searches — in parallel under `rayon` when [`PruneOptions::parallel`]
/// is set — and then commits the results in lexicographic order,
/// re-applying the skip rules as it goes: a member whose skip was enabled
/// by an earlier member of the same wave is recorded as skipped and its
/// speculative evaluation discarded. Because a point is only
/// skip-*finalized* when every lexicographically earlier point has been
/// committed, each decision sees exactly the evaluated set the sequential
/// point-by-point loop would have seen: skip decisions, [`PruneStats`],
/// evaluated points and both frontiers are **identical for every wave
/// size and thread fan-out** — only wall time (and the
/// [`PrunedGridSweep::speculative_evals`] bookkeeping) changes. This is
/// the default path; use [`sweep_grid_pruned_with`] to tune.
///
/// # Panics
///
/// Panics if any axis names the off-chip layer or a layer out of range,
/// or if any capacity is zero.
pub fn sweep_grid_pruned(
    program: &Program,
    platform: &Platform,
    axes: &[GridAxis],
    config: &MhlaConfig,
) -> PrunedGridSweep {
    sweep_grid_pruned_with(program, platform, axes, config, PruneOptions::default())
}

/// [`sweep_grid_pruned`] with explicit [`PruneOptions`].
pub fn sweep_grid_pruned_with(
    program: &Program,
    platform: &Platform,
    axes: &[GridAxis],
    config: &MhlaConfig,
    opts: PruneOptions,
) -> PrunedGridSweep {
    let layers: Vec<LayerId> = axes.iter().map(|a| a.layer).collect();
    let axis_caps: Vec<Vec<u64>> = axes
        .iter()
        .map(|a| clean_capacities(&a.capacities))
        .collect();
    if axis_caps.is_empty() || axis_caps.iter().any(Vec::is_empty) {
        return PrunedGridSweep {
            sweep: GridSweep {
                layers,
                points: Vec::new(),
            },
            stats: PruneStats::default(),
            waves: 0,
            speculative_evals: 0,
        };
    }

    let ctx = ExplorationContext::new(program, platform, config.clone());

    // The saturation rule needs the instrumented greedy search (the only
    // strategy recording constraint masks and decision margins). The
    // objective no longer disarms it: the energy weight below scales the
    // gain-bound test, which is vacuous for cycles (weight 0) and
    // margin-guarded otherwise.
    let saturation_armed = config.strategy == SearchStrategy::Greedy;
    // The signed energy weight: zero makes the gain landscape exactly
    // capacity-independent (the classic cycles-only rule falls out as
    // the degenerate case); a negative weight makes
    // `RunStats::allows_energy_growth` refuse every nonzero perturbation
    // (the one-sided margin rates do not cover that direction), leaving
    // only bit-identical zero-delta replays.
    let energy_weight = config.objective.energy_weight();
    let wave_cap = opts.wave.max(1);

    let order = cartesian(&axis_caps);
    let mut stats = PruneStats {
        candidates: order.len(),
        ..PruneStats::default()
    };
    let mut seen: Vec<Evaluated> = Vec::new();
    let mut replayable: Vec<Replayable> = Vec::new();
    let mut points: Vec<GridPoint> = Vec::new();
    let mut waves = 0usize;
    let mut speculative_evals = 0usize;

    // Per-candidate cost floors, memoized: a point's floor depends only
    // on its capacities, but its skip rules can run several times (wave
    // re-examinations, the commit re-check), and building the resized
    // platform per check is pure allocation waste.
    let mut floors: Vec<Option<crate::cost::CostFloor>> = vec![None; order.len()];
    // The skip rules against the *committed* evaluations. Rule 1 first,
    // rule 2 second (the bookkeeping attributes a skip to the first rule
    // that fires); the rule-2 energy scan only runs once the cycles scan
    // has found a dominator — a miss on either side keeps the point.
    let skip_rule = |i: usize,
                     seen: &[Evaluated],
                     replayable: &[Replayable],
                     floors: &mut [Option<crate::cost::CostFloor>]| {
        let caps: &[u64] = &order[i];
        if saturation_armed
            && replayable
                .iter()
                .any(|q| q.replays_at(caps, &layers, energy_weight))
        {
            return Some(SkipRule::Saturated);
        }
        let floor = *floors[i].get_or_insert_with(|| {
            let sizes: Vec<(LayerId, u64)> =
                layers.iter().copied().zip(caps.iter().copied()).collect();
            ctx.cost_model(&platform.with_layer_capacities(&sizes))
                .cost_floor()
        });
        let floor_dominated = seen
            .iter()
            .any(|q| caps_dominate(&q.capacities, caps) && q.cycles <= floor.cycles)
            && seen
                .iter()
                .any(|q| caps_dominate(&q.capacities, caps) && q.energy_pj <= floor.energy_pj);
        floor_dominated.then_some(SkipRule::Floor)
    };
    let evaluate = |caps: &[u64]| -> (MhlaResult, RunStats) {
        let sizes: Vec<(LayerId, u64)> = layers.iter().copied().zip(caps.iter().copied()).collect();
        let pf = platform.with_layer_capacities(&sizes);
        Mhla::with_context(&ctx, &pf).run_with_stats(None, Some(ctx.moves()))
    };

    let mut next = 0usize;
    while next < order.len() {
        // --- Wave selection: walk the lexicographic order from the
        // cursor. While the wave is empty, every earlier point has been
        // committed, so a skip decision here sees exactly the sequential
        // loop's evaluated set and is final. Once a member is selected,
        // later skips can no longer be finalized (the member's own result
        // is pending) — the wave stops there and the point is re-examined
        // next wave. Points merely capacity-dominated by a pending member
        // do join the wave; if the member's commit turns out to enable
        // their skip, the commit pass below discards their evaluation as
        // speculative (measured: a handful per app on the default grid).
        let mut wave: Vec<usize> = Vec::new();
        while next < order.len() && wave.len() < wave_cap {
            match skip_rule(next, &seen, &replayable, &mut floors) {
                Some(rule) => {
                    if !wave.is_empty() {
                        break;
                    }
                    stats.record(rule);
                    next += 1;
                }
                None => {
                    wave.push(next);
                    next += 1;
                }
            }
        }
        if wave.is_empty() {
            continue; // the scan consumed pure skips up to the end
        }
        waves += 1;

        // --- Cold evaluations of the wave, order-preserving.
        let runs: Vec<(MhlaResult, RunStats)> = if opts.parallel && wave.len() > 1 {
            wave.par_iter().map(|&i| evaluate(&order[i])).collect()
        } else {
            wave.iter().map(|&i| evaluate(&order[i])).collect()
        };

        // --- Deterministic commit in lexicographic order. A member whose
        // skip rules now fire (an earlier member's commit enabled them)
        // is recorded as skipped and its speculative result discarded —
        // exactly the sequential decision, since at this position every
        // earlier point is committed.
        let mut committed_in_wave = false;
        for (&i, (result, run)) in wave.iter().zip(runs) {
            let capacities = order[i].clone();
            if committed_in_wave {
                if let Some(rule) = skip_rule(i, &seen, &replayable, &mut floors) {
                    stats.record(rule);
                    speculative_evals += 1;
                    continue;
                }
            }
            if saturation_armed {
                let growable: Vec<bool> = layers.iter().map(|&l| run.allows_growth_of(l)).collect();
                if growable.iter().any(|&g| g) {
                    replayable.push(Replayable {
                        capacities: capacities.clone(),
                        growable,
                        stats: run,
                    });
                }
            }
            seen.push(Evaluated {
                capacities: capacities.clone(),
                cycles: result.mhla_te_cycles(),
                energy_pj: result.mhla_energy_pj(),
            });
            stats.evaluated += 1;
            points.push(GridPoint { capacities, result });
            committed_in_wave = true;
        }
    }

    PrunedGridSweep {
        sweep: GridSweep { layers, points },
        stats,
        waves,
        speculative_evals,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mhla_ir::{ElemType, ProgramBuilder};

    fn blocked() -> Program {
        let mut b = ProgramBuilder::new("blocked");
        let data = b.array("data", &[4096], ElemType::U8);
        let lb = b.begin_loop("blk", 0, 16, 1);
        let lr = b.begin_loop("rep", 0, 8, 1);
        let li = b.begin_loop("i", 0, 256, 1);
        let (blk, i) = (b.var(lb), b.var(li));
        b.stmt("use")
            .read(data, vec![blk * 256 + i])
            .compute_cycles(2)
            .finish();
        b.end_loop();
        b.end_loop();
        b.end_loop();
        let _ = lr;
        b.finish()
    }

    #[test]
    fn sweep_is_monotone_enough_and_pareto_is_sane() {
        let p = blocked();
        let pf = Platform::embedded_default(1024);
        let caps: Vec<u64> = vec![32, 64, 128, 256, 512, 1024, 4096];
        let s = sweep(&p, &pf, LayerId(1), &caps, &MhlaConfig::default());
        assert_eq!(s.points.len(), caps.len());
        // Capacities ascend.
        for w in s.points.windows(2) {
            assert!(w[0].capacity < w[1].capacity);
        }
        // The Pareto front is non-empty, ascending in capacity and strictly
        // descending in cycles.
        let front = s.pareto_cycles();
        assert!(!front.is_empty());
        for w in front.windows(2) {
            assert!(s.points[w[0]].cycles() > s.points[w[1]].cycles());
        }
        // Best-cycles point beats the smallest-capacity point.
        let best = s.best_cycles().unwrap();
        assert!(best.cycles() <= s.points[0].cycles());
    }

    #[test]
    fn bigger_scratchpads_never_hurt_cycles_on_the_front() {
        let p = blocked();
        let pf = Platform::embedded_default(1024);
        let s = sweep(
            &p,
            &pf,
            LayerId(1),
            &default_capacities(),
            &MhlaConfig::default(),
        );
        let front = s.pareto_energy();
        for w in front.windows(2) {
            assert!(s.points[w[0]].energy_pj() > s.points[w[1]].energy_pj());
        }
    }

    #[test]
    fn duplicate_capacities_are_deduped() {
        let p = blocked();
        let pf = Platform::embedded_default(1024);
        let s = sweep(
            &p,
            &pf,
            LayerId(1),
            &[256, 256, 512],
            &MhlaConfig::default(),
        );
        assert_eq!(s.points.len(), 2);
    }

    #[test]
    fn grid_covers_the_cartesian_product_in_lexicographic_order() {
        let p = blocked();
        let pf = Platform::three_level(4096, 512);
        let axes = [
            GridAxis::new(LayerId(1), vec![1024u64, 4096]),
            GridAxis::new(LayerId(2), vec![512u64, 128, 256]),
        ];
        let g = sweep_grid(&p, &pf, &axes, &MhlaConfig::default());
        assert_eq!(g.layers, vec![LayerId(1), LayerId(2)]);
        assert_eq!(g.points.len(), 6);
        let caps: Vec<Vec<u64>> = g.points.iter().map(|p| p.capacities.clone()).collect();
        assert_eq!(
            caps,
            vec![
                vec![1024, 128],
                vec![1024, 256],
                vec![1024, 512],
                vec![4096, 128],
                vec![4096, 256],
                vec![4096, 512],
            ],
            "axis capacities sorted, last axis fastest"
        );
    }

    #[test]
    fn grid_points_match_standalone_runs() {
        let p = blocked();
        let pf = Platform::three_level(4096, 512);
        let axes = [
            GridAxis::new(LayerId(1), vec![1024u64, 4096]),
            GridAxis::new(LayerId(2), vec![128u64, 512]),
        ];
        let g = sweep_grid(&p, &pf, &axes, &MhlaConfig::default());
        for point in &g.points {
            let standalone = pf.with_layer_capacities(&[
                (LayerId(1), point.capacities[0]),
                (LayerId(2), point.capacities[1]),
            ]);
            let cold = crate::Mhla::new(&p, &standalone, MhlaConfig::default()).run();
            assert_eq!(point.result, cold, "at {:?}", point.capacities);
        }
    }

    #[test]
    fn single_axis_grid_is_exactly_the_sweep() {
        let p = blocked();
        let pf = Platform::embedded_default(1024);
        let caps: Vec<u64> = vec![64, 128, 512, 2048];
        let s = sweep(&p, &pf, LayerId(1), &caps, &MhlaConfig::default());
        let g = sweep_grid(
            &p,
            &pf,
            &[GridAxis::new(LayerId(1), caps)],
            &MhlaConfig::default(),
        );
        assert_eq!(g.points.len(), s.points.len());
        for (gp, sp) in g.points.iter().zip(&s.points) {
            assert_eq!(gp.capacities, vec![sp.capacity]);
            assert_eq!(gp.result, sp.result);
        }
        assert_eq!(g.pareto_cycles(), s.pareto_cycles());
        assert_eq!(g.pareto_energy(), s.pareto_energy());
    }

    #[test]
    fn grid_pareto_surface_is_mutually_non_dominated() {
        let p = blocked();
        let pf = Platform::three_level(4096, 512);
        let axes = [
            GridAxis::new(LayerId(1), vec![512u64, 1024, 4096]),
            GridAxis::new(LayerId(2), vec![64u64, 128, 512]),
        ];
        let g = sweep_grid(&p, &pf, &axes, &MhlaConfig::default());
        let front = g.pareto_cycles();
        assert!(!front.is_empty());
        for &i in &front {
            for &j in &front {
                if i == j {
                    continue;
                }
                let dominated = g.points[j]
                    .capacities
                    .iter()
                    .zip(&g.points[i].capacities)
                    .all(|(cj, ci)| cj <= ci)
                    && g.points[j].cycles() <= g.points[i].cycles()
                    && (g.points[j].capacities != g.points[i].capacities
                        || g.points[j].cycles() < g.points[i].cycles());
                assert!(!dominated, "{i} dominated by {j} on the front");
            }
        }
        // The best-cycles point is always on the cycle front.
        let best = g.best_cycles().unwrap();
        assert!(front.iter().any(|&i| g.points[i].result == best.result));
    }

    #[test]
    fn grid_handles_degenerate_axis_lists() {
        let p = blocked();
        let pf = Platform::three_level(4096, 512);
        let empty = sweep_grid(&p, &pf, &[], &MhlaConfig::default());
        assert!(empty.points.is_empty());
        let empty_axis = sweep_grid(
            &p,
            &pf,
            &[
                GridAxis::new(LayerId(1), vec![1024u64]),
                GridAxis::new(LayerId(2), Vec::new()),
            ],
            &MhlaConfig::default(),
        );
        assert!(empty_axis.points.is_empty());
    }

    use mhla_ir::Program;
}
