//! Trade-off exploration over on-chip layer sizes.
//!
//! The paper's §1 claim — "performs a thorough trade-off exploration for
//! different memory layer sizes … able to find all the optimal trade-off
//! points" — maps to a capacity sweep: run both MHLA steps for every
//! scratchpad size in a range, then keep the Pareto-optimal
//! (capacity, cycles) and (capacity, energy) points.
//!
//! Two execution paths produce the same `Sweep`:
//!
//! * [`sweep`] — the production path: the reuse analysis is computed once
//!   and shared, capacities are processed in fixed-size chunks scheduled
//!   across threads with `rayon`, and within a chunk each point
//!   warm-starts the greedy search from its predecessor's assignment.
//! * [`sweep_cold`] — the reference path: strictly sequential, every point
//!   re-analyzed and searched from scratch (the pre-optimization
//!   behavior). The `tradeoff` bench and the equivalence tests compare
//!   the two; their Pareto fronts must be identical.

use rayon::prelude::*;

use mhla_hierarchy::{LayerId, Platform};
use mhla_ir::Program;
use mhla_reuse::ReuseAnalysis;

use crate::driver::{Mhla, MhlaResult};
use crate::types::MhlaConfig;

/// One point of the capacity sweep.
#[derive(Clone, PartialEq, Debug)]
pub struct SweepPoint {
    /// On-chip scratchpad capacity of this point, bytes.
    pub capacity: u64,
    /// The full MHLA result at this capacity.
    pub result: MhlaResult,
}

impl SweepPoint {
    /// Static MHLA+TE cycles at this point.
    pub fn cycles(&self) -> u64 {
        self.result.mhla_te_cycles()
    }

    /// Memory energy at this point, picojoule.
    pub fn energy_pj(&self) -> f64 {
        self.result.mhla_energy_pj()
    }
}

/// Result of [`sweep`]: all evaluated points in ascending capacity order.
#[derive(Clone, PartialEq, Debug)]
pub struct Sweep {
    /// Evaluated points, ascending capacity.
    pub points: Vec<SweepPoint>,
}

impl Sweep {
    /// Indices of the Pareto-optimal (capacity, cycles) points: no other
    /// point has both smaller-or-equal capacity and strictly fewer cycles.
    pub fn pareto_cycles(&self) -> Vec<usize> {
        pareto_indices(&self.points, |p| p.cycles() as f64)
    }

    /// Indices of the Pareto-optimal (capacity, energy) points.
    pub fn pareto_energy(&self) -> Vec<usize> {
        pareto_indices(&self.points, |p| p.energy_pj())
    }

    /// The point with the fewest cycles (ties: smallest capacity).
    pub fn best_cycles(&self) -> Option<&SweepPoint> {
        self.points
            .iter()
            .min_by(|a, b| (a.cycles(), a.capacity).cmp(&(b.cycles(), b.capacity)))
    }

    /// The point with the least energy (ties: smallest capacity).
    pub fn best_energy(&self) -> Option<&SweepPoint> {
        self.points.iter().min_by(|a, b| {
            (a.energy_pj(), a.capacity)
                .partial_cmp(&(b.energy_pj(), b.capacity))
                .unwrap_or(std::cmp::Ordering::Equal)
        })
    }
}

/// Pareto filter for points sorted by ascending capacity: keep a point iff
/// its objective strictly improves on everything at smaller-or-equal
/// capacity.
fn pareto_indices(points: &[SweepPoint], objective: impl Fn(&SweepPoint) -> f64) -> Vec<usize> {
    let mut out = Vec::new();
    let mut best = f64::INFINITY;
    for (i, p) in points.iter().enumerate() {
        let v = objective(p);
        if v < best {
            best = v;
            out.push(i);
        }
    }
    out
}

/// Default capacity grid: powers of two from 128 B to 128 KiB.
pub fn default_capacities() -> Vec<u64> {
    (7..=17).map(|e| 1u64 << e).collect()
}

/// How many consecutive capacity points one parallel task processes.
///
/// Within a chunk, points after the first warm-start from their
/// predecessor; chunks are independent, so this is also the granularity of
/// the `rayon` fan-out. Fixed (instead of `capacities / threads`) so sweep
/// results never depend on the machine's core count.
pub const SWEEP_CHUNK: usize = 4;

/// Tuning knobs for [`sweep_with`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct SweepOptions {
    /// Warm-start each point (within a chunk) from its predecessor's
    /// assignment. Applies to the greedy strategy only.
    pub warm_start: bool,
    /// Process chunks of capacities on a thread pool.
    pub parallel: bool,
    /// Points per sequential chunk (clamped to ≥ 1).
    pub chunk: usize,
}

impl Default for SweepOptions {
    fn default() -> Self {
        SweepOptions {
            warm_start: true,
            parallel: true,
            chunk: SWEEP_CHUNK,
        }
    }
}

/// Sweeps scratchpad capacities, resizing `layer` of `platform` to each of
/// `capacities` and running the full MHLA flow. Production path: shared
/// reuse analysis, warm starts, parallel chunks (see [`SweepOptions`]).
///
/// # Panics
///
/// Panics if `layer` is the off-chip layer (it cannot be resized).
pub fn sweep(
    program: &Program,
    platform: &Platform,
    layer: LayerId,
    capacities: &[u64],
    config: &MhlaConfig,
) -> Sweep {
    sweep_with(
        program,
        platform,
        layer,
        capacities,
        config,
        SweepOptions::default(),
    )
}

/// The pre-optimization reference sweep: strictly sequential, the reuse
/// analysis re-derived at every point, every candidate move re-priced with
/// the full `evaluate` oracle, no warm starts — the seed implementation,
/// frozen. Kept for validation and benchmarking; [`sweep`] must yield
/// identical Pareto fronts (see the equivalence tests).
pub fn sweep_cold(
    program: &Program,
    platform: &Platform,
    layer: LayerId,
    capacities: &[u64],
    config: &MhlaConfig,
) -> Sweep {
    let caps = clean_capacities(capacities);
    let points = caps
        .into_iter()
        .map(|capacity| {
            let pf = platform.with_layer_capacity(layer, capacity);
            let result = Mhla::new(program, &pf, config.clone()).run_reference();
            SweepPoint { capacity, result }
        })
        .collect();
    Sweep { points }
}

/// [`sweep`] with explicit [`SweepOptions`].
pub fn sweep_with(
    program: &Program,
    platform: &Platform,
    layer: LayerId,
    capacities: &[u64],
    config: &MhlaConfig,
    opts: SweepOptions,
) -> Sweep {
    let caps = clean_capacities(capacities);
    if caps.is_empty() {
        return Sweep { points: Vec::new() };
    }
    // The reuse analysis and the candidate-move space depend only on the
    // program (and the platform's shape, not its capacities): compute once,
    // share across every capacity point.
    let reuse = ReuseAnalysis::analyze(program);
    let moves = {
        let classes = crate::classify::classify_arrays(program, &config.class_overrides);
        let model = crate::cost::CostModel::new(program, platform, &reuse, classes);
        crate::assign::enumerate_moves(&model, config)
    };
    let chunk = opts.chunk.max(1).min(caps.len());
    let chunks: Vec<&[u64]> = caps.chunks(chunk).collect();

    let run_chunk = |chunk: &&[u64]| -> Vec<SweepPoint> {
        let mut warm: Option<crate::types::Assignment> = None;
        chunk
            .iter()
            .map(|&capacity| {
                let pf = platform.with_layer_capacity(layer, capacity);
                let mhla = Mhla::with_reuse_ref(program, &pf, config.clone(), &reuse);
                let result = mhla.run_with(
                    if opts.warm_start { warm.as_ref() } else { None },
                    Some(&moves),
                );
                if opts.warm_start {
                    warm = Some(result.assignment.clone());
                }
                SweepPoint { capacity, result }
            })
            .collect()
    };

    let per_chunk: Vec<Vec<SweepPoint>> = if opts.parallel {
        chunks.par_iter().map(run_chunk).collect()
    } else {
        chunks.iter().map(run_chunk).collect()
    };
    Sweep {
        points: per_chunk.into_iter().flatten().collect(),
    }
}

fn clean_capacities(capacities: &[u64]) -> Vec<u64> {
    let mut caps: Vec<u64> = capacities.to_vec();
    caps.sort_unstable();
    caps.dedup();
    caps
}

#[cfg(test)]
mod tests {
    use super::*;
    use mhla_ir::{ElemType, ProgramBuilder};

    fn blocked() -> Program {
        let mut b = ProgramBuilder::new("blocked");
        let data = b.array("data", &[4096], ElemType::U8);
        let lb = b.begin_loop("blk", 0, 16, 1);
        let lr = b.begin_loop("rep", 0, 8, 1);
        let li = b.begin_loop("i", 0, 256, 1);
        let (blk, i) = (b.var(lb), b.var(li));
        b.stmt("use")
            .read(data, vec![blk * 256 + i])
            .compute_cycles(2)
            .finish();
        b.end_loop();
        b.end_loop();
        b.end_loop();
        let _ = lr;
        b.finish()
    }

    #[test]
    fn sweep_is_monotone_enough_and_pareto_is_sane() {
        let p = blocked();
        let pf = Platform::embedded_default(1024);
        let caps: Vec<u64> = vec![32, 64, 128, 256, 512, 1024, 4096];
        let s = sweep(&p, &pf, LayerId(1), &caps, &MhlaConfig::default());
        assert_eq!(s.points.len(), caps.len());
        // Capacities ascend.
        for w in s.points.windows(2) {
            assert!(w[0].capacity < w[1].capacity);
        }
        // The Pareto front is non-empty, ascending in capacity and strictly
        // descending in cycles.
        let front = s.pareto_cycles();
        assert!(!front.is_empty());
        for w in front.windows(2) {
            assert!(s.points[w[0]].cycles() > s.points[w[1]].cycles());
        }
        // Best-cycles point beats the smallest-capacity point.
        let best = s.best_cycles().unwrap();
        assert!(best.cycles() <= s.points[0].cycles());
    }

    #[test]
    fn bigger_scratchpads_never_hurt_cycles_on_the_front() {
        let p = blocked();
        let pf = Platform::embedded_default(1024);
        let s = sweep(
            &p,
            &pf,
            LayerId(1),
            &default_capacities(),
            &MhlaConfig::default(),
        );
        let front = s.pareto_energy();
        for w in front.windows(2) {
            assert!(s.points[w[0]].energy_pj() > s.points[w[1]].energy_pj());
        }
    }

    #[test]
    fn duplicate_capacities_are_deduped() {
        let p = blocked();
        let pf = Platform::embedded_default(1024);
        let s = sweep(
            &p,
            &pf,
            LayerId(1),
            &[256, 256, 512],
            &MhlaConfig::default(),
        );
        assert_eq!(s.points.len(), 2);
    }

    use mhla_ir::Program;
}
