//! Reusable per-thread evaluation workspaces.
//!
//! A sweep fans the greedy search out over 10⁵+ grid points; every heap
//! allocation inside one evaluation is multiplied by the whole lattice
//! (and, under `mhla serve`, by the whole worker pool). The
//! [`EvalWorkspace`] owns every scratch buffer one evaluation needs — the
//! per-move trial cache, the contender/sensitivity buffers of the greedy
//! loop, the [`IncPool`] feeding the incremental evaluator, and the spare
//! assignments the portfolio legs start from — so steady-state evaluation
//! reuses allocations across points instead of rebuilding them.
//!
//! **Bit-identity invariant:** every buffer is fully reset before use, so
//! evaluating through a warm (reused) workspace produces byte-for-byte
//! the result of a fresh `EvalWorkspace::default()` — which in turn is
//! byte-for-byte the historical allocating path. The equivalence
//! proptests in `crates/core/tests/` and `tests/sweep_equivalence.rs`
//! pin this.

use mhla_hierarchy::LayerId;
use mhla_lifetime::Resident;

use crate::assign::SearchTrace;
use crate::cost::{ArrayContribution, CostBreakdown, IncPool, TransferStream};
use crate::types::Assignment;

/// Cached trial data of one candidate move: its array's cost contribution
/// and layer residents under the move's `(home, chain)` state. Both depend
/// only on that one array's state, so they stay valid across greedy steps
/// (and across the portfolio's legs) as long as the array's home is
/// unchanged — `home` records the home the entry was computed under,
/// `None` meaning *invalid* (the platform changed between sweep points, so
/// every cached price is stale).
#[derive(Debug, Default)]
pub(crate) struct CacheSlot {
    pub(crate) home: Option<LayerId>,
    pub(crate) contrib: ArrayContribution,
    pub(crate) residents: Vec<(LayerId, Resident)>,
}

/// Scratch buffers of one evaluation thread, reused across sweep points.
///
/// Construct once per thread (`EvalWorkspace::default()` allocates
/// nothing) and pass to the `_in` run entry points
/// ([`Mhla::run_with_stats_in`](crate::Mhla::run_with_stats_in),
/// [`Mhla::run_with_seeds_in`](crate::Mhla::run_with_seeds_in)); the
/// convenience entry points without a workspace argument build a
/// throwaway one, which is exactly the historical allocating behavior.
#[derive(Debug, Default)]
pub struct EvalWorkspace {
    /// Per-move trial cache of the greedy search, invalidated (not
    /// deallocated) at every portfolio start.
    pub(crate) cache: Vec<CacheSlot>,
    /// Improving feasible moves of the current greedy step:
    /// `(ratio, gain, ratio-scale)`.
    pub(crate) contenders: Vec<(f64, f64, f64)>,
    /// Flat per-contender sensitivity differences (`layer_count` entries
    /// per contender).
    pub(crate) svec_buf: Vec<f64>,
    /// Trial-pricing scratch of the greedy gain test.
    pub(crate) scratch: CostBreakdown,
    /// Stream-pricing scratch for cache refills.
    pub(crate) streams: Vec<TransferStream>,
    /// Recyclable buffers of the incremental evaluator.
    pub(crate) pool: IncPool,
    /// The untracked trace warm portfolio legs run under.
    pub(crate) warm_trace: SearchTrace,
    /// Indices (into the seed list) of the warm seeds already searched.
    pub(crate) ran_idx: Vec<usize>,
    /// Spare assignments: losing portfolio legs return theirs here, the
    /// next leg's start state draws from it instead of cloning.
    pub(crate) seed_spares: Vec<Assignment>,
    /// Whole-assignment sensitivity scratch of the baseline-fallback
    /// margin computation (two vectors: outcome side, baseline side).
    pub(crate) sens_a: Vec<f64>,
    pub(crate) sens_b: Vec<f64>,
}

impl EvalWorkspace {
    /// A fresh workspace (no buffers allocated yet — they grow on first
    /// use and are reused from then on).
    pub fn new() -> Self {
        EvalWorkspace::default()
    }

    /// Sizes the trial cache for `n` candidate moves and invalidates
    /// every slot (capacities may have changed since the previous sweep
    /// point, so all cached prices are stale). Slot buffers are kept.
    pub(crate) fn prepare_cache(&mut self, n: usize) {
        self.cache.truncate(n);
        for slot in self.cache.iter_mut() {
            slot.home = None;
        }
        self.cache.resize_with(n, CacheSlot::default);
    }

    /// Draws a start assignment for a portfolio leg, copied from `seed`,
    /// reusing a spare's buffers when one is available.
    pub(crate) fn start_from_seed(&mut self, seed: &Assignment) -> Assignment {
        match self.seed_spares.pop() {
            Some(mut a) => {
                a.copy_from(seed);
                a
            }
            None => seed.clone(),
        }
    }

    /// Draws a baseline start assignment (every array homed off-chip, no
    /// copies), reusing a spare's buffers when one is available.
    pub(crate) fn start_baseline(
        &mut self,
        array_count: usize,
        policy: crate::types::TransferPolicy,
    ) -> Assignment {
        match self.seed_spares.pop() {
            Some(mut a) => {
                a.reset_baseline(array_count, policy);
                a
            }
            None => Assignment::baseline(array_count, policy),
        }
    }

    /// Returns a losing portfolio leg's outcome buffers to the workspace.
    pub(crate) fn recycle_outcome(&mut self, outcome: crate::assign::SearchOutcome) {
        self.seed_spares.push(outcome.assignment);
        self.pool.give_breakdown(outcome.cost);
    }
}
