//! Assignment representation, configuration and error types.

use std::error::Error;
use std::fmt;

use mhla_hierarchy::LayerId;
use mhla_ir::ArrayId;
use mhla_reuse::CandidateId;

/// How copy buffers are refreshed by block transfers.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum TransferPolicy {
    /// Every entry of the owning loop refreshes the full buffer.
    FullRefresh,
    /// Sliding-window update: the first entry fills the buffer, subsequent
    /// entries transfer only the newly needed elements (when the footprint
    /// analysis proved the window slides).
    #[default]
    SlidingDelta,
}

/// What the assignment search minimizes.
#[derive(Clone, Copy, PartialEq, Debug, Default)]
pub enum Objective {
    /// Minimize memory energy (the paper's Figure 3 axis).
    Energy,
    /// Minimize execution cycles (the paper's Figure 2 axis).
    #[default]
    Cycles,
    /// Minimize `energy_weight·E + cycle_weight·T` (normalized units:
    /// picojoule and cycles respectively).
    Weighted {
        /// Weight on energy (per picojoule).
        energy_weight: f64,
        /// Weight on cycles (per cycle).
        cycle_weight: f64,
    },
}

/// Which search procedure the assignment step uses.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum SearchStrategy {
    /// The published greedy gain/size steering.
    #[default]
    Greedy,
    /// Exhaustive branch-and-bound over per-array options; exact but only
    /// viable for small instances. Aborts (falling back to the incumbent)
    /// after visiting `node_limit` search nodes.
    Exhaustive {
        /// Maximum number of search-tree nodes to expand.
        node_limit: u64,
    },
}

/// Configuration of the whole MHLA run.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct MhlaConfig {
    /// Optimization objective of the assignment step.
    pub objective: Objective,
    /// Search strategy of the assignment step.
    pub strategy: SearchStrategy,
    /// Block-transfer refresh policy.
    pub policy: TransferPolicy,
    /// Maximum copy-chain length per array (bounded by the number of
    /// on-chip layers; 0 means "use the platform depth").
    pub max_chain: usize,
    /// Per-array class overrides (see [`ArrayClass`](crate::ArrayClass));
    /// arrays not listed are classified automatically.
    pub class_overrides: Vec<(ArrayId, crate::classify::ArrayClass)>,
    /// Disable the Time-Extension step even when a DMA engine exists
    /// (used for step-1-only measurements, e.g. the paper's "MHLA" bars).
    pub disable_te: bool,
}

/// Bit of `layer` in a constrained-layer bitmask; `None` beyond 64 layers
/// (readers treat such layers as permanently constrained). The single
/// definition of the mask encoding shared by the greedy search, the TE
/// planner, direct placement and [`RunStats`](crate::RunStats).
pub(crate) fn layer_mask_bit(layer: LayerId) -> Option<u64> {
    (layer.index() < u64::BITS as usize).then(|| 1u64 << layer.index())
}

/// Sets `layer`'s bit in a constrained-layer bitmask.
pub(crate) fn mark_layer(mask: &mut u64, layer: LayerId) {
    if let Some(bit) = layer_mask_bit(layer) {
        *mask |= bit;
    }
}

/// One selected copy: a candidate staged into an on-chip layer.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct SelectedCopy {
    /// Which candidate is staged.
    pub candidate: CandidateId,
    /// Destination layer of the copy buffer.
    pub layer: LayerId,
}

impl fmt::Display for SelectedCopy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} -> {}", self.candidate, self.layer)
    }
}

/// A complete layer assignment: a home layer per array plus the selected
/// copies.
///
/// Invariants (checked by [`Assignment::validate`] against a reuse
/// analysis): per array, the selected copies form a nested chain with
/// strictly increasing layers starting above the array's home layer.
#[derive(Clone, PartialEq, Debug)]
pub struct Assignment {
    array_home: Vec<LayerId>,
    copies: Vec<SelectedCopy>,
    policy: TransferPolicy,
}

impl Assignment {
    /// The out-of-the-box assignment: every array homed in the furthest
    /// (off-chip) layer, no copies.
    pub fn baseline(array_count: usize, policy: TransferPolicy) -> Self {
        Assignment {
            array_home: vec![LayerId(0); array_count],
            copies: Vec::new(),
            policy,
        }
    }

    /// Home layer of an array.
    pub fn home(&self, array: ArrayId) -> LayerId {
        self.array_home[array.index()]
    }

    /// Re-homes an array.
    pub fn set_home(&mut self, array: ArrayId, layer: LayerId) {
        self.array_home[array.index()] = layer;
    }

    /// All selected copies (no particular order across arrays; nested
    /// outer-to-inner per array).
    pub fn copies(&self) -> &[SelectedCopy] {
        &self.copies
    }

    /// Selected copies of one array, outermost first.
    pub fn copies_of(&self, array: ArrayId) -> Vec<SelectedCopy> {
        let mut v = Vec::new();
        self.copies_of_into(array, &mut v);
        v
    }

    /// [`copies_of`](Self::copies_of) into a caller-owned buffer
    /// (cleared first) — same stable sort, so the chain order is
    /// identical to the allocating accessor's.
    pub(crate) fn copies_of_into(&self, array: ArrayId, out: &mut Vec<SelectedCopy>) {
        out.clear();
        out.extend(
            self.copies
                .iter()
                .copied()
                .filter(|c| c.candidate.array == array),
        );
        out.sort_by_key(|c| c.layer);
    }

    /// Overwrites this assignment with `other`'s state, reusing this
    /// assignment's vector allocations (a capacity-preserving
    /// `clone_from` for the workspace-reuse search paths).
    pub(crate) fn copy_from(&mut self, other: &Assignment) {
        self.array_home.clear();
        self.array_home.extend_from_slice(&other.array_home);
        self.copies.clear();
        self.copies.extend_from_slice(&other.copies);
        self.policy = other.policy;
    }

    /// Resets this assignment to [`baseline`](Self::baseline) state in
    /// place, reusing its vector allocations.
    pub(crate) fn reset_baseline(&mut self, array_count: usize, policy: TransferPolicy) {
        self.array_home.clear();
        self.array_home.resize(array_count, LayerId(0));
        self.copies.clear();
        self.policy = policy;
    }

    /// Adds a copy selection.
    pub fn add_copy(&mut self, copy: SelectedCopy) {
        self.copies.push(copy);
    }

    /// Removes every copy of `array`.
    pub fn clear_copies_of(&mut self, array: ArrayId) {
        self.copies.retain(|c| c.candidate.array != array);
    }

    /// The transfer policy used for pricing block transfers.
    pub fn policy(&self) -> TransferPolicy {
        self.policy
    }

    /// Number of arrays covered.
    pub fn array_count(&self) -> usize {
        self.array_home.len()
    }

    /// Checks the structural invariants against a reuse analysis.
    ///
    /// # Errors
    ///
    /// Returns an [`AssignmentError`] naming the first violated invariant.
    pub fn validate(
        &self,
        reuse: &mhla_reuse::ReuseAnalysis,
        layer_count: usize,
    ) -> Result<(), AssignmentError> {
        for (i, &home) in self.array_home.iter().enumerate() {
            if home.index() >= layer_count {
                return Err(AssignmentError::LayerOutOfRange {
                    what: format!("array A{i} home"),
                });
            }
        }
        for c in &self.copies {
            if c.layer.index() >= layer_count {
                return Err(AssignmentError::LayerOutOfRange {
                    what: format!("copy {c}"),
                });
            }
            if c.layer.index() == 0 {
                return Err(AssignmentError::CopyInOffChip { copy: *c });
            }
            let home = self.home(c.candidate.array);
            if c.layer <= home {
                return Err(AssignmentError::CopyBelowHome { copy: *c });
            }
        }
        // Per-array chain checks.
        for aid in 0..self.array_home.len() {
            let array = ArrayId::from_index(aid);
            let chain = self.copies_of(array);
            let ar = reuse.array(array);
            for w in chain.windows(2) {
                let (outer, inner) = (w[0], w[1]);
                if outer.layer == inner.layer {
                    return Err(AssignmentError::DuplicateLayer { array });
                }
                if !ar.can_chain(outer.candidate.index, inner.candidate.index) {
                    return Err(AssignmentError::NotNested {
                        outer: outer.candidate,
                        inner: inner.candidate,
                    });
                }
            }
        }
        Ok(())
    }
}

/// Violations of [`Assignment`] invariants.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum AssignmentError {
    /// A layer id does not exist on the platform.
    LayerOutOfRange {
        /// Description of the offending reference.
        what: String,
    },
    /// A copy was placed in the off-chip layer (meaningless).
    CopyInOffChip {
        /// The offending selection.
        copy: SelectedCopy,
    },
    /// A copy was placed at or below its array's home layer.
    CopyBelowHome {
        /// The offending selection.
        copy: SelectedCopy,
    },
    /// Two copies of one array share a layer.
    DuplicateLayer {
        /// The array with the clashing copies.
        array: ArrayId,
    },
    /// A copy chain is not geometrically nested.
    NotNested {
        /// Outer chain element.
        outer: CandidateId,
        /// Inner chain element that does not nest.
        inner: CandidateId,
    },
    /// The selected residents exceed a layer capacity even after in-place.
    CapacityExceeded {
        /// The overfull layer.
        layer: LayerId,
        /// Bytes required after in-place optimization.
        required: u64,
        /// Bytes available.
        capacity: u64,
    },
}

impl fmt::Display for AssignmentError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AssignmentError::LayerOutOfRange { what } => {
                write!(f, "layer out of range for {what}")
            }
            AssignmentError::CopyInOffChip { copy } => {
                write!(f, "copy {copy} placed in the off-chip layer")
            }
            AssignmentError::CopyBelowHome { copy } => {
                write!(f, "copy {copy} not above its array's home layer")
            }
            AssignmentError::DuplicateLayer { array } => {
                write!(f, "array {array} has two copies in one layer")
            }
            AssignmentError::NotNested { outer, inner } => {
                write!(f, "copy chain {outer} -> {inner} is not nested")
            }
            AssignmentError::CapacityExceeded {
                layer,
                required,
                capacity,
            } => write!(
                f,
                "layer {layer} needs {required} B but only has {capacity} B"
            ),
        }
    }
}

impl Error for AssignmentError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_has_everything_off_chip() {
        let a = Assignment::baseline(3, TransferPolicy::FullRefresh);
        for i in 0..3 {
            assert_eq!(a.home(ArrayId::from_index(i)), LayerId(0));
        }
        assert!(a.copies().is_empty());
        assert_eq!(a.policy(), TransferPolicy::FullRefresh);
    }

    #[test]
    fn copies_of_sorts_outer_to_inner() {
        let mut a = Assignment::baseline(1, TransferPolicy::default());
        let arr = ArrayId::from_index(0);
        a.add_copy(SelectedCopy {
            candidate: CandidateId {
                array: arr,
                index: 2,
            },
            layer: LayerId(2),
        });
        a.add_copy(SelectedCopy {
            candidate: CandidateId {
                array: arr,
                index: 0,
            },
            layer: LayerId(1),
        });
        let chain = a.copies_of(arr);
        assert_eq!(chain.len(), 2);
        assert!(chain[0].layer < chain[1].layer);
    }

    #[test]
    fn clear_copies_only_touches_one_array() {
        let mut a = Assignment::baseline(2, TransferPolicy::default());
        for i in 0..2 {
            a.add_copy(SelectedCopy {
                candidate: CandidateId {
                    array: ArrayId::from_index(i),
                    index: 0,
                },
                layer: LayerId(1),
            });
        }
        a.clear_copies_of(ArrayId::from_index(0));
        assert_eq!(a.copies().len(), 1);
        assert_eq!(a.copies()[0].candidate.array, ArrayId::from_index(1));
    }

    #[test]
    fn error_display_names_the_violation() {
        let e = AssignmentError::CapacityExceeded {
            layer: LayerId(1),
            required: 2048,
            capacity: 1024,
        };
        let s = e.to_string();
        assert!(s.contains("2048"));
        assert!(s.contains("1024"));
    }
}
