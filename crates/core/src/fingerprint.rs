//! Stable content fingerprints of programs and platforms.
//!
//! The `mhla serve` result cache is *content-addressed*: a cached frontier
//! is keyed by what was explored — the program, the platform, and the
//! exploration options — not by who submitted it or when. The address of
//! the program/platform half of that key is a hash over the **canonical
//! serialized bytes** ([`mhla_ir::serdes::program_canonical_bytes`] /
//! [`mhla_hierarchy::serdes::platform_canonical_bytes`]): the compact,
//! whitespace-free rendering of the versioned JSON document, which is
//! byte-identical for structurally equal values and frozen with the
//! schema version. Two submissions of the same program therefore hash
//! equal whether they came from the same file, a re-export, or a
//! different machine.
//!
//! The hash is 128-bit FNV-1a — deterministic across processes, builds
//! and platforms (unlike `std`'s `DefaultHasher`, whose seeds are
//! per-process), dependency-free, and wide enough that accidental
//! collisions are out of the picture for any realistic cache population.
//! FNV is *not* cryptographic: the cache trusts its submitters not to
//! engineer collisions, which is the threat model of a result cache (a
//! poisoned entry only ever answers the poisoner's own key).

use mhla_hierarchy::Platform;
use mhla_ir::Program;

/// The FNV-1a offset basis, 128-bit.
const FNV128_OFFSET: u128 = 0x6c62272e07bb014262b821756295c58d;
/// The FNV-1a prime, 128-bit.
const FNV128_PRIME: u128 = 0x0000000001000000000000000000013b;

/// 128-bit FNV-1a over arbitrary bytes — the workspace's stable,
/// dependency-free content hash.
pub fn fnv1a_128(bytes: &[u8]) -> u128 {
    let mut h = FNV128_OFFSET;
    for &b in bytes {
        h ^= u128::from(b);
        h = h.wrapping_mul(FNV128_PRIME);
    }
    h
}

/// The content fingerprint of a program: [`fnv1a_128`] over its canonical
/// serialized bytes. Equal programs (by [`Program`]'s structural equality)
/// fingerprint equal; the value is stable across processes and builds for
/// a given schema version.
pub fn program_fingerprint(program: &Program) -> u128 {
    fnv1a_128(&mhla_ir::serdes::program_canonical_bytes(program))
}

/// The content fingerprint of a platform: [`fnv1a_128`] over its
/// canonical serialized bytes; see [`program_fingerprint`].
pub fn platform_fingerprint(platform: &Platform) -> u128 {
    fnv1a_128(&mhla_hierarchy::serdes::platform_canonical_bytes(platform))
}

/// Renders a fingerprint as the fixed-width lowercase hex the `serve`
/// status/result payloads use.
pub fn fingerprint_hex(fp: u128) -> String {
    format!("{fp:032x}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use mhla_ir::{ElemType, ProgramBuilder};

    fn prog(name: &str, dim: u64) -> Program {
        let mut b = ProgramBuilder::new(name);
        let a = b.array("a", &[dim], ElemType::U8);
        b.loop_scope("i", 0, dim as i64, 1, |b, li| {
            let iv = b.var(li);
            b.stmt("s").read(a, vec![iv]).finish();
        });
        b.finish()
    }

    #[test]
    fn fnv_vectors_are_stable() {
        // Pinned values: any change here is a cache-key format break.
        assert_eq!(fnv1a_128(b""), FNV128_OFFSET);
        assert_eq!(fnv1a_128(b"a"), 0xd228cb696f1a8caf78912b704e4a8964);
        assert_eq!(
            fingerprint_hex(fnv1a_128(b"mhla")),
            "691872c13b757277b806e95bbd94bdef"
        );
    }

    #[test]
    fn equal_content_fingerprints_equal_and_distinct_content_differs() {
        let p1 = prog("p", 64);
        let p2 = prog("p", 64);
        let p3 = prog("p", 65);
        assert_eq!(program_fingerprint(&p1), program_fingerprint(&p2));
        assert_ne!(program_fingerprint(&p1), program_fingerprint(&p3));

        let a = Platform::three_level_default();
        let b = Platform::three_level_default();
        let c = Platform::four_level_default();
        assert_eq!(platform_fingerprint(&a), platform_fingerprint(&b));
        assert_ne!(platform_fingerprint(&a), platform_fingerprint(&c));
    }

    #[test]
    fn fingerprint_survives_a_serialization_round_trip() {
        let p = prog("rt", 32);
        let text = mhla_ir::serdes::program_to_json(&p);
        let back = mhla_ir::serdes::program_from_json(&text).unwrap();
        assert_eq!(program_fingerprint(&p), program_fingerprint(&back));
    }
}
