//! High-level driver tying the two MHLA steps together.

use mhla_hierarchy::Platform;
use mhla_ir::Program;
use std::borrow::Cow;

use mhla_reuse::ReuseAnalysis;

use crate::assign;
use crate::classify::classify_arrays;
use crate::context::{ExplorationContext, ProgramFacts};
use crate::cost::{CostBreakdown, CostModel};
use crate::error::MhlaError;
use crate::te::{self, TeSchedule};
use crate::types::{Assignment, MhlaConfig};
use crate::workspace::EvalWorkspace;

/// The complete result of one MHLA run (both steps) on one platform.
#[derive(Clone, PartialEq, Debug)]
pub struct MhlaResult {
    /// Step-1 output: the selected layer assignment.
    pub assignment: Assignment,
    /// The out-of-the-box (direct placement) assignment.
    pub baseline_assignment: Assignment,
    /// Static cost of the out-of-the-box code.
    pub baseline_cost: CostBreakdown,
    /// Static cost of the assignment with *unhidden* transfers (MHLA bar
    /// of Figure 2).
    pub assignment_cost: CostBreakdown,
    /// Step-2 output: the prefetch schedule (MHLA + TE bar).
    pub te: TeSchedule,
    /// Greedy/exhaustive search steps taken (diagnostics).
    pub search_steps: u64,
}

impl MhlaResult {
    /// Static cycles of the out-of-the-box code.
    pub fn baseline_cycles(&self) -> u64 {
        self.baseline_cost.total_cycles()
    }

    /// Static cycles after step 1 (transfers stall the CPU).
    pub fn mhla_cycles(&self) -> u64 {
        self.assignment_cost.total_cycles()
    }

    /// Static cycle estimate after step 2 (transfers hidden per the TE
    /// schedule; residual stalls remain).
    pub fn mhla_te_cycles(&self) -> u64 {
        self.assignment_cost.ideal_cycles() + self.te.residual_stall_cycles()
    }

    /// The ideal bound: zero-wait block transfers (Figure 2's dashed line).
    pub fn ideal_cycles(&self) -> u64 {
        self.assignment_cost.ideal_cycles()
    }

    /// Memory energy of the out-of-the-box code, picojoule.
    pub fn baseline_energy_pj(&self) -> f64 {
        self.baseline_cost.total_energy_pj()
    }

    /// Memory energy after MHLA, picojoule. TE does not change it (the
    /// model counts memory accesses only, as in the paper).
    pub fn mhla_energy_pj(&self) -> f64 {
        self.assignment_cost.total_energy_pj()
    }
}

/// How the layer capacities bound one production run — the side channel
/// the pruned grid sweep ([`explore`](crate::explore)) uses to recognize
/// *capacity-saturated* directions. Not part of [`MhlaResult`], so results
/// stay byte-for-byte comparable across all run paths.
#[derive(Clone, PartialEq, Debug)]
pub struct RunStats {
    /// Bitmask (by layer index) of the layers whose capacity actively
    /// bound the run: a cold greedy probe first overflowed there, TE
    /// rejected an extension there, or direct placement turned an array
    /// away there. Layers with a clear bit never rejected anything —
    /// growing only those layers reproduces the identical run (same
    /// assignment, same TE schedule, equal cycles under a
    /// capacity-independent cycle landscape, and monotonically ≥ energy).
    pub constrained_layers: u64,
    /// Per layer: the run's *gain-bound margin rate* — the largest
    /// write-energy delta `δw_l` (pJ, at energy weight 1) the layer alone
    /// could absorb without flipping any decision of the run. This is the
    /// energy-side saturation rule's per-layer gain-bound data. Growing a
    /// scratchpad raises its read/write/burst energies in lock-step
    /// (`δw = 1.2·δr = δ_burst` under the scaling laws); every
    /// contribution's energy then moves by exactly
    /// `Σ_l δw_l · sensitivity[l]`
    /// ([`ArrayContribution::energy_sensitivity`](crate::ArrayContribution)
    /// — per-layer access-execution and transfer-volume totals of the
    /// cost model), so every decision of the cold greedy search (and the
    /// final baseline-fallback comparison) closes its margin at a known
    /// per-layer risk rate; `gain_margin_rates[l]` is the minimum over
    /// decisions of `margin / risk_l`. Joint growth is admitted by
    /// [`allows_energy_growth`](Self::allows_energy_growth) when
    /// `Σ_l energy_weight · δw_l / gain_margin_rates[l] < 1`: no decision
    /// flips, the run replays move for move, cycles stay equal (within
    /// one latency class) and energy can only rise — the growth is
    /// dominated sight unseen. `INFINITY` where no decision is sensitive
    /// (ties between sensitivity-identical twin moves are exempt — their
    /// gaps are growth-invariant); `0.0` where some decision sits exactly
    /// at a perturbable tie (only perturbation-free growth — the cycles
    /// objective, or growth inside the sub-reference energy-clamp region
    /// — replays then). Empty for untracked runs.
    pub gain_margin_rates: Vec<f64>,
    /// The portfolio kept the cold result (the warm leg never overrode).
    /// Trivially true for cold runs (`warm = None`).
    pub cold_result_kept: bool,
    /// Which external warm seed's leg won the portfolio (index into the
    /// seed list handed to [`Mhla::run_with_seeds`]); `None` when the
    /// cold leg was kept (always `None` for untracked runs). The improving
    /// sweep mode uses this to report which grid neighbor seeded each
    /// point's winning search.
    pub winning_seed: Option<usize>,
    /// Greedy search legs executed by the portfolio (cold leg + distinct
    /// warm seeds); `0` for untracked runs. The sweeps aggregate this into
    /// their per-mode evaluation counts.
    pub search_legs: usize,
    /// Per layer: the smallest byte requirement of any capacity rejection
    /// at that layer across the run's three rejection sites (cold greedy
    /// probes, direct placement, TE buffer checks); `u64::MAX` where the
    /// layer never rejected anything. Every requirement is
    /// capacity-independent, so a constrained layer grown to a capacity
    /// still *below* its floor rejects the exact same probes and the run
    /// replays verbatim — the bounded-growth extension of
    /// [`allows_growth_of`](Self::allows_growth_of), consulted through
    /// [`allows_growth_to`](Self::allows_growth_to). Empty for untracked
    /// runs.
    pub layer_reject_floors: Vec<u64>,
    /// The run tracked constraints at all (greedy strategy only; other
    /// strategies report `false` and are never treated as saturated).
    pub tracked: bool,
}

impl RunStats {
    /// Whether the run provably reproduces itself when only the given
    /// layer grows — the per-layer saturation leg of the pruned grid
    /// sweep's losslessness argument.
    pub fn allows_growth_of(&self, layer: mhla_hierarchy::LayerId) -> bool {
        self.tracked
            && self.cold_result_kept
            && crate::types::layer_mask_bit(layer)
                .is_some_and(|bit| self.constrained_layers & bit == 0)
    }

    /// Whether the run provably reproduces itself when the given layer
    /// grows *to* `to_capacity` (bytes): either the layer never rejected
    /// anything ([`allows_growth_of`](Self::allows_growth_of)), or the
    /// grown capacity still sits strictly below the layer's rejection
    /// floor — every one of the run's failed capacity checks there needed
    /// more bytes than `to_capacity` offers, and the requirements are
    /// capacity-independent, so the same checks fail in the same order and
    /// the run replays verbatim. The adaptive refinement scheduler uses
    /// this to close cells whose corners are saturated only *up to* the
    /// cell's far corner, not unboundedly.
    pub fn allows_growth_to(&self, layer: mhla_hierarchy::LayerId, to_capacity: u64) -> bool {
        self.allows_growth_of(layer)
            || (self.tracked
                && self.cold_result_kept
                && self
                    .layer_reject_floors
                    .get(layer.index())
                    .is_some_and(|&floor| to_capacity < floor))
    }

    /// Whether the run's decisions provably survive the given per-layer
    /// write-energy growth — `deltas` being `(layer, δw_l)` pairs of the
    /// grown scratchpads. Each decision's total perturbation is a convex
    /// combination of its per-layer allowances, so growth is admitted
    /// when `Σ_l energy_weight · δw_l / gain_margin_rates[l] < 1` (with a
    /// small safety factor absorbing f64 rounding). A perturbation of
    /// exactly zero — the cycles objective, or growth confined to the
    /// sub-reference energy-clamp region — is always admitted; a layer
    /// with no recorded rate (untracked run) admits nothing. A *negative*
    /// energy weight inverts the perturbation direction the one-sided
    /// risk rates were recorded under, so any nonzero perturbation is
    /// refused outright (zero-delta growth still replays bit-identically
    /// and is admitted).
    pub fn allows_energy_growth<I>(&self, deltas: I, energy_weight: f64) -> bool
    where
        I: IntoIterator<Item = (mhla_hierarchy::LayerId, f64)>,
    {
        let mut budget = 0.0f64;
        for (layer, delta_pj) in deltas {
            if delta_pj <= 0.0 || energy_weight == 0.0 {
                continue;
            }
            if energy_weight < 0.0 {
                return false;
            }
            let rate = self
                .gain_margin_rates
                .get(layer.index())
                .copied()
                .unwrap_or(0.0);
            if rate == 0.0 {
                return false;
            }
            budget += energy_weight * delta_pj / rate;
        }
        budget < 1.0 - 1e-9
    }

    /// The largest capacity the given scratchpad layer (currently
    /// `capacity_bytes`) could grow to *alone* without flipping any
    /// decision of this run under the given energy weight — the
    /// per-layer growth ceiling implied by
    /// [`gain_margin_rates`](Self::gain_margin_rates), conservatively
    /// rounded down so growth *to the ceiling itself* is admitted by
    /// [`allows_energy_growth`](Self::allows_energy_growth) (diagnostics;
    /// the pruned sweep checks joint growth against the summed budget
    /// directly). Saturating: `u64::MAX` means unbounded. Latency-class
    /// limits are *not* folded in.
    pub fn energy_growth_ceiling(
        &self,
        layer: mhla_hierarchy::LayerId,
        capacity_bytes: u64,
        energy_weight: f64,
    ) -> u64 {
        use mhla_hierarchy::energy::{sram_write_pj, SRAM_ENERGY_EXPONENT, SRAM_REF_BYTES};
        let ew = energy_weight.abs();
        let rate = self
            .gain_margin_rates
            .get(layer.index())
            .copied()
            .unwrap_or(0.0);
        if ew == 0.0 || rate == f64::INFINITY {
            return u64::MAX;
        }
        if rate == 0.0 {
            return capacity_bytes;
        }
        // Invert the clamped scaling law: the write (= burst) energy is the
        // steepest of the three per-layer energies and the unit the rates
        // are expressed in. E_w(c) = E_w(ref) · (c/ref)^α for c ≥ ref. The
        // rate is shaved slightly so the ceiling itself sits strictly
        // inside `allows_energy_growth`'s budget (its safety factor would
        // otherwise refuse a capacity landing within rounding of the
        // exact inversion).
        let allowed = sram_write_pj(capacity_bytes) + (rate / ew) * (1.0 - 1e-6);
        let ref_write = sram_write_pj(SRAM_REF_BYTES);
        let ratio = (allowed / ref_write).powf(1.0 / SRAM_ENERGY_EXPONENT);
        let ceiling = (SRAM_REF_BYTES as f64 * ratio).floor();
        if ceiling >= u64::MAX as f64 {
            u64::MAX
        } else {
            (ceiling as u64).max(capacity_bytes)
        }
    }

    /// The conservative default for paths that do not track constraints
    /// (exhaustive search, the frozen reference flow): never saturated.
    fn unknown() -> Self {
        RunStats {
            constrained_layers: u64::MAX,
            gain_margin_rates: Vec::new(),
            cold_result_kept: false,
            winning_seed: None,
            search_legs: 0,
            layer_reject_floors: Vec::new(),
            tracked: false,
        }
    }
}

/// Runs MHLA (assignment + time extensions) on a program/platform pair.
///
/// Borrows the program and platform for the duration of the run; the
/// returned [`MhlaResult`] is owned.
#[derive(Debug)]
pub struct Mhla<'a> {
    program: &'a Program,
    platform: &'a Platform,
    config: MhlaConfig,
    reuse: Cow<'a, ReuseAnalysis>,
    /// Shared program facts when running inside an
    /// [`ExplorationContext`]; `None` on the standalone path (facts are
    /// then derived per run).
    facts: Option<&'a ProgramFacts<'a>>,
}

impl<'a> Mhla<'a> {
    /// Prepares a run (performs the reuse analysis).
    pub fn new(program: &'a Program, platform: &'a Platform, config: MhlaConfig) -> Self {
        let reuse = ReuseAnalysis::analyze(program);
        Mhla::with_reuse(program, platform, config, reuse)
    }

    /// Fallible [`new`](Mhla::new): validates the program
    /// ([`Program::validate`]), the platform and the configuration
    /// *before* running the reuse analysis, so malformed inputs arriving
    /// from outside the process are rejected with a typed error instead
    /// of panicking somewhere inside the analysis.
    ///
    /// # Errors
    ///
    /// [`MhlaError::InvalidProgram`] /
    /// [`InvalidOptions`](MhlaError::InvalidOptions) /
    /// [`InvalidObjective`](MhlaError::InvalidObjective).
    pub fn try_new(
        program: &'a Program,
        platform: &'a Platform,
        config: MhlaConfig,
    ) -> Result<Self, MhlaError> {
        crate::error::validate_run_ingress(program, platform, &config)?;
        Ok(Mhla::new(program, platform, config))
    }

    /// Prepares a run over a shared [`ExplorationContext`]: the reuse
    /// analysis, array classification, program facts and TE caches all
    /// come from the context instead of being re-derived, so constructing
    /// the run (and its cost model) is free. The configuration is the
    /// context's. This is how the capacity/grid sweeps evaluate thousands
    /// of platform variants of one program.
    pub fn with_context(ctx: &'a ExplorationContext<'a>, platform: &'a Platform) -> Self {
        Mhla {
            program: ctx.program(),
            platform,
            config: ctx.config().clone(),
            reuse: Cow::Borrowed(ctx.reuse()),
            facts: Some(ctx.facts()),
        }
    }

    /// Prepares a run from an already-computed reuse analysis.
    ///
    /// The analysis depends only on the program, so callers evaluating one
    /// program against many platforms (the capacity sweep) compute it once
    /// and clone it per point instead of re-deriving it.
    pub fn with_reuse(
        program: &'a Program,
        platform: &'a Platform,
        config: MhlaConfig,
        reuse: ReuseAnalysis,
    ) -> Self {
        Mhla {
            program,
            platform,
            config,
            reuse: Cow::Owned(reuse),
            facts: None,
        }
    }

    /// [`with_reuse`](Mhla::with_reuse) borrowing the analysis instead of
    /// owning it — the capacity sweep shares one analysis across all its
    /// points without cloning.
    pub fn with_reuse_ref(
        program: &'a Program,
        platform: &'a Platform,
        config: MhlaConfig,
        reuse: &'a ReuseAnalysis,
    ) -> Self {
        Mhla {
            program,
            platform,
            config,
            reuse: Cow::Borrowed(reuse),
            facts: None,
        }
    }

    /// The reuse analysis (shared with callers that need candidate data).
    pub fn reuse(&self) -> &ReuseAnalysis {
        &self.reuse
    }

    /// The run configuration.
    pub fn config(&self) -> &MhlaConfig {
        &self.config
    }

    /// Builds the cost model for this run: borrowing the context's shared
    /// facts when one is attached, deriving them otherwise.
    pub fn cost_model(&self) -> CostModel<'_> {
        match self.facts {
            Some(facts) => CostModel::with_facts(self.program, self.platform, &self.reuse, facts),
            None => {
                let classes = classify_arrays(self.program, &self.config.class_overrides);
                CostModel::new(self.program, self.platform, &self.reuse, classes)
            }
        }
    }

    /// Executes both steps and returns the result.
    ///
    /// The reported baseline is the *direct placement* out-of-the-box code
    /// (see [`assign::direct_placement`]): no copies, no in-place, no
    /// prefetching, but data sections linked on-chip where they fit — what
    /// a 2005 toolchain produced without the MHLA tool.
    pub fn run(&self) -> MhlaResult {
        self.run_from(None)
    }

    /// Fallible [`run`](Mhla::run): re-validates the run's ingress (the
    /// checks are cheap relative to the search) so a run prepared through
    /// the infallible constructors still gets the typed boundary.
    ///
    /// # Errors
    ///
    /// As [`try_new`](Mhla::try_new).
    pub fn try_run(&self) -> Result<MhlaResult, MhlaError> {
        self.try_run_with_seeds(&[], None).map(|(r, _)| r)
    }

    /// Fallible [`run_with_stats`](Mhla::run_with_stats): validated
    /// ingress plus a capacity/shape check of the warm-start assignment.
    ///
    /// # Errors
    ///
    /// As [`try_new`](Mhla::try_new), plus
    /// [`MhlaError::InvalidOptions`] for a warm assignment that does not
    /// fit this program/platform.
    pub fn try_run_with_stats(
        &self,
        warm: Option<&Assignment>,
        moves: Option<&assign::MoveSet>,
    ) -> Result<(MhlaResult, RunStats), MhlaError> {
        match warm {
            Some(w) => self.try_run_with_seeds(&[w], moves),
            None => self.try_run_with_seeds(&[], moves),
        }
    }

    /// Fallible [`run_with_seeds`](Mhla::run_with_seeds): validated
    /// ingress plus a shape check of every seed assignment (layer ids in
    /// range, copies consistent with the reuse analysis).
    ///
    /// # Errors
    ///
    /// As [`try_run_with_stats`](Mhla::try_run_with_stats).
    pub fn try_run_with_seeds(
        &self,
        seeds: &[&Assignment],
        moves: Option<&assign::MoveSet>,
    ) -> Result<(MhlaResult, RunStats), MhlaError> {
        crate::error::validate_run_ingress(self.program, self.platform, &self.config)?;
        for (i, seed) in seeds.iter().enumerate() {
            seed.validate(&self.reuse, self.platform.layer_count())
                .map_err(|e| MhlaError::InvalidOptions {
                    what: format!("seed assignment {i}: {e}"),
                })?;
        }
        Ok(self.run_with_seeds(seeds, moves))
    }

    /// [`run`](Mhla::run), optionally warm-starting the greedy search from
    /// a known-feasible assignment (the capacity sweep passes the previous
    /// point's solution).
    ///
    /// The warm start is a *portfolio* entry, not a replacement: the
    /// cold (baseline-started) search always runs too, and the
    /// warm-started solution is kept only when it scores strictly better.
    /// Greedy is a local search — continuing from a smaller capacity's
    /// fixed point can get trapped above the cold solution (per-access
    /// energy/latency rescale with capacity, so move gains shift between
    /// points) — and this guarantee makes the warm-started sweep never
    /// worse than, and in practice identical to, a cold sweep. Warm starts
    /// apply only to the greedy strategy; exhaustive search ignores them.
    pub fn run_from(&self, warm: Option<&Assignment>) -> MhlaResult {
        self.run_with(warm, None)
    }

    /// [`run_from`](Mhla::run_from) over an optional pre-enumerated move
    /// space. The move space is capacity-independent, so a capacity sweep
    /// enumerates it once ([`assign::enumerate_moves`]) and shares it
    /// across every point.
    pub fn run_with(
        &self,
        warm: Option<&Assignment>,
        moves: Option<&assign::MoveSet>,
    ) -> MhlaResult {
        self.run_with_stats(warm, moves).0
    }

    /// [`run_with`](Mhla::run_with), additionally reporting how the layer
    /// capacities bound the run ([`RunStats`]). The result is byte-for-byte
    /// the one `run_with` returns; the stats are a pure side channel. Only
    /// the greedy strategy tracks constraints — other strategies report the
    /// conservative "unknown" (never saturated) stats.
    pub fn run_with_stats(
        &self,
        warm: Option<&Assignment>,
        moves: Option<&assign::MoveSet>,
    ) -> (MhlaResult, RunStats) {
        match warm {
            Some(w) => self.run_with_seeds(&[w], moves),
            None => self.run_with_seeds(&[], moves),
        }
    }

    /// [`run_with_stats`](Mhla::run_with_stats) drawing every evaluation
    /// scratch buffer from `ws` — the per-thread workspace the sweep
    /// engines and the serve worker pool reuse across points/requests.
    /// The result is byte-for-byte the one `run_with_stats` returns.
    pub fn run_with_stats_in(
        &self,
        warm: Option<&Assignment>,
        moves: Option<&assign::MoveSet>,
        ws: &mut EvalWorkspace,
    ) -> (MhlaResult, RunStats) {
        match warm {
            Some(w) => self.run_with_seeds_in(&[w], moves, ws),
            None => self.run_with_seeds_in(&[], moves, ws),
        }
    }

    /// [`run_with_stats`](Mhla::run_with_stats) over an arbitrary list of
    /// external warm seeds — the per-point search of
    /// [`SearchMode::Improving`](crate::explore::SearchMode). The cold leg
    /// always runs, every distinct seed gets a warm leg, and the best leg
    /// wins (ties prefer cold, then the earliest seed), so the result
    /// provably scores no worse than [`run`](Mhla::run) under the
    /// configured objective. [`RunStats::winning_seed`] names the winner.
    /// Non-greedy strategies ignore the seeds (the portfolio is a greedy
    /// construct) and behave exactly like [`run`](Mhla::run).
    pub fn run_with_seeds(
        &self,
        seeds: &[&Assignment],
        moves: Option<&assign::MoveSet>,
    ) -> (MhlaResult, RunStats) {
        self.run_with_seeds_in(seeds, moves, &mut EvalWorkspace::default())
    }

    /// [`run_with_seeds`](Mhla::run_with_seeds) drawing every evaluation
    /// scratch buffer from `ws`. A fresh workspace reproduces the
    /// allocating path exactly; a warm (reused) one is bit-identical
    /// because every buffer is reset before use — so sweep engines keep
    /// one workspace per worker thread and evaluate every grid point
    /// through it. Non-greedy strategies ignore the workspace.
    pub fn run_with_seeds_in(
        &self,
        seeds: &[&Assignment],
        moves: Option<&assign::MoveSet>,
        ws: &mut EvalWorkspace,
    ) -> (MhlaResult, RunStats) {
        let model = self.cost_model();
        let (outcome, stats) = match (self.config.strategy, moves) {
            (crate::types::SearchStrategy::Greedy, Some(m)) => {
                let (o, s) = assign::greedy_portfolio_seeded_in(&model, &self.config, seeds, m, ws);
                (o, Some(s))
            }
            (crate::types::SearchStrategy::Greedy, None) => {
                let m = assign::enumerate_moves(&model, &self.config);
                let (o, s) =
                    assign::greedy_portfolio_seeded_in(&model, &self.config, seeds, &m, ws);
                (o, Some(s))
            }
            _ => (assign::search(&model, &self.config), None),
        };
        self.finish(&model, outcome, stats, ws)
    }

    /// The frozen pre-optimization flow: the greedy search re-prices every
    /// candidate move with the full [`CostModel::evaluate`] oracle
    /// ([`assign::greedy_oracle`]) instead of the incremental evaluator.
    ///
    /// Produces the same result as [`run`](Mhla::run) (asserted by the
    /// equivalence tests); kept so the `tradeoff` bench can measure what
    /// the incremental evaluator buys.
    pub fn run_reference(&self) -> MhlaResult {
        let model = self.cost_model();
        let outcome = match self.config.strategy {
            crate::types::SearchStrategy::Greedy => assign::greedy_oracle(&model, &self.config),
            _ => assign::search(&model, &self.config),
        };
        self.finish(&model, outcome, None, &mut EvalWorkspace::default())
            .0
    }

    /// The shared tail of every flow: baseline fallback, Time Extensions,
    /// result assembly. One implementation so the reference and production
    /// paths can only differ in the search itself — which is exactly what
    /// the cold/fast equivalence tests compare. `search_stats` is the
    /// greedy portfolio's constraint report when the caller tracked one;
    /// `None` yields the conservative "unknown" [`RunStats`].
    fn finish(
        &self,
        model: &CostModel<'_>,
        mut outcome: assign::SearchOutcome,
        search_stats: Option<assign::SearchStats>,
        ws: &mut EvalWorkspace,
    ) -> (MhlaResult, RunStats) {
        let (baseline, placement_constrained, placement_floors) =
            assign::direct_placement_stats_in(model, self.config.policy, ws);
        // The search is a heuristic and can, on rare corner cases, end in
        // a local optimum worse than the out-of-the-box placement. A real
        // tool never returns an assignment worse than its input: fall back
        // to the baseline when it scores better.
        //
        // This comparison is itself a capacity-perturbable decision: both
        // scores shift when scratchpad energies grow, by exactly the
        // per-layer write-energy deltas times each assignment's energy
        // sensitivity, so the gap closes at per-layer rate
        // |sensitivity difference|. Its margin rates join the search's in
        // `RunStats` so the pruned sweep's replay argument covers the
        // fallback too (identical assignments are exempt — both sides
        // perturb identically, as are layers with equal sensitivity).
        // Only computed when a search trace exists — no tracked margin
        // means no consumer.
        let fallback_gap: Option<f64> = if search_stats.is_none()
            || self.config.objective.energy_weight() <= 0.0
            || outcome.assignment == baseline.assignment
        {
            None
        } else {
            // The sensitivity vectors land in the workspace (`sens_a` the
            // outcome side, `sens_b` the baseline side) and are folded
            // into the margin rates below.
            model.assignment_energy_sensitivity_into(
                &outcome.assignment,
                &mut ws.pool,
                &mut ws.sens_a,
            );
            model.assignment_energy_sensitivity_into(
                &baseline.assignment,
                &mut ws.pool,
                &mut ws.sens_b,
            );
            let base_score = self.config.objective.score(&baseline.cost);
            let out_score = self.config.objective.score(&outcome.cost);
            // Margins within f64 rounding distance of the score scale are
            // ties (mirrors `SearchTrace::fold`'s tie floor).
            let tie_floor = base_score.abs().max(out_score.abs()).max(1.0) * 1e-9;
            let gap = (base_score - out_score).abs();
            Some(if gap <= tie_floor { 0.0 } else { gap })
        };
        if self.config.objective.score(&baseline.cost) < self.config.objective.score(&outcome.cost)
        {
            outcome = baseline.clone();
        }
        let (te, te_constrained, te_floors) = if self.config.disable_te {
            (
                TeSchedule {
                    applicable: self.platform.dma().is_some(),
                    transfers: Vec::new(),
                },
                0,
                vec![u64::MAX; self.platform.layer_count()],
            )
        } else {
            te::plan_with_stats(model, &outcome.assignment)
        };
        let stats = match search_stats {
            Some(mut s) => {
                if let Some(gap) = fallback_gap {
                    for (rate, (o, b)) in s
                        .cold_margin_rates
                        .iter_mut()
                        .zip(ws.sens_a.iter().zip(&ws.sens_b))
                    {
                        let risk = (o - b).abs();
                        let f = if risk > 0.0 {
                            gap / risk
                        } else {
                            f64::INFINITY
                        };
                        *rate = rate.min(f);
                    }
                }
                // Elementwise min over the three rejection sites: a grown
                // capacity below every site's floor rejects every probe of
                // the whole run.
                let mut floors = s.cold_reject_floors;
                for (f, other) in floors.iter_mut().zip(&placement_floors) {
                    *f = (*f).min(*other);
                }
                for (f, other) in floors.iter_mut().zip(&te_floors) {
                    *f = (*f).min(*other);
                }
                RunStats {
                    constrained_layers: s.cold_constrained_layers
                        | te_constrained
                        | placement_constrained,
                    gain_margin_rates: s.cold_margin_rates,
                    cold_result_kept: s.winning_seed.is_none(),
                    winning_seed: s.winning_seed,
                    search_legs: s.legs,
                    layer_reject_floors: floors,
                    tracked: true,
                }
            }
            None => RunStats::unknown(),
        };
        let result = MhlaResult {
            assignment: outcome.assignment,
            baseline_assignment: baseline.assignment,
            baseline_cost: baseline.cost,
            assignment_cost: outcome.cost,
            te,
            search_steps: outcome.steps,
        };
        (result, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mhla_ir::{ElemType, ProgramBuilder};

    fn me_like() -> Program {
        let mut b = ProgramBuilder::new("me");
        let cur = b.array("cur", &[16, 144], ElemType::U8);
        let prev = b.array("prev", &[32, 144], ElemType::U8);
        let lmb = b.begin_loop("mb", 0, 9, 1);
        let ldy = b.begin_loop("dy", 0, 8, 1);
        let ly = b.begin_loop("y", 0, 16, 1);
        let lx = b.begin_loop("x", 0, 16, 1);
        let (mb, dy, y, x) = (b.var(lmb), b.var(ldy), b.var(ly), b.var(lx));
        b.stmt("sad")
            .read(cur, vec![y.clone(), mb.clone() * 16 + x.clone()])
            .read(prev, vec![dy + y, mb * 16 + x])
            .compute_cycles(2)
            .finish();
        b.end_loop();
        b.end_loop();
        b.end_loop();
        b.end_loop();
        b.finish()
    }

    #[test]
    fn full_flow_orders_the_four_bars() {
        let p = me_like();
        let pf = Platform::embedded_default(4 * 1024);
        let result = Mhla::new(&p, &pf, MhlaConfig::default()).run();
        // baseline ≥ mhla ≥ mhla+te ≥ ideal — the shape of Figure 2.
        assert!(result.baseline_cycles() > result.mhla_cycles());
        assert!(result.mhla_cycles() >= result.mhla_te_cycles());
        assert!(result.mhla_te_cycles() >= result.ideal_cycles());
        // Energy: MHLA wins, TE leaves it unchanged by construction.
        assert!(result.mhla_energy_pj() < result.baseline_energy_pj());
    }

    #[test]
    fn disable_te_keeps_step1_only() {
        let p = me_like();
        let pf = Platform::embedded_default(4 * 1024);
        let config = MhlaConfig {
            disable_te: true,
            ..MhlaConfig::default()
        };
        let result = Mhla::new(&p, &pf, config).run();
        assert!(result.te.transfers.is_empty());
        assert_eq!(result.mhla_te_cycles(), result.ideal_cycles());
    }

    #[test]
    fn paper_band_sanity_on_me_kernel() {
        // The paper reports 40–60% step-1 gains on ME-class kernels at
        // reasonable scratchpad sizes; our model must land in a generous
        // envelope around that (exact % depends on platform constants).
        let p = me_like();
        let pf = Platform::embedded_default(4 * 1024);
        let result = Mhla::new(&p, &pf, MhlaConfig::default()).run();
        let gain = 1.0 - result.mhla_cycles() as f64 / result.baseline_cycles() as f64;
        assert!(gain > 0.30, "step-1 gain {gain:.2} too small");
        assert!(gain < 0.95, "step-1 gain {gain:.2} implausibly large");
    }

    use mhla_ir::Program;
}
