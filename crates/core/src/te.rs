//! MHLA step 2: Time Extensions — the paper's contribution (Figure 1).
//!
//! Time extensions selectively *prefetch* copy candidates: the DMA
//! initiation of a block transfer (BT) is scheduled earlier so that the
//! transfer overlaps CPU processing of preceding loops, "hiding as much as
//! possible the cycles required in accessing off-chip memory, respecting
//! data dependencies and on-chip size requirements".
//!
//! The algorithm, verbatim from Figure 1:
//!
//! 1. Collect every DMA block transfer; estimate its time `BT_time`,
//!    its sort factor `BT_time / size`, and its *freedom loops* (the loop
//!    levels between the data dependency and the BT, across which the
//!    initiation may legally be hoisted).
//! 2. Sort the BT list by sort factor (descending — most hiding benefit
//!    per byte of buffering first) and process greedily.
//! 3. For each BT, extend loop by loop: every hoisted level adds the CPU
//!    cycles of one of its iterations (`compute_loop_cycles`) to the hidden
//!    window `ext_cycles`, and costs one extra copy buffer (the copy's
//!    lifetime now overlaps its predecessor's — the `fits_size` check
//!    prices this against the layer capacity *after in-place*). Stop when
//!    the size constraint would be violated ("this extension is not valid
//!    and no further actions are performed for this BT") or when
//!    `ext_cycles ≥ BT_time` ("fully time extended").
//! 4. `dma_priority()`: assign DMA service priorities. The paper names but
//!    does not specify this routine; we prioritize by ascending slack
//!    (`ext_cycles − BT_time`), i.e. the least-hidden transfer is served
//!    first — see DESIGN.md.
//!
//! Platforms without a memory transfer engine get `applicable = false` and
//! no extensions ("In case that our architecture does not support a memory
//! transfer engine, TE are not applicable").

use std::collections::HashMap;

use mhla_ir::{AccessKind, LoopId, NodeId};
use mhla_reuse::CandidateId;

use crate::cost::{CostModel, TransferStream};
use crate::types::Assignment;

/// The Time-Extension decision for one block-transfer stream.
#[derive(Clone, PartialEq, Debug)]
pub struct BlockTransfer {
    /// The underlying transfer stream (copy, layers, sizes, entry counts).
    pub stream: TransferStream,
    /// DMA cycles of one steady-state transfer instance.
    pub bt_time: u64,
    /// DMA cycles of a first (full-fill) transfer instance.
    pub bt_time_full: u64,
    /// Figure 1's sort factor: `BT_time / size`.
    pub sort_factor: f64,
    /// Hoistable loop levels, innermost (the owner) first, as bounded by
    /// dependency analysis.
    pub freedom: Vec<LoopId>,
    /// Selected extension depth: 0 = no TE, k = hoisted across the first
    /// `k` freedom loops.
    pub hoist_depth: usize,
    /// CPU cycles the extension hides (`ext_cycles` in Figure 1).
    pub ext_cycles: u64,
    /// Copy buffers required (1 + hoist_depth).
    pub buffers: u32,
    /// Whether `ext_cycles ≥ BT_time` (the transfer is fully hidden in
    /// steady state).
    pub fully_hidden: bool,
    /// DMA service priority (0 = most urgent).
    pub priority: u32,
}

impl BlockTransfer {
    /// Residual stall of one steady-state instance after the extension.
    pub fn residual_stall(&self) -> u64 {
        self.bt_time.saturating_sub(self.ext_cycles)
    }
}

/// Result of the TE step.
#[derive(Clone, PartialEq, Debug)]
pub struct TeSchedule {
    /// Whether the platform supports TE at all (has a DMA engine).
    pub applicable: bool,
    /// Per-stream decisions, in DMA priority order.
    pub transfers: Vec<BlockTransfer>,
}

impl TeSchedule {
    /// Buffer multipliers to feed capacity checks (copies with TE need
    /// `1 + hoist_depth` buffers).
    pub fn buffer_map(&self) -> HashMap<CandidateId, u32> {
        self.transfers
            .iter()
            .filter(|t| t.buffers > 1)
            .map(|t| (t.stream.copy.candidate, t.buffers))
            .collect()
    }

    /// Static estimate of the block-transfer stall cycles remaining after
    /// TE (first fills pay their residual against `bt_time_full`).
    pub fn residual_stall_cycles(&self) -> u64 {
        self.transfers
            .iter()
            .map(|t| {
                let first = t.stream.first_entries * t.bt_time_full.saturating_sub(t.ext_cycles);
                let steady = (t.stream.entries - t.stream.first_entries) * t.residual_stall();
                first + steady
            })
            .sum()
    }

    /// How many transfers got at least one loop of extension.
    pub fn extended_count(&self) -> usize {
        self.transfers.iter().filter(|t| t.hoist_depth > 0).count()
    }
}

/// Runs the TE step (Figure 1) on a fixed assignment.
pub fn plan(model: &CostModel<'_>, assignment: &Assignment) -> TeSchedule {
    plan_with_stats(model, assignment).0
}

/// [`plan`], additionally reporting (as a bitmask by layer index) the
/// layers at which the `fits_size` buffer check first overflowed and
/// rejected an extension, plus the per-layer *rejection floors*: the
/// smallest byte requirement of any rejected buffer check at each layer
/// (`u64::MAX` where none occurred). A layer whose bit is clear never
/// blocked an extension: every stop there was "fully time extended" or
/// exhausted freedom — capacity-independent conditions — so the same
/// schedule reproduces verbatim when only such layers grow (one leg of
/// the pruned grid sweep's saturation argument); a constrained layer
/// grown to a capacity still below its floor rejects the same buffer
/// checks, extending the replay to bounded growth (the trial buffer
/// sizes are capacity-independent). The schedule is byte-for-byte the
/// one [`plan`] returns.
pub fn plan_with_stats(
    model: &CostModel<'_>,
    assignment: &Assignment,
) -> (TeSchedule, u64, Vec<u64>) {
    let mut constrained_layers = 0u64;
    let mut reject_floors = vec![u64::MAX; model.platform().layer_count()];
    let streams = model.transfer_streams(assignment);
    let Some(dma) = model.platform().dma() else {
        // No memory transfer engine: TE not applicable (paper, §1).
        let transfers = streams
            .into_iter()
            .map(|stream| no_te(model, stream))
            .collect();
        return (
            TeSchedule {
                applicable: false,
                transfers,
            },
            constrained_layers,
            reject_floors,
        );
    };

    // --- Figure 1, first loop: build the BT list with times, sort factors
    // and freedom loops. -------------------------------------------------
    let mut bts: Vec<BlockTransfer> = Vec::new();
    for stream in streams {
        let src = model.platform().layer(stream.src);
        let dst = model.platform().layer(stream.dst);
        let steady_bytes = if stream.entries > stream.first_entries {
            stream.steady_bytes
        } else {
            stream.full_bytes
        };
        let bt_time = dma.transfer_cycles(steady_bytes, src, dst);
        let bt_time_full = dma.transfer_cycles(stream.full_bytes, src, dst);
        let size = stream.buffer_bytes.max(1);
        let freedom = freedom_loops(model, &stream);
        bts.push(BlockTransfer {
            sort_factor: bt_time as f64 / size as f64,
            bt_time,
            bt_time_full,
            freedom,
            hoist_depth: 0,
            ext_cycles: 0,
            buffers: 1,
            fully_hidden: bt_time == 0,
            priority: 0,
            stream,
        });
    }

    // --- sort(BT_list, BT_sort_factor): greedy order. --------------------
    bts.sort_by(|a, b| {
        b.sort_factor
            .partial_cmp(&a.sort_factor)
            .unwrap_or(std::cmp::Ordering::Equal)
    });

    // --- Figure 1, second loop: extend each BT while it fits. ------------
    let mut buffers: HashMap<CandidateId, u32> = HashMap::new();
    for bt in &mut bts {
        let mut ext_cycles = 0u64;
        let mut hoist = 0usize;
        for (k, &fl) in bt.freedom.iter().enumerate() {
            // fits_size(BT(i), loop): one more buffer for this copy.
            let mut trial = buffers.clone();
            trial.insert(bt.stream.copy.candidate, (k + 2) as u32);
            if let Err(e) = model.check_capacity(assignment, &trial) {
                // Extension not valid: stop extending this BT.
                if let crate::types::AssignmentError::CapacityExceeded {
                    layer, required, ..
                } = e
                {
                    crate::types::mark_layer(&mut constrained_layers, layer);
                    if let Some(f) = reject_floors.get_mut(layer.index()) {
                        *f = (*f).min(required);
                    }
                }
                break;
            }
            // cpu_cycles = compute_loop_cycles(): one iteration window of
            // the hoisted level under the current assignment.
            let cpu_cycles = model.cycles_per_iteration(assignment, fl);
            ext_cycles += cpu_cycles;
            hoist = k + 1;
            buffers.insert(bt.stream.copy.candidate, (hoist + 1) as u32);
            if ext_cycles >= bt.bt_time {
                // Fully time extended.
                break;
            }
        }
        bt.hoist_depth = hoist;
        bt.ext_cycles = ext_cycles;
        bt.buffers = (hoist + 1) as u32;
        bt.fully_hidden = ext_cycles >= bt.bt_time;
    }

    // --- dma_priority(): ascending slack, most urgent first. -------------
    bts.sort_by_key(|t| t.ext_cycles as i64 - t.bt_time as i64);
    for (i, bt) in bts.iter_mut().enumerate() {
        bt.priority = i as u32;
    }

    (
        TeSchedule {
            applicable: true,
            transfers: bts,
        },
        constrained_layers,
        reject_floors,
    )
}

fn no_te(model: &CostModel<'_>, stream: TransferStream) -> BlockTransfer {
    // Without an engine the "transfer time" is CPU copy time; recorded for
    // reporting but never extended.
    let elem = model
        .program()
        .array(stream.copy.candidate.array)
        .elem
        .bytes()
        .max(1);
    let per_elem =
        model.platform().access_cycles(stream.src) + model.platform().access_cycles(stream.dst);
    let bt_time = (stream.steady_bytes / elem) * per_elem;
    let bt_time_full = (stream.full_bytes / elem) * per_elem;
    BlockTransfer {
        sort_factor: bt_time as f64 / stream.buffer_bytes.max(1) as f64,
        bt_time,
        bt_time_full,
        freedom: Vec::new(),
        hoist_depth: 0,
        ext_cycles: 0,
        buffers: 1,
        fully_hidden: false,
        priority: 0,
        stream,
    }
}

/// Dependency analysis (`dep_analysis` + `loops_between` in Figure 1): the
/// loop levels across which a BT's initiation may be hoisted.
///
/// Consults the [`ExplorationContext`](crate::ExplorationContext) cache
/// when the model carries one (the sweep fast path — the freedom loops are
/// capacity-independent, so one derivation serves every sweep point) and
/// falls back to [`candidate_freedom`] otherwise.
fn freedom_loops(model: &CostModel<'_>, stream: &TransferStream) -> Vec<LoopId> {
    if let Some(cached) = model.cached_freedom(stream.copy.candidate) {
        return cached.to_vec();
    }
    candidate_freedom(
        model.program(),
        model.info(),
        stream.copy.candidate.array,
        stream.owner,
    )
}

/// The freedom loops of one copy candidate, derived from scratch.
///
/// Walking outward from the owning loop, a level can be crossed only if no
/// statement inside it writes the source array — otherwise the data for
/// the next iteration might not have been produced yet (RAW dependency).
/// Whole-array copies (one fill before the nest) get no freedom loops in
/// this model; their single transfer is charged at startup.
pub(crate) fn candidate_freedom(
    program: &mhla_ir::Program,
    info: &mhla_ir::ProgramInfo<'_>,
    array: mhla_ir::ArrayId,
    owner: Option<LoopId>,
) -> Vec<LoopId> {
    let Some(owner) = owner else {
        return Vec::new();
    };

    let writes_inside = |l: LoopId| -> bool {
        info.subtree_stmts(NodeId::Loop(l)).iter().any(|&s| {
            program
                .stmt(s)
                .accesses
                .iter()
                .any(|a| a.array == array && a.kind == AccessKind::Write)
        })
    };

    let mut freedom = Vec::new();
    let mut level = Some(owner);
    while let Some(l) = level {
        if writes_inside(l) {
            break;
        }
        freedom.push(l);
        level = info.parent(NodeId::Loop(l));
    }
    freedom
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classify::classify_arrays;
    use crate::cost::CostModel;
    use crate::types::{SelectedCopy, TransferPolicy};
    use mhla_hierarchy::{LayerId, Platform};
    use mhla_ir::{ElemType, Program, ProgramBuilder};
    use mhla_reuse::ReuseAnalysis;

    /// Blocked streaming kernel: each block-loop iteration consumes a
    /// 64-byte tile and computes on it long enough to hide its fetch.
    /// `for blk in 0..32 { for i in 0..64 { read data[64*blk + i] (heavy) } }`
    fn blocked(compute: u64) -> (Program, mhla_ir::ArrayId, LoopId) {
        let mut b = ProgramBuilder::new("blocked");
        let data = b.array("data", &[2048], ElemType::U8);
        let lb = b.begin_loop("blk", 0, 32, 1);
        let li = b.begin_loop("i", 0, 64, 1);
        let (blk, i) = (b.var(lb), b.var(li));
        b.stmt("use")
            .read(data, vec![blk * 64 + i])
            .compute_cycles(compute)
            .finish();
        b.end_loop();
        b.end_loop();
        (b.finish(), data, lb)
    }

    fn staged_assignment(
        p: &Program,
        reuse: &ReuseAnalysis,
        array: mhla_ir::ArrayId,
        at: LoopId,
    ) -> Assignment {
        let idx = reuse
            .array(array)
            .candidates()
            .iter()
            .position(|c| c.at_loop == Some(at))
            .unwrap();
        let mut a = Assignment::baseline(p.array_count(), TransferPolicy::FullRefresh);
        a.add_copy(SelectedCopy {
            candidate: CandidateId { array, index: idx },
            layer: LayerId(1),
        });
        a
    }

    #[test]
    fn te_hides_the_tile_fetch_with_double_buffering() {
        let (p, data, lb) = blocked(4);
        let pf = Platform::embedded_default(1024);
        let reuse = ReuseAnalysis::analyze(&p);
        let model = CostModel::new(&p, &pf, &reuse, classify_arrays(&p, &[]));
        let a = staged_assignment(&p, &reuse, data, lb);

        let te = plan(&model, &a);
        assert!(te.applicable);
        assert_eq!(te.transfers.len(), 1);
        let bt = &te.transfers[0];
        // One blk iteration: 64 × (4 compute + 1 SPM access) = 320 cycles;
        // BT: 30 setup + 64 B at 0.25 B/cyc = 286 cycles → hidden by one level.
        assert_eq!(bt.bt_time, 286);
        assert_eq!(bt.hoist_depth, 1);
        assert_eq!(bt.ext_cycles, 320);
        assert!(bt.fully_hidden);
        assert_eq!(bt.buffers, 2, "double buffering");
        assert_eq!(te.residual_stall_cycles(), 0);
        assert_eq!(te.buffer_map()[&bt.stream.copy.candidate], 2);
    }

    #[test]
    fn te_extends_deeper_when_one_level_is_not_enough() {
        // Tiny compute: one blk iteration hides only part of the BT.
        let (p, data, lb) = blocked(0);
        let pf = Platform::embedded_default(4096);
        let reuse = ReuseAnalysis::analyze(&p);
        let model = CostModel::new(&p, &pf, &reuse, classify_arrays(&p, &[]));
        let a = staged_assignment(&p, &reuse, data, lb);
        let te = plan(&model, &a);
        let bt = &te.transfers[0];
        // One blk iteration = 64 SPM accesses = 64 cycles < 286-cycle BT →
        // the greedy walks to the next freedom level.
        assert!(bt.hoist_depth >= 1);
        assert!(bt.ext_cycles >= 64);
    }

    #[test]
    fn size_constraint_blocks_extension() {
        let (p, data, lb) = blocked(4);
        // Exactly one 64-B buffer fits: the double buffer does not.
        let pf = Platform::embedded_default(64);
        let reuse = ReuseAnalysis::analyze(&p);
        let model = CostModel::new(&p, &pf, &reuse, classify_arrays(&p, &[]));
        let a = staged_assignment(&p, &reuse, data, lb);
        let te = plan(&model, &a);
        let bt = &te.transfers[0];
        assert_eq!(bt.hoist_depth, 0, "no room for a second buffer");
        assert_eq!(bt.ext_cycles, 0);
        assert!(!bt.fully_hidden);
        assert!(te.residual_stall_cycles() > 0);
        assert!(te.buffer_map().is_empty());
    }

    #[test]
    fn raw_dependency_blocks_hoisting() {
        // Producer writes the block consumed in the same blk iteration:
        // prefetching the next tile would read unproduced data.
        let mut b = ProgramBuilder::new("rawdep");
        let data = b.array("data", &[2048], ElemType::U8);
        let lb = b.begin_loop("blk", 0, 32, 1);
        let li = b.begin_loop("i", 0, 64, 1);
        let (blk, i) = (b.var(lb), b.var(li));
        b.stmt("produce")
            .write(data, vec![blk.clone() * 64 + i.clone()])
            .finish();
        b.stmt("consume")
            .read(data, vec![blk * 64 + i])
            .compute_cycles(4)
            .finish();
        b.end_loop();
        b.end_loop();
        let p = b.finish();
        let pf = Platform::embedded_default(1024);
        let reuse = ReuseAnalysis::analyze(&p);
        let model = CostModel::new(&p, &pf, &reuse, classify_arrays(&p, &[]));
        let a = staged_assignment(&p, &reuse, data, lb);
        let te = plan(&model, &a);
        let bt = &te.transfers[0];
        assert!(bt.freedom.is_empty(), "writes inside block all hoisting");
        assert_eq!(bt.hoist_depth, 0);
    }

    #[test]
    fn no_dma_means_not_applicable() {
        let (p, data, lb) = blocked(4);
        let pf = Platform::without_dma(1024);
        let reuse = ReuseAnalysis::analyze(&p);
        let model = CostModel::new(&p, &pf, &reuse, classify_arrays(&p, &[]));
        let a = staged_assignment(&p, &reuse, data, lb);
        let te = plan(&model, &a);
        assert!(!te.applicable);
        assert!(te.transfers.iter().all(|t| t.hoist_depth == 0));
        assert_eq!(te.extended_count(), 0);
    }

    #[test]
    fn priorities_serve_least_hidden_first() {
        // Two staged tiles with different compute coverage.
        let mut b = ProgramBuilder::new("two");
        let fat = b.array("fat", &[4096], ElemType::U8);
        let thin = b.array("thin", &[256], ElemType::U8);
        let lb = b.begin_loop("blk", 0, 16, 1);
        // fat: 256-B tile, light compute (hard to hide).
        let lf = b.begin_loop("f", 0, 256, 1);
        let (blk, f) = (b.var(lb), b.var(lf));
        b.stmt("uf").read(fat, vec![blk.clone() * 256 + f]).finish();
        b.end_loop();
        // thin: 16-B tile, heavy compute (easy to hide).
        let lt = b.begin_loop("t", 0, 16, 1);
        let t = b.var(lt);
        b.stmt("ut")
            .read(thin, vec![blk * 16 + t])
            .compute_cycles(32)
            .finish();
        b.end_loop();
        b.end_loop();
        let p = b.finish();
        let pf = Platform::embedded_default(2048);
        let reuse = ReuseAnalysis::analyze(&p);
        let model = CostModel::new(&p, &pf, &reuse, classify_arrays(&p, &[]));

        let mut a = Assignment::baseline(p.array_count(), TransferPolicy::FullRefresh);
        for (arr, at) in [(fat, lb), (thin, lb)] {
            let idx = reuse
                .array(arr)
                .candidates()
                .iter()
                .position(|c| c.at_loop == Some(at))
                .unwrap();
            a.add_copy(SelectedCopy {
                candidate: CandidateId {
                    array: arr,
                    index: idx,
                },
                layer: LayerId(1),
            });
        }
        let te = plan(&model, &a);
        assert_eq!(te.transfers.len(), 2);
        // Priority order == ascending slack; the first entry is the most
        // urgent (least hidden) transfer.
        let slack0 = te.transfers[0].ext_cycles as i64 - te.transfers[0].bt_time as i64;
        let slack1 = te.transfers[1].ext_cycles as i64 - te.transfers[1].bt_time as i64;
        assert!(slack0 <= slack1);
        assert_eq!(te.transfers[0].priority, 0);
        assert_eq!(te.transfers[1].priority, 1);
    }

    use mhla_ir::LoopId;
}
