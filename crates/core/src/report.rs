//! Human-readable and CSV reporting of MHLA results.

use std::fmt::Write as _;

use mhla_ir::Program;
use mhla_reuse::ReuseAnalysis;

use crate::driver::MhlaResult;
use crate::explore::{GridSweep, RefinedGridSweep, Sweep};
use crate::pareto;
use crate::types::Objective;

/// Renders the paper's four Figure-2 bars for one application as text.
///
/// ```text
/// app            baseline     mhla   mhla+te    ideal
/// me              1234567   456789    345678   300000
/// ```
pub fn performance_row(name: &str, r: &MhlaResult) -> String {
    format!(
        "{name:<18} {:>12} {:>12} {:>12} {:>12}",
        r.baseline_cycles(),
        r.mhla_cycles(),
        r.mhla_te_cycles(),
        r.ideal_cycles()
    )
}

/// Header matching [`performance_row`].
pub fn performance_header() -> String {
    format!(
        "{:<18} {:>12} {:>12} {:>12} {:>12}",
        "application", "baseline", "mhla", "mhla+te", "ideal"
    )
}

/// Renders one Figure-3 energy row (baseline vs MHLA, µJ, plus savings).
pub fn energy_row(name: &str, r: &MhlaResult) -> String {
    let base = r.baseline_energy_pj() / 1e6;
    let opt = r.mhla_energy_pj() / 1e6;
    let saving = if r.baseline_energy_pj() > 0.0 {
        100.0 * (1.0 - r.mhla_energy_pj() / r.baseline_energy_pj())
    } else {
        0.0
    };
    format!("{name:<18} {base:>12.2} {opt:>12.2} {saving:>9.1}%")
}

/// Header matching [`energy_row`].
pub fn energy_header() -> String {
    format!(
        "{:<18} {:>12} {:>12} {:>10}",
        "application", "base [uJ]", "mhla [uJ]", "saving"
    )
}

/// Describes an assignment: homes, copies, TE decisions.
pub fn describe(program: &Program, reuse: &ReuseAnalysis, r: &MhlaResult) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "assignment for `{}`:", program.name());
    for (aid, decl) in program.arrays() {
        let home = r.assignment.home(aid);
        let _ = writeln!(
            out,
            "  {} `{}` ({} B) -> {home}",
            aid,
            decl.name,
            decl.bytes()
        );
        for copy in r.assignment.copies_of(aid) {
            let cc = reuse.candidate(copy.candidate);
            let _ = writeln!(out, "    copy {cc} -> {}", copy.layer);
        }
    }
    let _ = writeln!(
        out,
        "time extensions: {} ({} of {} transfers extended)",
        if r.te.applicable {
            "applicable"
        } else {
            "not applicable"
        },
        r.te.extended_count(),
        r.te.transfers.len()
    );
    for bt in &r.te.transfers {
        let _ = writeln!(
            out,
            "    prio {} {}: bt_time {} cyc, ext {} cyc, {} buffer(s){}",
            bt.priority,
            bt.stream.copy,
            bt.bt_time,
            bt.ext_cycles,
            bt.buffers,
            if bt.fully_hidden { ", hidden" } else { "" }
        );
    }
    out
}

/// CSV of a capacity sweep: `capacity,cycles_baseline,cycles_mhla,
/// cycles_mhla_te,cycles_ideal,energy_baseline_pj,energy_mhla_pj`.
pub fn sweep_csv(s: &Sweep) -> String {
    let mut out = String::from(
        "capacity,cycles_baseline,cycles_mhla,cycles_mhla_te,cycles_ideal,energy_baseline_pj,energy_mhla_pj\n",
    );
    for p in &s.points {
        let _ = writeln!(
            out,
            "{},{},{},{},{},{:.1},{:.1}",
            p.capacity,
            p.result.baseline_cycles(),
            p.result.mhla_cycles(),
            p.result.mhla_te_cycles(),
            p.result.ideal_cycles(),
            p.result.baseline_energy_pj(),
            p.result.mhla_energy_pj()
        );
    }
    out
}

/// The fixed cost columns shared by [`sweep_csv`] and [`grid_csv`].
const COST_COLUMNS: [&str; 6] = [
    "cycles_baseline",
    "cycles_mhla",
    "cycles_mhla_te",
    "cycles_ideal",
    "energy_baseline_pj",
    "energy_mhla_pj",
];

/// RFC 4180 field escaping: fields containing a comma, quote, CR or LF are
/// quoted (with quotes doubled); everything else passes through unchanged.
fn csv_field(s: &str) -> String {
    if s.contains(['"', ',', '\n', '\r']) {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

/// CSV of a grid sweep: one capacity column per axis (named after the
/// resized layer), then the same cost columns as [`sweep_csv`].
///
/// Every row is assembled field-by-field against the header, so the
/// column count can never silently drift from the axis count when grids
/// grow new dimensions, and axis labels are CSV-escaped.
///
/// # Panics
///
/// Panics if a point's capacity vector does not match the axis count —
/// such a `GridSweep` is malformed.
pub fn grid_csv(g: &GridSweep) -> String {
    let header: Vec<String> = g
        .layers
        .iter()
        .map(|l| csv_field(&format!("capacity_{l}")))
        .chain(COST_COLUMNS.iter().map(|c| c.to_string()))
        .collect();
    let mut out = header.join(",");
    out.push('\n');
    for p in &g.points {
        assert_eq!(
            p.capacities.len(),
            g.layers.len(),
            "grid point has {} capacities for {} axes",
            p.capacities.len(),
            g.layers.len()
        );
        let row: Vec<String> = p
            .capacities
            .iter()
            .map(|c| c.to_string())
            .chain([
                p.result.baseline_cycles().to_string(),
                p.result.mhla_cycles().to_string(),
                p.result.mhla_te_cycles().to_string(),
                p.result.ideal_cycles().to_string(),
                format!("{:.1}", p.result.baseline_energy_pj()),
                format!("{:.1}", p.result.mhla_energy_pj()),
            ])
            .collect();
        debug_assert_eq!(row.len(), header.len());
        out.push_str(&row.join(","));
        out.push('\n');
    }
    out
}

/// Renders a grid sweep's Pareto frontier as a table: one row per point on
/// the cycle and/or energy surface, flagged `C` / `E` / `CE`, in
/// lexicographic capacity order.
///
/// ```text
/// M1 [B]   M2 [B]   front      mhla+te    energy [uJ]
/// 1024     256      CE         345678     12.34
/// ```
pub fn grid_frontier(g: &GridSweep) -> String {
    let cycles: std::collections::BTreeSet<usize> = g.pareto_cycles().into_iter().collect();
    let energy: std::collections::BTreeSet<usize> = g.pareto_energy().into_iter().collect();
    let mut out = String::new();
    for l in &g.layers {
        let _ = write!(out, "{:<9}", format!("{l} [B]"));
    }
    let _ = writeln!(
        out,
        "{:<7} {:>12} {:>14}",
        "front", "mhla+te", "energy [uJ]"
    );
    for (i, p) in g.points.iter().enumerate() {
        let (on_c, on_e) = (cycles.contains(&i), energy.contains(&i));
        if !on_c && !on_e {
            continue;
        }
        for c in &p.capacities {
            let _ = write!(out, "{c:<9}");
        }
        let flag = match (on_c, on_e) {
            (true, true) => "CE",
            (true, false) => "C",
            _ => "E",
        };
        let _ = writeln!(
            out,
            "{flag:<7} {:>12} {:>14.2}",
            p.cycles(),
            p.energy_pj() / 1e6
        );
    }
    out
}

/// Renders one adaptive-refinement summary row: the virtual fine
/// lattice's size, how little of it was actually searched, and the
/// certificate ledger that closed the rest.
///
/// ```text
/// application     virtual     evals   ratio     closed  certified
/// me               173745      3108   1.79%       1034      10213
/// ```
pub fn refine_row(name: &str, r: &RefinedGridSweep) -> String {
    let s = &r.stats;
    format!(
        "{name:<18} {:>9} {:>9} {:>6.2}% {:>10} {:>10}",
        s.virtual_points,
        s.evaluated,
        100.0 * s.eval_ratio(),
        s.cells_closed_mask + s.cells_closed_floor,
        s.corners_certified
    )
}

/// Header matching [`refine_row`].
pub fn refine_header() -> String {
    format!(
        "{:<18} {:>9} {:>9} {:>7} {:>10} {:>10}",
        "application", "virtual", "evals", "ratio", "closed", "certified"
    )
}

/// `(capacities…, objective score)` coordinates of a grid's points at the
/// given indices — the representation the frontier-dominance utilities
/// ([`pareto::front_dominates`] / [`pareto::front_deltas`]) consume.
pub fn objective_coords(g: &GridSweep, indices: &[usize], objective: &Objective) -> Vec<Vec<f64>> {
    indices
        .iter()
        .map(|&i| {
            let p = &g.points[i];
            let mut c: Vec<f64> = p.capacities.iter().map(|&c| c as f64).collect();
            c.push(p.objective_score(objective));
            c
        })
        .collect()
}

/// Renders the improving-vs-cold comparison of two sweeps of the *same*
/// grid (same axes, same lexicographic point order — e.g.
/// [`sweep_grid_run`](crate::explore::sweep_grid_run) in both
/// [`SearchMode`](crate::explore::SearchMode)s): one row per strictly
/// improved point (capacities, cold and improving objective score, the
/// relative improvement), then a summary line with the objective-frontier
/// dominance verdict.
///
/// ```text
/// M1 [B]   M2 [B]   M3 [B]             cold      improving    delta
/// 16384    2048     256            345678.0       341002.0    1.35%
/// 12 of 90 points strictly improved; frontier dominates-or-equals: yes
/// ```
///
/// # Panics
///
/// Panics if the two sweeps do not cover the same points in the same
/// order — comparing different grids is meaningless.
pub fn improving_delta_table(
    cold: &GridSweep,
    improving: &GridSweep,
    objective: &Objective,
) -> String {
    assert_eq!(
        cold.points.len(),
        improving.points.len(),
        "improving_delta_table: grids differ in size"
    );
    let mut out = String::new();
    for l in &cold.layers {
        let _ = write!(out, "{:<9}", format!("{l} [B]"));
    }
    let _ = writeln!(out, "{:>16} {:>14} {:>8}", "cold", "improving", "delta");
    let mut improved = 0usize;
    for (c, i) in cold.points.iter().zip(&improving.points) {
        assert_eq!(
            c.capacities, i.capacities,
            "improving_delta_table: grids differ in point order"
        );
        let (sc, si) = (c.objective_score(objective), i.objective_score(objective));
        if si >= sc {
            continue;
        }
        improved += 1;
        for cap in &c.capacities {
            let _ = write!(out, "{cap:<9}");
        }
        let _ = writeln!(
            out,
            "{sc:>16.1} {si:>14.1} {:>7.2}%",
            100.0 * (1.0 - si / sc)
        );
    }
    let dominates = pareto::front_dominates(
        &objective_coords(improving, &improving.pareto_objective(objective), objective),
        &objective_coords(cold, &cold.pareto_objective(objective), objective),
    );
    let _ = writeln!(
        out,
        "{improved} of {} points strictly improved; frontier dominates-or-equals: {}",
        cold.points.len(),
        if dominates { "yes" } else { "NO" }
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::Mhla;
    use crate::types::MhlaConfig;
    use mhla_hierarchy::Platform;
    use mhla_ir::{ElemType, ProgramBuilder};

    fn result() -> (Program, ReuseAnalysis, MhlaResult) {
        let mut b = ProgramBuilder::new("tiny");
        let tab = b.array("tab", &[64], ElemType::U8);
        let lr = b.begin_loop("rep", 0, 16, 1);
        let li = b.begin_loop("i", 0, 64, 1);
        let iv = b.var(li);
        b.stmt("s").read(tab, vec![iv]).finish();
        b.end_loop();
        b.end_loop();
        let _ = lr;
        let p = b.finish();
        let pf = Platform::embedded_default(256);
        let mhla = Mhla::new(&p, &pf, MhlaConfig::default());
        let reuse = mhla.reuse().clone();
        let r = mhla.run();
        (p, reuse, r)
    }

    #[test]
    fn rows_align_with_headers() {
        let (_, _, r) = result();
        let h = performance_header();
        let row = performance_row("tiny", &r);
        assert_eq!(h.len(), row.len(), "\n{h}\n{row}");
        let eh = energy_header();
        let er = energy_row("tiny", &r);
        assert!(er.contains('%'));
        assert!(!eh.is_empty());
    }

    #[test]
    fn describe_names_arrays_and_te() {
        let (p, reuse, r) = result();
        let text = describe(&p, &reuse, &r);
        assert!(text.contains("`tab`"), "{text}");
        assert!(text.contains("time extensions: applicable"), "{text}");
    }

    #[test]
    fn grid_csv_and_frontier_cover_every_axis() {
        let (p, _, _) = result();
        let pf = mhla_hierarchy::Platform::three_level(1024, 128);
        let g = crate::explore::sweep_grid(
            &p,
            &pf,
            &[
                crate::explore::GridAxis::new(mhla_hierarchy::LayerId(1), vec![256u64, 1024]),
                crate::explore::GridAxis::new(mhla_hierarchy::LayerId(2), vec![64u64, 128]),
            ],
            &MhlaConfig::default(),
        );
        let csv = grid_csv(&g);
        assert!(
            csv.starts_with("capacity_M1,capacity_M2,cycles_baseline"),
            "{csv}"
        );
        assert_eq!(csv.lines().count(), 1 + g.points.len());
        let table = grid_frontier(&g);
        assert!(
            table.contains("M1 [B]") && table.contains("M2 [B]"),
            "{table}"
        );
        assert!(table.lines().count() >= 2, "frontier non-empty:\n{table}");
    }

    #[test]
    fn grid_csv_three_axis_header_matches_every_row() {
        // Guard against silent header drift when grids grow axes (bit us
        // when PR 2 generalized the grid to N dimensions).
        let (p, _, _) = result();
        let pf = mhla_hierarchy::Platform::four_level(4096, 1024, 128);
        let g = crate::explore::sweep_grid(
            &p,
            &pf,
            &[
                crate::explore::GridAxis::new(mhla_hierarchy::LayerId(1), vec![2048u64, 4096]),
                crate::explore::GridAxis::new(mhla_hierarchy::LayerId(2), vec![512u64, 1024]),
                crate::explore::GridAxis::new(mhla_hierarchy::LayerId(3), vec![64u64, 128]),
            ],
            &MhlaConfig::default(),
        );
        assert_eq!(g.points.len(), 8);
        let csv = grid_csv(&g);
        let mut lines = csv.lines();
        let header = lines.next().unwrap();
        assert_eq!(
            header,
            "capacity_M1,capacity_M2,capacity_M3,cycles_baseline,cycles_mhla,\
             cycles_mhla_te,cycles_ideal,energy_baseline_pj,energy_mhla_pj"
        );
        let cols = header.split(',').count();
        assert_eq!(cols, 3 + 6);
        let mut rows = 0;
        for line in lines {
            assert_eq!(line.split(',').count(), cols, "row arity drift: {line}");
            rows += 1;
        }
        assert_eq!(rows, g.points.len());
    }

    #[test]
    fn improving_delta_table_reports_improvements_and_dominance() {
        use crate::explore::{sweep_grid_run, sweep_grid_with, SearchMode, SweepOptions};
        let (p, _, _) = result();
        let pf = mhla_hierarchy::Platform::three_level(1024, 128);
        let axes = [
            crate::explore::GridAxis::new(mhla_hierarchy::LayerId(1), vec![256u64, 1024]),
            crate::explore::GridAxis::new(mhla_hierarchy::LayerId(2), vec![64u64, 128]),
        ];
        let config = MhlaConfig::default();
        let cold = sweep_grid_with(
            &p,
            &pf,
            &axes,
            &config,
            SweepOptions {
                warm_start: false,
                ..SweepOptions::default()
            },
        );
        let improving = sweep_grid_run(
            &p,
            &pf,
            &axes,
            &config,
            SweepOptions {
                mode: SearchMode::Improving,
                ..SweepOptions::default()
            },
        )
        .sweep;
        let table = improving_delta_table(&cold, &improving, &config.objective);
        assert!(
            table.contains("M1 [B]") && table.contains("improving"),
            "{table}"
        );
        assert!(
            table.contains("frontier dominates-or-equals: yes"),
            "{table}"
        );
        // An identical pair trivially dominates with zero improvements.
        let self_table = improving_delta_table(&cold, &cold, &config.objective);
        assert!(self_table.contains("0 of 4 points"), "{self_table}");
    }

    #[test]
    fn csv_fields_are_escaped() {
        assert_eq!(csv_field("capacity_M1"), "capacity_M1");
        assert_eq!(csv_field("a,b"), "\"a,b\"");
        assert_eq!(csv_field("say \"hi\""), "\"say \"\"hi\"\"\"");
        assert_eq!(csv_field("two\nlines"), "\"two\nlines\"");
    }

    #[test]
    fn sweep_csv_has_one_line_per_point_plus_header() {
        let (p, _, _) = result();
        let pf = Platform::embedded_default(256);
        let s = crate::explore::sweep(
            &p,
            &pf,
            mhla_hierarchy::LayerId(1),
            &[64, 128],
            &MhlaConfig::default(),
        );
        let csv = sweep_csv(&s);
        assert_eq!(csv.lines().count(), 3);
        assert!(csv.starts_with("capacity,"));
    }

    use mhla_ir::Program;
}
