//! Sort-based Pareto dominance filtering (minimization).
//!
//! The trade-off exploration reports Pareto surfaces over points of the
//! form `(capacity vector…, objective)`. The seed implementation filtered
//! them with an all-pairs dominance scan — `O(n²)`, fine at hundreds of
//! points, hopeless at the 10⁵+ points a pruned 4-level grid can visit.
//! This module provides the shared replacement:
//!
//! * [`front`] — the production filter. Points are sorted lexicographically
//!   (`O(n log n)`); in sorted order every dominator precedes what it
//!   dominates, so one forward sweep suffices. The sweep itself is
//!   `O(n)` for 2-D points, `O(n log n)` for 3-D points (a monotone
//!   staircase over the trailing two coordinates), and falls back to an
//!   incumbent-front cull for ≥ 4-D points (`O(n·f)` with `f` the front
//!   size — still far below all-pairs on real grids, where fronts are
//!   small).
//! * [`front_quadratic`] — the frozen all-pairs oracle, kept `pub` so the
//!   equivalence tests and benches can compare the two on arbitrary point
//!   clouds (see `crates/core/tests/pareto_filter.rs`).
//!
//! Semantics, identical for both: point `i` survives iff no point `j` has
//! every coordinate ≤ `i`'s with the two points not exactly equal.
//! Duplicate points never dominate each other, so all copies of a
//! surviving point survive. Indices are returned in ascending input order.

use std::collections::BTreeMap;

/// Total-ordering wrapper so `f64` coordinates can key a [`BTreeMap`]
/// (ordered by [`f64::total_cmp`]).
#[derive(Clone, Copy, PartialEq, Debug)]
struct OrdF64(f64);

impl Eq for OrdF64 {}

impl PartialOrd for OrdF64 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OrdF64 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

fn lex_cmp(a: &[f64], b: &[f64]) -> std::cmp::Ordering {
    for (x, y) in a.iter().zip(b) {
        let c = x.total_cmp(y);
        if c != std::cmp::Ordering::Equal {
            return c;
        }
    }
    std::cmp::Ordering::Equal
}

/// `a ≤ b` in every coordinate.
fn le(a: &[f64], b: &[f64]) -> bool {
    a.iter().zip(b).all(|(x, y)| x <= y)
}

/// Whether some point of `front` is componentwise ≤ `probe` — the
/// front-vs-floor dominance query of the adaptive refinement scheduler.
///
/// The scheduler encodes each evaluated point as `(capacities…, value)`
/// and probes with a cell's `(minimal corner…, cost floor)`: a covering
/// row is an *already evaluated* point at componentwise-smaller-or-equal
/// capacities whose achieved value is at or below anything the cell can
/// ever reach, so the cell cannot contribute to the frontier and is
/// closed without evaluation. Equal rows cover (`≤`, like the skip rules
/// of the pruned sweep). An empty front covers nothing.
///
/// # Panics
///
/// Panics if the rows' dimensions do not all match `probe`'s.
pub fn covers(front: &[Vec<f64>], probe: &[f64]) -> bool {
    assert!(
        front.iter().all(|p| p.len() == probe.len()),
        "all points of a dominance query must have the probe's dimension"
    );
    front.iter().any(|p| le(p, probe))
}

/// The all-pairs dominance oracle: `O(n²·d)`, the seed semantics frozen.
///
/// Kept public for the equivalence tests and benches; production code uses
/// [`front`].
///
/// # Panics
///
/// Panics if the points do not all have the same dimension.
pub fn front_quadratic(points: &[Vec<f64>]) -> Vec<usize> {
    check_dims(points);
    (0..points.len())
        .filter(|&i| {
            !(0..points.len())
                .any(|j| j != i && le(&points[j], &points[i]) && points[j] != points[i])
        })
        .collect()
}

fn check_dims(points: &[Vec<f64>]) {
    if let Some(first) = points.first() {
        assert!(
            points.iter().all(|p| p.len() == first.len()),
            "all points of a Pareto filter must have the same dimension"
        );
    }
}

/// Indices of the Pareto-minimal points, ascending by input index.
///
/// Sort-based: `O(n log n)` for points of dimension ≤ 3 (the 1-D/2-D
/// capacity sweeps), incumbent-cull beyond. Produces exactly the same set
/// as [`front_quadratic`] — proptested on arbitrary clouds, including ties
/// and exact duplicates, in `crates/core/tests/pareto_filter.rs`.
///
/// Coordinates must be finite: the equality-with-the-oracle contract
/// covers finite inputs only (with a NaN coordinate the swept `<`
/// comparisons and the oracle's incomparable-`≤` semantics diverge).
/// The sweep surfaces never produce non-finite costs.
///
/// # Panics
///
/// Panics if the points do not all have the same dimension, or (debug
/// builds) if any coordinate is not finite.
pub fn front(points: &[Vec<f64>]) -> Vec<usize> {
    check_dims(points);
    debug_assert!(
        points.iter().all(|p| p.iter().all(|c| c.is_finite())),
        "pareto::front requires finite coordinates"
    );
    if points.is_empty() {
        return Vec::new();
    }
    let dim = points[0].len();
    if dim == 0 {
        // Zero-dimensional points are all equal: nothing dominates.
        return (0..points.len()).collect();
    }

    // Lexicographic order: every dominator of a point sorts strictly
    // before it (componentwise ≤ and not equal ⇒ lexicographically
    // smaller), and exact duplicates sort adjacent.
    let mut order: Vec<usize> = (0..points.len()).collect();
    order.sort_by(|&a, &b| lex_cmp(&points[a], &points[b]));

    // Collapse exact duplicates: equal points never dominate each other
    // and dominate / are dominated identically, so the sweep runs on the
    // unique vectors and every member of a surviving group survives.
    let mut reps: Vec<usize> = Vec::with_capacity(order.len());
    let mut group_of: Vec<usize> = vec![0; points.len()];
    for &i in &order {
        match reps.last() {
            Some(&r) if points[r] == points[i] => group_of[i] = reps.len() - 1,
            _ => {
                group_of[i] = reps.len();
                reps.push(i);
            }
        }
    }

    let survive = match dim {
        1 => {
            // Unique scalars in ascending order: only the minimum survives.
            let mut s = vec![false; reps.len()];
            s[0] = true;
            s
        }
        2 => sweep_2d(points, &reps),
        3 => sweep_3d(points, &reps),
        _ => cull(points, &reps),
    };

    (0..points.len())
        .filter(|&i| survive[group_of[i]])
        .collect()
}

/// 2-D sweep over unique, lex-sorted points: a point is dominated iff some
/// earlier point's second coordinate is ≤ its own (the earlier point's
/// first coordinate is ≤ by the sort, and uniqueness provides strictness).
fn sweep_2d(points: &[Vec<f64>], reps: &[usize]) -> Vec<bool> {
    let mut survive = vec![false; reps.len()];
    let mut best = f64::INFINITY;
    for (k, &r) in reps.iter().enumerate() {
        let y = points[r][1];
        survive[k] = y < best;
        best = best.min(y);
    }
    survive
}

/// 3-D sweep: process groups of equal first coordinate in ascending order.
/// A monotone staircase (second coordinate ↑, third coordinate ↓) holds the
/// 2-D front of everything with a strictly smaller first coordinate;
/// membership costs one `O(log n)` prefix query. Within a group, the plain
/// 2-D sweep applies.
fn sweep_3d(points: &[Vec<f64>], reps: &[usize]) -> Vec<bool> {
    let mut survive = vec![true; reps.len()];
    let mut stair: BTreeMap<OrdF64, f64> = BTreeMap::new();
    let query = |stair: &BTreeMap<OrdF64, f64>, y: f64| -> Option<f64> {
        stair.range(..=OrdF64(y)).next_back().map(|(_, &z)| z)
    };
    let mut i = 0;
    while i < reps.len() {
        let mut j = i + 1;
        while j < reps.len() && points[reps[j]][0] == points[reps[i]][0] {
            j += 1;
        }
        // Dominance from strictly-smaller first coordinates (staircase) and
        // from within the group (2-D sweep over the trailing coordinates).
        let mut best_z = f64::INFINITY;
        for k in i..j {
            let (y, z) = (points[reps[k]][1], points[reps[k]][2]);
            let from_before = query(&stair, y).is_some_and(|zq| zq <= z);
            survive[k] = !from_before && z < best_z;
            best_z = best_z.min(z);
        }
        // Fold the group's survivors into the staircase (dominated members
        // add nothing: their dominator subsumes every future query).
        for k in i..j {
            if !survive[k] {
                continue;
            }
            let (y, z) = (points[reps[k]][1], points[reps[k]][2]);
            if query(&stair, y).is_some_and(|zq| zq <= z) {
                continue;
            }
            // Entries at larger keys with ≥ z are now subsumed; they form a
            // prefix of the tail range because the staircase is monotone.
            let doomed: Vec<OrdF64> = stair
                .range(OrdF64(y)..)
                .take_while(|(_, &ze)| ze >= z)
                .map(|(&k, _)| k)
                .collect();
            for k in doomed {
                stair.remove(&k);
            }
            stair.insert(OrdF64(y), z);
        }
        i = j;
    }
    survive
}

/// Per-point slack of one point set against a reference set, for points
/// of the form `(budget coordinates…, objective)` — the *delta report*
/// behind the improving-vs-cold frontier comparisons.
///
/// For every reference point `q` in `theirs`, the returned entry is
/// `q.objective − min{ p.objective : p ∈ ours, p.budget ≤ q.budget }` —
/// how much better (`> 0`), equal (`0`) or worse (`< 0`) `ours` does
/// within `q`'s budget. `NEG_INFINITY` when no point of `ours` fits the
/// budget at all (`ours` trails unconditionally there).
///
/// # Panics
///
/// Panics if the points do not all share one nonzero dimension.
pub fn front_deltas(ours: &[Vec<f64>], theirs: &[Vec<f64>]) -> Vec<f64> {
    check_dims(ours);
    check_dims(theirs);
    if let (Some(p), Some(q)) = (ours.first(), theirs.first()) {
        assert_eq!(p.len(), q.len(), "front_deltas: dimension mismatch");
        assert!(!p.is_empty(), "front_deltas: zero-dimensional points");
    }
    theirs
        .iter()
        .map(|q| {
            let (budget, objective) = q.split_at(q.len() - 1);
            ours.iter()
                .filter(|p| le(&p[..budget.len()], budget))
                .map(|p| objective[0] - p[p.len() - 1])
                .fold(f64::NEG_INFINITY, f64::max)
        })
        .collect()
}

/// Whether the point set `ours` *dominates-or-equals* the reference set
/// `theirs`: every reference point is matched by some point of `ours`
/// with every coordinate ≤ (minimization). Equivalent to every
/// [`front_deltas`] entry being ≥ 0 — the machine check of the improving
/// sweep mode's "dominates, never trails" guarantee. Trivially true for
/// an empty `theirs`.
///
/// # Panics
///
/// Panics as [`front_deltas`] does.
pub fn front_dominates(ours: &[Vec<f64>], theirs: &[Vec<f64>]) -> bool {
    front_deltas(ours, theirs).iter().all(|&d| d >= 0.0)
}

/// ≥ 4-D fallback: lex-sorted incumbent cull. Every dominator is itself on
/// the running front (dominance is transitive), so each point is tested
/// against the front only — `O(n·f·d)` after the sort.
fn cull(points: &[Vec<f64>], reps: &[usize]) -> Vec<bool> {
    let mut survive = vec![true; reps.len()];
    let mut front: Vec<usize> = Vec::new();
    for (k, &r) in reps.iter().enumerate() {
        if front.iter().any(|&q| le(&points[q], &points[r])) {
            survive[k] = false;
        } else {
            front.push(r);
        }
    }
    survive
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pts(raw: &[&[f64]]) -> Vec<Vec<f64>> {
        raw.iter().map(|p| p.to_vec()).collect()
    }

    #[test]
    fn empty_and_singleton() {
        assert!(front(&[]).is_empty());
        assert_eq!(front(&pts(&[&[3.0, 4.0]])), vec![0]);
    }

    #[test]
    fn two_dim_staircase() {
        // Classic (capacity, objective) shape with one dominated point.
        let p = pts(&[&[1.0, 9.0], &[2.0, 5.0], &[3.0, 7.0], &[4.0, 1.0]]);
        assert_eq!(front(&p), vec![0, 1, 3]);
        assert_eq!(front_quadratic(&p), vec![0, 1, 3]);
    }

    #[test]
    fn duplicates_all_survive() {
        let p = pts(&[&[2.0, 2.0], &[1.0, 3.0], &[2.0, 2.0]]);
        assert_eq!(front(&p), vec![0, 1, 2]);
        assert_eq!(front_quadratic(&p), vec![0, 1, 2]);
        // …but a duplicated dominated point is dropped in every copy.
        let q = pts(&[&[2.0, 3.0], &[1.0, 1.0], &[2.0, 3.0]]);
        assert_eq!(front(&q), vec![1]);
        assert_eq!(front_quadratic(&q), vec![1]);
    }

    #[test]
    fn equal_objective_keeps_the_cheaper_point() {
        let p = pts(&[&[1.0, 5.0], &[2.0, 5.0]]);
        assert_eq!(front(&p), vec![0]);
    }

    #[test]
    fn three_dim_matches_oracle_on_a_lattice() {
        let mut p = Vec::new();
        for x in 0..4 {
            for y in 0..4 {
                p.push(vec![x as f64, y as f64, ((x * y) % 5) as f64]);
            }
        }
        assert_eq!(front(&p), front_quadratic(&p));
    }

    #[test]
    fn four_dim_matches_oracle() {
        let mut p = Vec::new();
        for i in 0..81u32 {
            let digits = [i % 3, (i / 3) % 3, (i / 9) % 3, (i / 27) % 3];
            p.push(digits.iter().map(|&d| d as f64).collect());
        }
        assert_eq!(front(&p), front_quadratic(&p));
    }

    #[test]
    fn one_dim_keeps_only_the_minimum() {
        let p = pts(&[&[3.0], &[1.0], &[2.0], &[1.0]]);
        assert_eq!(front(&p), vec![1, 3]);
        assert_eq!(front_quadratic(&p), vec![1, 3]);
    }

    #[test]
    #[should_panic(expected = "same dimension")]
    fn mixed_dimensions_are_rejected() {
        let _ = front(&pts(&[&[1.0], &[1.0, 2.0]]));
    }

    #[test]
    fn front_deltas_report_improvement_match_and_trail() {
        let ours = pts(&[&[1.0, 5.0], &[2.0, 3.0]]);
        let theirs = pts(&[&[1.0, 6.0], &[2.0, 3.0], &[3.0, 1.0]]);
        let d = front_deltas(&ours, &theirs);
        assert_eq!(d, vec![1.0, 0.0, -2.0]);
        assert!(!front_dominates(&ours, &theirs));
        // Dominance holds exactly when every delta is non-negative.
        assert!(front_dominates(&ours, &theirs[..2]));
        // A reference point below every budget has no qualifying match.
        let tiny = pts(&[&[0.5, 0.5]]);
        assert_eq!(front_deltas(&ours, &tiny), vec![f64::NEG_INFINITY]);
        assert!(!front_dominates(&ours, &tiny));
        // Empty reference: trivially dominated.
        assert!(front_dominates(&ours, &[]));
    }

    #[test]
    fn covers_is_componentwise_and_allows_equality() {
        let rows = pts(&[&[128.0, 64.0, 10.0], &[256.0, 64.0, 7.0]]);
        // A probe at-or-above some row on every coordinate is covered…
        assert!(covers(&rows, &[128.0, 64.0, 10.0])); // exact equality
        assert!(covers(&rows, &[300.0, 64.0, 8.0]));
        // …a probe below every row on some coordinate is not.
        assert!(!covers(&rows, &[128.0, 64.0, 9.0]));
        assert!(!covers(&rows, &[64.0, 64.0, 100.0]));
        // Empty fronts cover nothing.
        assert!(!covers(&[], &[0.0, 0.0]));
    }

    #[test]
    #[should_panic(expected = "probe's dimension")]
    fn covers_rejects_mismatched_dimensions() {
        let _ = covers(&pts(&[&[1.0, 2.0]]), &[1.0]);
    }

    #[test]
    fn front_dominance_is_reflexive_and_respects_strict_improvement() {
        let a = pts(&[&[1.0, 4.0], &[2.0, 2.0]]);
        assert!(front_dominates(&a, &a));
        let better = pts(&[&[1.0, 3.0], &[2.0, 2.0]]);
        assert!(front_dominates(&better, &a));
        assert!(!front_dominates(&a, &better));
        assert!(front_deltas(&better, &a).iter().any(|&d| d > 0.0));
    }
}
