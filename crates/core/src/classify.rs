//! Array classification: which arrays may be re-homed on-chip.
//!
//! The paper's workloads distinguish *external* data (frames, bitstreams —
//! they materialize in off-chip memory and can only be *copied* on-chip)
//! from *internal* temporaries (produced and consumed by the kernel — they
//! may be homed directly in a scratchpad, never touching the off-chip
//! layer). The prototype tool gets this from the designer; here a simple
//! first-access heuristic classifies automatically and
//! [`MhlaConfig::class_overrides`](crate::MhlaConfig::class_overrides)
//! lets workloads pin the truth.

use mhla_ir::{AccessKind, ArrayId, Program};

/// Whether an array can be re-homed into an on-chip layer.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum ArrayClass {
    /// Lives in off-chip memory (program input/output); only copies of it
    /// can be staged on-chip.
    External,
    /// Kernel-internal temporary; may be homed in any layer it fits.
    Internal,
}

/// Classifies every array of `program`.
///
/// Heuristic: an array whose *first* access (in logical time) is a read is
/// an input and an array that is written but never read is an output —
/// both [`External`](ArrayClass::External). Arrays that are written before
/// being read are [`Internal`](ArrayClass::Internal) temporaries.
/// `overrides` wins where present.
pub fn classify_arrays(program: &Program, overrides: &[(ArrayId, ArrayClass)]) -> Vec<ArrayClass> {
    let info = program.info();
    let mut first_access: Vec<Option<(u64, AccessKind)>> = vec![None; program.array_count()];
    let tl = program.timeline();
    for (sid, stmt) in program.stmts() {
        let t = tl.stmt_span(sid).start;
        for acc in &stmt.accesses {
            let slot = &mut first_access[acc.array.index()];
            match slot {
                Some((t0, _)) if *t0 <= t => {}
                _ => *slot = Some((t, acc.kind)),
            }
        }
    }
    let mut classes: Vec<ArrayClass> = (0..program.array_count())
        .map(|i| {
            let aid = ArrayId::from_index(i);
            let counts = info.access_counts(aid);
            match first_access[i] {
                // Read before ever written: input.
                Some((_, AccessKind::Read)) => ArrayClass::External,
                // Written but never read back: output.
                Some((_, AccessKind::Write)) if counts.reads == 0 => ArrayClass::External,
                // Written then read: internal temporary.
                Some((_, AccessKind::Write)) => ArrayClass::Internal,
                // Never accessed: treat as external (harmless).
                None => ArrayClass::External,
            }
        })
        .collect();
    for (aid, class) in overrides {
        classes[aid.index()] = *class;
    }
    classes
}

#[cfg(test)]
mod tests {
    use super::*;
    use mhla_ir::{ElemType, ProgramBuilder};

    #[test]
    fn inputs_temporaries_and_outputs() {
        let mut b = ProgramBuilder::new("p");
        let input = b.array("in", &[16], ElemType::U8);
        let tmp = b.array("tmp", &[16], ElemType::U8);
        let output = b.array("out", &[16], ElemType::U8);
        b.loop_scope("i", 0, 16, 1, |b, li| {
            let i = b.var(li);
            b.stmt("s1")
                .read(input, vec![i.clone()])
                .write(tmp, vec![i])
                .finish();
        });
        b.loop_scope("j", 0, 16, 1, |b, lj| {
            let j = b.var(lj);
            b.stmt("s2")
                .read(tmp, vec![j.clone()])
                .write(output, vec![j])
                .finish();
        });
        let p = b.finish();
        let classes = classify_arrays(&p, &[]);
        assert_eq!(classes[input.index()], ArrayClass::External, "input");
        assert_eq!(classes[tmp.index()], ArrayClass::Internal, "temporary");
        assert_eq!(classes[output.index()], ArrayClass::External, "output");
    }

    #[test]
    fn overrides_win() {
        let mut b = ProgramBuilder::new("p");
        let a = b.array("a", &[4], ElemType::U8);
        b.loop_scope("i", 0, 4, 1, |b, li| {
            let i = b.var(li);
            b.stmt("s").read(a, vec![i]).finish();
        });
        let p = b.finish();
        assert_eq!(classify_arrays(&p, &[])[0], ArrayClass::External);
        assert_eq!(
            classify_arrays(&p, &[(a, ArrayClass::Internal)])[0],
            ArrayClass::Internal
        );
    }

    #[test]
    fn unaccessed_arrays_are_external() {
        let mut b = ProgramBuilder::new("p");
        let a = b.array("a", &[4], ElemType::U8);
        let dead = b.array("dead", &[4], ElemType::U8);
        b.loop_scope("i", 0, 4, 1, |b, li| {
            let i = b.var(li);
            b.stmt("s").read(a, vec![i]).finish();
        });
        let p = b.finish();
        assert_eq!(classify_arrays(&p, &[])[dead.index()], ArrayClass::External);
    }

    #[test]
    fn read_modify_write_of_fresh_array_is_internal() {
        // acc is written (initialized) at t=0 then read — internal.
        let mut b = ProgramBuilder::new("p");
        let acc = b.array("acc", &[4], ElemType::I32);
        b.loop_scope("i", 0, 4, 1, |b, li| {
            let i = b.var(li);
            b.stmt("init").write(acc, vec![i]).finish();
        });
        b.loop_scope("j", 0, 4, 1, |b, lj| {
            let j = b.var(lj);
            b.stmt("use")
                .read(acc, vec![j.clone()])
                .write(acc, vec![j])
                .finish();
        });
        let p = b.finish();
        assert_eq!(classify_arrays(&p, &[])[acc.index()], ArrayClass::Internal);
    }
}
