//! Shared, capacity-independent exploration state.
//!
//! The trade-off exploration evaluates one program against many platform
//! variants — the same layer stack with different scratchpad capacities.
//! Almost everything the pipeline derives from the program is *capacity
//! independent*: the reuse analysis, the array classification, the
//! structural program facts (`ProgramInfo`, timeline, per-array access
//! lists), the candidate-move space, and the Time-Extension stream caches
//! (per-candidate transfer geometry and freedom loops).
//!
//! [`ExplorationContext`] computes all of it **once per program** and hands
//! [`Mhla`](crate::Mhla) / [`CostModel`] / [`te::plan`](crate::te::plan)
//! cheap per-platform views: a sweep point borrows the context instead of
//! re-deriving the facts, so the per-point cost collapses to the search
//! itself. The 1-D capacity sweep and the N-dimensional grid sweep in
//! [`explore`](crate::explore) are both built on it.

use mhla_hierarchy::Platform;
use mhla_ir::{AccessKind, LoopId, Program, ProgramInfo, StmtId, Timeline};
use mhla_reuse::ReuseAnalysis;

use crate::assign::{self, MoveSet};
use crate::classify::{classify_arrays, ArrayClass};
use crate::cost::{stream_template, CostModel, StreamTemplate};
use crate::types::MhlaConfig;

/// Capacity-independent facts derived from one program (plus its reuse
/// analysis and array classification): everything a [`CostModel`] needs
/// that does not depend on layer capacities.
///
/// Built by [`CostModel::new`] (owned, per model — the pre-context
/// behavior) or once by [`ExplorationContext`] and then *borrowed* by every
/// per-platform cost model of a sweep.
#[derive(Clone, Debug)]
pub struct ProgramFacts<'p> {
    /// Structural program facts (parents, depths, execution counts).
    pub(crate) info: ProgramInfo<'p>,
    /// The program's logical timeline.
    pub(crate) timeline: Timeline,
    /// Array classes (external/internal) in array order.
    pub(crate) classes: Vec<ArrayClass>,
    /// Per statement: executions (cached).
    pub(crate) stmt_execs: Vec<u64>,
    /// Per array: the (statement, access kind) pairs touching it, in
    /// statement/access order. Together with [`stmt_execs`](Self::stmt_execs)
    /// these are the access totals behind every
    /// [`ArrayContribution`](crate::ArrayContribution) — including its
    /// per-layer energy sensitivities, the gain-bound data of the pruned
    /// grid sweep's saturation rule
    /// ([`RunStats`](crate::RunStats)).
    pub(crate) array_accesses: Vec<Vec<(StmtId, AccessKind)>>,
    /// Pure datapath cycles of one program run.
    pub(crate) total_compute: u64,
    /// Total read-access executions of one program run (all arrays) —
    /// input of [`CostModel::cost_floor`](crate::CostModel::cost_floor).
    pub(crate) total_read_execs: u64,
    /// Total write-access executions of one program run.
    pub(crate) total_write_execs: u64,
    /// Sorted, deduped union of every interval endpoint a resident can
    /// have (array spans and candidate spans) — the coordinate set of the
    /// incremental occupancy ledger in
    /// [`IncrementalCost`](crate::IncrementalCost).
    pub(crate) occupancy_times: Vec<u64>,
    /// Time-Extension caches (candidate transfer geometry + freedom
    /// loops); populated by [`ExplorationContext`] only, `None` on the
    /// standalone [`CostModel::new`] path.
    pub(crate) te: Option<TeCache>,
}

/// Per-candidate Time-Extension caches: the capacity-independent parts of
/// the block-transfer stream derivation.
#[derive(Clone, Debug)]
pub(crate) struct TeCache {
    /// Per `[array][candidate]`: transfer geometry (entry counts, bytes).
    pub(crate) geometry: Vec<Vec<StreamTemplate>>,
    /// Per `[array][candidate]`: the hoistable loop levels, innermost
    /// first, as bounded by dependency analysis.
    pub(crate) freedom: Vec<Vec<Vec<LoopId>>>,
}

impl<'p> ProgramFacts<'p> {
    /// Derives the facts from a program, its reuse analysis and a
    /// classification. `O(program size + candidates)`.
    pub fn new(program: &'p Program, reuse: &ReuseAnalysis, classes: Vec<ArrayClass>) -> Self {
        let info = program.info();
        let timeline = program.timeline();
        let stmt_execs: Vec<u64> = program
            .stmts()
            .map(|(s, _)| info.stmt_executions(s))
            .collect();
        let total_compute = program
            .roots()
            .iter()
            .map(|&r| info.compute_cycles(r))
            .sum();
        let mut array_accesses = vec![Vec::new(); program.array_count()];
        let (mut total_read_execs, mut total_write_execs) = (0u64, 0u64);
        for (sid, stmt) in program.stmts() {
            for acc in &stmt.accesses {
                array_accesses[acc.array.index()].push((sid, acc.kind));
                match acc.kind {
                    AccessKind::Read => total_read_execs += stmt_execs[sid.index()],
                    AccessKind::Write => total_write_execs += stmt_execs[sid.index()],
                }
            }
        }
        let occupancy_times = occupancy_times(program, reuse, &timeline);
        ProgramFacts {
            info,
            timeline,
            classes,
            stmt_execs,
            array_accesses,
            total_compute,
            total_read_execs,
            total_write_execs,
            occupancy_times,
            te: None,
        }
    }

    /// Populates the Time-Extension caches (candidate stream geometry and
    /// freedom loops). Called by [`ExplorationContext`]; the standalone
    /// [`CostModel::new`] path leaves them empty and derives both on the
    /// fly, so single runs pay exactly the pre-context cost.
    pub(crate) fn populate_te_cache(&mut self, program: &Program, reuse: &ReuseAnalysis) {
        let mut geometry = Vec::with_capacity(program.array_count());
        let mut freedom = Vec::with_capacity(program.array_count());
        for (aid, decl) in program.arrays() {
            let elem = decl.elem.bytes();
            let cands = reuse.array(aid).candidates();
            geometry.push(
                cands
                    .iter()
                    .map(|cc| stream_template(&self.info, cc, elem))
                    .collect(),
            );
            freedom.push(
                cands
                    .iter()
                    .map(|cc| crate::te::candidate_freedom(program, &self.info, aid, cc.at_loop))
                    .collect(),
            );
        }
        self.te = Some(TeCache { geometry, freedom });
    }
}

/// Every interval endpoint a resident buffer can have: array access spans
/// (on-chip homes) and candidate spans (copy buffers). Sorted and deduped —
/// the incremental occupancy ledger indexes byte deltas by position in this
/// list.
fn occupancy_times(program: &Program, reuse: &ReuseAnalysis, timeline: &Timeline) -> Vec<u64> {
    let mut times = Vec::new();
    for (aid, _) in program.arrays() {
        if let Some(span) = timeline.array_span(aid) {
            times.push(span.start);
            times.push(span.end);
        }
        for cc in reuse.array(aid).candidates() {
            let span = match cc.at_loop {
                Some(l) => timeline.loop_span(l),
                None => match timeline.array_span(aid) {
                    Some(s) => s,
                    None => continue,
                },
            };
            times.push(span.start);
            times.push(span.end);
        }
    }
    times.sort_unstable();
    times.dedup();
    times
}

/// The shared exploration context: one program's capacity-independent
/// facts, computed once and borrowed by every sweep point.
///
/// Owns the reuse analysis, the array classification, the
/// [`ProgramFacts`] (with the TE caches populated) and the enumerated
/// candidate-move space. The move space depends on the platform's *shape*
/// (which layers are on-chip) but not on layer capacities, so one context
/// serves every capacity variant of the platform it was built against.
///
/// ```
/// use mhla_core::{ExplorationContext, Mhla, MhlaConfig};
/// use mhla_hierarchy::{LayerId, Platform};
/// use mhla_ir::{ElemType, ProgramBuilder};
///
/// let mut b = ProgramBuilder::new("scan");
/// let tab = b.array("tab", &[256], ElemType::U8);
/// b.loop_scope("rep", 0, 64, 1, |b, _| {
///     b.loop_scope("i", 0, 256, 1, |b, li| {
///         let i = b.var(li);
///         b.stmt("s").read(tab, vec![i]).compute_cycles(2).finish();
///     });
/// });
/// let program = b.finish();
///
/// let base = Platform::embedded_default(1024);
/// let ctx = ExplorationContext::new(&program, &base, MhlaConfig::default());
/// for capacity in [256u64, 512, 1024] {
///     let pf = base.with_layer_capacity(LayerId(1), capacity);
///     let result = Mhla::with_context(&ctx, &pf).run_with(None, Some(ctx.moves()));
///     assert!(result.mhla_cycles() <= result.baseline_cycles());
/// }
/// ```
#[derive(Debug)]
pub struct ExplorationContext<'p> {
    program: &'p Program,
    config: MhlaConfig,
    reuse: ReuseAnalysis,
    facts: ProgramFacts<'p>,
    moves: MoveSet,
}

impl<'p> ExplorationContext<'p> {
    /// Builds the context: reuse analysis, classification, program facts,
    /// TE caches and the candidate-move space. `platform` provides the
    /// layer-stack *shape* only; its capacities are irrelevant.
    pub fn new(program: &'p Program, platform: &Platform, config: MhlaConfig) -> Self {
        let reuse = ReuseAnalysis::analyze(program);
        Self::with_reuse(program, platform, config, reuse)
    }

    /// [`new`](Self::new) from an already-computed reuse analysis.
    pub fn with_reuse(
        program: &'p Program,
        platform: &Platform,
        config: MhlaConfig,
        reuse: ReuseAnalysis,
    ) -> Self {
        let classes = classify_arrays(program, &config.class_overrides);
        let mut facts = ProgramFacts::new(program, &reuse, classes);
        facts.populate_te_cache(program, &reuse);
        let moves = {
            let model = CostModel::with_facts(program, platform, &reuse, &facts);
            assign::enumerate_moves(&model, &config)
        };
        ExplorationContext {
            program,
            config,
            reuse,
            facts,
            moves,
        }
    }

    /// The analysed program.
    pub fn program(&self) -> &'p Program {
        self.program
    }

    /// The run configuration the context was built for.
    pub fn config(&self) -> &MhlaConfig {
        &self.config
    }

    /// The shared reuse analysis.
    pub fn reuse(&self) -> &ReuseAnalysis {
        &self.reuse
    }

    /// The shared program facts (TE caches populated).
    pub fn facts(&self) -> &ProgramFacts<'p> {
        &self.facts
    }

    /// The enumerated candidate-move space, shared across sweep points.
    pub fn moves(&self) -> &MoveSet {
        &self.moves
    }

    /// A cost model for one platform variant, borrowing the shared facts
    /// (no re-derivation).
    pub fn cost_model<'s>(&'s self, platform: &'s Platform) -> CostModel<'s> {
        CostModel::with_facts(self.program, platform, &self.reuse, &self.facts)
    }

    /// An allocation-free [`CostFloor`](crate::cost::CostFloor) evaluator
    /// over the grid spanned by `axis_layers` of `platform`: the
    /// capacity-invariant floor inputs (access totals, CPU overhead,
    /// fixed-layer minima) are folded once, and
    /// [`floor_at`](crate::cost::FloorProbe::floor_at) then prices any
    /// capacity vector without building a [`CostModel`] or a resized
    /// [`Platform`] — bit-identical to
    /// [`CostModel::cost_floor`] on the resized platform.
    pub fn floor_probe(
        &self,
        platform: &Platform,
        axis_layers: &[mhla_hierarchy::LayerId],
    ) -> crate::cost::FloorProbe {
        crate::cost::FloorProbe::new(&self.facts, platform, axis_layers)
    }
}

/// A memoizing wrapper over a [`FloorProbe`](crate::cost::FloorProbe) —
/// the per-box floor store of the adaptive refinement scheduler, which
/// probes the same box corners many times across waves (a cell's minimal
/// corner is shared by up to `2^axes` sibling cells).
#[derive(Debug)]
pub struct FloorCache {
    probe: crate::cost::FloorProbe,
    map: std::collections::HashMap<Vec<u64>, crate::cost::CostFloor>,
}

impl FloorCache {
    /// Wraps a probe with an empty memo table.
    pub fn new(probe: crate::cost::FloorProbe) -> Self {
        FloorCache {
            probe,
            map: std::collections::HashMap::new(),
        }
    }

    /// The floor at `caps`, computed once and memoized. Because the floor
    /// is capacity-monotone, calling this at a box's minimal corner lower
    /// bounds every point of the box.
    pub fn floor_at(&mut self, caps: &[u64]) -> crate::cost::CostFloor {
        if let Some(f) = self.map.get(caps) {
            return *f;
        }
        let f = self.probe.floor_at(caps);
        self.map.insert(caps.to_vec(), f);
        f
    }
}

/// Committed per-point assignments of an improving sweep, keyed by the
/// grid capacity vector — the warm-seed store of
/// [`SearchMode::Improving`](crate::explore::SearchMode).
///
/// The sweep engine commits each evaluated point's winning assignment
/// here; a later point looks up its *grid neighbors* — the points with
/// exactly one axis moved back to its previous capacity — and hands them
/// to the seeded search portfolio
/// ([`Mhla::run_with_seeds`](crate::Mhla::run_with_seeds)). Neighbors sit
/// at componentwise-smaller capacities, so their assignments stay
/// feasible as layers grow, and they are lexicographically earlier, so a
/// lexicographic commit order guarantees they are present (or were
/// deliberately skipped) by lookup time.
#[derive(Default, Debug)]
pub struct SeedCache {
    map: std::collections::HashMap<Vec<u64>, crate::types::Assignment>,
}

impl SeedCache {
    /// An empty cache.
    pub fn new() -> Self {
        SeedCache::default()
    }

    /// Commits the winning assignment of one evaluated grid point.
    pub fn commit(&mut self, caps: &[u64], assignment: crate::types::Assignment) {
        self.map.insert(caps.to_vec(), assignment);
    }

    /// The committed assignment at exactly `caps`, if any.
    pub fn get(&self, caps: &[u64]) -> Option<&crate::types::Assignment> {
        self.map.get(caps)
    }

    /// The committed seeds of `caps`' grid neighbors: for each axis whose
    /// capacity is not the axis minimum, the point with that axis moved
    /// to its previous capacity (per `axes`, the sorted per-axis capacity
    /// lists). Returns `(axis, assignment)` pairs in axis order; axes
    /// whose neighbor was never committed (skipped, or not yet evaluated)
    /// are absent.
    pub fn neighbor_seeds<'s>(
        &'s self,
        caps: &[u64],
        axes: &[Vec<u64>],
    ) -> Vec<(usize, &'s crate::types::Assignment)> {
        let mut out = Vec::new();
        let mut key = caps.to_vec();
        for (axis, grid) in axes.iter().enumerate() {
            let Some(pos) = grid.iter().position(|&c| c == caps[axis]) else {
                continue;
            };
            if pos == 0 {
                continue;
            }
            key[axis] = grid[pos - 1];
            if let Some(seed) = self.map.get(&key) {
                out.push((axis, seed));
            }
            key[axis] = caps[axis];
        }
        out
    }

    /// The committed assignments among `corners` that sit componentwise
    /// at-or-below `caps` — the refinement scheduler's per-cell seed
    /// lookup (a child point is seeded from its generating cell's already
    /// evaluated corners). Deduplicated, in `corners` order; corners above
    /// `caps` on any axis are excluded (their assignments need capacity
    /// the seeded point may not have).
    pub fn corner_seeds<'s>(
        &'s self,
        corners: &[Vec<u64>],
        caps: &[u64],
    ) -> Vec<&'s crate::types::Assignment> {
        let mut out: Vec<&crate::types::Assignment> = Vec::new();
        for corner in corners {
            if corner.len() != caps.len() || corner.iter().zip(caps).any(|(c, p)| c > p) {
                continue;
            }
            if let Some(seed) = self.map.get(corner) {
                if !out.contains(&seed) {
                    out.push(seed);
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::Mhla;
    use crate::types::Assignment;
    use mhla_hierarchy::LayerId;
    use mhla_ir::{ElemType, ProgramBuilder};

    fn scan() -> Program {
        let mut b = ProgramBuilder::new("scan");
        let tab = b.array("tab", &[256], ElemType::U8);
        b.loop_scope("rep", 0, 64, 1, |b, _| {
            b.loop_scope("i", 0, 256, 1, |b, li| {
                let i = b.var(li);
                b.stmt("s").read(tab, vec![i]).compute_cycles(2).finish();
            });
        });
        b.finish()
    }

    #[test]
    fn context_backed_run_matches_standalone() {
        let p = scan();
        let base = Platform::embedded_default(1024);
        let ctx = ExplorationContext::new(&p, &base, MhlaConfig::default());
        for cap in [128u64, 512, 2048] {
            let pf = base.with_layer_capacity(LayerId(1), cap);
            let fresh = Mhla::new(&p, &pf, MhlaConfig::default()).run();
            let shared = Mhla::with_context(&ctx, &pf).run_with(None, Some(ctx.moves()));
            assert_eq!(fresh, shared, "cap {cap}");
        }
    }

    #[test]
    fn context_cost_model_evaluates_like_a_fresh_one() {
        let p = scan();
        let pf = Platform::embedded_default(512);
        let ctx = ExplorationContext::new(&p, &pf, MhlaConfig::default());
        let fresh_reuse = ReuseAnalysis::analyze(&p);
        let fresh = CostModel::new(&p, &pf, &fresh_reuse, classify_arrays(&p, &[]));
        let shared = ctx.cost_model(&pf);
        let a = Assignment::baseline(p.array_count(), Default::default());
        assert_eq!(fresh.evaluate(&a), shared.evaluate(&a));
        assert_eq!(fresh.transfer_streams(&a), shared.transfer_streams(&a));
    }

    #[test]
    fn seed_cache_finds_axis_neighbors() {
        let axes = vec![vec![128u64, 256, 512], vec![64u64, 128]];
        let mut cache = SeedCache::new();
        let a = Assignment::baseline(1, Default::default());
        let mut b = Assignment::baseline(1, Default::default());
        b.set_home(mhla_ir::ArrayId::from_index(0), LayerId(1));
        cache.commit(&[128, 128], a.clone());
        cache.commit(&[256, 64], b.clone());
        // [256, 128]'s neighbors: axis 0 back to [128, 128] (committed as
        // `a`), axis 1 back to [256, 64] (committed as `b`).
        let seeds = cache.neighbor_seeds(&[256, 128], &axes);
        assert_eq!(seeds.len(), 2);
        assert_eq!((seeds[0].0, seeds[0].1), (0, &a));
        assert_eq!((seeds[1].0, seeds[1].1), (1, &b));
        // The grid minimum has no neighbors at all; neighbors that were
        // never committed are simply absent.
        assert!(cache.neighbor_seeds(&[128, 64], &axes).is_empty());
        assert!(cache.neighbor_seeds(&[512, 128], &axes).is_empty());
        assert_eq!(cache.get(&[128, 128]), Some(&a));
    }

    #[test]
    fn te_caches_are_populated_for_every_candidate() {
        let p = scan();
        let pf = Platform::embedded_default(1024);
        let ctx = ExplorationContext::new(&p, &pf, MhlaConfig::default());
        let te = ctx
            .facts()
            .te
            .as_ref()
            .expect("context populates TE caches");
        for (aid, _) in p.arrays() {
            let n = ctx.reuse().array(aid).candidates().len();
            assert_eq!(te.geometry[aid.index()].len(), n);
            assert_eq!(te.freedom[aid.index()].len(), n);
        }
    }
}
