//! Multi-task extension (the paper's stated future work).
//!
//! The DATE 2005 paper closes §3 with: "Although, we only consider single
//! threaded applications, we plan to extend our technique to multiple
//! tasks with multiple threads." This module implements the natural static
//! formulation of that extension: several independent tasks share one
//! platform, the on-chip scratchpad is **statically partitioned** among
//! them, and each task runs the full MHLA flow (assignment + TE) inside
//! its partition.
//!
//! The partitioning itself is solved exactly by dynamic programming over a
//! budget grid: every task is evaluated at each candidate partition size
//! (a per-task capacity sweep — the machinery of [`explore`](crate::explore))
//! and the allocation minimizing the summed objective is selected. This is
//! the multi-task analogue of the paper's "thorough trade-off exploration
//! for different memory layer sizes".

use mhla_hierarchy::Platform;
use mhla_ir::Program;

use crate::driver::{Mhla, MhlaResult};
use crate::error::{self, MhlaError};
use crate::types::{MhlaConfig, Objective};

/// Result of a multi-task partitioning run.
#[derive(Clone, PartialEq, Debug)]
pub struct MultiTaskResult {
    /// Scratchpad bytes allocated to each task (parallel to the input).
    pub partitions: Vec<u64>,
    /// Per-task MHLA results at the chosen partition sizes.
    pub results: Vec<MhlaResult>,
}

impl MultiTaskResult {
    /// Summed MHLA+TE cycles over all tasks (time-multiplexed execution).
    pub fn total_cycles(&self) -> u64 {
        self.results.iter().map(|r| r.mhla_te_cycles()).sum()
    }

    /// Summed memory energy over all tasks, picojoule.
    pub fn total_energy_pj(&self) -> f64 {
        self.results.iter().map(|r| r.mhla_energy_pj()).sum()
    }

    /// Summed baseline cycles (each task out-of-the-box).
    pub fn baseline_cycles(&self) -> u64 {
        self.results.iter().map(|r| r.baseline_cycles()).sum()
    }
}

/// Statically partitions the scratchpad of `platform` among `tasks` and
/// runs the full MHLA flow per task.
///
/// `granularity` is the allocation quantum in bytes (e.g. 512); the
/// partition sizes are multiples of it and sum to at most the scratchpad
/// capacity. Tasks can receive a zero partition (they then run entirely
/// from off-chip memory).
///
/// # Panics
///
/// Panics if `tasks` is empty, `granularity` is zero, or the platform has
/// no bounded on-chip layer to partition.
pub fn partition_scratchpad(
    tasks: &[&Program],
    platform: &Platform,
    config: &MhlaConfig,
    granularity: u64,
) -> MultiTaskResult {
    match try_partition_scratchpad(tasks, platform, config, granularity) {
        Ok(r) => r,
        Err(e) => panic!("partition_scratchpad: {e}"),
    }
}

/// Fallible [`partition_scratchpad`]: validates every task program, the
/// platform and the configuration up front and reports unusable inputs
/// as typed errors instead of panicking.
///
/// # Errors
///
/// [`MhlaError::InvalidProgram`] for a structurally broken task,
/// [`MhlaError::InvalidOptions`] for an empty task set, a zero or
/// oversized granularity, an unbounded scratchpad layer or a bad
/// configuration, [`MhlaError::InvalidObjective`] for degenerate
/// weights.
pub fn try_partition_scratchpad(
    tasks: &[&Program],
    platform: &Platform,
    config: &MhlaConfig,
    granularity: u64,
) -> Result<MultiTaskResult, MhlaError> {
    if tasks.is_empty() {
        return Err(MhlaError::InvalidOptions {
            what: "need at least one task".into(),
        });
    }
    if granularity == 0 {
        return Err(MhlaError::InvalidOptions {
            what: "granularity must be positive".into(),
        });
    }
    error::validate_platform(platform)?;
    for task in tasks {
        error::validate_program(task)?;
        error::validate_config(task, config)?;
    }
    let layer = platform.closest();
    let Some(capacity) = platform.layer(layer).capacity else {
        return Err(MhlaError::InvalidOptions {
            what: "closest layer must be bounded to partition it".into(),
        });
    };
    let slots = (capacity / granularity) as usize;
    if slots == 0 {
        return Err(MhlaError::InvalidOptions {
            what: "granularity exceeds the scratchpad capacity".into(),
        });
    }

    // Evaluate each task at every candidate partition size. Index 0 means
    // "no on-chip partition" (modelled as a 1-byte scratchpad, which fits
    // nothing useful).
    let score = |r: &MhlaResult| match config.objective {
        Objective::Energy => r.mhla_energy_pj(),
        Objective::Cycles => r.mhla_te_cycles() as f64,
        Objective::Weighted {
            energy_weight,
            cycle_weight,
        } => energy_weight * r.mhla_energy_pj() + cycle_weight * r.mhla_te_cycles() as f64,
    };
    let mut evaluated: Vec<Vec<(f64, MhlaResult)>> = Vec::with_capacity(tasks.len());
    for task in tasks {
        let mut per_size = Vec::with_capacity(slots + 1);
        for slot in 0..=slots {
            let bytes = (slot as u64 * granularity).max(1);
            let pf = platform.with_layer_capacity(layer, bytes);
            let result = Mhla::new(task, &pf, config.clone()).run();
            per_size.push((score(&result), result));
        }
        evaluated.push(per_size);
    }

    // Exact allocation by dynamic programming over the budget grid:
    // dp[t][c] = best summed score using tasks 0..=t and c slots.
    let n = tasks.len();
    let mut dp = vec![vec![f64::INFINITY; slots + 1]; n];
    let mut choice = vec![vec![0usize; slots + 1]; n];
    for c in 0..=slots {
        for (s, ev) in evaluated[0].iter().enumerate().take(c + 1) {
            let v = ev.0;
            if v < dp[0][c] {
                dp[0][c] = v;
                choice[0][c] = s;
            }
        }
    }
    for t in 1..n {
        for c in 0..=slots {
            for s in 0..=c {
                let v = dp[t - 1][c - s] + evaluated[t][s].0;
                if v < dp[t][c] {
                    dp[t][c] = v;
                    choice[t][c] = s;
                }
            }
        }
    }

    // Walk back the choices.
    let mut partitions = vec![0u64; n];
    let mut results = Vec::with_capacity(n);
    let mut c = slots;
    for t in (0..n).rev() {
        let s = choice[t][c];
        partitions[t] = s as u64 * granularity;
        c -= s;
        results.push(evaluated[t][s].1.clone());
    }
    results.reverse();
    Ok(MultiTaskResult {
        partitions,
        results,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mhla_ir::{ElemType, ProgramBuilder};

    /// A table-scan task whose working set is `bytes` large.
    fn scan_task(name: &str, bytes: u64, reps: i64) -> Program {
        let mut b = ProgramBuilder::new(name);
        let tab = b.array("tab", &[bytes], ElemType::U8);
        let lr = b.begin_loop("rep", 0, reps, 1);
        let li = b.begin_loop("i", 0, bytes as i64, 1);
        let iv = b.var(li);
        b.stmt("s").read(tab, vec![iv]).compute_cycles(2).finish();
        b.end_loop();
        b.end_loop();
        let _ = lr;
        b.finish()
    }

    #[test]
    fn partitions_sum_to_at_most_the_capacity() {
        let t1 = scan_task("hot", 512, 64);
        let t2 = scan_task("cold", 512, 2);
        let platform = Platform::embedded_default(1024);
        let r = partition_scratchpad(&[&t1, &t2], &platform, &MhlaConfig::default(), 256);
        assert_eq!(r.partitions.len(), 2);
        assert!(r.partitions.iter().sum::<u64>() <= 1024);
    }

    #[test]
    fn hot_task_wins_the_scratchpad() {
        // Both tasks want 512 B; only one fits. The one with 32x more
        // traffic must get it.
        let hot = scan_task("hot", 512, 64);
        let cold = scan_task("cold", 512, 2);
        let platform = Platform::embedded_default(512);
        let r = partition_scratchpad(&[&cold, &hot], &platform, &MhlaConfig::default(), 512);
        assert_eq!(r.partitions, vec![0, 512], "hot task gets the space");
    }

    #[test]
    fn multitask_beats_equal_split_when_loads_are_skewed() {
        let hot = scan_task("hot", 1024, 64);
        let cold = scan_task("cold", 1024, 1);
        let platform = Platform::embedded_default(1024);
        let config = MhlaConfig::default();
        let optimal = partition_scratchpad(&[&hot, &cold], &platform, &config, 256);

        // Manual equal split: both tasks at 512 B.
        let half = platform.with_layer_capacity(mhla_hierarchy::LayerId(1), 512);
        let equal: u64 = [&hot, &cold]
            .iter()
            .map(|t| Mhla::new(t, &half, config.clone()).run().mhla_te_cycles())
            .sum();
        assert!(
            optimal.total_cycles() <= equal,
            "DP allocation {} worse than naive equal split {equal}",
            optimal.total_cycles()
        );
        // And the whole thing still beats running both out of the box.
        assert!(optimal.total_cycles() < optimal.baseline_cycles());
    }

    #[test]
    #[should_panic(expected = "at least one task")]
    fn empty_task_set_is_rejected() {
        let platform = Platform::embedded_default(1024);
        let _ = partition_scratchpad(&[], &platform, &MhlaConfig::default(), 256);
    }

    #[test]
    #[should_panic(expected = "granularity")]
    fn zero_granularity_is_rejected() {
        let t = scan_task("t", 64, 2);
        let platform = Platform::embedded_default(1024);
        let _ = partition_scratchpad(&[&t], &platform, &MhlaConfig::default(), 0);
    }

    #[test]
    fn single_task_gets_everything_useful() {
        let t = scan_task("solo", 512, 64);
        let platform = Platform::embedded_default(1024);
        let r = partition_scratchpad(&[&t], &platform, &MhlaConfig::default(), 256);
        // It needs 512 B; the DP may hand it any amount ≥ that with equal
        // score, but never less.
        assert!(r.partitions[0] >= 512);
        assert!(r.total_cycles() < r.baseline_cycles());
    }
}
